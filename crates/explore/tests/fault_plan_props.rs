//! Property tests over the fault plane (satellite of the fuzzing PR):
//!
//! * every `FaultPlan` the mutation engine can produce round-trips
//!   through the replay-file serialization bit-exactly, and
//! * counter-windowed faults fire on exactly the events inside their
//!   `[nth, nth + count)` window, over seeded random topologies and
//!   event streams.
//!
//! Both properties are seeded (SplitMix64) so a failure reproduces.

use scc_explore::{
    app, mutate::mutate, mutate::schedule_probe, parse_replay_full, render_replay, Expected,
    Plan, Rng, Scenario,
};
use scc_hw::faults::{FaultState, IpiOutcome};
use scc_hw::{Fault, FaultPlan, Topology};

/// Generate a plan the way the fuzzer does: a chain of 1..=6 mutation
/// steps away from the baseline (or a schedule probe), so every operator
/// — and therefore every `Fault` variant and policy shape — appears over
/// enough iterations.
fn random_plan(rng: &mut Rng, ncores: usize) -> Plan {
    let mut plan = if rng.chance(1, 4) {
        schedule_probe(rng)
    } else {
        Plan::baseline()
    };
    let peer = mutate(rng, &plan, None, ncores);
    for _ in 0..1 + rng.below(6) {
        plan = mutate(rng, &plan, Some(&peer), ncores);
    }
    plan
}

#[test]
fn every_mutated_plan_round_trips_through_replay() {
    let spec = app("dotprod").expect("dotprod is registered");
    let mut rng = Rng::new(0xF4_0175);
    for i in 0..400 {
        let plan = random_plan(&mut rng, spec.cores);
        let sc = Scenario {
            app: spec,
            policy: plan.policy.clone(),
            faults: plan.faults.clone(),
        };
        let text = render_replay(&sc, &Expected::Clean);
        let parsed = parse_replay_full(&text)
            .unwrap_or_else(|e| panic!("iteration {i}: replay parse failed: {e}\n{text}"));
        assert_eq!(
            parsed.scenario.policy, plan.policy,
            "iteration {i}: policy drifted through serialization\n{text}"
        );
        assert_eq!(
            parsed.scenario.faults, plan.faults,
            "iteration {i}: fault plan drifted through serialization\n{text}"
        );
        assert_eq!(parsed.expected, Expected::Clean);
        parsed
            .verify_topology()
            .expect("freshly rendered replay must match the active topology");
    }
}

#[test]
fn hand_built_fault_variants_round_trip_through_replay() {
    // One entry per variant with deliberately awkward field values:
    // unset filters next to set ones, zero-width prefixes, windows at
    // u32 boundaries, and the largest delay the mutator can emit.
    let faults = vec![
        Fault::DropIpi { src: None, dst: Some(0), nth: 0, count: 1 },
        Fault::DropIpi { src: Some(3), dst: None, nth: u32::MAX - 1, count: 1 },
        Fault::DelayIpi { src: None, dst: None, nth: 7, count: 2, cycles: 400_000 },
        Fault::DelayMailSlot { src: Some(1), dst: Some(2), nth: 1, count: 3, cycles: 1_000 },
        Fault::StallTas { reg: None, nth: 0, count: 2, cycles: 12_345 },
        Fault::StallTas { reg: Some(5), nth: 2, count: 1, cycles: 99_999 },
        Fault::FreezeCore { core: 2, at: 150_000, cycles: 640_000 },
    ];
    let spec = app("dotprod").expect("dotprod is registered");
    let sc = Scenario {
        app: spec,
        policy: Default::default(),
        faults: FaultPlan { faults: faults.clone() },
    };
    let text = render_replay(&sc, &Expected::Clean);
    let parsed = parse_replay_full(&text).expect("replay must parse");
    assert_eq!(parsed.scenario.faults.faults, faults, "\n{text}");
}

/// A valid random topology: dimensions small enough to stay under the
/// core limit, `num_mcs` a power of two ≥ 2 with `num_mcs / 2 <= mesh_y`.
fn random_topology(rng: &mut Rng) -> Topology {
    loop {
        let x = 1 + rng.below(8) as u32;
        let y = 1 + rng.below(8) as u32;
        let c = 1 + rng.below(2) as u32;
        let m = if y >= 2 && rng.chance(1, 2) { 4 } else { 2 };
        let spec = format!("{x}x{y}x{c}:{m}");
        if let Ok(t) = Topology::from_spec(&spec) {
            return t;
        }
    }
}

/// Reference model of one `[nth, nth + count)` window: the k-th matching
/// event (0-based) is hit iff `nth <= k < nth + count`.
fn window_hit(k: u64, nth: u32, count: u32) -> bool {
    k >= u64::from(nth) && k < u64::from(nth) + u64::from(count)
}

#[test]
fn counter_windows_fire_exactly_within_their_bounds() {
    let mut rng = Rng::new(0xD00F);
    for _ in 0..60 {
        let topo = random_topology(&mut rng);
        let n = topo.num_cores();
        let nth = rng.below(6) as u32;
        let count = 1 + rng.below(4) as u32;
        let cycles = 1_000 + rng.below(10_000);
        // A source filter half the time; `None` matches every core.
        let src_filter = rng.chance(1, 2).then(|| rng.below(n as u64) as usize);

        let st = FaultState::new(FaultPlan {
            faults: vec![
                Fault::DropIpi { src: src_filter, dst: None, nth, count },
                Fault::DelayMailSlot { src: None, dst: None, nth, count, cycles },
                Fault::StallTas { reg: src_filter, nth, count, cycles },
            ],
        });

        // Feed a deterministic random event stream and count matches per
        // entry exactly as the window semantics promise: only matching
        // events advance an entry's counter.
        let (mut ipi_matches, mut mail_matches) = (0u64, 0u64);
        let mut tas_matches = vec![0u64; n];
        for _ in 0..events_for(nth, count) {
            let src = rng.below(n as u64) as usize;
            let dst = rng.below(n as u64) as usize;
            let outcome = st.ipi_fault(src, dst);
            if src_filter.is_none_or(|f| f == src) {
                let hit = window_hit(ipi_matches, nth, count);
                assert_eq!(
                    outcome == IpiOutcome::Drop,
                    hit,
                    "IPI {src}->{dst}: match #{ipi_matches} vs window [{nth}, {nth}+{count})"
                );
                ipi_matches += 1;
            } else {
                assert_eq!(outcome, IpiOutcome::Deliver, "filtered-out IPI must pass");
            }

            let delay = st.mail_delay(src, dst);
            let hit = window_hit(mail_matches, nth, count);
            assert_eq!(delay, if hit { cycles } else { 0 }, "mail match #{mail_matches}");
            mail_matches += 1;

            // TAS windows count per-register matches when filtered.
            let reg = rng.below(n as u64) as usize;
            let stall = st.tas_stall(reg);
            if src_filter.is_none_or(|f| f == reg) {
                // With `reg: None` every attempt matches, so the counter
                // is global; with a filter only that register advances it.
                let k = if src_filter.is_some() {
                    tas_matches[reg]
                } else {
                    tas_matches.iter().sum()
                };
                let hit = window_hit(k, nth, count);
                assert_eq!(stall, if hit { cycles } else { 0 }, "TAS reg {reg} match #{k}");
                tas_matches[reg] += 1;
            } else {
                assert_eq!(stall, 0, "filtered-out TAS attempt must not stall");
            }
        }
        // The stream was long enough to see the window open and close.
        assert!(mail_matches > u64::from(nth) + u64::from(count));
    }
}

/// Enough events to drive every counter past `nth + count` even when a
/// source filter thins the matching stream.
fn events_for(nth: u32, count: u32) -> u64 {
    (u64::from(nth) + u64::from(count) + 4) * 20
}

#[test]
fn freeze_core_fires_once_at_or_past_its_mark() {
    let mut rng = Rng::new(0xFE_E2E);
    for _ in 0..40 {
        let topo = random_topology(&mut rng);
        let n = topo.num_cores();
        let core = rng.below(n as u64) as usize;
        let at = 10_000 + rng.below(100_000);
        let cycles = 1_000 + rng.below(50_000);
        let st = FaultState::new(FaultPlan {
            faults: vec![Fault::FreezeCore { core, at, cycles }],
        });
        // Yields before the mark never fire, on any core.
        assert_eq!(st.freeze_jump(core, at - 1), 0);
        let other = (core + 1) % n.max(2);
        if other != core && other < n {
            assert_eq!(st.freeze_jump(other, at + 1), 0, "wrong core must not freeze");
        }
        // First yield at/past the mark fires exactly once...
        assert_eq!(st.freeze_jump(core, at + rng.below(1_000)), cycles);
        // ...and the entry is spent for the rest of the run.
        assert_eq!(st.freeze_jump(core, at + 2_000), 0);
        assert_eq!(st.freeze_jump(core, u64::MAX), 0);
    }
}
