//! Fuzzing determinism suite: a campaign is a pure function of its
//! master seed. Two *separate host processes* running the same seed and
//! budget must produce the identical coverage bitmap fingerprint,
//! finding set, and on-disk corpus — otherwise the multi-process fan-out
//! (`svmfuzz --jobs N`) could not shard work without breaking
//! replayability.

use std::path::{Path, PathBuf};
use std::process::Command;

fn scratch(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("svmfuzz_determinism_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Run the real `svmfuzz` binary to completion and return its JSON
/// summary. Corpus and findings land under `dir`.
fn run_campaign(dir: &Path) -> String {
    let json = dir.join("FUZZ.json");
    let out = Command::new(env!("CARGO_BIN_EXE_svmfuzz"))
        .args(["--execs", "30", "--seed", "7"])
        .arg("--out")
        .arg(dir)
        .arg("--corpus")
        .arg(dir.join("corpus"))
        .arg("--json")
        .arg(&json)
        .output()
        .expect("svmfuzz must spawn");
    assert!(
        out.status.success(),
        "svmfuzz failed (status {:?}):\n{}\n{}",
        out.status,
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::read_to_string(&json).expect("summary JSON must exist")
}

/// Every value of a quoted JSON field, in document order.
fn field_values<'a>(json: &'a str, field: &str) -> Vec<&'a str> {
    let needle = format!("\"{field}\": \"");
    let mut out = Vec::new();
    let mut rest = json;
    while let Some(pos) = rest.find(&needle) {
        rest = &rest[pos + needle.len()..];
        let end = rest.find('"').expect("quoted field value must close");
        out.push(&rest[..end]);
        rest = &rest[end..];
    }
    out
}

/// Sorted `(file name, contents)` pairs of a corpus directory.
fn corpus_listing(dir: &Path) -> Vec<(String, String)> {
    let mut out: Vec<(String, String)> = std::fs::read_dir(dir)
        .expect("corpus dir must exist")
        .map(|e| {
            let e = e.unwrap();
            (
                e.file_name().to_string_lossy().into_owned(),
                std::fs::read_to_string(e.path()).unwrap(),
            )
        })
        .collect();
    out.sort();
    out
}

#[test]
fn same_seed_reproduces_bitwise_across_two_processes() {
    let (dir_a, dir_b) = (scratch("a"), scratch("b"));
    let json_a = run_campaign(&dir_a);
    let json_b = run_campaign(&dir_b);

    // The summary fingerprint folds every app's coverage bitmap
    // fingerprint, bit count, corpus size, find exec, and finding-set
    // fingerprint — one mismatch anywhere and these diverge.
    let fp_a = field_values(&json_a, "fingerprint");
    let fp_b = field_values(&json_b, "fingerprint");
    assert!(!fp_a.is_empty(), "summary must carry a fingerprint:\n{json_a}");
    assert_eq!(fp_a, fp_b, "campaign fingerprints diverged");

    // Belt and braces: the per-app coverage and finding-set fingerprints
    // must agree pairwise too (a compensating double-error could in
    // principle cancel inside one folded hash).
    for field in ["coverage_fp", "findings_fp"] {
        let a = field_values(&json_a, field);
        let b = field_values(&json_b, field);
        assert!(!a.is_empty(), "expected at least one {field} in:\n{json_a}");
        assert_eq!(a, b, "{field} diverged between processes");
    }

    // The on-disk corpora are content-hash-named replay files; identical
    // campaigns must write identical file sets with identical bytes.
    assert_eq!(
        corpus_listing(&dir_a.join("corpus")),
        corpus_listing(&dir_b.join("corpus")),
        "on-disk corpus diverged between processes"
    );

    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

/// Without `trace` the rings are empty, coverage never grows, and two
/// seeds can legitimately tie — the sensitivity check needs the signal.
#[cfg(feature = "trace")]
#[test]
fn different_seeds_change_the_campaign() {
    // Guard against the fingerprint being insensitive (e.g. hashing an
    // empty set everywhere): a different master seed must change it.
    let dir = scratch("c");
    let json_a = run_campaign(&dir);
    let json_b = {
        let d2 = scratch("d");
        let json = d2.join("FUZZ.json");
        let out = Command::new(env!("CARGO_BIN_EXE_svmfuzz"))
            .args(["--execs", "30", "--seed", "8"])
            .arg("--out")
            .arg(&d2)
            .arg("--json")
            .arg(&json)
            .output()
            .expect("svmfuzz must spawn");
        assert!(out.status.success());
        let s = std::fs::read_to_string(&json).unwrap();
        let _ = std::fs::remove_dir_all(&d2);
        s
    };
    let fp_a = field_values(&json_a, "fingerprint");
    let fp_b = field_values(&json_b, "fingerprint");
    assert_ne!(fp_a, fp_b, "master seed must steer the campaign");
    let _ = std::fs::remove_dir_all(&dir);
}
