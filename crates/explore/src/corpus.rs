//! The fuzzer's corpus: plans that earned coverage, with the energy that
//! decides how often each gets mutated.
//!
//! Entries are serialized in the **replay-file format** (with
//! `expect clean` — a corpus entry is an interesting *interleaving*, not
//! a bug) under content-hash filenames, so a corpus directory doubles as
//! a pile of `svmexplore --replay`-able files and two fuzzer processes
//! can share one directory without coordination: identical plans collide
//! onto the same filename, and differing plans never clobber each other.
//! A process reads the directory **once at startup** — seeding from a
//! previous campaign — and only appends afterwards, which keeps each
//! process's execution sequence a pure function of (seed dir, master
//! seed).

use crate::mutate::Rng;
use crate::registry::{AppSpec, Expected};
use crate::replay::{parse_replay_full, render_replay};
use crate::runner::Scenario;
use scc_hw::{FaultPlan, SchedPolicy, Topology};
use std::path::{Path, PathBuf};

/// A schedule policy × fault plan pair: the fuzzer's genome. The app it
/// runs against is fixed per campaign.
#[derive(Clone, Debug, PartialEq)]
pub struct Plan {
    pub policy: SchedPolicy,
    pub faults: FaultPlan,
}

impl Plan {
    /// The default schedule with no faults — every campaign's seed entry.
    pub fn baseline() -> Plan {
        Plan {
            policy: SchedPolicy::Baton,
            faults: FaultPlan::default(),
        }
    }

    /// Bind the plan to an app for execution.
    pub fn scenario(&self, app: &'static AppSpec) -> Scenario {
        Scenario {
            app,
            policy: self.policy.clone(),
            faults: self.faults.clone(),
        }
    }

    /// Deterministic content hash (FNV-1a over the rendered replay body,
    /// app line excluded so the hash names the *plan*).
    fn content_hash(&self, app: &'static AppSpec) -> u64 {
        let text = render_replay(&self.scenario(app), &Expected::Clean);
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for line in text.lines() {
            if line.starts_with("app ") || line.starts_with('#') {
                continue;
            }
            for b in line.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            h ^= 0xff;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

/// One corpus entry: a plan plus its selection energy.
#[derive(Clone, Debug)]
pub struct CorpusEntry {
    pub plan: Plan,
    /// Selection weight. Set at admission from the coverage it earned:
    /// `1 + 4·novel + rare`, so plans that lit up never-seen transitions
    /// — and especially still-rare ones — get mutated more often.
    pub energy: u64,
    /// Content hash (also the on-disk filename stem).
    pub id: u64,
}

/// The per-app corpus.
pub struct Corpus {
    app: &'static AppSpec,
    entries: Vec<CorpusEntry>,
    /// Shared on-disk directory; `None` keeps the corpus in memory.
    dir: Option<PathBuf>,
    /// Entries loaded from a previous campaign's directory at startup.
    pub seeded_from_disk: usize,
}

impl Corpus {
    /// An empty in-memory corpus.
    pub fn new(app: &'static AppSpec) -> Corpus {
        Corpus {
            app,
            entries: Vec::new(),
            dir: None,
            seeded_from_disk: 0,
        }
    }

    /// A corpus backed by `dir`: existing entries for this app are loaded
    /// (sorted by filename, so every process seeds identically from the
    /// same directory), new admissions are persisted. Entries recorded on
    /// a different topology are skipped — their core-targeted faults and
    /// band vectors would be meaningless on this mesh.
    pub fn open(app: &'static AppSpec, dir: &Path) -> std::io::Result<Corpus> {
        std::fs::create_dir_all(dir)?;
        let mut c = Corpus::new(app);
        c.dir = Some(dir.to_path_buf());
        let active = Topology::from_env_or_scc48();
        let prefix = format!("{}_", app.name);
        let mut names: Vec<String> = std::fs::read_dir(dir)?
            .filter_map(|e| e.ok())
            .filter_map(|e| e.file_name().into_string().ok())
            .filter(|n| n.starts_with(&prefix) && n.ends_with(".corpus"))
            .collect();
        names.sort();
        for n in names {
            let text = match std::fs::read_to_string(dir.join(&n)) {
                Ok(t) => t,
                Err(_) => continue,
            };
            let parsed = match parse_replay_full(&text) {
                Ok(p) => p,
                Err(_) => continue,
            };
            if parsed.scenario.app.name != app.name
                || parsed.verify_topology_against(active).is_err()
            {
                continue;
            }
            let plan = Plan {
                policy: parsed.scenario.policy,
                faults: parsed.scenario.faults,
            };
            let id = plan.content_hash(app);
            if c.entries.iter().any(|e| e.id == id) {
                continue;
            }
            // Disk entries earned coverage in a past campaign; re-admission
            // recomputes their energy against this campaign's map, so seed
            // them with the floor weight.
            c.entries.push(CorpusEntry { plan, energy: 1, id });
        }
        c.seeded_from_disk = c.entries.len();
        Ok(c)
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn entries(&self) -> &[CorpusEntry] {
        &self.entries
    }

    /// Admit a plan that produced new coverage. `novel`/`rare` come from
    /// [`crate::coverage::GlobalCoverage::absorb`]. Returns false if the
    /// plan is already present (same content hash).
    pub fn admit(&mut self, plan: Plan, novel: u32, rare: u32) -> bool {
        let id = plan.content_hash(self.app);
        if self.entries.iter().any(|e| e.id == id) {
            return false;
        }
        let energy = 1 + 4 * u64::from(novel) + u64::from(rare);
        if let Some(dir) = &self.dir {
            let path = dir.join(format!("{}_{id:016x}.corpus", self.app.name));
            // Identical content collides onto the same name — overwriting
            // is idempotent, so concurrent admitters need no locking.
            let text = render_replay(&plan.scenario(self.app), &Expected::Clean);
            let _ = std::fs::write(path, text);
        }
        self.entries.push(CorpusEntry { plan, energy, id });
        true
    }

    /// Energy-weighted deterministic selection: entries with more energy
    /// are proportionally more likely to be chosen as the mutation base.
    pub fn select<'a>(&'a self, rng: &mut Rng) -> Option<&'a CorpusEntry> {
        if self.entries.is_empty() {
            return None;
        }
        let total: u64 = self.entries.iter().map(|e| e.energy).sum();
        let mut r = rng.below(total.max(1));
        for e in &self.entries {
            if r < e.energy {
                return Some(e);
            }
            r -= e.energy;
        }
        self.entries.last()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::app;
    use scc_hw::Fault;

    fn spec() -> &'static AppSpec {
        app("dotprod").expect("registry app")
    }

    fn plan_with_drop(dst: usize) -> Plan {
        Plan {
            policy: SchedPolicy::SeededRandom { seed: 5 },
            faults: FaultPlan {
                faults: vec![Fault::DropIpi {
                    src: None,
                    dst: Some(dst),
                    nth: 0,
                    count: 1,
                }],
            },
        }
    }

    #[test]
    fn admit_dedups_by_content() {
        let mut c = Corpus::new(spec());
        assert!(c.admit(Plan::baseline(), 10, 3));
        assert!(!c.admit(Plan::baseline(), 99, 99), "same content → no dup");
        assert!(c.admit(plan_with_drop(1), 1, 0));
        assert_eq!(c.len(), 2);
        assert_eq!(c.entries()[0].energy, 1 + 4 * 10 + 3);
    }

    #[test]
    fn selection_is_energy_weighted_and_deterministic() {
        let mut c = Corpus::new(spec());
        c.admit(Plan::baseline(), 0, 0); // energy 1
        c.admit(plan_with_drop(1), 20, 10); // energy 91
        let mut rng = Rng::new(9);
        let heavy = c.entries()[1].id;
        let hits = (0..100)
            .filter(|_| c.select(&mut rng).unwrap().id == heavy)
            .count();
        assert!(hits > 70, "heavy entry picked {hits}/100");
        // Same seed → same picks.
        let mut r1 = Rng::new(123);
        let mut r2 = Rng::new(123);
        for _ in 0..20 {
            assert_eq!(
                c.select(&mut r1).unwrap().id,
                c.select(&mut r2).unwrap().id
            );
        }
    }

    #[test]
    fn disk_round_trip_preserves_plans() {
        let dir = std::env::temp_dir().join(format!("svmfuzz_corpus_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut c = Corpus::open(spec(), &dir).expect("open");
            assert_eq!(c.seeded_from_disk, 0);
            c.admit(plan_with_drop(1), 5, 2);
            c.admit(plan_with_drop(2), 1, 1);
        }
        let c2 = Corpus::open(spec(), &dir).expect("reopen");
        assert_eq!(c2.seeded_from_disk, 2);
        let mut plans: Vec<&Plan> = c2.entries().iter().map(|e| &e.plan).collect();
        plans.sort_by_key(|p| format!("{:?}", p.faults));
        assert!(plans.iter().any(|p| p.faults.faults.len() == 1));
        // A different app's corpus in the same dir is invisible.
        let other = Corpus::open(app("histogram").expect("app"), &dir).expect("open");
        assert_eq!(other.len(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
