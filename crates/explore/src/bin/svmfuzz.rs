//! `svmfuzz` — coverage-guided concurrency fuzzing over the registered
//! apps, with `svm-check` as the oracle.
//!
//! ```text
//! svmfuzz [--execs N] [--seed S] [--jobs J] [--corpus DIR] [--out DIR]
//!         [--json FILE] [--app NAME] [--bench FILE]
//! ```
//!
//! Single-process mode (`--jobs 1`, the default) runs one deterministic
//! campaign: same seed, same corpus directory → bit-identical coverage
//! maps, corpora and findings. `--jobs J` fans the budget out across J
//! host processes, each a deterministic campaign under a derived seed
//! (`seed + i·golden`), all sharing `--corpus DIR`: entries are written
//! under content-hash names so concurrent admitters never clobber each
//! other, and each worker reads the directory only at startup. The
//! parent merges the workers' JSON reports.
//!
//! `--bench FILE` runs the seed-sweep-vs-fuzzer comparison and the
//! large-mesh campaign instead, writing `BENCH_fuzz.json`-style output
//! (see EXPERIMENTS.md).
//!
//! Exit status: 0 — every fuzzed app matched its contract (planted bugs
//! found, clean apps clean); 1 — a contract was missed; 2 — usage or
//! I/O error.

use scc_explore::fuzz::blind_execs_to_find;
use scc_explore::{app, fuzz_app, fuzz_registry, registry, FuzzConfig, FuzzSummary};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    cfg: FuzzConfig,
    jobs: u64,
    json: Option<PathBuf>,
    app: Option<String>,
    bench: Option<PathBuf>,
    /// Set on spawned workers: worker index (0-based). Hidden flag.
    worker: Option<u64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        cfg: FuzzConfig::default(),
        jobs: 1,
        json: None,
        app: None,
        bench: None,
        worker: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |flag: &str| it.next().ok_or(format!("{flag} needs a value"));
        match a.as_str() {
            "--execs" => {
                let v = val("--execs")?;
                args.cfg.execs = v.parse().map_err(|_| format!("bad --execs: {v}"))?;
            }
            "--seed" => {
                let v = val("--seed")?;
                args.cfg.master_seed = v.parse().map_err(|_| format!("bad --seed: {v}"))?;
            }
            "--jobs" => {
                let v = val("--jobs")?;
                args.jobs = v.parse().map_err(|_| format!("bad --jobs: {v}"))?;
                if args.jobs == 0 || args.jobs > 64 {
                    return Err(format!("--jobs must be 1..=64, got {}", args.jobs));
                }
            }
            "--corpus" => args.cfg.corpus_dir = Some(PathBuf::from(val("--corpus")?)),
            "--out" => args.cfg.out_dir = PathBuf::from(val("--out")?),
            "--json" => args.json = Some(PathBuf::from(val("--json")?)),
            "--app" => args.app = Some(val("--app")?),
            "--bench" => args.bench = Some(PathBuf::from(val("--bench")?)),
            "--worker" => {
                let v = val("--worker")?;
                args.worker = Some(v.parse().map_err(|_| format!("bad --worker: {v}"))?);
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    if let Some(name) = &args.app {
        args.cfg.apps = vec![name.clone()];
    }
    Ok(args)
}

/// Injected deadlocks and saturation panics are expected fuzzing
/// outcomes; keep the default hook from spraying backtraces.
fn silence_panics() {
    std::panic::set_hook(Box::new(|_| {}));
}

fn write_json(path: &PathBuf, text: &str) -> Result<(), String> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        }
    }
    std::fs::write(path, text).map_err(|e| format!("cannot write {}: {e}", path.display()))
}

/// Derive worker i's master seed: far-apart deterministic streams.
fn worker_seed(master: u64, i: u64) -> u64 {
    master.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Fan the campaign out over `jobs` worker processes sharing the corpus
/// directory. Each worker is itself fully deterministic; the parent
/// merges their reports (a find in any worker is a find).
fn run_jobs(args: &Args) -> Result<FuzzSummary, String> {
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let per_worker = (args.cfg.execs / args.jobs).max(2);
    let mut children = Vec::new();
    for i in 0..args.jobs {
        let wjson = args
            .cfg
            .out_dir
            .join(format!("FUZZ_worker_{i}.json"));
        let mut cmd = std::process::Command::new(&exe);
        cmd.arg("--worker")
            .arg(i.to_string())
            .arg("--execs")
            .arg(per_worker.to_string())
            .arg("--seed")
            .arg(worker_seed(args.cfg.master_seed, i).to_string())
            .arg("--out")
            .arg(args.cfg.out_dir.join(format!("worker_{i}")))
            .arg("--json")
            .arg(&wjson);
        if let Some(d) = &args.cfg.corpus_dir {
            cmd.arg("--corpus").arg(d);
        }
        if let Some(a) = &args.app {
            cmd.arg("--app").arg(a);
        }
        let child = cmd
            .spawn()
            .map_err(|e| format!("cannot spawn worker {i}: {e}"))?;
        children.push((i, child, wjson));
    }
    // Workers write their own JSON; the parent only needs exit codes and
    // re-derives the merged view by re-reading the shared corpus. For
    // the summary we re-run nothing: merge the per-worker reports.
    let mut merged: Option<FuzzSummary> = None;
    let mut failed = Vec::new();
    for (i, mut child, wjson) in children {
        let status = child
            .wait()
            .map_err(|e| format!("waiting for worker {i}: {e}"))?;
        match status.code() {
            Some(0) | Some(1) => {}
            c => failed.push(format!("worker {i} exited with {c:?}")),
        }
        let text = std::fs::read_to_string(&wjson)
            .map_err(|e| format!("worker {i} report {}: {e}", wjson.display()))?;
        let found_apps = parse_worker_found(&text);
        match &mut merged {
            None => {
                // Adopt worker 0's shape as the merge base.
                let cfg = FuzzConfig {
                    execs: 0,
                    master_seed: args.cfg.master_seed,
                    corpus_dir: None,
                    out_dir: args.cfg.out_dir.clone(),
                    apps: args.cfg.apps.clone(),
                };
                let mut base = fuzz_skeleton(&cfg);
                apply_worker(&mut base, &found_apps, per_worker);
                merged = Some(base);
            }
            Some(m) => apply_worker(m, &found_apps, per_worker),
        }
    }
    if !failed.is_empty() {
        return Err(failed.join("; "));
    }
    merged.ok_or_else(|| "no workers ran".into())
}

/// An empty summary shell listing the apps a campaign would cover, for
/// merging worker results into.
fn fuzz_skeleton(cfg: &FuzzConfig) -> FuzzSummary {
    let zero = FuzzConfig {
        execs: 0,
        ..cfg.clone()
    };
    // execs = 0 still runs the baseline execution per app; that is cheap
    // (milliseconds per app) and gives the merge shell honest expected/
    // skipped fields without duplicating registry logic here.
    fuzz_registry(&FuzzConfig { execs: 1, ..zero })
}

struct WorkerApp {
    name: String,
    found: bool,
    execs_to_find: Option<u64>,
    false_findings: u64,
}

/// Pull the per-app fields the merge needs out of a worker's JSON report
/// (hand-rolled parse over our own fixed format).
fn parse_worker_found(json: &str) -> Vec<WorkerApp> {
    let mut out = Vec::new();
    for chunk in json.split("{\"name\": \"").skip(1) {
        let name = match chunk.split('"').next() {
            Some(n) => n.to_string(),
            None => continue,
        };
        let num_after = |key: &str| {
            chunk
                .split(key)
                .nth(1)
                .and_then(|s| s.split([',', '}']).next())
                .and_then(|s| s.trim().parse::<u64>().ok())
        };
        out.push(WorkerApp {
            name,
            found: chunk.contains("\"found\": true"),
            execs_to_find: num_after("\"execs_to_find\": "),
            false_findings: num_after("\"false_findings\": ").unwrap_or(0),
        });
    }
    out
}

fn apply_worker(m: &mut FuzzSummary, found: &[WorkerApp], per_worker: u64) {
    for a in &mut m.apps {
        if let Some(w) = found.iter().find(|w| w.name == a.name) {
            a.execs = a.execs.max(per_worker);
            a.false_findings += w.false_findings;
            if w.found {
                a.found = true;
                // Wall-clock budget: workers run concurrently, so the
                // campaign's cost-to-find is the best worker's.
                a.execs_to_find = match (a.execs_to_find, w.execs_to_find) {
                    (Some(x), Some(y)) => Some(x.min(y)),
                    (x, y) => x.or(y),
                };
            }
        }
    }
}

// ---------------------------------------------------------------------
// Benchmark mode: blind seed sweep vs coverage-guided fuzzing, plus a
// large-mesh campaign. Writes the BENCH_fuzz.json consumed by
// EXPERIMENTS.md.
// ---------------------------------------------------------------------

fn bench(args: &Args) -> Result<String, String> {
    let budget = args.cfg.execs.max(24);
    let fixtures: Vec<&'static scc_explore::AppSpec> = registry()
        .iter()
        .filter(|s| !s.always_triggers && s.expected != scc_explore::Expected::Clean)
        .collect();
    if fixtures.is_empty() {
        return Err("no schedule fixtures registered".into());
    }

    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"budget\": {budget},\n  \"master_seed\": {},\n  \"fixtures\": [",
        args.cfg.master_seed
    ));
    let (mut blind_total, mut fuzz_total) = (0u64, 0u64);
    let mut all_found = true;
    for (i, spec) in fixtures.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let blind = blind_execs_to_find(spec, budget);
        let cfg = FuzzConfig {
            execs: budget,
            master_seed: args.cfg.master_seed,
            corpus_dir: None,
            out_dir: args.cfg.out_dir.clone(),
            apps: vec![],
        };
        let fz = fuzz_app(spec, &cfg);
        blind_total += blind.unwrap_or(budget + 1);
        fuzz_total += fz.execs_to_find.unwrap_or(budget + 1);
        all_found &= fz.found && blind.is_some();
        out.push_str(&format!(
            "\n    {{\"name\": \"{}\", \"blind_execs_to_find\": {}, \"fuzz_execs_to_find\": {}, \"fuzz_found\": {}, \"fuzz_coverage_bits\": {}, \"fuzz_corpus\": {}}}",
            spec.name,
            blind.map_or("null".into(), |v| v.to_string()),
            fz.execs_to_find.map_or("null".into(), |v| v.to_string()),
            fz.found,
            fz.coverage_bits,
            fz.corpus_len
        ));
    }
    out.push_str(&format!(
        "\n  ],\n  \"blind_total_execs\": {blind_total},\n  \"fuzz_total_execs\": {fuzz_total},\n  \"fuzzer_wins\": {},\n",
        fuzz_total < blind_total
    ));

    // Large-mesh campaign: clean apps on a 64-core mesh must fuzz with
    // corpus growth and zero false findings. SccConfig::small() re-reads
    // SCC_TOPOLOGY per run, so an in-process env swap switches the mesh.
    let prev = std::env::var("SCC_TOPOLOGY").ok();
    std::env::set_var("SCC_TOPOLOGY", "8x8x1:4");
    let mesh_cfg = FuzzConfig {
        execs: args.cfg.execs.clamp(10, 40),
        master_seed: args.cfg.master_seed,
        corpus_dir: None,
        out_dir: args.cfg.out_dir.join("mesh64"),
        apps: vec!["dotprod".into(), "pipeline".into(), "kv".into()],
    };
    let mesh = fuzz_registry(&mesh_cfg);
    match prev {
        Some(v) => std::env::set_var("SCC_TOPOLOGY", v),
        None => std::env::remove_var("SCC_TOPOLOGY"),
    }
    let mesh_growth: u64 = mesh.apps.iter().map(|a| a.corpus_admitted).sum();
    let mesh_false: u64 = mesh.apps.iter().map(|a| a.false_findings).sum();
    out.push_str(&format!(
        "  \"mesh64\": {{\"topology\": \"8x8x1:4\", \"execs_per_app\": {}, \"apps\": {}, \"ok\": {}, \"corpus_admitted\": {mesh_growth}, \"false_findings\": {mesh_false}, \"coverage_bits\": [{}]}},\n",
        mesh_cfg.execs,
        mesh.apps.len(),
        mesh.ok(),
        mesh.apps
            .iter()
            .map(|a| a.coverage_bits.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    ));
    let ok = all_found && fuzz_total < blind_total && mesh.ok() && mesh_growth > 0;
    out.push_str(&format!("  \"ok\": {ok}\n}}\n"));
    Ok(out)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("svmfuzz: {msg}");
            }
            eprintln!(
                "usage: svmfuzz [--execs N] [--seed S] [--jobs J] [--corpus DIR] \
                 [--out DIR] [--json FILE] [--app NAME] [--bench FILE]"
            );
            return ExitCode::from(2);
        }
    };

    silence_panics();

    if let Some(path) = &args.bench {
        return match bench(&args) {
            Ok(json) => {
                let ok = json.contains("\"ok\": true\n}");
                if let Err(e) = write_json(path, &json) {
                    eprintln!("svmfuzz: {e}");
                    return ExitCode::from(2);
                }
                println!("benchmark written to {}", path.display());
                if ok {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::from(1)
                }
            }
            Err(e) => {
                eprintln!("svmfuzz: {e}");
                ExitCode::from(2)
            }
        };
    }

    let summary = if args.jobs > 1 && args.worker.is_none() {
        match run_jobs(&args) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("svmfuzz: {e}");
                return ExitCode::from(2);
            }
        }
    } else if let Some(name) = &args.app {
        match app(name) {
            Some(spec) => FuzzSummary {
                master_seed: args.cfg.master_seed,
                execs_budget: args.cfg.execs,
                apps: vec![fuzz_app(spec, &args.cfg)],
            },
            None => {
                eprintln!("svmfuzz: no registered app named '{name}'");
                return ExitCode::from(2);
            }
        }
    } else {
        fuzz_registry(&args.cfg)
    };

    print!("{}", summary.render_text());
    if let Some(path) = &args.json {
        if let Err(e) = write_json(path, &summary.to_json()) {
            eprintln!("svmfuzz: {e}");
            return ExitCode::from(2);
        }
        println!("summary written to {}", path.display());
    }
    if summary.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
