//! `svmexplore` — deterministic schedule exploration and fault injection
//! over the registered apps and planted-bug fixtures.
//!
//! ```text
//! svmexplore [--seeds N] [--clean-seeds N] [--out DIR] [--json FILE]
//!            [--app NAME] [--replay FILE]
//! ```
//!
//! Default mode sweeps the whole registry: clean apps must stay clean
//! under the baton, sampled random schedules and a dropped-doorbell fault
//! plan (recovering via `mbx.retries`); every planted bug must be found
//! within the seed budget and shrunk to a replay file under `--out`
//! (default `results/`). `--app` restricts the sweep to one registry
//! entry. `--replay FILE` re-executes a previously written reproducer and
//! checks it still lands in its recorded outcome class.
//!
//! Exit status: 0 — every explored app matched its contract (or the
//! replay re-triggered); 1 — a planted bug was missed, a clean app
//! misbehaved, or the replay diverged; 2 — usage or I/O error.

use scc_explore::{
    app, explore_app, explore_registry, parse_replay_full, run_scenario, ExploreConfig,
    ReplayError, Summary,
};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    cfg: ExploreConfig,
    json: Option<PathBuf>,
    app: Option<String>,
    replay: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        cfg: ExploreConfig::default(),
        json: None,
        app: None,
        replay: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |flag: &str| it.next().ok_or(format!("{flag} needs a value"));
        match a.as_str() {
            "--seeds" => {
                let v = val("--seeds")?;
                args.cfg.seed_budget = v.parse().map_err(|_| format!("bad --seeds: {v}"))?;
            }
            "--clean-seeds" => {
                let v = val("--clean-seeds")?;
                args.cfg.clean_seeds =
                    v.parse().map_err(|_| format!("bad --clean-seeds: {v}"))?;
            }
            "--out" => args.cfg.out_dir = PathBuf::from(val("--out")?),
            "--json" => args.json = Some(PathBuf::from(val("--json")?)),
            "--app" => args.app = Some(val("--app")?),
            "--replay" => args.replay = Some(PathBuf::from(val("--replay")?)),
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok(args)
}

/// Injected deadlocks and budget-exhaustion panics are *expected* outcomes
/// of an exploration run; keep the default hook from spraying their
/// backtraces over the report.
fn silence_panics() {
    std::panic::set_hook(Box::new(|_| {}));
}

fn run_replay(path: &PathBuf) -> Result<bool, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let parsed = parse_replay_full(&text).map_err(|e| e.to_string())?;
    // A replay only reproduces on the mesh it was recorded on: refuse to
    // run one against the wrong SCC_TOPOLOGY instead of silently
    // diverging (wrong core ids, missed fault filters, other elections).
    if let Err(e @ ReplayError::TopologyMismatch { .. }) = parsed.verify_topology() {
        return Err(e.to_string());
    }
    let (sc, expected) = (parsed.scenario, parsed.expected);
    println!(
        "replaying {} — app {}, expecting {}",
        path.display(),
        sc.app.name,
        expected.describe()
    );
    let o = run_scenario(&sc);
    let ok = o.satisfies(&expected);
    println!(
        "outcome: {} — {}",
        o.brief(),
        if ok { "re-triggered" } else { "DIVERGED" }
    );
    Ok(ok)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("svmexplore: {msg}");
            }
            eprintln!(
                "usage: svmexplore [--seeds N] [--clean-seeds N] [--out DIR] \
                 [--json FILE] [--app NAME] [--replay FILE]"
            );
            return ExitCode::from(2);
        }
    };

    silence_panics();

    if let Some(path) = &args.replay {
        return match run_replay(path) {
            Ok(true) => ExitCode::SUCCESS,
            Ok(false) => ExitCode::from(1),
            Err(e) => {
                eprintln!("svmexplore: {e}");
                ExitCode::from(2)
            }
        };
    }

    let summary = match &args.app {
        Some(name) => match app(name) {
            Some(spec) => Summary {
                seed_budget: args.cfg.seed_budget,
                apps: vec![explore_app(spec, &args.cfg)],
            },
            None => {
                eprintln!("svmexplore: no registered app named '{name}'");
                return ExitCode::from(2);
            }
        },
        None => explore_registry(&args.cfg),
    };

    print!("{}", summary.render_text());
    if let Some(path) = &args.json {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                if let Err(e) = std::fs::create_dir_all(dir) {
                    eprintln!("svmexplore: cannot create {}: {e}", dir.display());
                    return ExitCode::from(2);
                }
            }
        }
        if let Err(e) = std::fs::write(path, summary.to_json()) {
            eprintln!("svmexplore: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("summary written to {}", path.display());
    }
    if summary.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
