//! The explorer's application registry: clean workloads that must stay
//! clean under any schedule, and planted-bug fixtures with their expected
//! outcome class.

use metalsvm::{Consistency, SvmCtx};
use scc_apps::dotprod::dotprod;
use scc_apps::fixtures::{FIXTURES, SCHEDULE_FIXTURES};
use scc_apps::histogram::{histogram, HistParams};
use scc_apps::matmul::matmul;
use scc_apps::pipeline::pipeline;
use scc_apps::{laplace_svm, LaplaceParams};
use scc_kernel::Kernel;
use scc_mailbox::Mailbox;
use std::sync::OnceLock;

/// The outcome class a scenario is expected to reach.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Expected {
    /// No checker finding, no deadlock, no panic.
    Clean,
    /// At least one checker finding with this slug.
    Finding(&'static str),
    /// The executor reports a deadlock.
    Deadlock,
}

impl Expected {
    pub fn describe(&self) -> String {
        match self {
            Expected::Clean => "clean".into(),
            Expected::Finding(slug) => format!("finding {slug}"),
            Expected::Deadlock => "deadlock".into(),
        }
    }
}

/// Entry point shape of a registered app (the runner installs both the
/// mailbox and the SVM system either way).
#[derive(Copy, Clone)]
pub enum AppRun {
    Svm(fn(&mut Kernel<'_>, &mut SvmCtx)),
    Mbx(fn(&mut Kernel<'_>, &Mailbox)),
    /// Apps layered over both systems at once (the kv service runs its
    /// RPC over the mailbox and its store over SVM).
    SvmMbx(fn(&mut Kernel<'_>, &Mailbox, &mut SvmCtx)),
}

/// One registered application or fixture.
pub struct AppSpec {
    pub name: &'static str,
    pub cores: usize,
    pub expected: Expected,
    /// The planted bug already fires under the default baton schedule
    /// (the checker fixtures); no schedule search is needed.
    pub always_triggers: bool,
    /// The app routes enough traffic through the mailbox system that a
    /// dropped-doorbell fault plan is guaranteed to hit it — the explorer
    /// additionally asserts retry-based recovery (`mbx.retries > 0`) on
    /// these.
    pub ipi_heavy: bool,
    pub run: AppRun,
}

fn app_dotprod(k: &mut Kernel<'_>, svm: &mut SvmCtx) {
    let _ = dotprod(k, svm, 512, 2);
}

fn app_histogram(k: &mut Kernel<'_>, svm: &mut SvmCtx) {
    let _ = histogram(k, svm, HistParams::tiny());
}

fn app_laplace_strong(k: &mut Kernel<'_>, svm: &mut SvmCtx) {
    let _ = laplace_svm(k, svm, Consistency::Strong, LaplaceParams::tiny());
}

fn app_matmul(k: &mut Kernel<'_>, svm: &mut SvmCtx) {
    let _ = matmul(k, svm, 12);
}

fn app_pipeline(k: &mut Kernel<'_>, mbx: &Mailbox) {
    let _ = pipeline(k, mbx, 16);
}

fn app_kv(k: &mut Kernel<'_>, mbx: &Mailbox, svm: &mut SvmCtx) {
    // One server, three clients, all three partition strategies; small
    // enough for the explorer's budgeted schedule sweeps.
    let kv = scc_kv::KvConfig {
        keyspace_log2: 8,
        ..scc_kv::KvConfig::smoke(1, 40)
    };
    let _ = scc_kv::run_kv(k, mbx, svm, &kv);
}

fn build() -> Vec<AppSpec> {
    let clean = |name, cores, ipi_heavy, run| AppSpec {
        name,
        cores,
        expected: Expected::Clean,
        always_triggers: false,
        ipi_heavy,
        run,
    };
    let mut apps = vec![
        clean("dotprod", 4, false, AppRun::Svm(app_dotprod)),
        clean("histogram", 4, false, AppRun::Svm(app_histogram)),
        clean("laplace_strong", 4, true, AppRun::Svm(app_laplace_strong)),
        clean("matmul", 4, false, AppRun::Svm(app_matmul)),
        clean("pipeline", 3, true, AppRun::Mbx(app_pipeline)),
        clean("kv", 4, true, AppRun::SvmMbx(app_kv)),
    ];
    for f in FIXTURES {
        apps.push(AppSpec {
            name: f.name,
            cores: f.cores,
            expected: Expected::Finding(f.expect),
            always_triggers: true,
            ipi_heavy: false,
            run: AppRun::Svm(f.run),
        });
    }
    for f in SCHEDULE_FIXTURES {
        apps.push(AppSpec {
            name: f.name,
            cores: f.cores,
            expected: if f.expect == "deadlock" {
                Expected::Deadlock
            } else {
                Expected::Finding(f.expect)
            },
            always_triggers: false,
            ipi_heavy: false,
            run: AppRun::Svm(f.run),
        });
    }
    apps
}

/// All registered apps and fixtures, in stable order.
pub fn registry() -> &'static [AppSpec] {
    static REGISTRY: OnceLock<Vec<AppSpec>> = OnceLock::new();
    REGISTRY.get_or_init(build)
}

/// Look an app up by name.
pub fn app(name: &str) -> Option<&'static AppSpec> {
    registry().iter().find(|a| a.name == name)
}
