//! Execute one scenario — app × schedule policy × fault plan — on a fresh
//! machine and classify the outcome.

use crate::coverage::Coverage;
use crate::registry::{AppRun, AppSpec, Expected};
use metalsvm::{install as svm_install, SvmConfig};
use scc_checker::{check_rings, Finding};
use scc_hw::instr::{EventKind, TraceConfig};
use scc_hw::{FaultPlan, SccConfig, SchedPolicy};
use scc_kernel::Cluster;
use scc_mailbox::{install as mbx_install, Notify};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::Ordering;

/// One run description: everything that determines the outcome.
#[derive(Clone)]
pub struct Scenario {
    pub app: &'static AppSpec,
    pub policy: SchedPolicy,
    pub faults: FaultPlan,
}

impl Scenario {
    /// The default-schedule, no-faults scenario for an app.
    pub fn baseline(app: &'static AppSpec) -> Scenario {
        Scenario {
            app,
            policy: SchedPolicy::Baton,
            faults: FaultPlan::default(),
        }
    }
}

/// The classified result of one scenario run.
#[derive(Clone, Debug)]
pub enum Outcome {
    /// Run completed, checker saw nothing. Carries the summed mailbox
    /// resilience counters (non-zero only when recovery paths fired).
    Clean { mbx_retries: u64, mbx_timeouts: u64 },
    /// Run completed but the checker reported findings.
    Findings(Vec<Finding>),
    /// The executor detected a deadlock (all cores blocked forever).
    Deadlock(String),
    /// A core program panicked (e.g. the mailbox retry budget ran out —
    /// the explorer's stand-in for a hang).
    Panic(String),
}

impl Outcome {
    /// Does this outcome land in the expected class? For findings, *at
    /// least one* finding with the expected slug must be present (a racy
    /// trigger may cascade into secondary findings).
    pub fn satisfies(&self, expected: &Expected) -> bool {
        match (self, expected) {
            (Outcome::Clean { .. }, Expected::Clean) => true,
            (Outcome::Findings(fs), Expected::Finding(slug)) => {
                fs.iter().any(|f| f.slug == *slug)
            }
            (Outcome::Deadlock(_), Expected::Deadlock) => true,
            _ => false,
        }
    }

    /// One-line description for logs and reports.
    pub fn brief(&self) -> String {
        match self {
            Outcome::Clean {
                mbx_retries,
                mbx_timeouts,
            } => format!("clean (mbx retries {mbx_retries}, timeouts {mbx_timeouts})"),
            Outcome::Findings(fs) => {
                let slugs: Vec<&str> = fs.iter().map(|f| f.slug).collect();
                format!("findings [{}]", slugs.join(", "))
            }
            Outcome::Deadlock(_) => "deadlock".into(),
            Outcome::Panic(msg) => {
                format!("panic: {}", msg.lines().next().unwrap_or(""))
            }
        }
    }
}

/// Election-budget livelock guard for every explored/fuzzed scenario.
/// Non-baton policies can livelock spin-synchronized apps — a
/// `PriorityBands` schedule starves the core a spinner waits on, forever
/// — which presents as a wedged host process, not a detectable deadlock.
/// The registry workloads finish within a few hundred thousand elections
/// (see the `baseline_runs_fit_far_under_the_livelock_budget` test), so
/// a two-million budget is pure headroom for legitimate runs while
/// bounding a livelocked one to well under a second.
pub const LIVELOCK_ELECTION_BUDGET: u64 = 2_000_000;

/// The trace configuration every scenario runs under: big enough rings
/// that the small registry workloads never wrap (a wrapped ring weakens
/// the checker's absence-based rules).
pub fn trace_cfg() -> TraceConfig {
    TraceConfig {
        per_core_capacity: 1 << 16,
        mask: EventKind::default_mask(),
    }
}

fn panic_msg(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

/// Run one scenario on a fresh machine and classify the outcome. Fully
/// deterministic: the same scenario always returns the same outcome.
pub fn run_scenario(sc: &Scenario) -> Outcome {
    run_scenario_traced(sc).0
}

/// Like [`run_scenario`], but also accumulates the run's protocol-event
/// [`Coverage`] from the per-core rings (the fuzzer's feedback signal).
/// Deadlocked and panicked runs lose their rings to the unwinding
/// cluster, so their coverage is empty — the outcome itself is the
/// interesting part there. Without the `trace` feature the rings are
/// empty and coverage is always zero.
pub fn run_scenario_traced(sc: &Scenario) -> (Outcome, Coverage) {
    let cfg = SccConfig {
        sched: sc.policy.clone(),
        faults: sc.faults.clone(),
        trace: trace_cfg(),
        election_budget: Some(LIVELOCK_ELECTION_BUDGET),
        ..SccConfig::small()
    };
    let spec = sc.app;
    let run = spec.run;
    let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
        let cl = Cluster::new(cfg).expect("scenario config must validate");
        cl.run(spec.cores, move |k| {
            let mbx = mbx_install(k, Notify::Ipi);
            let mut svm = svm_install(k, &mbx, SvmConfig::default());
            match run {
                AppRun::Svm(f) => f(k, &mut svm),
                AppRun::Mbx(f) => f(k, &mbx),
                AppRun::SvmMbx(f) => f(k, &mbx, &mut svm),
            }
            let s = mbx.stats();
            (
                s.retries.load(Ordering::Relaxed),
                s.timeouts.load(Ordering::Relaxed),
            )
        })
    }));
    match caught {
        Err(p) => (Outcome::Panic(panic_msg(p)), Coverage::new()),
        Ok(Err(e)) => (Outcome::Deadlock(e.to_string()), Coverage::new()),
        Ok(Ok(rs)) => {
            let mut cov = Coverage::new();
            scc_hw::tap(rs.iter().map(|r| (r.core, &r.trace)), &mut cov);
            let report = check_rings(rs.iter().map(|r| (r.core, &r.trace)));
            let outcome = if report.findings.is_empty() {
                let (mut retries, mut timeouts) = (0u64, 0u64);
                for r in &rs {
                    retries += r.result.0;
                    timeouts += r.result.1;
                }
                Outcome::Clean {
                    mbx_retries: retries,
                    mbx_timeouts: timeouts,
                }
            } else {
                Outcome::Findings(report.findings)
            };
            (outcome, cov)
        }
    }
}
