//! Protocol-event-transition coverage: the feedback signal of `svm-fuzz`.
//!
//! A schedule-sensitive bug is a *path* through the protocol state
//! machines, not a state — so the signal that tells two interleavings
//! apart is which **transitions** between the typed `scc_hw::instr`
//! events each one exercised. Four families of transitions are folded
//! into one compact bitmap (an AFL-style coverage map, 64 Kbit):
//!
//! 1. **Per-core pairs** — consecutive `(prev, next)` event kinds in one
//!    core's ring. `EventKind::COUNT²` pairs get *direct* (collision-free)
//!    bit indices at the bottom of the map.
//! 2. **Per-core sliding windows** — the last three kinds, hashed. Pairs
//!    see `own_request → own_acquired`; windows see whether a `mail_recv`
//!    intervened.
//! 3. **Per-page pairs** — consecutive kinds *on the same page* (the
//!    page-keyed payloads via [`EventKind::page_key`]), hashed with the
//!    page number. A 5-step migration interleaved on page 7 and a clean
//!    one on page 9 are different signal.
//! 4. **Core-pair edges** — `(emitter, peer, kind)` for events naming
//!    another core ([`EventKind::peer_core`]), hashed. Which *directed
//!    protocol edges* of the mesh a schedule lights up.
//!
//! All hashing is SplitMix64-based and allocation order independent —
//! the map is a pure function of the event streams, so identical runs
//! produce identical maps in any process (the determinism suite holds
//! two `svmfuzz` processes to that).
//!
//! Without the `trace` cargo feature the rings are empty, every map is
//! all-zero, and the fuzzer degrades to blind exploration at zero cost —
//! the signal rides entirely on instrumentation that already exists.

use scc_hw::instr::{CoverageSink, TraceEvent};
use scc_hw::{CoreId, EventKind};
use std::collections::HashMap;

/// log2 of the coverage map size in bits.
pub const MAP_BITS_LOG2: u32 = 16;
/// Coverage map size in bits (8 KiB of map).
pub const MAP_BITS: usize = 1 << MAP_BITS_LOG2;
/// Coverage map size in u64 words.
pub const MAP_WORDS: usize = MAP_BITS / 64;

/// Direct (un-hashed) region: per-core kind pairs occupy the first
/// `COUNT²` bits; hashed families map into the remainder.
const DIRECT_BITS: usize = EventKind::COUNT * EventKind::COUNT;

/// "No previous event" marker for transition tracking.
const NONE: u8 = u8::MAX;

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Map a hashed key into the hashed region of the bitmap (above the
/// direct pair bits).
fn hashed_bit(domain: u64, key: u64) -> usize {
    let h = splitmix64(domain.wrapping_mul(0x9E37_79B9) ^ key) as usize;
    DIRECT_BITS + h % (MAP_BITS - DIRECT_BITS)
}

/// One run's coverage bitmap, accumulated from the per-core event rings
/// via [`scc_hw::tap`].
#[derive(Clone)]
pub struct Coverage {
    map: Box<[u64]>,
    bits: u32,
    /// Per-core transition state, reset by `begin_core`.
    last: u8,
    window: u32,
    core: u32,
    /// Last kind seen per page key (never iterated — lookup only, so the
    /// std hasher's per-process seed cannot leak into the map).
    page_last: HashMap<u32, u8>,
}

impl Default for Coverage {
    fn default() -> Self {
        Coverage::new()
    }
}

impl Coverage {
    pub fn new() -> Coverage {
        Coverage {
            map: vec![0u64; MAP_WORDS].into_boxed_slice(),
            bits: 0,
            last: NONE,
            window: 0,
            core: 0,
            page_last: HashMap::new(),
        }
    }

    #[inline]
    fn set(&mut self, idx: usize) {
        let (w, b) = (idx / 64, idx % 64);
        let bit = 1u64 << b;
        if self.map[w] & bit == 0 {
            self.map[w] |= bit;
            self.bits += 1;
        }
    }

    /// Number of distinct coverage bits this run set.
    pub fn bits_set(&self) -> u32 {
        self.bits
    }

    /// The raw map words (for merging into a [`GlobalCoverage`]).
    pub fn words(&self) -> &[u64] {
        &self.map
    }

    /// Deterministic fingerprint of the whole map — FNV-1a over the
    /// words. Equal across processes for identical runs.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for w in self.map.iter() {
            for b in w.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        h
    }

    /// Iterate the indices of set bits, ascending.
    pub fn iter_bits(&self) -> impl Iterator<Item = usize> + '_ {
        self.map.iter().enumerate().flat_map(|(wi, w)| {
            let w = *w;
            (0..64).filter(move |b| w & (1 << b) != 0).map(move |b| wi * 64 + b)
        })
    }
}

impl CoverageSink for Coverage {
    fn begin_core(&mut self, core: CoreId) {
        self.last = NONE;
        self.window = 0;
        self.core = core.idx() as u32;
        // Page transition chains deliberately span cores: the page is the
        // protocol object, and an interleaving shows up exactly as an
        // unexpected cross-core ordering of events on it. `tap` feeds
        // cores in a fixed order, so the chains stay deterministic.
    }

    fn event(&mut self, _core: CoreId, e: &TraceEvent) {
        let k = e.kind.ordinal();
        // 1. Per-core pair: direct index.
        if self.last != NONE {
            self.set(self.last as usize * EventKind::COUNT + k as usize);
        }
        // 2. Per-core 3-window: packed ordinals, hashed.
        self.window = (self.window << 8 | u32::from(k)) & 0x00FF_FFFF;
        if self.window > 0xFFFF {
            // Window holds three events once bits 16.. are occupied.
            self.set(hashed_bit(1, u64::from(self.window)));
        }
        // 3. Per-page pair.
        if let Some(page) = e.kind.page_key(e) {
            let prev = self.page_last.insert(page, k);
            if let Some(p) = prev {
                self.set(hashed_bit(
                    2,
                    u64::from(page) << 16 | u64::from(p) << 8 | u64::from(k),
                ));
            }
        }
        // 4. Core-pair edge.
        if let Some(peer) = e.kind.peer_core(e) {
            self.set(hashed_bit(
                3,
                u64::from(self.core) << 40 | u64::from(peer) << 8 | u64::from(k),
            ));
        }
        self.last = k;
    }
}

/// The fuzzer's accumulated view across all executions of one app: the
/// union map plus per-bit hit counts, which is what makes a transition
/// "rare" for the energy model.
pub struct GlobalCoverage {
    map: Box<[u64]>,
    /// Saturating per-bit hit counters (how many *executions* set the
    /// bit, not how many times within one execution).
    hits: Box<[u16]>,
    bits: u32,
}

impl Default for GlobalCoverage {
    fn default() -> Self {
        GlobalCoverage::new()
    }
}

/// A bit is "rare" while at most this many executions have set it.
pub const RARE_HITS: u16 = 2;

impl GlobalCoverage {
    pub fn new() -> GlobalCoverage {
        GlobalCoverage {
            map: vec![0u64; MAP_WORDS].into_boxed_slice(),
            hits: vec![0u16; MAP_BITS].into_boxed_slice(),
            bits: 0,
        }
    }

    /// Merge one run's coverage: returns `(novel, rare)` — the number of
    /// map bits this run set for the first time ever, and the number of
    /// its bits still rare (seen by at most [`RARE_HITS`] executions,
    /// this one included). `novel > 0` is the corpus admission signal;
    /// `rare` feeds the entry's energy.
    pub fn absorb(&mut self, run: &Coverage) -> (u32, u32) {
        let mut novel = 0u32;
        let mut rare = 0u32;
        for idx in run.iter_bits() {
            let (w, b) = (idx / 64, idx % 64);
            if self.map[w] & (1 << b) == 0 {
                self.map[w] |= 1 << b;
                self.bits += 1;
                novel += 1;
            }
            let h = &mut self.hits[idx];
            *h = h.saturating_add(1);
            if *h <= RARE_HITS {
                rare += 1;
            }
        }
        (novel, rare)
    }

    /// Total distinct bits ever covered.
    pub fn bits_set(&self) -> u32 {
        self.bits
    }

    /// Deterministic fingerprint of the union map (FNV-1a, like
    /// [`Coverage::fingerprint`]).
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for w in self.map.iter() {
            for b in w.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scc_hw::instr::{tap, TraceConfig, TraceRing};

    #[cfg(feature = "trace")]
    fn ring_of(kinds: &[(EventKind, u32, u32)]) -> TraceRing {
        let mut r = TraceRing::new(&TraceConfig::full(256));
        for (i, (k, a, b)) in kinds.iter().enumerate() {
            r.record(i as u64, *k, *a, *b);
        }
        r
    }

    #[cfg(feature = "trace")]
    #[test]
    fn pair_bits_are_direct_and_deterministic() {
        let r = ring_of(&[
            (EventKind::PageFault, 5, 1),
            (EventKind::OwnRequest, 5, 1),
            (EventKind::OwnAcquired, 5, 9),
        ]);
        let mut cov = Coverage::new();
        tap([(CoreId::new(0), &r)].iter().map(|(c, r)| (*c, *r)), &mut cov);
        let pf = EventKind::PageFault.ordinal() as usize;
        let oreq = EventKind::OwnRequest.ordinal() as usize;
        let oacq = EventKind::OwnAcquired.ordinal() as usize;
        let direct: Vec<usize> = cov.iter_bits().filter(|i| *i < DIRECT_BITS).collect();
        assert_eq!(
            direct,
            {
                let mut v = vec![
                    pf * EventKind::COUNT + oreq,
                    oreq * EventKind::COUNT + oacq,
                ];
                v.sort_unstable();
                v
            },
            "adjacent pairs get collision-free indices"
        );
        // Page-keyed transitions fired too (all three events are on page 5).
        assert!(cov.bits_set() > 2);

        // Identical input → identical map.
        let mut cov2 = Coverage::new();
        tap([(CoreId::new(0), &r)].iter().map(|(c, r)| (*c, *r)), &mut cov2);
        assert_eq!(cov.fingerprint(), cov2.fingerprint());
        assert_eq!(cov.bits_set(), cov2.bits_set());
    }

    #[cfg(feature = "trace")]
    #[test]
    fn transition_state_resets_between_cores() {
        let r0 = ring_of(&[(EventKind::Barrier, 0, 0)]);
        let r1 = ring_of(&[(EventKind::Cl1Invmb, 0, 0)]);
        let mut cov = Coverage::new();
        tap(
            [(CoreId::new(0), &r0), (CoreId::new(1), &r1)]
                .iter()
                .map(|(c, r)| (*c, *r)),
            &mut cov,
        );
        // No cross-core pair barrier→cl1invmb: each ring starts fresh.
        let cross =
            EventKind::Barrier.ordinal() as usize * EventKind::COUNT
                + EventKind::Cl1Invmb.ordinal() as usize;
        assert!(!cov.iter_bits().any(|i| i == cross));
    }

    #[cfg(feature = "trace")]
    #[test]
    fn page_chains_span_cores() {
        // Core 0 requests page 7, core 1 grants it: the page-keyed pair
        // (own_request → own_grant on page 7) must light up even though
        // the events sit in different rings.
        let r0 = ring_of(&[(EventKind::OwnRequest, 7, 1)]);
        let r1 = ring_of(&[(EventKind::OwnGrant, 7, 0)]);
        let mut joint = Coverage::new();
        tap(
            [(CoreId::new(0), &r0), (CoreId::new(1), &r1)]
                .iter()
                .map(|(c, r)| (*c, *r)),
            &mut joint,
        );
        let mut solo = Coverage::new();
        tap([(CoreId::new(0), &r0)].iter().map(|(c, r)| (*c, *r)), &mut solo);
        let mut solo1 = Coverage::new();
        tap([(CoreId::new(1), &r1)].iter().map(|(c, r)| (*c, *r)), &mut solo1);
        assert!(
            joint.bits_set() > solo.bits_set() + solo1.bits_set() - 1,
            "joint tap must add a cross-core page transition \
             (joint {} vs solo {} + {})",
            joint.bits_set(),
            solo.bits_set(),
            solo1.bits_set()
        );
    }

    #[test]
    fn global_absorb_counts_novel_and_rare() {
        let mut run = Coverage::new();
        run.set(3);
        run.set(100);
        let mut g = GlobalCoverage::new();
        let (novel, rare) = g.absorb(&run);
        assert_eq!((novel, rare), (2, 2));
        // Second identical run: nothing novel, still rare (hits == 2).
        let (novel, rare) = g.absorb(&run);
        assert_eq!((novel, rare), (0, 2));
        // Third: beyond RARE_HITS.
        let (novel, rare) = g.absorb(&run);
        assert_eq!((novel, rare), (0, 0));
        assert_eq!(g.bits_set(), 2);

        let mut run2 = Coverage::new();
        run2.set(3);
        run2.set(500);
        let (novel, rare) = g.absorb(&run2);
        assert_eq!(novel, 1, "only bit 500 is new");
        assert_eq!(rare, 1, "bit 3 is past rare, bit 500 fresh");
    }

    #[test]
    fn empty_rings_yield_empty_maps() {
        let r = TraceRing::new(&TraceConfig::full(16));
        let mut cov = Coverage::new();
        tap([(CoreId::new(0), &r)].iter().map(|(c, r)| (*c, *r)), &mut cov);
        #[cfg(not(feature = "trace"))]
        assert_eq!(cov.bits_set(), 0);
        #[cfg(feature = "trace")]
        assert_eq!(cov.bits_set(), 0, "nothing recorded yet");
        assert_eq!(cov.fingerprint(), Coverage::new().fingerprint());
    }
}
