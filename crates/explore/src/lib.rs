//! `svm-explore`: deterministic schedule exploration and fault injection,
//! with `svm-check` as the oracle.
//!
//! The simulator's conservative executor makes every run a pure function
//! of `(program, SccConfig)` — and since PR 5 the config carries two new
//! degrees of freedom: the election policy ([`scc_hw::SchedPolicy`]) and
//! the fault plan ([`scc_hw::FaultPlan`]). This crate turns that into a
//! systematic bug hunter:
//!
//! 1. A **registry** ([`registry`]) of applications and planted-bug
//!    fixtures, each with its expected outcome class (clean, a specific
//!    checker finding, or a deadlock).
//! 2. A **runner** ([`runner`]) that executes one scenario — app ×
//!    schedule policy × fault plan — on a fresh machine, classifies the
//!    outcome (clean / checker findings / deadlock / panic), and collects
//!    the mailbox resilience counters.
//! 3. An **explorer** ([`explore`]) that sweeps seeded-random schedules
//!    (and, for clean apps, degraded-channel fault plans) within a bounded
//!    seed budget, and **shrinks** any trigger to a minimal reproducer.
//! 4. A **replay format** ([`replay`]) — a small text file naming the
//!    app, policy, fault plan and expected outcome — that `svmexplore
//!    --replay` re-executes bit-identically.
//!
//! Everything is deterministic: a seed is a complete schedule description,
//! a replay file is a complete run description, and re-running either
//! reproduces the original outcome exactly.

pub mod corpus;
pub mod coverage;
pub mod explore;
pub mod fuzz;
pub mod mutate;
pub mod registry;
pub mod replay;
pub mod runner;

pub use corpus::{Corpus, CorpusEntry, Plan};
pub use coverage::{Coverage, GlobalCoverage};
pub use explore::{explore_app, explore_registry, AppReport, ExploreConfig, Summary};
pub use fuzz::{fuzz_app, fuzz_registry, FuzzAppReport, FuzzConfig, FuzzSummary};
pub use mutate::Rng;
pub use registry::{app, registry, AppRun, AppSpec, Expected};
pub use replay::{parse_replay, parse_replay_full, render_replay, ParsedReplay, ReplayError};
pub use runner::{run_scenario, run_scenario_traced, trace_cfg, Outcome, Scenario};

/// Was the crate built with the `trace` feature? Without it the checker
/// oracle observes empty event rings and finding-based expectations are
/// unverifiable.
pub fn trace_enabled() -> bool {
    cfg!(feature = "trace")
}
