//! The replay file format: a minimal text description of one scenario
//! plus its expected outcome, written by the shrinker and re-executed by
//! `svmexplore --replay`.
//!
//! ```text
//! # svmexplore replay
//! app lost_wakeup_barrier
//! topology 6x4x2:4
//! policy random 7
//! fault drop-ipi src=* dst=0 nth=0 count=1
//! expect deadlock
//! ```
//!
//! Lines: `app NAME` (required, must be in the registry), `topology SPEC`
//! (the mesh the scenario was recorded on), `policy baton` |
//! `policy random SEED` | `policy bands B0,B1,...` (default baton), any
//! number of `fault` lines, and `expect clean` | `expect finding SLUG` |
//! `expect deadlock` (required). `#` starts a comment. Because a scenario
//! fully determines a run *on a given machine shape*, replaying the file
//! reproduces the original outcome bit-identically — on a different
//! topology all bets are off (core ids shift, fault filters miss, the
//! election order changes), which is why [`ParsedReplay::verify_topology`]
//! turns that silent divergence into a typed error.

use crate::registry::{app, Expected};
use crate::runner::Scenario;
use scc_hw::{Fault, FaultPlan, SchedPolicy, Topology};

fn opt(v: Option<usize>) -> String {
    v.map_or_else(|| "*".into(), |x| x.to_string())
}

fn fault_line(f: &Fault) -> String {
    match *f {
        Fault::DropIpi {
            src,
            dst,
            nth,
            count,
        } => format!(
            "fault drop-ipi src={} dst={} nth={nth} count={count}",
            opt(src),
            opt(dst)
        ),
        Fault::DelayIpi {
            src,
            dst,
            nth,
            count,
            cycles,
        } => format!(
            "fault delay-ipi src={} dst={} nth={nth} count={count} cycles={cycles}",
            opt(src),
            opt(dst)
        ),
        Fault::DelayMailSlot {
            src,
            dst,
            nth,
            count,
            cycles,
        } => format!(
            "fault delay-mail src={} dst={} nth={nth} count={count} cycles={cycles}",
            opt(src),
            opt(dst)
        ),
        Fault::StallTas {
            reg,
            nth,
            count,
            cycles,
        } => format!(
            "fault stall-tas reg={} nth={nth} count={count} cycles={cycles}",
            opt(reg)
        ),
        Fault::FreezeCore { core, at, cycles } => {
            format!("fault freeze-core core={core} at={at} cycles={cycles}")
        }
    }
}

/// Why a replay file cannot be (safely) replayed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReplayError {
    /// The file didn't parse (message carries line and reason).
    Parse(String),
    /// The file records a different machine shape than `SCC_TOPOLOGY`
    /// currently selects. Replaying anyway would not reproduce the run —
    /// core ids shift, fault filters miss, elections diverge — so this is
    /// an error, not a warning.
    TopologyMismatch {
        recorded: Topology,
        active: Topology,
    },
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::Parse(m) => write!(f, "{m}"),
            ReplayError::TopologyMismatch { recorded, active } => write!(
                f,
                "replay was recorded on topology {recorded} but the active \
                 topology is {active}; set SCC_TOPOLOGY={recorded} to replay it"
            ),
        }
    }
}

impl std::error::Error for ReplayError {}

/// A fully parsed replay file: the runnable scenario, the expected
/// outcome class, and the machine shape the file was recorded on (absent
/// in files written before topology recording).
pub struct ParsedReplay {
    pub scenario: Scenario,
    pub expected: Expected,
    pub topology: Option<Topology>,
}

impl ParsedReplay {
    /// Check the recorded topology against the one `SCC_TOPOLOGY`
    /// currently selects (what the replayed run will actually use).
    /// Files without a topology line pass vacuously — they predate
    /// recording and there is nothing to check.
    pub fn verify_topology(&self) -> Result<(), ReplayError> {
        self.verify_topology_against(Topology::from_env_or_scc48())
    }

    /// [`ParsedReplay::verify_topology`] against an explicit shape.
    pub fn verify_topology_against(&self, active: Topology) -> Result<(), ReplayError> {
        match self.topology {
            Some(recorded) if recorded != active => {
                Err(ReplayError::TopologyMismatch { recorded, active })
            }
            _ => Ok(()),
        }
    }
}

/// Render a scenario + expectation as a replay file. Records the active
/// topology so a later replay on a different mesh fails loudly instead of
/// silently diverging.
pub fn render_replay(sc: &Scenario, expected: &Expected) -> String {
    let mut out = String::from("# svmexplore replay\n");
    out.push_str(&format!("app {}\n", sc.app.name));
    out.push_str(&format!("topology {}\n", Topology::from_env_or_scc48()));
    match &sc.policy {
        SchedPolicy::Baton => out.push_str("policy baton\n"),
        SchedPolicy::SeededRandom { seed } => {
            out.push_str(&format!("policy random {seed}\n"));
        }
        SchedPolicy::PriorityBands { bands } => {
            let bs: Vec<String> = bands.iter().map(|b| b.to_string()).collect();
            out.push_str(&format!("policy bands {}\n", bs.join(",")));
        }
    }
    for f in &sc.faults.faults {
        out.push_str(&fault_line(f));
        out.push('\n');
    }
    match expected {
        Expected::Clean => out.push_str("expect clean\n"),
        Expected::Finding(slug) => out.push_str(&format!("expect finding {slug}\n")),
        Expected::Deadlock => out.push_str("expect deadlock\n"),
    }
    out
}

struct KvLine<'a> {
    what: &'a str,
    kvs: Vec<(&'a str, &'a str)>,
}

fn parse_kv_line(rest: &str) -> Result<KvLine<'_>, String> {
    let mut it = rest.split_whitespace();
    let what = it.next().ok_or("empty fault line")?;
    let mut kvs = Vec::new();
    for tok in it {
        let (k, v) = tok
            .split_once('=')
            .ok_or_else(|| format!("expected key=value, got '{tok}'"))?;
        kvs.push((k, v));
    }
    Ok(KvLine { what, kvs })
}

fn get<'a>(kvs: &[(&'a str, &'a str)], key: &str) -> Result<&'a str, String> {
    kvs.iter()
        .find(|(k, _)| *k == key)
        .map(|(_, v)| *v)
        .ok_or_else(|| format!("missing field '{key}'"))
}

fn num<T: std::str::FromStr>(kvs: &[(&str, &str)], key: &str) -> Result<T, String> {
    let v = get(kvs, key)?;
    v.parse().map_err(|_| format!("bad number '{v}' for '{key}'"))
}

fn core_filter(kvs: &[(&str, &str)], key: &str) -> Result<Option<usize>, String> {
    let v = get(kvs, key)?;
    if v == "*" {
        return Ok(None);
    }
    v.parse()
        .map(Some)
        .map_err(|_| format!("bad core '{v}' for '{key}'"))
}

fn parse_fault(rest: &str) -> Result<Fault, String> {
    let l = parse_kv_line(rest)?;
    let kvs = &l.kvs;
    match l.what {
        "drop-ipi" => Ok(Fault::DropIpi {
            src: core_filter(kvs, "src")?,
            dst: core_filter(kvs, "dst")?,
            nth: num(kvs, "nth")?,
            count: num(kvs, "count")?,
        }),
        "delay-ipi" => Ok(Fault::DelayIpi {
            src: core_filter(kvs, "src")?,
            dst: core_filter(kvs, "dst")?,
            nth: num(kvs, "nth")?,
            count: num(kvs, "count")?,
            cycles: num(kvs, "cycles")?,
        }),
        "delay-mail" => Ok(Fault::DelayMailSlot {
            src: core_filter(kvs, "src")?,
            dst: core_filter(kvs, "dst")?,
            nth: num(kvs, "nth")?,
            count: num(kvs, "count")?,
            cycles: num(kvs, "cycles")?,
        }),
        "stall-tas" => Ok(Fault::StallTas {
            reg: core_filter(kvs, "reg")?,
            nth: num(kvs, "nth")?,
            count: num(kvs, "count")?,
            cycles: num(kvs, "cycles")?,
        }),
        "freeze-core" => Ok(Fault::FreezeCore {
            core: num(kvs, "core")?,
            at: num(kvs, "at")?,
            cycles: num(kvs, "cycles")?,
        }),
        other => Err(format!("unknown fault kind '{other}'")),
    }
}

/// Parse a replay file back into a runnable scenario + expectation.
/// Compatibility wrapper over [`parse_replay_full`] that drops the
/// topology record — callers that replay must use the full form and
/// [`ParsedReplay::verify_topology`].
pub fn parse_replay(text: &str) -> Result<(Scenario, Expected), String> {
    parse_replay_full(text)
        .map(|p| (p.scenario, p.expected))
        .map_err(|e| e.to_string())
}

/// Parse a replay file, including its recorded topology.
pub fn parse_replay_full(text: &str) -> Result<ParsedReplay, ReplayError> {
    parse_replay_inner(text).map_err(ReplayError::Parse)
}

fn parse_replay_inner(text: &str) -> Result<ParsedReplay, String> {
    let mut name: Option<&str> = None;
    let mut topology: Option<Topology> = None;
    let mut policy = SchedPolicy::Baton;
    let mut faults = Vec::new();
    let mut expected: Option<Expected> = None;
    for (i, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let err = |m: String| format!("line {}: {m}", i + 1);
        let (key, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
        let rest = rest.trim();
        match key {
            "app" => name = Some(rest),
            "topology" => {
                topology = Some(
                    Topology::from_spec(rest)
                        .map_err(|e| err(format!("bad topology: {e}")))?,
                );
            }
            "policy" => {
                let (kind, arg) = rest.split_once(char::is_whitespace).unwrap_or((rest, ""));
                policy = match kind {
                    "baton" => SchedPolicy::Baton,
                    "random" => SchedPolicy::SeededRandom {
                        seed: arg
                            .trim()
                            .parse()
                            .map_err(|_| err(format!("bad seed '{arg}'")))?,
                    },
                    "bands" => {
                        let mut bands = Vec::new();
                        for b in arg.trim().split(',') {
                            bands.push(
                                b.parse().map_err(|_| err(format!("bad band '{b}'")))?,
                            );
                        }
                        SchedPolicy::PriorityBands { bands }
                    }
                    other => return Err(err(format!("unknown policy '{other}'"))),
                };
            }
            "fault" => faults.push(parse_fault(rest).map_err(err)?),
            "expect" => {
                let (kind, arg) = rest.split_once(char::is_whitespace).unwrap_or((rest, ""));
                expected = Some(match kind {
                    "clean" => Expected::Clean,
                    "deadlock" => Expected::Deadlock,
                    "finding" => {
                        let slug = arg.trim();
                        if slug.is_empty() {
                            return Err(err("'expect finding' needs a slug".into()));
                        }
                        // `Expected` carries 'static slugs; replay files
                        // are parsed a handful of times per process, so
                        // leaking the few bytes is fine.
                        Expected::Finding(Box::leak(slug.to_string().into_boxed_str()))
                    }
                    other => return Err(err(format!("unknown expectation '{other}'"))),
                });
            }
            other => return Err(err(format!("unknown directive '{other}'"))),
        }
    }
    let name = name.ok_or("replay file has no 'app' line")?;
    let spec = app(name).ok_or_else(|| format!("app '{name}' is not in the registry"))?;
    let expected = expected.ok_or("replay file has no 'expect' line")?;
    Ok(ParsedReplay {
        scenario: Scenario {
            app: spec,
            policy,
            faults: FaultPlan { faults },
        },
        expected,
        topology,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use scc_hw::Fault;

    #[test]
    fn render_parse_round_trip() {
        let spec = app("stale_read").expect("registry app");
        let sc = Scenario {
            app: spec,
            policy: SchedPolicy::SeededRandom { seed: 99 },
            faults: FaultPlan {
                faults: vec![
                    Fault::DropIpi {
                        src: None,
                        dst: Some(1),
                        nth: 2,
                        count: 3,
                    },
                    Fault::DelayMailSlot {
                        src: Some(0),
                        dst: Some(1),
                        nth: 0,
                        count: 1,
                        cycles: 50_000,
                    },
                    Fault::FreezeCore {
                        core: 1,
                        at: 1_000,
                        cycles: 40_000,
                    },
                ],
            },
        };
        let text = render_replay(&sc, &Expected::Finding("stale-read"));
        let (back, exp) = parse_replay(&text).expect("round trip parses");
        assert_eq!(back.app.name, "stale_read");
        assert_eq!(back.policy, sc.policy);
        assert_eq!(back.faults, sc.faults);
        assert_eq!(exp, Expected::Finding("stale-read"));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_replay("app nosuchapp\nexpect clean\n").is_err());
        assert!(parse_replay("expect clean\n").is_err());
        assert!(parse_replay("app stale_read\n").is_err());
        assert!(parse_replay("app stale_read\npolicy random notanum\nexpect clean\n").is_err());
        assert!(parse_replay("app stale_read\nfault warp-core core=1\nexpect clean\n").is_err());
    }

    #[test]
    fn topology_is_recorded_and_verified() {
        let spec = app("stale_read").expect("registry app");
        let sc = Scenario {
            app: spec,
            policy: SchedPolicy::Baton,
            faults: FaultPlan::default(),
        };
        let text = render_replay(&sc, &Expected::Clean);
        let parsed = parse_replay_full(&text).expect("parses");
        let recorded = parsed.topology.expect("render records the topology");

        // Same shape: ok. Different shape: typed mismatch, both ways.
        assert_eq!(parsed.verify_topology_against(recorded), Ok(()));
        let other = if recorded == Topology::scc48() {
            Topology::mesh8x8()
        } else {
            Topology::scc48()
        };
        match parsed.verify_topology_against(other) {
            Err(ReplayError::TopologyMismatch { recorded: r, active }) => {
                assert_eq!(r, recorded);
                assert_eq!(active, other);
            }
            o => panic!("expected TopologyMismatch, got {o:?}"),
        }
        // The message tells the user how to fix it.
        let msg = ReplayError::TopologyMismatch {
            recorded,
            active: other,
        }
        .to_string();
        assert!(msg.contains("SCC_TOPOLOGY"), "actionable message: {msg}");
    }

    #[test]
    fn files_without_topology_still_verify() {
        let text = "app stale_read\npolicy baton\nexpect deadlock\n";
        let parsed = parse_replay_full(text).expect("parses");
        assert_eq!(parsed.topology, None);
        assert_eq!(parsed.verify_topology_against(Topology::mesh16x16()), Ok(()));
    }

    #[test]
    fn bad_topology_line_is_a_parse_error() {
        let text = "app stale_read\ntopology 6x4x2\nexpect clean\n";
        match parse_replay_full(text) {
            Err(ReplayError::Parse(m)) => assert!(m.contains("topology"), "{m}"),
            o => panic!("expected parse error, got {:?}", o.is_ok()),
        }
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let text = "# header\n\napp stale_read # trailing\npolicy baton\nexpect deadlock\n";
        let (sc, exp) = parse_replay(text).expect("parses");
        assert_eq!(sc.app.name, "stale_read");
        assert_eq!(sc.policy, SchedPolicy::Baton);
        assert!(sc.faults.is_empty());
        assert_eq!(exp, Expected::Deadlock);
    }
}
