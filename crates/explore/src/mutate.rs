//! The fuzzer's mutation engine: deterministic, bounded perturbations of
//! a [`Plan`] (schedule policy × fault plan).
//!
//! Two constraints shape the operators:
//!
//! * **Determinism** — the only randomness is the [`Rng`] passed in (a
//!   SplitMix64 stream), so a fuzz campaign is a pure function of its
//!   master seed; the determinism suite runs two processes and demands
//!   identical corpora.
//! * **Bounded magnitudes** — fault plans must *perturb* a clean app, not
//!   destroy it. An unbounded `DropIpi` count exhausts the mailbox retry
//!   budget and panics a correctly-synchronized program, which would read
//!   as a false finding. Drops stay small, delays stay well under the
//!   retry horizon, and plans are capped at [`MAX_FAULTS`] entries.

use crate::corpus::Plan;
use scc_hw::{Fault, SchedPolicy};

/// SplitMix64 PRNG: tiny, deterministic, splittable by construction —
/// `Rng::new(seed ^ tag)` derives an independent stream per app or per
/// worker process.
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    pub fn new(seed: u64) -> Rng {
        Rng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `0..n` (n > 0). Modulo bias is irrelevant at fuzzing's
    /// `n` ≪ 2⁶⁴.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// True with probability `num`/`den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// Pick one element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, s: &'a [T]) -> &'a T {
        &s[self.below(s.len() as u64) as usize]
    }
}

/// Maximum fault entries per plan. Deep stacks of faults mostly saturate
/// the recovery paths instead of finding new interleavings.
pub const MAX_FAULTS: usize = 4;

/// Upper bound on injected delay/stall cycles. The mailbox send path
/// retries ~10⁴ times before declaring a hang; delays must stay far below
/// the point where a clean app's progress stalls past that budget.
const MAX_DELAY_CYCLES: u64 = 400_000;

/// Upper bound on consecutive dropped IPIs — the resilient mailbox
/// recovers from a few dropped doorbells by polling, but a long streak
/// on a small app turns into a spurious hang.
const MAX_DROP_COUNT: u32 = 3;

fn clamp_cycles(c: u64) -> u64 {
    c.clamp(1_000, MAX_DELAY_CYCLES)
}

/// `Some(core)` with probability 2/3, else `None` (= any core).
fn core_filter(rng: &mut Rng, ncores: usize) -> Option<usize> {
    if rng.chance(2, 3) {
        Some(rng.below(ncores as u64) as usize)
    } else {
        None
    }
}

/// Generate one random fault with bounded magnitudes.
fn random_fault(rng: &mut Rng, ncores: usize) -> Fault {
    match rng.below(5) {
        0 => Fault::DropIpi {
            src: core_filter(rng, ncores),
            dst: core_filter(rng, ncores),
            nth: rng.below(8) as u32,
            count: 1 + rng.below(u64::from(MAX_DROP_COUNT)) as u32,
        },
        1 => Fault::DelayIpi {
            src: core_filter(rng, ncores),
            dst: core_filter(rng, ncores),
            nth: rng.below(8) as u32,
            count: 1 + rng.below(2) as u32,
            cycles: clamp_cycles(1_000 << rng.below(9)),
        },
        2 => Fault::DelayMailSlot {
            src: core_filter(rng, ncores),
            dst: core_filter(rng, ncores),
            nth: rng.below(8) as u32,
            count: 1 + rng.below(2) as u32,
            cycles: clamp_cycles(1_000 << rng.below(9)),
        },
        3 => Fault::StallTas {
            reg: core_filter(rng, ncores),
            nth: rng.below(8) as u32,
            count: 1 + rng.below(2) as u32,
            cycles: clamp_cycles(1_000 << rng.below(9)),
        },
        _ => Fault::FreezeCore {
            core: rng.below(ncores as u64) as usize,
            at: rng.below(200_000),
            cycles: clamp_cycles(10_000 << rng.below(6)),
        },
    }
}

/// Shift a fault's `nth` window start by ±Δ and/or widen its `count`.
fn perturb_window(rng: &mut Rng, f: &mut Fault) {
    let delta = rng.below(4) as u32;
    let widen = rng.chance(1, 3);
    let mut shift = |nth: &mut u32| {
        if rng.chance(1, 2) {
            *nth = nth.saturating_add(delta);
        } else {
            *nth = nth.saturating_sub(delta);
        }
    };
    match f {
        Fault::DropIpi { nth, count, .. } => {
            shift(nth);
            if widen {
                *count = (*count + 1).min(MAX_DROP_COUNT);
            }
        }
        Fault::DelayIpi { nth, count, .. }
        | Fault::DelayMailSlot { nth, count, .. }
        | Fault::StallTas { nth, count, .. } => {
            shift(nth);
            if widen {
                *count = (*count + 1).min(4);
            }
        }
        Fault::FreezeCore { at, .. } => {
            // The freeze window is positioned in cycles, not event counts.
            let d = 10_000u64 * u64::from(delta);
            *at = if rng.chance(1, 2) {
                at.saturating_add(d)
            } else {
                at.saturating_sub(d)
            };
        }
    }
}

/// Scale a fault's delay cycles by ×2 or ÷2 (clamped).
fn scale_cycles(rng: &mut Rng, f: &mut Fault) {
    let up = rng.chance(1, 2);
    let scale = |c: &mut u64| *c = clamp_cycles(if up { *c * 2 } else { *c / 2 });
    match f {
        Fault::DelayIpi { cycles, .. }
        | Fault::DelayMailSlot { cycles, .. }
        | Fault::StallTas { cycles, .. }
        | Fault::FreezeCore { cycles, .. } => scale(cycles),
        Fault::DropIpi { .. } => {}
    }
}

/// A pure schedule probe: a fresh `SeededRandom` election order and no
/// faults. The fuzz loop runs a handful of these before the feedback
/// loop takes over — while the corpus holds nothing but the baseline
/// there is no coverage gradient to exploit, and a blind schedule draw
/// is the cheapest way to seed one (it is exactly what the blind
/// seed-sweep baseline does, so the fuzzer never starts slower).
pub fn schedule_probe(rng: &mut Rng) -> Plan {
    Plan {
        policy: SchedPolicy::SeededRandom {
            seed: rng.next_u64() >> 16,
        },
        faults: Default::default(),
    }
}

/// Mutate `base` into a new candidate plan. `peer` (another corpus entry,
/// when the corpus has one) enables the splice/crossover operators.
/// `ncores` bounds core-targeting faults and the band vector.
pub fn mutate(rng: &mut Rng, base: &Plan, peer: Option<&Plan>, ncores: usize) -> Plan {
    let mut plan = base.clone();
    // Apply 1–2 operators per candidate: single steps keep the coverage
    // gradient readable; an occasional double step jumps further.
    let steps = 1 + rng.below(2);
    for _ in 0..steps {
        match rng.below(10) {
            // — schedule operators —
            0 => {
                // Fresh seed: an entirely new election sequence.
                plan.policy = SchedPolicy::SeededRandom {
                    seed: rng.next_u64() >> 16,
                };
            }
            1 => {
                // Tweak: a nearby seed diverges late, probing the
                // neighborhood of a schedule that earned coverage.
                plan.policy = match plan.policy {
                    SchedPolicy::SeededRandom { seed } => SchedPolicy::SeededRandom {
                        seed: seed ^ (1 << rng.below(16)),
                    },
                    _ => SchedPolicy::SeededRandom {
                        seed: 1 + rng.below(1 << 16),
                    },
                };
            }
            2 => {
                // Priority bands: structured starvation instead of noise.
                let bands: Vec<u8> =
                    (0..ncores).map(|_| rng.below(3) as u8).collect();
                plan.policy = SchedPolicy::PriorityBands { bands };
            }
            3 => {
                // Bump one band entry (or fall back to fresh bands).
                plan.policy = match plan.policy {
                    SchedPolicy::PriorityBands { mut bands } => {
                        if !bands.is_empty() {
                            let i = rng.below(bands.len() as u64) as usize;
                            bands[i] = (bands[i] + 1) % 3;
                        }
                        SchedPolicy::PriorityBands { bands }
                    }
                    _ => SchedPolicy::PriorityBands {
                        bands: (0..ncores).map(|_| rng.below(3) as u8).collect(),
                    },
                };
            }
            // — fault operators —
            4 | 5 => {
                if plan.faults.faults.len() < MAX_FAULTS {
                    plan.faults.faults.push(random_fault(rng, ncores));
                }
            }
            6 => {
                if !plan.faults.faults.is_empty() {
                    let i = rng.below(plan.faults.faults.len() as u64) as usize;
                    plan.faults.faults.remove(i);
                }
            }
            7 => {
                if !plan.faults.faults.is_empty() {
                    let i = rng.below(plan.faults.faults.len() as u64) as usize;
                    perturb_window(rng, &mut plan.faults.faults[i]);
                }
            }
            8 => {
                if !plan.faults.faults.is_empty() {
                    let i = rng.below(plan.faults.faults.len() as u64) as usize;
                    scale_cycles(rng, &mut plan.faults.faults[i]);
                }
            }
            // — corpus crossover —
            _ => {
                if let Some(p) = peer {
                    if rng.chance(1, 2) && !p.faults.faults.is_empty() {
                        // Splice: graft one of the peer's faults in.
                        let f = rng.pick(&p.faults.faults).clone();
                        if plan.faults.faults.len() < MAX_FAULTS {
                            plan.faults.faults.push(f);
                        }
                    } else {
                        // Crossover: this plan's faults under the peer's
                        // schedule (or vice-versa half the time).
                        plan.policy = p.policy.clone();
                    }
                }
            }
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use scc_hw::FaultPlan;

    fn baseline() -> Plan {
        Plan {
            policy: SchedPolicy::Baton,
            faults: FaultPlan::default(),
        }
    }

    #[test]
    fn rng_is_deterministic_and_spreads() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs[0], xs[1]);
        let mut c = Rng::new(43);
        assert_ne!(xs[0], c.next_u64(), "different seeds diverge");
    }

    #[test]
    fn mutation_is_deterministic() {
        let base = baseline();
        let mut r1 = Rng::new(7);
        let mut r2 = Rng::new(7);
        for _ in 0..50 {
            let a = mutate(&mut r1, &base, None, 4);
            let b = mutate(&mut r2, &base, None, 4);
            assert_eq!(a.policy, b.policy);
            assert_eq!(a.faults, b.faults);
        }
    }

    #[test]
    fn magnitudes_stay_bounded() {
        let mut rng = Rng::new(1);
        let mut plan = baseline();
        for _ in 0..2_000 {
            plan = mutate(&mut rng, &plan, Some(&plan.clone()), 4);
            assert!(plan.faults.faults.len() <= MAX_FAULTS);
            for f in &plan.faults.faults {
                match *f {
                    Fault::DropIpi { count, .. } => {
                        assert!(count <= MAX_DROP_COUNT, "drop count {count}")
                    }
                    Fault::DelayIpi { cycles, .. }
                    | Fault::DelayMailSlot { cycles, .. }
                    | Fault::StallTas { cycles, .. }
                    | Fault::FreezeCore { cycles, .. } => {
                        assert!(cycles <= MAX_DELAY_CYCLES, "cycles {cycles}")
                    }
                }
            }
        }
    }

    #[test]
    fn mutation_actually_moves() {
        // Over a handful of candidates the plan must leave the baseline —
        // a fuzzer whose mutator is a no-op finds nothing.
        let base = baseline();
        let mut rng = Rng::new(3);
        let moved = (0..10)
            .map(|_| mutate(&mut rng, &base, None, 4))
            .any(|p| p.policy != base.policy || p.faults != base.faults);
        assert!(moved);
    }
}
