//! The exploration loop: sweep schedules (and fault plans) per app,
//! shrink any trigger to a minimal reproducer, and write a replay file
//! that re-triggers it deterministically.

use crate::registry::{registry, AppSpec, Expected};
use crate::replay::{parse_replay, render_replay};
use crate::runner::{run_scenario, Outcome, Scenario};
use crate::trace_enabled;
use scc_hw::{Fault, FaultPlan, SchedPolicy};
use std::path::{Path, PathBuf};

/// Exploration parameters.
#[derive(Clone, Debug)]
pub struct ExploreConfig {
    /// Seeds `1..=seed_budget` are tried for schedule-sensitive bugs.
    /// The registry's planted bugs are designed to be found well within
    /// the default budget of 24 (each needs one specific election to
    /// deviate, a per-seed probability of roughly 1/2).
    pub seed_budget: u64,
    /// Seeds swept on *clean* apps (they must stay clean under every
    /// schedule; a small sample bounds the runtime).
    pub clean_seeds: u64,
    /// Where shrunk replay files are written.
    pub out_dir: PathBuf,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            seed_budget: 24,
            clean_seeds: 4,
            out_dir: PathBuf::from("results"),
        }
    }
}

/// The per-app verdict of one exploration.
#[derive(Clone, Debug)]
pub struct AppReport {
    pub name: &'static str,
    pub expected: Expected,
    /// The app behaved exactly as the registry promises.
    pub ok: bool,
    /// Expectation unverifiable in this build (finding-based without the
    /// `trace` feature); not counted as a failure.
    pub skipped: bool,
    pub detail: String,
    /// Scenario runs spent on this app (baseline + sweep + shrink +
    /// replay verification).
    pub runs: u64,
    /// The seed that first triggered a schedule-sensitive bug.
    pub trigger_seed: Option<u64>,
    /// Path of the shrunk replay file, for triage with `--replay` and
    /// `svmcheck`.
    pub replay_path: Option<String>,
    /// Summed `mbx.retries` from the dropped-doorbell robustness run
    /// (IPI-heavy clean apps only).
    pub mbx_retries: u64,
}

impl AppReport {
    fn new(spec: &AppSpec) -> AppReport {
        AppReport {
            name: spec.name,
            expected: spec.expected.clone(),
            ok: false,
            skipped: false,
            detail: String::new(),
            runs: 0,
            trigger_seed: None,
            replay_path: None,
            mbx_retries: 0,
        }
    }
}

/// Result of exploring the whole registry.
#[derive(Clone, Debug)]
pub struct Summary {
    pub seed_budget: u64,
    pub apps: Vec<AppReport>,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl Summary {
    /// Every app behaved as registered (skipped apps don't fail the run).
    pub fn ok(&self) -> bool {
        self.apps.iter().all(|a| a.ok || a.skipped)
    }

    /// Hand-rolled JSON (the workspace is offline and carries no
    /// serde_json).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"seed_budget\": {},\n  \"trace\": {},\n  \"ok\": {},\n  \"apps\": [",
            self.seed_budget,
            trace_enabled(),
            self.ok()
        ));
        for (i, a) in self.apps.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!(
                "\"name\": \"{}\", \"expected\": \"{}\", \"ok\": {}, \"skipped\": {}, ",
                a.name,
                json_escape(&a.expected.describe()),
                a.ok,
                a.skipped
            ));
            out.push_str(&format!("\"runs\": {}, ", a.runs));
            match a.trigger_seed {
                Some(s) => out.push_str(&format!("\"trigger_seed\": {s}, ")),
                None => out.push_str("\"trigger_seed\": null, "),
            }
            match &a.replay_path {
                Some(p) => out.push_str(&format!("\"replay\": \"{}\", ", json_escape(p))),
                None => out.push_str("\"replay\": null, "),
            }
            out.push_str(&format!(
                "\"mbx_retries\": {}, \"detail\": \"{}\"}}",
                a.mbx_retries,
                json_escape(&a.detail)
            ));
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Human-readable one-line-per-app summary.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for a in &self.apps {
            let status = if a.skipped {
                "SKIP"
            } else if a.ok {
                "ok"
            } else {
                "FAIL"
            };
            out.push_str(&format!(
                "{status:>4}  {:<24} expect {:<28} {}\n",
                a.name,
                a.expected.describe(),
                a.detail
            ));
        }
        out
    }
}

/// Shrink a triggering scenario to a minimal reproducer: drop fault plan
/// entries one at a time to a fixpoint (ddmin-lite — the plans the
/// explorer builds are small, so the quadratic loop is cheap), then try
/// downgrading the schedule policy to the baton. Every candidate is
/// re-run; a reduction is kept only if the outcome still lands in the
/// expected class. Returns the shrunk scenario and the number of runs
/// spent.
pub fn shrink(sc: &Scenario, expected: &Expected) -> (Scenario, u64) {
    let mut cur = sc.clone();
    let mut runs = 0u64;
    loop {
        let mut improved = false;
        let mut i = 0;
        while i < cur.faults.faults.len() {
            let mut cand = cur.clone();
            cand.faults.faults.remove(i);
            runs += 1;
            if run_scenario(&cand).satisfies(expected) {
                cur = cand;
                improved = true;
            } else {
                i += 1;
            }
        }
        if !improved {
            break;
        }
    }
    if cur.policy != SchedPolicy::Baton {
        let mut cand = cur.clone();
        cand.policy = SchedPolicy::Baton;
        runs += 1;
        if run_scenario(&cand).satisfies(expected) {
            cur = cand;
        }
    }
    (cur, runs)
}

/// Write the replay file for a shrunk scenario and verify it re-triggers:
/// parse the file back and run it twice — both runs must land in the
/// expected class (determinism makes two a proof, not a sample).
fn write_and_verify_replay(
    sc: &Scenario,
    expected: &Expected,
    out_dir: &Path,
    report: &mut AppReport,
) -> Result<(), String> {
    std::fs::create_dir_all(out_dir)
        .map_err(|e| format!("cannot create {}: {e}", out_dir.display()))?;
    let path = out_dir.join(format!("repro_{}.txt", sc.app.name));
    std::fs::write(&path, render_replay(sc, expected))
        .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read back {}: {e}", path.display()))?;
    let (parsed, exp) = parse_replay(&text)?;
    for round in 0..2 {
        report.runs += 1;
        let o = run_scenario(&parsed);
        if !o.satisfies(&exp) {
            return Err(format!(
                "replay round {} did not re-trigger: {}",
                round + 1,
                o.brief()
            ));
        }
    }
    report.replay_path = Some(path.display().to_string());
    Ok(())
}

/// The dropped-doorbell robustness plan: silently drop the first six IPIs
/// anywhere on the mesh. A resilient mailbox degrades to slow polling and
/// recovers; the pre-resilience system would hang.
fn dropped_ipi_plan() -> FaultPlan {
    FaultPlan {
        faults: vec![Fault::DropIpi {
            src: None,
            dst: None,
            nth: 0,
            count: 6,
        }],
    }
}

/// Explore one app per its registry contract. See [`ExploreConfig`] for
/// the budgets.
pub fn explore_app(spec: &'static AppSpec, cfg: &ExploreConfig) -> AppReport {
    let mut report = AppReport::new(spec);
    let expected = spec.expected.clone();

    if matches!(expected, Expected::Finding(_)) && !trace_enabled() {
        report.skipped = true;
        report.detail = "finding-based expectation needs the 'trace' feature".into();
        return report;
    }

    let base = Scenario::baseline(spec);
    report.runs += 1;
    let o0 = run_scenario(&base);

    if spec.always_triggers {
        // Checker fixture: must fire under the default schedule already.
        if !o0.satisfies(&expected) {
            report.detail = format!("baton run: {}", o0.brief());
            return report;
        }
        match write_and_verify_replay(&base, &expected, &cfg.out_dir, &mut report) {
            Ok(()) => {
                report.ok = true;
                report.detail = format!("baton run: {}", o0.brief());
            }
            Err(e) => report.detail = e,
        }
        return report;
    }

    if expected == Expected::Clean {
        if !o0.satisfies(&expected) {
            report.detail = format!("baton run not clean: {}", o0.brief());
            return report;
        }
        // Correctly synchronized apps must stay clean under any
        // conservative schedule; sample a few seeds.
        for seed in 1..=cfg.clean_seeds {
            let sc = Scenario {
                app: spec,
                policy: SchedPolicy::SeededRandom { seed },
                faults: FaultPlan::default(),
            };
            report.runs += 1;
            let o = run_scenario(&sc);
            if !o.satisfies(&expected) {
                report.detail = format!("seed {seed}: {}", o.brief());
                return report;
            }
        }
        // Degraded-channel robustness: dropped doorbells must degrade to
        // slow polls (mbx.retries > 0), not hang the system.
        if spec.ipi_heavy {
            let sc = Scenario {
                app: spec,
                policy: SchedPolicy::Baton,
                faults: dropped_ipi_plan(),
            };
            report.runs += 1;
            match run_scenario(&sc) {
                Outcome::Clean {
                    mbx_retries,
                    mbx_timeouts: _,
                } if mbx_retries > 0 => report.mbx_retries = mbx_retries,
                Outcome::Clean { mbx_retries, .. } => {
                    report.detail = format!(
                        "dropped-IPI plan completed but no retries fired (retries {mbx_retries})"
                    );
                    return report;
                }
                o => {
                    report.detail = format!("dropped-IPI plan: {}", o.brief());
                    return report;
                }
            }
        }
        report.ok = true;
        report.detail = if spec.ipi_heavy {
            format!(
                "clean over baton + {} seeds; dropped-IPI recovered with {} retries",
                cfg.clean_seeds, report.mbx_retries
            )
        } else {
            format!("clean over baton + {} seeds", cfg.clean_seeds)
        };
        return report;
    }

    // Schedule-sensitive planted bug: must be clean under the baton and
    // found within the seed budget.
    if !matches!(o0, Outcome::Clean { .. }) {
        report.detail = format!("expected clean baton run, got {}", o0.brief());
        return report;
    }
    for seed in 1..=cfg.seed_budget {
        let sc = Scenario {
            app: spec,
            policy: SchedPolicy::SeededRandom { seed },
            faults: FaultPlan::default(),
        };
        report.runs += 1;
        let o = run_scenario(&sc);
        if o.satisfies(&expected) {
            report.trigger_seed = Some(seed);
            let (shrunk, shrink_runs) = shrink(&sc, &expected);
            report.runs += shrink_runs;
            match write_and_verify_replay(&shrunk, &expected, &cfg.out_dir, &mut report) {
                Ok(()) => {
                    report.ok = true;
                    report.detail =
                        format!("triggered at seed {seed}, replay re-triggers ({})", o.brief());
                }
                Err(e) => report.detail = e,
            }
            return report;
        }
    }
    report.detail = format!("not triggered within {} seeds", cfg.seed_budget);
    report
}

/// Explore every registered app.
pub fn explore_registry(cfg: &ExploreConfig) -> Summary {
    Summary {
        seed_budget: cfg.seed_budget,
        apps: registry().iter().map(|s| explore_app(s, cfg)).collect(),
    }
}
