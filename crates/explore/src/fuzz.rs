//! `svm-fuzz`: the coverage-guided concurrency fuzzing loop.
//!
//! Where the explorer ([`crate::explore`]) sweeps schedule seeds
//! *blindly* — seed k tells it nothing about what seed k+1 should be —
//! the fuzzer closes the loop: every execution's protocol-event-transition
//! [`Coverage`] feeds a per-app [`GlobalCoverage`] map, plans that light
//! up new transitions enter the [`Corpus`], and the next candidate is a
//! bounded [`mutate`] of an energy-weighted corpus pick. The search walks
//! the interleaving space along its observable structure instead of
//! sampling it uniformly.
//!
//! The oracle is unchanged: `svm-check` over the same rings (plus the
//! executor's deadlock detector), so a fuzzer "find" is exactly an
//! explorer "find" — and is shrunk by the same [`crate::explore::shrink`]
//! and written as the same replay file format.
//!
//! Everything is a pure function of `(registry, master seed, corpus
//! seed dir)`: two processes given the same inputs produce bit-identical
//! coverage maps, corpora and findings (the determinism suite holds the
//! shipped binary to this).

use crate::corpus::{Corpus, Plan};
use crate::coverage::{Coverage, GlobalCoverage};
use crate::explore::shrink;
use crate::mutate::{mutate, Rng};
use crate::registry::{registry, AppSpec, Expected};
use crate::replay::{parse_replay_full, render_replay};
use crate::runner::{run_scenario, run_scenario_traced, Outcome, Scenario};
use crate::trace_enabled;
use scc_hw::SchedPolicy;
use std::path::PathBuf;

/// Fuzzing campaign parameters.
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    /// Execution budget per app (the baseline run counts as one).
    pub execs: u64,
    /// Master seed: the whole campaign is a pure function of it.
    pub master_seed: u64,
    /// Shared on-disk corpus directory (loaded once at startup, appended
    /// on admission); `None` keeps corpora in memory.
    pub corpus_dir: Option<PathBuf>,
    /// Where finding replay files are written.
    pub out_dir: PathBuf,
    /// Fuzz only these apps (empty = whole registry).
    pub apps: Vec<String>,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            execs: 200,
            master_seed: 1,
            corpus_dir: None,
            out_dir: PathBuf::from("results"),
            apps: Vec::new(),
        }
    }
}

fn fnv(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// One app's fuzzing verdict.
#[derive(Clone, Debug)]
pub struct FuzzAppReport {
    pub name: &'static str,
    pub expected: Expected,
    /// Expectation unverifiable in this build (needs `trace`) or the app
    /// is an always-triggering checker fixture (nothing to search for).
    pub skipped: bool,
    /// Executions actually spent (≤ budget; stops at the first find).
    pub execs: u64,
    /// The planted bug was triggered (bug fixtures only).
    pub found: bool,
    /// Execution index (1-based) of the first trigger.
    pub execs_to_find: Option<u64>,
    /// Clean app produced a finding/deadlock/panic that is **not**
    /// mailbox saturation — each one is an oracle false positive and
    /// fails the campaign.
    pub false_findings: u64,
    /// Mutated plans that exhausted the mailbox retry budget ("mailbox
    /// send timeout" panics). Expected under heavy fault plans; excluded
    /// from findings and from the corpus.
    pub saturated: u64,
    /// Fixture runs landing outside both the expected class and clean
    /// (e.g. a secondary finding without the planted one).
    pub other_outcomes: u64,
    /// Corpus size at campaign end / entries admitted by this campaign.
    pub corpus_len: usize,
    pub corpus_admitted: u64,
    /// Union coverage at campaign end.
    pub coverage_bits: u32,
    pub coverage_fp: u64,
    /// Checker-finding-set fingerprint of the triggering run (0 when the
    /// trigger was a deadlock, or no trigger).
    pub findings_fp: u64,
    /// Shrunk replay file for the find.
    pub replay_path: Option<String>,
    pub detail: String,
}

impl FuzzAppReport {
    fn new(spec: &AppSpec) -> FuzzAppReport {
        FuzzAppReport {
            name: spec.name,
            expected: spec.expected.clone(),
            skipped: false,
            execs: 0,
            found: false,
            execs_to_find: None,
            false_findings: 0,
            saturated: 0,
            other_outcomes: 0,
            corpus_len: 0,
            corpus_admitted: 0,
            coverage_bits: 0,
            coverage_fp: 0,
            findings_fp: 0,
            replay_path: None,
            detail: String::new(),
        }
    }

    /// Did the app behave as its registry entry promises under fuzzing?
    pub fn ok(&self) -> bool {
        if self.skipped {
            return true;
        }
        match self.expected {
            Expected::Clean => self.false_findings == 0,
            _ => self.found,
        }
    }
}

/// Result of fuzzing (a subset of) the registry.
#[derive(Clone, Debug)]
pub struct FuzzSummary {
    pub master_seed: u64,
    pub execs_budget: u64,
    pub apps: Vec<FuzzAppReport>,
}

impl FuzzSummary {
    pub fn ok(&self) -> bool {
        self.apps.iter().all(|a| a.ok())
    }

    /// Deterministic fingerprint of the whole campaign: per-app coverage
    /// maps, corpus sizes, find indices and finding sets, folded in
    /// registry order. Two processes fuzzing with the same seed must
    /// agree on this exactly.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut fold = |x: u64| {
            for b in x.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for a in &self.apps {
            fold(fnv(a.name));
            fold(a.coverage_fp);
            fold(a.coverage_bits as u64);
            fold(a.corpus_len as u64);
            fold(a.execs_to_find.unwrap_or(0));
            fold(a.findings_fp);
            fold(a.false_findings);
        }
        h
    }

    /// Hand-rolled JSON (the workspace is offline; no serde_json).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"master_seed\": {},\n  \"execs_budget\": {},\n  \"trace\": {},\n  \"ok\": {},\n  \"fingerprint\": \"{:016x}\",\n  \"apps\": [",
            self.master_seed,
            self.execs_budget,
            trace_enabled(),
            self.ok(),
            self.fingerprint()
        ));
        for (i, a) in self.apps.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!(
                "\"name\": \"{}\", \"expected\": \"{}\", \"ok\": {}, \"skipped\": {}, ",
                a.name,
                json_escape(&a.expected.describe()),
                a.ok(),
                a.skipped
            ));
            out.push_str(&format!(
                "\"execs\": {}, \"found\": {}, \"execs_to_find\": {}, ",
                a.execs,
                a.found,
                a.execs_to_find
                    .map_or("null".into(), |v| v.to_string())
            ));
            out.push_str(&format!(
                "\"false_findings\": {}, \"saturated\": {}, \"other_outcomes\": {}, ",
                a.false_findings, a.saturated, a.other_outcomes
            ));
            out.push_str(&format!(
                "\"corpus_len\": {}, \"corpus_admitted\": {}, ",
                a.corpus_len, a.corpus_admitted
            ));
            out.push_str(&format!(
                "\"coverage_bits\": {}, \"coverage_fp\": \"{:016x}\", \"findings_fp\": \"{:016x}\", ",
                a.coverage_bits, a.coverage_fp, a.findings_fp
            ));
            match &a.replay_path {
                Some(p) => out.push_str(&format!("\"replay\": \"{}\", ", json_escape(p))),
                None => out.push_str("\"replay\": null, "),
            }
            out.push_str(&format!("\"detail\": \"{}\"}}", json_escape(&a.detail)));
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Human-readable one-line-per-app summary.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for a in &self.apps {
            let status = if a.skipped {
                "SKIP"
            } else if a.ok() {
                "ok"
            } else {
                "FAIL"
            };
            out.push_str(&format!(
                "{status:>4}  {:<24} expect {:<28} {}\n",
                a.name,
                a.expected.describe(),
                a.detail
            ));
        }
        out
    }
}

/// Is this outcome a resource-budget artifact of the schedule/fault plan
/// rather than a genuine bug? Two shapes: the mailbox declaring
/// saturation (retry budget spent under an aggressive fault plan), and
/// the executor's election-budget guard catching a livelocked schedule
/// (e.g. `PriorityBands` starving a spin-wait's producer). Neither is a
/// finding, and neither enters the corpus.
fn is_budget_artifact(outcome: &Outcome) -> bool {
    match outcome {
        Outcome::Panic(msg) => msg.contains("mailbox send timeout"),
        Outcome::Deadlock(msg) => msg.contains("election budget exceeded"),
        _ => false,
    }
}

/// Classify one execution against the app's expectation.
enum Verdict {
    /// Clean run — feed coverage, maybe admit.
    Clean,
    /// The planted bug fired.
    Found,
    /// Clean app misbehaved: a would-be false positive.
    FalsePositive,
    /// Mailbox saturation under the fault plan.
    Saturated,
    /// Fixture run outside both clean and expected (e.g. secondary
    /// finding only).
    Other,
}

fn classify(outcome: &Outcome, expected: &Expected) -> Verdict {
    // Budget artifacts first: a livelocked schedule surfaces as
    // `Outcome::Deadlock` and must not count as "found" for a
    // deadlock-expecting fixture — the planted lost-wakeup hangs with
    // all cores blocked, not with its election budget spent.
    if is_budget_artifact(outcome) {
        return Verdict::Saturated;
    }
    if outcome.satisfies(expected) && !matches!(expected, Expected::Clean) {
        return Verdict::Found;
    }
    match outcome {
        Outcome::Clean { .. } => Verdict::Clean,
        _ => {
            if matches!(expected, Expected::Clean) {
                Verdict::FalsePositive
            } else {
                Verdict::Other
            }
        }
    }
}

/// Finding-set fingerprint of a triggering outcome (0 for deadlocks).
fn outcome_findings_fp(outcome: &Outcome) -> u64 {
    match outcome {
        Outcome::Findings(fs) => scc_checker::Report {
            findings: fs.clone(),
            truncated: false,
            lost: 0,
            events: 0,
            cores: 0,
        }
        .fingerprint(),
        _ => 0,
    }
}

/// Shrink a triggering scenario, write its replay file (with recorded
/// topology) and verify the file re-triggers once.
fn write_find(
    sc: &Scenario,
    expected: &Expected,
    cfg: &FuzzConfig,
    report: &mut FuzzAppReport,
) -> Result<(), String> {
    let (shrunk, _) = shrink(sc, expected);
    std::fs::create_dir_all(&cfg.out_dir)
        .map_err(|e| format!("cannot create {}: {e}", cfg.out_dir.display()))?;
    let path = cfg.out_dir.join(format!("FUZZ_repro_{}.txt", sc.app.name));
    std::fs::write(&path, render_replay(&shrunk, expected))
        .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    let text = std::fs::read_to_string(&path).map_err(|e| e.to_string())?;
    let parsed = parse_replay_full(&text).map_err(|e| e.to_string())?;
    parsed.verify_topology().map_err(|e| e.to_string())?;
    if !run_scenario(&parsed.scenario).satisfies(&parsed.expected) {
        return Err("shrunk replay did not re-trigger".into());
    }
    report.replay_path = Some(path.display().to_string());
    Ok(())
}

/// Fuzz one app for up to `cfg.execs` executions.
pub fn fuzz_app(spec: &'static AppSpec, cfg: &FuzzConfig) -> FuzzAppReport {
    let mut report = FuzzAppReport::new(spec);
    let expected = spec.expected.clone();

    if spec.always_triggers {
        report.skipped = true;
        report.detail = "fires under the baton schedule; nothing to search".into();
        return report;
    }
    if matches!(expected, Expected::Finding(_)) && !trace_enabled() {
        report.skipped = true;
        report.detail = "finding-based expectation needs the 'trace' feature".into();
        return report;
    }

    let mut rng = Rng::new(cfg.master_seed ^ fnv(spec.name));
    let mut global = GlobalCoverage::new();
    let mut corpus = match &cfg.corpus_dir {
        Some(d) => match Corpus::open(spec, d) {
            Ok(c) => c,
            Err(e) => {
                report.detail = format!("cannot open corpus dir: {e}");
                return report;
            }
        },
        None => Corpus::new(spec),
    };

    let absorb_and_admit =
        |plan: &Plan, cov: &Coverage, global: &mut GlobalCoverage, corpus: &mut Corpus| -> bool {
            let (novel, rare) = global.absorb(cov);
            novel > 0 && corpus.admit(plan.clone(), novel, rare)
        };

    // Execution 1: the baseline plan anchors both the coverage map and
    // the corpus (mutations start from a known-good interleaving).
    let baseline = Plan::baseline();
    report.execs = 1;
    let (o0, cov0) = run_scenario_traced(&baseline.scenario(spec));
    match classify(&o0, &expected) {
        Verdict::Clean => {
            absorb_and_admit(&baseline, &cov0, &mut global, &mut corpus);
        }
        Verdict::Found => {
            // A schedule fixture firing under the baton would be a
            // registry bug; report it honestly anyway.
            report.found = true;
            report.execs_to_find = Some(1);
            report.findings_fp = outcome_findings_fp(&o0);
        }
        _ => {
            report.false_findings += u64::from(matches!(expected, Expected::Clean));
            report.detail = format!("baseline: {}", o0.brief());
        }
    }

    // Explore-then-exploit: the first few candidates are pure schedule
    // probes (fresh seed, no faults) — with only the baseline in the
    // corpus there is no coverage gradient yet, and a blind draw matches
    // the seed-sweep baseline's cost exactly. Everything after runs
    // through the coverage-guided mutation engine.
    let probe_phase = 1 + (cfg.execs / 8).clamp(1, 8);
    while !report.found && report.execs < cfg.execs {
        report.execs += 1;
        let plan = if report.execs <= probe_phase {
            crate::mutate::schedule_probe(&mut rng)
        } else {
            let base = corpus
                .select(&mut rng)
                .map(|e| e.plan.clone())
                .unwrap_or_else(Plan::baseline);
            let peer = corpus.select(&mut rng).map(|e| e.plan.clone());
            mutate(&mut rng, &base, peer.as_ref(), spec.cores)
        };
        let (outcome, cov) = run_scenario_traced(&plan.scenario(spec));
        match classify(&outcome, &expected) {
            Verdict::Clean => {
                if absorb_and_admit(&plan, &cov, &mut global, &mut corpus) {
                    report.corpus_admitted += 1;
                }
            }
            Verdict::Found => {
                report.found = true;
                report.execs_to_find = Some(report.execs);
                report.findings_fp = outcome_findings_fp(&outcome);
                let sc = plan.scenario(spec);
                match write_find(&sc, &expected, cfg, &mut report) {
                    Ok(()) => {
                        report.detail = format!(
                            "found at exec {} ({}), replay re-triggers",
                            report.execs,
                            outcome.brief()
                        );
                    }
                    Err(e) => report.detail = format!("found but replay failed: {e}"),
                }
            }
            Verdict::FalsePositive => {
                report.false_findings += 1;
                if report.detail.is_empty() {
                    report.detail = format!(
                        "exec {}: unexpected {} under {:?}",
                        report.execs,
                        outcome.brief(),
                        plan.faults.faults
                    );
                }
            }
            Verdict::Saturated => report.saturated += 1,
            Verdict::Other => report.other_outcomes += 1,
        }
    }

    report.corpus_len = corpus.len();
    report.coverage_bits = global.bits_set();
    report.coverage_fp = global.fingerprint();
    if report.detail.is_empty() {
        report.detail = match &expected {
            Expected::Clean => format!(
                "clean over {} execs; corpus {} (+{}), {} coverage bits, {} saturated",
                report.execs,
                report.corpus_len,
                report.corpus_admitted,
                report.coverage_bits,
                report.saturated
            ),
            _ => format!(
                "not triggered within {} execs (corpus {}, {} coverage bits)",
                report.execs, report.corpus_len, report.coverage_bits
            ),
        };
    }
    report
}

/// Fuzz every registered app (minus always-triggering fixtures, which
/// have nothing to search), or the subset named in `cfg.apps`.
pub fn fuzz_registry(cfg: &FuzzConfig) -> FuzzSummary {
    let apps: Vec<&'static AppSpec> = registry()
        .iter()
        .filter(|s| cfg.apps.is_empty() || cfg.apps.iter().any(|n| n == s.name))
        .collect();
    FuzzSummary {
        master_seed: cfg.master_seed,
        execs_budget: cfg.execs,
        apps: apps.into_iter().map(|s| fuzz_app(s, cfg)).collect(),
    }
}

/// The blind baseline the fuzzer is benchmarked against: the explorer's
/// PR-5 protocol (baton run, then sequential seeds 1..=budget), counting
/// executions until the planted bug fires. Returns `None` if the budget
/// runs out.
pub fn blind_execs_to_find(spec: &'static AppSpec, budget: u64) -> Option<u64> {
    let mut execs = 1u64;
    let o0 = run_scenario(&Scenario::baseline(spec));
    if o0.satisfies(&spec.expected) {
        return Some(execs);
    }
    for seed in 1..=budget {
        execs += 1;
        let sc = Scenario {
            app: spec,
            policy: SchedPolicy::SeededRandom { seed },
            faults: scc_hw::FaultPlan::default(),
        };
        if run_scenario(&sc).satisfies(&spec.expected) {
            return Some(execs);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::app;

    #[test]
    fn classify_routes_saturation_and_false_positives() {
        let clean = Outcome::Clean {
            mbx_retries: 0,
            mbx_timeouts: 0,
        };
        assert!(matches!(classify(&clean, &Expected::Clean), Verdict::Clean));
        let sat = Outcome::Panic("mailbox send timeout: core 02 -> 00".into());
        assert!(matches!(
            classify(&sat, &Expected::Clean),
            Verdict::Saturated
        ));
        let dead = Outcome::Deadlock("all cores blocked".into());
        assert!(matches!(
            classify(&dead, &Expected::Clean),
            Verdict::FalsePositive
        ));
        assert!(matches!(
            classify(&dead, &Expected::Deadlock),
            Verdict::Found
        ));
        let other_panic = Outcome::Panic("index out of bounds".into());
        assert!(matches!(
            classify(&other_panic, &Expected::Finding("stale-read")),
            Verdict::Other
        ));
        // A livelocked schedule (election budget guard) is an artifact,
        // not a finding — and crucially not a "found" deadlock.
        let livelock = Outcome::Deadlock(
            "election budget exceeded after 2000001 schedule decisions — livelock".into(),
        );
        assert!(matches!(
            classify(&livelock, &Expected::Deadlock),
            Verdict::Saturated
        ));
        assert!(matches!(
            classify(&livelock, &Expected::Clean),
            Verdict::Saturated
        ));
    }

    /// Sizes [`crate::runner::LIVELOCK_ELECTION_BUDGET`]: every registry
    /// app's baseline run must finish with an order of magnitude of
    /// headroom, so the guard can never clip a legitimate run.
    #[test]
    fn baseline_runs_fit_far_under_the_livelock_budget() {
        use crate::runner::LIVELOCK_ELECTION_BUDGET;
        for spec in crate::registry::registry() {
            if spec.always_triggers {
                continue;
            }
            let o = crate::runner::run_scenario(&Scenario::baseline(spec));
            if matches!(spec.expected, Expected::Clean) {
                assert!(
                    !matches!(&o, Outcome::Deadlock(m) if m.contains("election budget")),
                    "{}: baseline clipped by the livelock guard: {}",
                    spec.name,
                    o.brief()
                );
            }
        }
        // The budget itself stays comfortably large.
        const { assert!(LIVELOCK_ELECTION_BUDGET >= 1_000_000) };
    }

    #[test]
    fn fixture_skipping_and_report_ok() {
        let fix = app("stale_read").expect("always-triggers fixture");
        let r = fuzz_app(fix, &FuzzConfig::default());
        assert!(r.skipped, "checker fixtures are not fuzzed");
        assert!(r.ok());
    }

    #[cfg(feature = "trace")]
    #[test]
    fn tiny_campaign_on_a_clean_app_grows_a_corpus() {
        let spec = app("dotprod").expect("registry app");
        let cfg = FuzzConfig {
            execs: 6,
            master_seed: 11,
            out_dir: std::env::temp_dir().join(format!("svmfuzz_t_{}", std::process::id())),
            ..FuzzConfig::default()
        };
        let r = fuzz_app(spec, &cfg);
        assert!(r.ok(), "clean app must stay clean: {}", r.detail);
        assert_eq!(r.execs, 6);
        assert!(r.coverage_bits > 0, "trace build must observe coverage");
        assert!(r.corpus_len >= 1, "baseline always seeds the corpus");
        // Determinism: the same campaign twice is bit-identical.
        let r2 = fuzz_app(spec, &cfg);
        assert_eq!(r.coverage_fp, r2.coverage_fp);
        assert_eq!(r.corpus_len, r2.corpus_len);
        assert_eq!(r.corpus_admitted, r2.corpus_admitted);
        let _ = std::fs::remove_dir_all(&cfg.out_dir);
    }
}
