//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Exposes the subset the workspace uses — `Mutex` with an infallible
//! `lock()` and `Condvar` with `wait(&mut guard)` — with parking_lot's
//! no-poisoning semantics (a panic while holding the lock does not poison
//! it; the deterministic executor relies on being able to keep scheduling
//! after a worker panics and unwinds).

use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};

pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can temporarily move the std guard out
    // while keeping the parking_lot-style `&mut guard` signature.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// Result of a timed wait (mirrors `parking_lot::WaitTimeoutResult`).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(self) -> bool {
        self.0
    }
}

#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present");
        guard.inner = Some(
            self.inner
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner),
        );
    }

    /// Wait with a timeout, parking_lot style: returns a result whose
    /// `timed_out()` is true when the wait expired without a notification.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard present");
        let (inner, res) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
        WaitTimeoutResult(res.timed_out())
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn no_poison_after_panic() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock must survive a panicking holder");
    }

    #[test]
    fn wait_for_times_out_without_notify() {
        let pair = (Mutex::new(()), Condvar::new());
        let mut g = pair.0.lock();
        let res = pair.1.wait_for(&mut g, std::time::Duration::from_millis(5));
        assert!(res.timed_out());
        drop(g);
        // The guard must still be usable after the timed-out wait.
        let _g2 = pair.0.lock();
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }
}
