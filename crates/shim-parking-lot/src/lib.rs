//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Exposes the subset the workspace uses — `Mutex` with an infallible
//! `lock()` and `Condvar` with `wait(&mut guard)` — with parking_lot's
//! no-poisoning semantics (a panic while holding the lock does not poison
//! it; the deterministic executor relies on being able to keep scheduling
//! after a worker panics and unwinds).

use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};

pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can temporarily move the std guard out
    // while keeping the parking_lot-style `&mut guard` signature.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present");
        guard.inner = Some(
            self.inner
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner),
        );
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn no_poison_after_panic() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock must survive a panicking holder");
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }
}
