//! Regression coverage for `exec.park_watchdog` (ROADMAP open item 2):
//! the parked-too-long forensics counter must tick while a peer is
//! frozen out by a fault plan and the host is slow to hand the baton
//! back — and the run must still complete with the right results.
//!
//! The one-off 512-core stall this pins down looked exactly like this:
//! one core parked through several watchdog periods with the rest of the
//! machine healthy, the counter climbing, and progress resuming on its
//! own. The test recreates that shape deterministically: a `FreezeCore`
//! window jumps core 1 far ahead in virtual time, so it parks until core
//! 0 — whose program burns *host* milliseconds between yields — catches
//! up or finishes. With `SCC_PARK_WATCHDOG_MS` shrunk to 2 ms those
//! parks cross multiple watchdog periods.
//!
//! Own integration-test binary: the watchdog period is read from the
//! environment when the scheduler is built, and nothing else may race
//! that variable.

use scc_hw::{Fault, FaultPlan, Machine, MemAttr, SccConfig};
use std::time::Duration;

#[test]
fn watchdog_ticks_under_a_frozen_core_while_progress_continues() {
    // Must be set before the Machine builds its scheduler.
    std::env::set_var("SCC_PARK_WATCHDOG_MS", "2");

    let cfg = SccConfig {
        faults: FaultPlan {
            // One-shot: at core 1's first yield at/past clock 1 000, its
            // clock jumps 50 000 000 cycles — far beyond anything core 0
            // reaches — so core 1 stays parked until core 0 finishes.
            faults: vec![Fault::FreezeCore {
                core: 1,
                at: 1_000,
                cycles: 50_000_000,
            }],
        },
        ..SccConfig::small()
    };
    let m = Machine::new(cfg).unwrap();
    let shared = m.inner().map.shared_base();

    let res = m
        .run(2, |c| {
            if c.id().idx() == 1 {
                // Advance to the freeze mark and yield into the trap.
                c.advance(2_000);
                c.yield_now();
                // We only get here once core 0 is done; the freeze must
                // have jumped us past its window.
                assert!(c.now() >= 50_000_000, "freeze window not applied");
                c.write(shared + 8, 4, 2, MemAttr::UNCACHED);
                2u64
            } else {
                // Burn host time between yields while core 1 is parked:
                // each sleep spans several 2 ms watchdog periods.
                for _ in 0..3 {
                    std::thread::sleep(Duration::from_millis(7));
                    c.advance(10_000);
                    c.yield_now();
                }
                c.write(shared, 4, 1, MemAttr::UNCACHED);
                1u64
            }
        })
        .unwrap();

    // Progress continued: both programs ran to completion and their
    // writes landed.
    assert_eq!(res[0].result, 1);
    assert_eq!(res[1].result, 2);
    assert_eq!(m.inner().ram.read(shared, 4), 1);
    assert_eq!(m.inner().ram.read(shared + 8, 4), 2);

    // The forensics counter climbed: core 1 parked through at least one
    // full watchdog period (21 ms of host sleeps against a 2 ms period
    // leaves a wide margin for scheduler noise). The count is folded
    // into the first result's perf block, like `exec.park_watchdog`'s
    // metrics path expects.
    let ticks: u64 = res.iter().map(|r| r.perf.park_watchdog).sum();
    assert!(
        ticks >= 1,
        "expected watchdog ticks during the frozen-core park, got {ticks}"
    );
}
