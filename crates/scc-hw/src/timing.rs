//! The timing model: calibrated cycle costs for every operation the simulator
//! charges to a core's virtual clock.
//!
//! The SCC runs three clock domains — cores, mesh, and memory — whose
//! frequencies are configurable. The paper's test platform used 533 MHz
//! cores with an 800 MHz mesh and 800 MHz DDR3-800 memory; those are the
//! defaults here. All costs are ultimately charged in **core cycles**;
//! mesh and memory cycles are converted by the frequency ratios.
//!
//! Magnitudes follow the SCC Programmer's Guide latency table the paper
//! references: an L2 hit costs ~18 core cycles, an MPB access ~45 core cycles
//! plus 8 mesh cycles per hop (4 cycles per router, request + response), and
//! a DDR3 access ~40 core cycles plus 8 mesh cycles per hop plus ~46 memory
//! cycles in the controller. The kernel-level constants (interrupt entry,
//! page-table updates) are calibrated so that the Table 1 microbenchmark
//! reproduces the paper's magnitudes; see `EXPERIMENTS.md`.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A quantity of **core** clock cycles.
#[derive(
    Copy, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Cycles(pub u64);

impl Cycles {
    pub const ZERO: Cycles = Cycles(0);

    #[inline]
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Convert to microseconds at the given core frequency.
    #[inline]
    pub fn to_micros(self, core_mhz: u32) -> f64 {
        self.0 as f64 / core_mhz as f64
    }

    /// Convert to milliseconds at the given core frequency.
    #[inline]
    pub fn to_millis(self, core_mhz: u32) -> f64 {
        self.to_micros(core_mhz) / 1000.0
    }
}

impl Add for Cycles {
    type Output = Cycles;
    #[inline]
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    #[inline]
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    #[inline]
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Debug for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cy", self.0)
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// All tunable cycle costs of the model.
///
/// Fields whose name ends in `_mesh` or `_mem` are expressed in mesh/memory
/// cycles and converted to core cycles through [`TimingParams::mesh_to_core`]
/// and [`TimingParams::mem_to_core`]; everything else is in core cycles.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TimingParams {
    /// Core frequency in MHz (paper test platform: 533).
    pub core_mhz: u32,
    /// Mesh/router frequency in MHz (paper test platform: 800).
    pub mesh_mhz: u32,
    /// Memory frequency in MHz (DDR3-800).
    pub mem_mhz: u32,

    /// L1 hit cost.
    pub l1_hit: u64,
    /// L2 hit cost (SCC Programmer's Guide: ~18 core cycles).
    pub l2_hit: u64,
    /// Fixed core-side cost of going out on the mesh at all
    /// (miss handling, FSB).
    pub offcore_base: u64,
    /// Mesh cycles per hop, request plus response (4 per router each way).
    pub hop_mesh: u64,
    /// Memory cycles spent in the DDR3 controller for one access.
    pub ddr_mem: u64,
    /// Extra memory cycles for a full 32-byte line transfer (burst).
    pub ddr_line_mem: u64,
    /// Fixed core-side cost of an MPB access (bypasses L2).
    pub mpb_base: u64,
    /// Cost of accessing the local test-and-set register; remote adds hops.
    pub tas_base: u64,
    /// Core cycles to write the GIC doorbell of a remote core.
    pub ipi_raise: u64,
    /// Latency from GIC doorbell write until the target core's pin is
    /// asserted, in mesh cycles.
    pub ipi_wire_mesh: u64,
    /// Interrupt entry/exit overhead at the receiving core (vectoring,
    /// save/restore) — the "disruption of incoming interrupts" visible as
    /// the gap between the two curves of the paper's Figure 6.
    pub irq_entry: u64,
    /// Checking one mailbox receive buffer (paper footnote 2: 100 cycles).
    pub mbox_check: u64,
    /// Executing `CL1INVMB` (single instruction, invalidates tagged L1
    /// lines by flash-clearing their valid bits).
    pub cl1invmb: u64,
    /// Entering + leaving the page-fault handler (trap, save state, decode).
    pub pagefault_entry: u64,
    /// Updating one page-table entry and flushing the TLB entry.
    pub pte_update: u64,
    /// Kernel bookkeeping to reserve one page of virtual address space
    /// (VMA list manipulation inside `svm_alloc`).
    pub vma_reserve_per_page: u64,
    /// Kernel bookkeeping for taking/returning a frame from an allocator
    /// free list (excluding the zeroing, which is charged as real writes).
    pub frame_alloc: u64,
    /// One iteration through the scheduler/idle loop.
    pub idle_loop: u64,
    /// Software bookkeeping of one DSM protocol step (request construction
    /// or grant processing in the SVM handlers), beyond the raw memory and
    /// interrupt costs.
    pub dsm_handler: u64,
}

impl Default for TimingParams {
    fn default() -> Self {
        TimingParams {
            core_mhz: 533,
            mesh_mhz: 800,
            mem_mhz: 800,
            l1_hit: 1,
            l2_hit: 18,
            offcore_base: 40,
            hop_mesh: 8,
            ddr_mem: 24,
            ddr_line_mem: 16,
            mpb_base: 45,
            tas_base: 20,
            ipi_raise: 30,
            ipi_wire_mesh: 12,
            irq_entry: 400,
            mbox_check: 100,
            cl1invmb: 8,
            pagefault_entry: 1050,
            pte_update: 60,
            vma_reserve_per_page: 385,
            frame_alloc: 260,
            idle_loop: 40,
            dsm_handler: 790,
        }
    }
}

impl TimingParams {
    /// Convert mesh cycles to core cycles (rounded up).
    #[inline]
    pub fn mesh_to_core(&self, mesh_cycles: u64) -> u64 {
        (mesh_cycles * self.core_mhz as u64).div_ceil(self.mesh_mhz as u64)
    }

    /// Convert memory cycles to core cycles (rounded up).
    #[inline]
    pub fn mem_to_core(&self, mem_cycles: u64) -> u64 {
        (mem_cycles * self.core_mhz as u64).div_ceil(self.mem_mhz as u64)
    }

    /// Core cycles for traversing `hops` mesh hops (request + response).
    #[inline]
    pub fn hop_cost(&self, hops: u32) -> u64 {
        self.mesh_to_core(self.hop_mesh * hops as u64)
    }

    /// Cost of a single (word-granular) DDR3 access `hops` away.
    #[inline]
    pub fn ddr_word_cost(&self, hops: u32) -> u64 {
        self.offcore_base + self.hop_cost(hops) + self.mem_to_core(self.ddr_mem)
    }

    /// Cost of transferring a full 32-byte cache line from/to DDR3.
    #[inline]
    pub fn ddr_line_cost(&self, hops: u32) -> u64 {
        self.offcore_base
            + self.hop_cost(hops)
            + self.mem_to_core(self.ddr_mem + self.ddr_line_mem)
    }

    /// Cost of one MPB word access `hops` away.
    #[inline]
    pub fn mpb_cost(&self, hops: u32) -> u64 {
        self.mpb_base + self.hop_cost(hops)
    }

    /// Cost of a test-and-set register access `hops` away.
    #[inline]
    pub fn tas_cost(&self, hops: u32) -> u64 {
        self.tas_base + self.hop_cost(hops)
    }

    /// One-way delivery latency of an IPI raised towards a core `hops` away,
    /// charged at the *receiver* on top of the sender's raise stamp.
    #[inline]
    pub fn ipi_delivery(&self, hops: u32) -> u64 {
        self.mesh_to_core(self.ipi_wire_mesh) + self.hop_cost(hops)
    }

    /// Microseconds for a cycle count under this configuration.
    #[inline]
    pub fn micros(&self, c: Cycles) -> f64 {
        c.to_micros(self.core_mhz)
    }
}

/// Pack a parallel-engine election key: the `(virtual clock, slot)` pair the
/// baton scheduler minimises over, encoded so that a single `u64` compare is
/// the lexicographic compare. Slots occupy the low 16 bits (the topology
/// core limit is 4096), clocks the remaining 48 — ample for any simulated
/// run. These keys are host-engine state only and never appear in traces,
/// so the packing is free to change with the machine's scale.
#[inline]
pub fn pack_key(clock: u64, slot: usize) -> u64 {
    debug_assert!(clock < 1 << 48, "virtual clock overflows packed key");
    debug_assert!(slot < 1 << 16, "slot overflows packed key");
    (clock << 16) | slot as u64
}

/// Inverse of [`pack_key`].
#[inline]
pub fn unpack_key(packed: u64) -> (u64, usize) {
    (packed >> 16, (packed & 0xffff) as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_conversions() {
        let c = Cycles(533);
        assert!((c.to_micros(533) - 1.0).abs() < 1e-9);
        assert!((Cycles(533_000).to_millis(533) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mesh_conversion_rounds_up() {
        let t = TimingParams::default();
        // 8 mesh cycles at 800 MHz = 10 ns = 5.33 core cycles -> 6.
        assert_eq!(t.mesh_to_core(8), 6);
        assert_eq!(t.mesh_to_core(0), 0);
    }

    #[test]
    fn costs_monotonic_in_distance() {
        let t = TimingParams::default();
        for h in 0..8 {
            assert!(t.ddr_word_cost(h + 1) > t.ddr_word_cost(h));
            assert!(t.mpb_cost(h + 1) > t.mpb_cost(h));
            assert!(t.tas_cost(h + 1) > t.tas_cost(h));
        }
    }

    #[test]
    fn line_costs_more_than_word() {
        let t = TimingParams::default();
        assert!(t.ddr_line_cost(3) > t.ddr_word_cost(3));
    }

    #[test]
    fn packed_keys_order_lexicographically() {
        assert!(pack_key(5, 7) < pack_key(5, 8));
        assert!(pack_key(5, 511) < pack_key(6, 0));
        assert_eq!(unpack_key(pack_key(123, 45)), (123, 45));
        assert_eq!(unpack_key(pack_key(123, 500)), (123, 500));
    }

    #[test]
    fn cycles_arith() {
        assert_eq!(Cycles(5) + Cycles(7), Cycles(12));
        assert_eq!(Cycles(5) - Cycles(7), Cycles(0)); // saturating
        let mut c = Cycles(1);
        c += Cycles(2);
        assert_eq!(c, Cycles(3));
    }
}
