//! The single metrics registry — labeled counters with merge/diff
//! semantics, the other half of the unified instrumentation layer (see
//! [`crate::instr`] for event tracing).
//!
//! Every stats producer in the stack ([`crate::PerfCounters`], the
//! kernel's TLB snapshot, the SVM protocol stats, the mailbox stats)
//! implements [`MetricsSource`] and folds itself into one
//! [`MetricsSnapshot`] under a dotted label namespace:
//!
//! | prefix    | producer                                   |
//! |-----------|--------------------------------------------|
//! | `hw.`     | cache/MPB/GIC/TAS hardware model counters  |
//! | `exec.`   | executor scheduling counters               |
//! | `kernel.` | software-TLB counters                      |
//! | `svm.`    | ownership/placement protocol counters      |
//! | `mbx.`    | mailbox system counters                    |
//!
//! Consumers (`fig9`, `bench_fastpath`, tests) read labels from the one
//! snapshot instead of reaching into three bespoke structs. Snapshots
//! merge (aggregate across cores or runs) and diff (interval measurement
//! around a phase of interest).

use std::collections::BTreeMap;

/// An immutable-ish bag of labeled `u64` counters. Labels are `'static`
/// dotted strings (`"svm.faults"`, `"kernel.tlb_hits"`); ordering is
/// lexicographic, which keeps rendered output stable across runs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    vals: BTreeMap<&'static str, u64>,
}

impl MetricsSnapshot {
    pub fn new() -> Self {
        Self::default()
    }

    /// Collect a snapshot from one source (sugar for
    /// [`MetricsSource::metrics`]).
    pub fn of(src: &dyn MetricsSource) -> Self {
        src.metrics()
    }

    /// Add `v` to the counter `name` (creating it at zero first).
    pub fn add(&mut self, name: &'static str, v: u64) {
        *self.vals.entry(name).or_insert(0) += v;
    }

    /// Overwrite the counter `name` with `v`.
    pub fn set(&mut self, name: &'static str, v: u64) {
        self.vals.insert(name, v);
    }

    /// Value of `name`, or 0 if never recorded.
    pub fn get(&self, name: &str) -> u64 {
        self.vals.get(name).copied().unwrap_or(0)
    }

    /// Value of `name`, or `None` if never recorded (distinguishes "zero"
    /// from "absent").
    pub fn try_get(&self, name: &str) -> Option<u64> {
        self.vals.get(name).copied()
    }

    /// Fold another snapshot in, adding counters label-wise. This is the
    /// cross-core / cross-run aggregation primitive.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, v) in &other.vals {
            *self.vals.entry(k).or_insert(0) += v;
        }
    }

    /// Counter-wise `self - earlier` (saturating), keeping every label
    /// present in either snapshot. Use to measure one phase: snapshot
    /// before, snapshot after, diff.
    pub fn diff(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let mut out = MetricsSnapshot::new();
        for (k, v) in &self.vals {
            out.vals.insert(k, v.saturating_sub(earlier.get(k)));
        }
        for k in earlier.vals.keys() {
            out.vals.entry(k).or_insert(0);
        }
        out
    }

    /// Labels and values in lexicographic label order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.vals.iter().map(|(k, v)| (*k, *v))
    }

    pub fn len(&self) -> usize {
        self.vals.len()
    }

    pub fn is_empty(&self) -> bool {
        self.vals.is_empty()
    }

    /// `hits / (hits + misses)` over two counters; `None` when both are
    /// zero. The common derived statistic (L1 hit rate, TLB hit rate).
    pub fn hit_rate(&self, hits: &str, misses: &str) -> Option<f64> {
        let h = self.get(hits);
        let total = h + self.get(misses);
        (total > 0).then(|| h as f64 / total as f64)
    }

    /// Render as an aligned two-column table, one counter per line,
    /// sorted by label.
    pub fn render(&self) -> String {
        let width = self.vals.keys().map(|k| k.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (k, v) in &self.vals {
            out.push_str(&format!("  {k:<width$}  {v:>12}\n"));
        }
        out
    }
}

/// Anything that can contribute labeled counters to a [`MetricsSnapshot`].
pub trait MetricsSource {
    /// Fold this source's counters into `m` (adding to existing labels).
    fn metrics_into(&self, m: &mut MetricsSnapshot);

    /// Collect this source alone into a fresh snapshot.
    fn metrics(&self) -> MetricsSnapshot {
        let mut m = MetricsSnapshot::new();
        self.metrics_into(&mut m);
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_get_merge_diff() {
        let mut a = MetricsSnapshot::new();
        a.add("svm.faults", 3);
        a.add("svm.faults", 2);
        a.set("hw.l1_hits", 100);
        assert_eq!(a.get("svm.faults"), 5);
        assert_eq!(a.get("missing"), 0);
        assert_eq!(a.try_get("missing"), None);

        let mut b = MetricsSnapshot::new();
        b.add("svm.faults", 10);
        b.add("mbx.sent", 7);
        a.merge(&b);
        assert_eq!(a.get("svm.faults"), 15);
        assert_eq!(a.get("mbx.sent"), 7);
        assert_eq!(a.get("hw.l1_hits"), 100);

        let d = a.diff(&b);
        assert_eq!(d.get("svm.faults"), 5);
        assert_eq!(d.get("mbx.sent"), 0);
        assert_eq!(d.get("hw.l1_hits"), 100);
    }

    #[test]
    fn diff_keeps_labels_from_both_sides() {
        let mut a = MetricsSnapshot::new();
        a.set("x", 1);
        let mut b = MetricsSnapshot::new();
        b.set("y", 4);
        let d = a.diff(&b);
        assert_eq!(d.try_get("x"), Some(1));
        assert_eq!(d.try_get("y"), Some(0), "labels only in `earlier` survive at 0");
    }

    #[test]
    fn hit_rate_and_render() {
        let mut m = MetricsSnapshot::new();
        m.set("kernel.tlb_hits", 3);
        m.set("kernel.tlb_misses", 1);
        assert_eq!(m.hit_rate("kernel.tlb_hits", "kernel.tlb_misses"), Some(0.75));
        assert_eq!(m.hit_rate("a", "b"), None);
        let r = m.render();
        assert!(r.contains("kernel.tlb_hits"));
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 2);
    }

    #[test]
    fn iter_is_sorted() {
        let mut m = MetricsSnapshot::new();
        m.set("z.last", 1);
        m.set("a.first", 2);
        let keys: Vec<&str> = m.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["a.first", "z.last"]);
    }
}
