//! The assembled machine: off-die RAM, MPBs, TAS registers, GIC, and the
//! deterministic executor that runs per-core programs against them.

use crate::config::SccConfig;
use crate::core::CoreCtx;
use crate::error::HwError;
use crate::exec::{DeadlockUnwind, Scheduler};
use crate::faults::FaultState;
use crate::gic::Gic;
use crate::instr::TraceRing;
use crate::mpb::MpbArray;
use crate::par::{Engine, ParEngine};
use crate::perf::PerfCounters;
use crate::ram::{AtomicWords, FrameOwners, MemMap};
use crate::tas::TasBank;
use crate::timing::Cycles;
use crate::topology::CoreId;
use std::sync::Arc;

/// Shared machine state reachable from every core context.
///
/// Raw accessors on `ram` and `mpb` are un-timed; they exist for
/// wait-condition peeks, harness setup and test assertions. All timed access
/// goes through [`CoreCtx`].
pub struct MachineInner {
    pub cfg: SccConfig,
    pub map: MemMap,
    /// Off-die DDR3 memory.
    pub ram: AtomicWords,
    /// The per-core on-die message-passing buffers.
    pub mpb: MpbArray,
    /// Test-and-set registers.
    pub tas: TasBank,
    /// Global interrupt controller.
    pub gic: Gic,
    /// Host-side exclusive-ownership registry over the shared region's
    /// frames, maintained by the SVM layer and consulted by the parallel
    /// engine's access classifier (unused — all zero — in serial mode).
    pub frame_owners: FrameOwners,
    /// Runtime state of the configured fault-injection plan (empty and
    /// inert by default).
    pub faults: FaultState,
}

/// Per-core outcome of a [`Machine::run_on`] call.
#[derive(Debug)]
pub struct CoreResult<R> {
    pub core: CoreId,
    pub result: R,
    /// The core's virtual clock when its program returned.
    pub clock: Cycles,
    pub perf: PerfCounters,
    /// The core's structured-event ring (empty without the `trace`
    /// feature).
    pub trace: TraceRing,
}

/// The simulated SCC. One `Machine` owns all globally visible state; each
/// call to [`Machine::run_on`] boots a set of cores, runs their programs to
/// completion under the deterministic executor, and returns per-core
/// results. Machine memory persists across invocations, mirroring hardware
/// whose DRAM is not cleared between program runs.
pub struct Machine {
    inner: Arc<MachineInner>,
}

impl Machine {
    /// Build a machine from a validated configuration.
    pub fn new(cfg: SccConfig) -> Result<Machine, HwError> {
        cfg.validate().map_err(HwError::BadConfig)?;
        let map = MemMap::new(&cfg);
        Ok(Machine {
            inner: Arc::new(MachineInner {
                ram: AtomicWords::new(map.ram_bytes()),
                mpb: MpbArray::new(cfg.ncores),
                tas: TasBank::new(cfg.ncores),
                gic: Gic::new(cfg.ncores),
                frame_owners: FrameOwners::new(map.shared_pages()),
                faults: FaultState::new(cfg.faults.clone()),
                map,
                cfg,
            }),
        })
    }

    /// Access to the shared state (for peeks in tests and harnesses).
    pub fn inner(&self) -> &Arc<MachineInner> {
        &self.inner
    }

    /// The machine configuration.
    pub fn cfg(&self) -> &SccConfig {
        &self.inner.cfg
    }

    /// Run `f` on the first `n` cores.
    pub fn run<R, F>(&self, n: usize, f: F) -> Result<Vec<CoreResult<R>>, HwError>
    where
        R: Send,
        F: Fn(&mut CoreCtx) -> R + Send + Sync,
    {
        let cores: Vec<CoreId> = (0..n)
            .map(|i| {
                CoreId::try_new(i, &self.inner.cfg.topo)
                    .map_err(|e| HwError::BadConfig(e.to_string()))
            })
            .collect::<Result<_, _>>()?;
        self.run_on(&cores, f)
    }

    /// Run `f` on an explicit set of cores (e.g. cores 0 and 30 for the
    /// paper's Figure 7). Results are returned in the order of `cores`.
    pub fn run_on<R, F>(&self, cores: &[CoreId], f: F) -> Result<Vec<CoreResult<R>>, HwError>
    where
        R: Send,
        F: Fn(&mut CoreCtx) -> R + Send + Sync,
    {
        assert!(!cores.is_empty(), "need at least one core");
        let mut seen = vec![false; self.inner.cfg.ncores];
        for c in cores {
            assert!(
                c.idx() < self.inner.cfg.ncores,
                "{c:?} does not exist on this {}-core machine",
                self.inner.cfg.ncores
            );
            assert!(!seen[c.idx()], "{c:?} listed twice");
            seen[c.idx()] = true;
        }
        let engine = Arc::new(if self.inner.cfg.host_fast.parallel {
            // Fault windows and non-baton elections are defined against
            // the serial reference schedule; the parallel engine replays
            // exactly that schedule and supports nothing else.
            assert!(
                self.inner.cfg.sched.is_baton(),
                "the parallel engine only replays the Baton schedule"
            );
            assert!(
                self.inner.cfg.faults.is_empty(),
                "fault injection requires the serial engine"
            );
            Engine::Parallel(ParEngine::new(cores))
        } else {
            Engine::Serial({
                let sched = Scheduler::with_policy(
                    cores.len(),
                    self.inner.cfg.host_fast.fast_yield,
                    self.inner.cfg.sched.clone(),
                );
                sched.set_election_budget(self.inner.cfg.election_budget);
                sched
            })
        });

        std::thread::scope(|s| {
            let mut handles = Vec::with_capacity(cores.len());
            for (slot, &core) in cores.iter().enumerate() {
                let f = &f;
                let inner = Arc::clone(&self.inner);
                let engine = Arc::clone(&engine);
                handles.push(s.spawn(move || {
                    engine.wait_for_turn(slot);
                    let mut ctx = CoreCtx::new(core, slot, inner, Arc::clone(&engine));
                    // A program panic (assertion failure, mailbox retry
                    // exhaustion) would otherwise kill this thread while
                    // it holds the baton, parking every peer forever —
                    // abort the engine so they unwind, then re-raise.
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                        || f(&mut ctx),
                    ));
                    let result = match result {
                        Ok(r) => r,
                        Err(p) => {
                            if p.downcast_ref::<DeadlockUnwind>().is_none() {
                                engine.abort(slot);
                            }
                            std::panic::resume_unwind(p);
                        }
                    };
                    ctx.finalize_par_stats();
                    engine.finish(slot);
                    CoreResult {
                        core,
                        result,
                        clock: Cycles(ctx.now()),
                        perf: ctx.perf,
                        trace: ctx.take_trace(),
                    }
                }));
            }
            let mut out = Vec::with_capacity(handles.len());
            let mut panic_payload = None;
            for h in handles {
                match h.join() {
                    Ok(r) => out.push(r),
                    Err(p) => {
                        if p.downcast_ref::<DeadlockUnwind>().is_none() {
                            panic_payload.get_or_insert(p);
                        }
                    }
                }
            }
            // A non-deadlock panic (assertion failure in a core program)
            // takes priority: propagate it so tests fail loudly.
            if let Some(p) = panic_payload {
                std::panic::resume_unwind(p);
            }
            if let Some(err) = engine.deadlock_report() {
                return Err((*err).clone());
            }
            // The park watchdog lives in the scheduler, not in any one
            // core's context; fold its count into the first result so it
            // reaches the metrics registry as `exec.park_watchdog`.
            if let Engine::Serial(sched) = &*engine {
                if let Some(first) = out.first_mut() {
                    first.perf.park_watchdog += sched.park_watchdog_count();
                    first.perf.elections += sched.elections();
                }
            }
            Ok(out)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::MemAttr;

    #[test]
    fn two_cores_share_ram() {
        let m = Machine::new(SccConfig::small()).unwrap();
        let shared = m.inner().map.shared_base();
        let res = m
            .run(2, |c| {
                if c.id().idx() == 0 {
                    c.write(shared, 4, 42, MemAttr::UNCACHED);
                    0
                } else {
                    // Wait until core 0's write lands (uncached: immediate).
                    let mach = Arc::clone(c.machine());
                    c.wait_until("the flag word", move || {
                        let v = mach.ram.read(shared, 4);
                        (v != 0).then_some((v, 0))
                    })
                }
            })
            .unwrap();
        assert_eq!(res[1].result, 42);
    }

    #[test]
    fn results_in_core_order() {
        let m = Machine::new(SccConfig::small()).unwrap();
        let cores = [CoreId::new(30), CoreId::new(0), CoreId::new(7)];
        let res = m.run_on(&cores, |c| c.id().idx()).unwrap();
        let got: Vec<usize> = res.iter().map(|r| r.result).collect();
        assert_eq!(got, vec![30, 0, 7]);
    }

    #[test]
    fn deadlock_surfaces_as_error() {
        let m = Machine::new(SccConfig::small()).unwrap();
        let err = m
            .run(2, |c| {
                c.wait_until::<()>("a mail that never arrives", || None);
            })
            .unwrap_err();
        assert!(matches!(err, HwError::Deadlock { .. }));
    }

    #[test]
    fn memory_persists_across_runs() {
        let m = Machine::new(SccConfig::small()).unwrap();
        let shared = m.inner().map.shared_base();
        m.run(1, |c| c.write(shared, 4, 0xCAFE, MemAttr::UNCACHED))
            .unwrap();
        let v = m
            .run(1, |c| c.read(shared, 4, MemAttr::UNCACHED))
            .unwrap()
            .pop()
            .unwrap()
            .result;
        assert_eq!(v, 0xCAFE);
    }

    #[test]
    fn core_panic_unwinds_peers_instead_of_wedging() {
        // Core 1 panics while cores 0 and 2 are parked on conditions that
        // will never hold. Without the abort path the panicking thread
        // dies holding the baton and the peers park forever; with it the
        // run unwinds and the original payload propagates.
        let m = Machine::new(SccConfig::small()).unwrap();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            m.run(3, |c| {
                if c.id().idx() == 1 {
                    panic!("planted core-program panic");
                }
                c.wait_until::<()>("a flag that is never written", || None);
            })
        }));
        let payload = caught.expect_err("the planted panic must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("<non-str payload>");
        assert!(msg.contains("planted core-program panic"), "got: {msg}");
    }

    #[test]
    #[should_panic(expected = "listed twice")]
    fn duplicate_cores_rejected() {
        let m = Machine::new(SccConfig::small()).unwrap();
        let _ = m.run_on(&[CoreId::new(1), CoreId::new(1)], |_| ());
    }

    #[test]
    fn clocks_are_deterministic() {
        let run = || {
            let m = Machine::new(SccConfig::small()).unwrap();
            let shared = m.inner().map.shared_base();
            let res = m
                .run(4, |c| {
                    let me = c.id().idx() as u32;
                    for i in 0..64u32 {
                        c.write(shared + 4096 * me + 4 * i, 4, i as u64, MemAttr::SHARED_MPBT_WT);
                        let _ = c.read(shared + 4096 * me + 4 * i, 4, MemAttr::SHARED_MPBT_WT);
                    }
                    c.flush_wcb();
                    c.now()
                })
                .unwrap();
            res.into_iter().map(|r| r.result).collect::<Vec<u64>>()
        };
        assert_eq!(run(), run());
    }
}
