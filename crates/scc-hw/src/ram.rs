//! Off-die DDR3 memory and the physical address map.
//!
//! The SCC splits its off-die memory into one **private** region per core
//! (exclusively owned, safe to cache write-back) and one **shared** region
//! reachable by everyone (cache coherence, if desired, is software's
//! problem — that is the whole point of the paper). Each region physically
//! lives behind one of the topology's memory controllers; a core's private
//! region sits behind its nearest controller (the quadrant rule on the
//! SCC), and the shared region is striped across all controllers in
//! contiguous slices.
//!
//! The backing store is a flat array of `AtomicU32` words. `Relaxed`
//! ordering is sufficient: under the deterministic executor, cross-thread
//! happens-before is established by the scheduler's mutex, and in a
//! free-running configuration every protocol in the upper layers publishes
//! data via flag words before signalling, mirroring what real non-coherent
//! hardware requires anyway.

use crate::config::{SccConfig, PAGE_BYTES};
use crate::topology::CoreId;
use std::sync::atomic::{AtomicU32, Ordering};

/// Physical base address of the MPB window (on-die memory, see `mpb.rs`).
pub const MPB_PA_BASE: u32 = 0xC000_0000;

/// A flat array of atomic 32-bit words with byte-granular accessors.
pub struct AtomicWords {
    words: Box<[AtomicU32]>,
}

impl AtomicWords {
    /// Allocate `bytes` of zeroed storage (`bytes` must be word-aligned).
    pub fn new(bytes: usize) -> Self {
        assert_eq!(bytes % 4, 0, "size must be word aligned");
        let mut v = Vec::with_capacity(bytes / 4);
        v.resize_with(bytes / 4, || AtomicU32::new(0));
        AtomicWords {
            words: v.into_boxed_slice(),
        }
    }

    /// Size in bytes.
    #[inline]
    pub fn len_bytes(&self) -> usize {
        self.words.len() * 4
    }

    /// Read `len` bytes (1..=8) starting at byte offset `off`, little-endian.
    #[inline]
    pub fn read(&self, off: u32, len: usize) -> u64 {
        debug_assert!((1..=8).contains(&len));
        let off = off as usize;
        assert!(
            off + len <= self.len_bytes(),
            "read of {len}B at {off:#x} out of bounds ({:#x})",
            self.len_bytes()
        );
        if off.is_multiple_of(4) && len == 4 {
            return self.words[off / 4].load(Ordering::Relaxed) as u64;
        }
        if off.is_multiple_of(4) && len == 8 {
            let lo = self.words[off / 4].load(Ordering::Relaxed) as u64;
            let hi = self.words[off / 4 + 1].load(Ordering::Relaxed) as u64;
            return lo | (hi << 32);
        }
        let mut out = 0u64;
        for i in 0..len {
            let b = off + i;
            let w = self.words[b / 4].load(Ordering::Relaxed);
            let byte = (w >> ((b % 4) * 8)) & 0xff;
            out |= (byte as u64) << (i * 8);
        }
        out
    }

    /// Write the low `len` bytes (1..=8) of `val` at byte offset `off`.
    #[inline]
    pub fn write(&self, off: u32, len: usize, val: u64) {
        debug_assert!((1..=8).contains(&len));
        let off = off as usize;
        assert!(
            off + len <= self.len_bytes(),
            "write of {len}B at {off:#x} out of bounds ({:#x})",
            self.len_bytes()
        );
        if off.is_multiple_of(4) && len == 4 {
            self.words[off / 4].store(val as u32, Ordering::Relaxed);
            return;
        }
        if off.is_multiple_of(4) && len == 8 {
            self.words[off / 4].store(val as u32, Ordering::Relaxed);
            self.words[off / 4 + 1].store((val >> 32) as u32, Ordering::Relaxed);
            return;
        }
        for i in 0..len {
            let b = off + i;
            let byte = ((val >> (i * 8)) & 0xff) as u32;
            let w = &self.words[b / 4];
            let shift = (b % 4) * 8;
            let mut cur = w.load(Ordering::Relaxed);
            loop {
                let new = (cur & !(0xff << shift)) | (byte << shift);
                match w.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
                    Ok(_) => break,
                    Err(c) => cur = c,
                }
            }
        }
    }

    /// Read one 32-byte line starting at word-aligned `off`: one bounds
    /// check, eight relaxed word loads. The memory engine moves whole cache
    /// lines this way; going through [`AtomicWords::read`] per word costs a
    /// bounds check and an alignment test each.
    #[inline]
    pub fn read_line(&self, off: u32) -> [u8; 32] {
        assert_eq!(off % 4, 0, "line read must be word aligned");
        let w0 = off as usize / 4;
        assert!(
            w0 + 8 <= self.words.len(),
            "line read at {off:#x} out of bounds ({:#x})",
            self.len_bytes()
        );
        let mut out = [0u8; 32];
        for i in 0..8 {
            let v = self.words[w0 + i].load(Ordering::Relaxed);
            out[i * 4..i * 4 + 4].copy_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Write a full 32-byte line at word-aligned `off` (eight word stores).
    #[inline]
    pub fn write_line(&self, off: u32, data: &[u8; 32]) {
        self.write_line_masked(off, data, u32::MAX);
    }

    /// Write the bytes of `data` selected by `mask` (one bit per byte) at
    /// word-aligned `off`. Fully-selected words are plain stores; partial
    /// words go through one compare-exchange to leave the unselected bytes
    /// of the word untouched.
    pub fn write_line_masked(&self, off: u32, data: &[u8; 32], mask: u32) {
        assert_eq!(off % 4, 0, "line write must be word aligned");
        let w0 = off as usize / 4;
        assert!(
            w0 + 8 <= self.words.len(),
            "line write at {off:#x} out of bounds ({:#x})",
            self.len_bytes()
        );
        for i in 0..8 {
            let m = (mask >> (i * 4)) & 0xf;
            if m == 0 {
                continue;
            }
            let val = u32::from_le_bytes(data[i * 4..i * 4 + 4].try_into().unwrap());
            let w = &self.words[w0 + i];
            if m == 0xf {
                w.store(val, Ordering::Relaxed);
                continue;
            }
            let mut bmask = 0u32;
            for k in 0..4 {
                if m & (1 << k) != 0 {
                    bmask |= 0xff << (k * 8);
                }
            }
            let mut cur = w.load(Ordering::Relaxed);
            loop {
                let new = (cur & !bmask) | (val & bmask);
                match w.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
                    Ok(_) => break,
                    Err(c) => cur = c,
                }
            }
        }
    }
}

/// Exclusive-ownership registry over the shared region's 4 KiB frames,
/// mirroring the SVM layer's strong-model owner vector on the host side.
///
/// The parallel conservative engine ([`crate::par`]) uses it to classify
/// accesses: a frame whose registered owner is the accessing core is
/// *core-private* — no other core may legally touch it until an ownership
/// hand-off, which itself is a globally visible operation — so reads and
/// writes to it can run ahead outside the safe window. The registry is
/// advisory for correctness of the *simulation* (an unregistered frame is
/// simply treated as visible) but must never claim exclusivity that the
/// protocol does not guarantee.
///
/// Entries store `owner_index + 1`, with 0 meaning unowned/shared. All
/// accesses are relaxed: claims and releases happen on the owning core's
/// own thread, and cross-thread ordering comes from the engine's mutex.
pub struct FrameOwners {
    owners: Box<[AtomicU32]>,
    /// Per-frame ownership epoch: bumped on every claim and release, so the
    /// SVM ownership directory can tag first-touch decisions with the
    /// ownership generation they were made under (parallel-engine
    /// diagnostics; deterministic because same-frame transitions are
    /// protocol-ordered).
    epochs: Box<[AtomicU32]>,
}

impl FrameOwners {
    pub fn new(frames: usize) -> Self {
        let mut v = Vec::with_capacity(frames);
        v.resize_with(frames, || AtomicU32::new(0));
        let mut e = Vec::with_capacity(frames);
        e.resize_with(frames, || AtomicU32::new(0));
        FrameOwners {
            owners: v.into_boxed_slice(),
            epochs: e.into_boxed_slice(),
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.owners.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.owners.is_empty()
    }

    /// Register `owner` as the exclusive owner of `frame`. Out-of-range
    /// frames are ignored (callers pass raw pfns; only shared frames have
    /// entries).
    #[inline]
    pub fn claim(&self, frame: usize, owner: usize) {
        if let Some(slot) = self.owners.get(frame) {
            slot.store(owner as u32 + 1, Ordering::Relaxed);
            self.epochs[frame].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Drop any exclusivity claim on `frame`.
    #[inline]
    pub fn release(&self, frame: usize) {
        if let Some(slot) = self.owners.get(frame) {
            slot.store(0, Ordering::Relaxed);
            self.epochs[frame].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The ownership epoch of `frame`: how many claim/release transitions
    /// it has gone through (0 for out-of-range frames).
    #[inline]
    pub fn epoch_of(&self, frame: usize) -> u32 {
        self.epochs
            .get(frame)
            .map_or(0, |e| e.load(Ordering::Relaxed))
    }

    /// Is `owner` the registered exclusive owner of `frame`?
    #[inline]
    pub fn owned_by(&self, frame: usize, owner: usize) -> bool {
        match self.owners.get(frame) {
            Some(slot) => slot.load(Ordering::Relaxed) == owner as u32 + 1,
            None => false,
        }
    }
}

/// What kind of device a physical address resolves to.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Backing {
    /// Off-die DDR3, served by the given memory controller.
    Ram { mc: usize },
    /// On-die message-passing buffer of the given core's tile.
    Mpb { owner: CoreId },
}

/// The physical address map of the simulated machine.
#[derive(Clone, Debug)]
pub struct MemMap {
    ncores: usize,
    num_mcs: u32,
    private_per_core: u32,
    shared_base: u32,
    shared_bytes: u32,
    /// `log2(private_per_core)` when it is a power of two: `resolve` sits
    /// on the modelled memory engine's miss path, and a shift beats the
    /// integer division there.
    private_shift: Option<u32>,
    /// Same for the per-memory-controller slice of the shared region.
    slice_shift: Option<u32>,
    /// Nearest memory controller per core, precomputed from the topology —
    /// `resolve` on the private region is hot and must not walk the mesh.
    mc_of_core: Box<[u8]>,
}

fn shift_of(n: u32) -> Option<u32> {
    (n > 0 && n.is_power_of_two()).then(|| n.trailing_zeros())
}

impl MemMap {
    pub fn new(cfg: &SccConfig) -> Self {
        let private_per_core = cfg.private_bytes_per_core as u32;
        let shared_bytes = cfg.shared_bytes as u32;
        let num_mcs = cfg.topo.num_mcs() as u32;
        debug_assert!(cfg.topo.num_mcs() <= 256, "mc_of_core entries are u8");
        let mc_of_core = (0..cfg.ncores)
            .map(|i| cfg.topo.nearest_mc(CoreId::from_raw(i)) as u8)
            .collect();
        MemMap {
            ncores: cfg.ncores,
            num_mcs,
            private_per_core,
            shared_base: (cfg.ncores * cfg.private_bytes_per_core) as u32,
            shared_bytes,
            private_shift: shift_of(private_per_core),
            slice_shift: shift_of(shared_bytes / num_mcs),
            mc_of_core,
        }
    }

    /// Number of memory controllers of the configured topology.
    #[inline]
    pub fn num_mcs(&self) -> usize {
        self.num_mcs as usize
    }

    /// Total bytes of off-die RAM.
    #[inline]
    pub fn ram_bytes(&self) -> usize {
        (self.shared_base + self.shared_bytes) as usize
    }

    /// Base physical address of a core's private region.
    #[inline]
    pub fn private_base(&self, core: CoreId) -> u32 {
        assert!(core.idx() < self.ncores);
        core.idx() as u32 * self.private_per_core
    }

    /// Size in bytes of each private region.
    #[inline]
    pub fn private_bytes(&self) -> u32 {
        self.private_per_core
    }

    /// Base physical address of the shared region.
    #[inline]
    pub fn shared_base(&self) -> u32 {
        self.shared_base
    }

    /// Size in bytes of the shared region.
    #[inline]
    pub fn shared_bytes(&self) -> u32 {
        self.shared_bytes
    }

    /// Base of the slice of the shared region behind memory controller `mc`.
    #[inline]
    pub fn shared_slice_base(&self, mc: usize) -> u32 {
        assert!(mc < self.num_mcs as usize);
        self.shared_base + (self.shared_bytes / self.num_mcs) * mc as u32
    }

    /// Bytes per shared slice.
    #[inline]
    pub fn shared_slice_bytes(&self) -> u32 {
        self.shared_bytes / self.num_mcs
    }

    /// Number of 4 KiB pages in the shared region.
    #[inline]
    pub fn shared_pages(&self) -> usize {
        self.shared_bytes as usize / PAGE_BYTES
    }

    /// Resolve a physical address to its backing device.
    #[inline]
    pub fn resolve(&self, pa: u32) -> Backing {
        if pa >= MPB_PA_BASE {
            let off = pa - MPB_PA_BASE;
            let owner = (off as usize) / crate::config::MPB_BYTES;
            assert!(
                owner < self.ncores,
                "PA {pa:#x} beyond the last MPB"
            );
            return Backing::Mpb {
                owner: CoreId::from_raw(owner),
            };
        }
        assert!(
            (pa as usize) < self.ram_bytes(),
            "PA {pa:#x} outside RAM ({:#x} bytes)",
            self.ram_bytes()
        );
        let mc = if pa < self.shared_base {
            // Private region: lives behind the owner's nearest controller.
            let idx = match self.private_shift {
                Some(s) => pa >> s,
                None => pa / self.private_per_core,
            };
            self.mc_of_core[idx as usize] as usize
        } else {
            let off = pa - self.shared_base;
            (match self.slice_shift {
                Some(s) => off >> s,
                None => off / self.shared_slice_bytes().max(1),
            }) as usize
        };
        Backing::Ram {
            mc: mc.min(self.num_mcs as usize - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> MemMap {
        MemMap::new(&SccConfig::small())
    }

    #[test]
    fn words_roundtrip_aligned() {
        let w = AtomicWords::new(64);
        w.write(0, 4, 0xdead_beef);
        assert_eq!(w.read(0, 4), 0xdead_beef);
        w.write(8, 8, 0x0123_4567_89ab_cdef);
        assert_eq!(w.read(8, 8), 0x0123_4567_89ab_cdef);
    }

    #[test]
    fn words_roundtrip_unaligned() {
        let w = AtomicWords::new(64);
        w.write(3, 2, 0xabcd);
        assert_eq!(w.read(3, 2), 0xabcd);
        w.write(5, 8, 0x1122_3344_5566_7788);
        assert_eq!(w.read(5, 8), 0x1122_3344_5566_7788);
        // Neighbours untouched.
        assert_eq!(w.read(13, 1), 0);
    }

    #[test]
    fn words_byte_writes_do_not_clobber() {
        let w = AtomicWords::new(8);
        w.write(0, 4, 0xffff_ffff);
        w.write(1, 1, 0x00);
        assert_eq!(w.read(0, 4), 0xffff_00ff);
    }

    #[test]
    #[should_panic]
    fn words_oob_read_panics() {
        AtomicWords::new(8).read(6, 4);
    }

    #[test]
    fn map_private_then_shared() {
        let m = map();
        assert_eq!(m.private_base(CoreId::new(0)), 0);
        assert_eq!(
            m.private_base(CoreId::new(1)),
            SccConfig::small().private_bytes_per_core as u32
        );
        assert_eq!(
            m.shared_base(),
            (48 * SccConfig::small().private_bytes_per_core) as u32
        );
    }

    #[test]
    fn map_resolve_private_uses_quadrant_mc() {
        let m = map();
        let pa = m.private_base(CoreId::new(47)) + 16;
        assert_eq!(m.resolve(pa), Backing::Ram { mc: 3 });
    }

    #[test]
    fn map_resolve_shared_slices() {
        let m = map();
        for mc in 0..4 {
            let pa = m.shared_slice_base(mc);
            assert_eq!(m.resolve(pa), Backing::Ram { mc });
        }
        // Last byte of shared belongs to mc 3.
        let last = m.shared_base() + m.shared_bytes() - 1;
        assert_eq!(m.resolve(last), Backing::Ram { mc: 3 });
    }

    #[test]
    fn map_resolve_mpb() {
        let m = map();
        assert_eq!(
            m.resolve(MPB_PA_BASE),
            Backing::Mpb {
                owner: CoreId::new(0)
            }
        );
        assert_eq!(
            m.resolve(MPB_PA_BASE + 8192 * 30 + 100),
            Backing::Mpb {
                owner: CoreId::new(30)
            }
        );
    }
}
