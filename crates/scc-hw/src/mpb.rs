//! The on-die Message-Passing Buffers: 8 KiB of fast SRAM per core, readable
//! and writable by *every* core. Physically the MPB of core `c` lives on
//! `c`'s tile, so access latency grows with mesh distance to that tile.
//!
//! MPB pages are tagged `MPBT` in the page tables; accesses bypass the L2
//! cache and are the target of the `CL1INVMB` instruction (see `cache.rs`).

use crate::config::{LINE_BYTES, MPB_BYTES};
use crate::ram::{AtomicWords, MPB_PA_BASE};
use crate::topology::CoreId;
use std::sync::atomic::{AtomicU64, Ordering};

/// All populated cores' message-passing buffers.
pub struct MpbArray {
    ncores: usize,
    words: AtomicWords,
    /// Per-32-byte-line visibility stamps: the packed election key
    /// (`crate::timing::pack_key`) of the last *timed* write landing in the
    /// line, recorded by the memory engine. Mailbox slots span whole lines,
    /// so this gives each slot's flag/payload a slot-granular stamp — used
    /// by the parallel engine's diagnostics and the determinism stress
    /// suite (the stamp stream must be bit-identical across executors).
    stamps: Vec<AtomicU64>,
}

impl MpbArray {
    pub fn new(ncores: usize) -> Self {
        MpbArray {
            ncores,
            words: AtomicWords::new(ncores * MPB_BYTES),
            stamps: (0..ncores * MPB_BYTES / LINE_BYTES)
                .map(|_| AtomicU64::new(0))
                .collect(),
        }
    }

    /// Record the packed election key of a timed write covering `pa`.
    #[inline]
    pub fn note_write(&self, pa: u32, packed_key: u64) {
        let line = self.flat(pa) as usize / LINE_BYTES;
        self.stamps[line].store(packed_key, Ordering::Relaxed);
    }

    /// The visibility stamp of the 32-byte line containing `pa`: the packed
    /// election key of the last timed write, 0 if never written.
    #[inline]
    pub fn stamp_of(&self, pa: u32) -> u64 {
        self.stamps[self.flat(pa) as usize / LINE_BYTES].load(Ordering::Relaxed)
    }

    /// Physical address of byte `off` inside core `c`'s MPB.
    #[inline]
    pub fn pa(core: CoreId, off: usize) -> u32 {
        assert!(off < MPB_BYTES, "MPB offset {off:#x} out of range");
        MPB_PA_BASE + (core.idx() * MPB_BYTES) as u32 + off as u32
    }

    /// Inverse of [`MpbArray::pa`].
    #[inline]
    pub fn owner_and_offset(pa: u32) -> (CoreId, usize) {
        let off = (pa - MPB_PA_BASE) as usize;
        (CoreId::from_raw(off / MPB_BYTES), off % MPB_BYTES)
    }

    #[inline]
    fn flat(&self, pa: u32) -> u32 {
        let off = pa - MPB_PA_BASE;
        assert!(
            (off as usize) < self.ncores * MPB_BYTES,
            "MPB PA {pa:#x} out of range"
        );
        off
    }

    /// Raw (un-timed, uncached) read — used by the memory engine and by
    /// wait-condition peeks.
    #[inline]
    pub fn read(&self, pa: u32, len: usize) -> u64 {
        self.words.read(self.flat(pa), len)
    }

    /// Raw (un-timed, uncached) write.
    #[inline]
    pub fn write(&self, pa: u32, len: usize, val: u64) {
        self.words.write(self.flat(pa), len, val)
    }

    /// Read one 32-byte line (see [`AtomicWords::read_line`]).
    #[inline]
    pub fn read_line(&self, pa: u32) -> [u8; 32] {
        self.words.read_line(self.flat(pa))
    }

    /// Masked 32-byte line write (see [`AtomicWords::write_line_masked`]).
    #[inline]
    pub fn write_line_masked(&self, pa: u32, data: &[u8; 32], mask: u32) {
        self.words.write_line_masked(self.flat(pa), data, mask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pa_roundtrip() {
        let pa = MpbArray::pa(CoreId::new(7), 0x123);
        assert_eq!(
            MpbArray::owner_and_offset(pa),
            (CoreId::new(7), 0x123usize)
        );
    }

    #[test]
    fn independent_buffers() {
        let m = MpbArray::new(48);
        m.write(MpbArray::pa(CoreId::new(0), 0), 4, 0x11111111);
        m.write(MpbArray::pa(CoreId::new(1), 0), 4, 0x22222222);
        assert_eq!(m.read(MpbArray::pa(CoreId::new(0), 0), 4), 0x11111111);
        assert_eq!(m.read(MpbArray::pa(CoreId::new(1), 0), 4), 0x22222222);
    }

    #[test]
    #[should_panic]
    fn offset_out_of_range_panics() {
        MpbArray::pa(CoreId::new(0), MPB_BYTES);
    }

    #[test]
    fn stamps_are_line_granular() {
        let m = MpbArray::new(2);
        let pa = MpbArray::pa(CoreId::new(1), 64);
        assert_eq!(m.stamp_of(pa), 0);
        m.note_write(pa, 0xabcd);
        // Same line: stamped; next line: untouched.
        assert_eq!(m.stamp_of(pa + 31), 0xabcd);
        assert_eq!(m.stamp_of(pa + 32), 0);
    }
}
