//! Deterministic fault injection: the machine-level fault plane.
//!
//! A [`FaultPlan`] on [`crate::SccConfig`] describes degraded-channel
//! conditions to inject into a run: dropped or delayed GIC IPIs, delayed
//! mailbox slot visibility, TAS acquisition stalls, and bounded core
//! freeze windows. Every fault is charged to *simulated* cycles (or
//! simply skips a simulated side effect), so a faulted run is exactly as
//! deterministic and replayable as a clean one — the plan is part of the
//! machine configuration, not a runtime random process.
//!
//! Injection sites live on the hot paths of `CoreCtx` and the mailbox
//! (`send_ipi`, `tas_try`, `yield_now`, mail post), all guarded by a
//! cached "plan is empty" flag so the default configuration pays one
//! branch per site.
//!
//! Each plan entry matches a *window* of the events it applies to: the
//! `nth` field skips that many matching events first, and `count` bounds
//! how many consecutive matches after that are hit. Per-entry hit
//! counters live in [`FaultState`] on the machine, so the windows are
//! counted in the global deterministic event order of the serial
//! executor. The parallel engine refuses non-empty plans (see
//! `Machine::run_on`): fault windows are meaningful only against the
//! serial reference schedule.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// One fault to inject. `None` in a source/destination filter means
/// "any core"; `reg: None` matches any TAS register.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Fault {
    /// Silently drop matching IPIs: the sender charges the raise cost and
    /// proceeds, but the interrupt never reaches the destination GIC.
    DropIpi {
        src: Option<usize>,
        dst: Option<usize>,
        nth: u32,
        count: u32,
    },
    /// Delay matching IPIs by `cycles`: the interrupt is raised with a
    /// stamp that far in the destination's future.
    DelayIpi {
        src: Option<usize>,
        dst: Option<usize>,
        nth: u32,
        count: u32,
        cycles: u64,
    },
    /// Delay the visibility of matching mailbox slot writes by `cycles`:
    /// the mail's stamp — which the receiver synchronises to on pickup —
    /// is pushed into the future.
    DelayMailSlot {
        src: Option<usize>,
        dst: Option<usize>,
        nth: u32,
        count: u32,
        cycles: u64,
    },
    /// Stall matching test-and-set attempts by `cycles` before the
    /// attempt is made (contention on the register's mesh path).
    StallTas {
        reg: Option<usize>,
        nth: u32,
        count: u32,
        cycles: u64,
    },
    /// Freeze one core for `cycles` once its clock reaches `at`: applied
    /// at the core's next yield point, which jumps its clock past the
    /// window (the core makes no progress "during" it). One-shot.
    FreezeCore { core: usize, at: u64, cycles: u64 },
}

/// A set of faults to inject into a run. The default (empty) plan leaves
/// every injection site inert and bit-identical to a build without the
/// fault plane.
#[derive(Clone, Debug, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

/// What an IPI injection site should do with a matching raise.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum IpiOutcome {
    Deliver,
    Drop,
    /// Deliver with the stamp pushed this many cycles into the future.
    Delay(u64),
}

fn matches(filter: Option<usize>, v: usize) -> bool {
    filter.is_none_or(|f| f == v)
}

/// Runtime counterpart of a [`FaultPlan`]: the plan plus one hit counter
/// per entry, counting matching events in the deterministic global order
/// so `nth`/`count` windows are stable across identical runs.
pub struct FaultState {
    plan: FaultPlan,
    hits: Vec<AtomicU64>,
}

impl FaultState {
    pub fn new(plan: FaultPlan) -> Self {
        let hits = (0..plan.faults.len()).map(|_| AtomicU64::new(0)).collect();
        FaultState { plan, hits }
    }

    pub fn is_empty(&self) -> bool {
        self.plan.is_empty()
    }

    /// Count a matching event against entry `idx`; `true` if it lands in
    /// the entry's `[nth, nth + count)` window.
    fn armed(&self, idx: usize, nth: u32, count: u32) -> bool {
        let n = self.hits[idx].fetch_add(1, Ordering::Relaxed);
        n >= u64::from(nth) && n < u64::from(nth) + u64::from(count)
    }

    /// Consult the plan for an IPI raise `src -> dst`. A drop beats a
    /// delay when both are armed; multiple armed delays accumulate.
    pub fn ipi_fault(&self, src: usize, dst: usize) -> IpiOutcome {
        let mut delay = 0u64;
        let mut drop = false;
        for (idx, f) in self.plan.faults.iter().enumerate() {
            match *f {
                Fault::DropIpi {
                    src: s,
                    dst: d,
                    nth,
                    count,
                } if matches(s, src) && matches(d, dst) => {
                    drop |= self.armed(idx, nth, count);
                }
                Fault::DelayIpi {
                    src: s,
                    dst: d,
                    nth,
                    count,
                    cycles,
                } if matches(s, src) && matches(d, dst) && self.armed(idx, nth, count) => {
                    delay += cycles;
                }
                _ => {}
            }
        }
        if drop {
            IpiOutcome::Drop
        } else if delay > 0 {
            IpiOutcome::Delay(delay)
        } else {
            IpiOutcome::Deliver
        }
    }

    /// Extra cycles to add to the stamp of a mail posted `src -> dst`.
    pub fn mail_delay(&self, src: usize, dst: usize) -> u64 {
        let mut delay = 0u64;
        for (idx, f) in self.plan.faults.iter().enumerate() {
            if let Fault::DelayMailSlot {
                src: s,
                dst: d,
                nth,
                count,
                cycles,
            } = *f
            {
                if matches(s, src) && matches(d, dst) && self.armed(idx, nth, count) {
                    delay += cycles;
                }
            }
        }
        delay
    }

    /// Extra cycles to charge before a test-and-set attempt on `reg`.
    pub fn tas_stall(&self, reg: usize) -> u64 {
        let mut delay = 0u64;
        for (idx, f) in self.plan.faults.iter().enumerate() {
            if let Fault::StallTas {
                reg: r,
                nth,
                count,
                cycles,
            } = *f
            {
                if matches(r, reg) && self.armed(idx, nth, count) {
                    delay += cycles;
                }
            }
        }
        delay
    }

    /// Cycles to jump `core`'s clock forward at a yield point with clock
    /// `now`. Each `FreezeCore` entry fires at most once, at the first
    /// yield at or past its `at` mark.
    pub fn freeze_jump(&self, core: usize, now: u64) -> u64 {
        let mut jump = 0u64;
        for (idx, f) in self.plan.faults.iter().enumerate() {
            if let Fault::FreezeCore { core: c, at, cycles } = *f {
                if c == core
                    && now >= at
                    && self.hits[idx]
                        .compare_exchange(0, 1, Ordering::Relaxed, Ordering::Relaxed)
                        .is_ok()
                {
                    jump += cycles;
                }
            }
        }
        jump
    }

    /// Per-entry hit counts (matching events seen), for diagnostics.
    pub fn hit_counts(&self) -> Vec<u64> {
        self.hits.iter().map(|h| h.load(Ordering::Relaxed)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_inert() {
        let fs = FaultState::new(FaultPlan::default());
        assert!(fs.is_empty());
        assert_eq!(fs.ipi_fault(0, 1), IpiOutcome::Deliver);
        assert_eq!(fs.mail_delay(0, 1), 0);
        assert_eq!(fs.tas_stall(3), 0);
        assert_eq!(fs.freeze_jump(0, 1_000_000), 0);
    }

    #[test]
    fn drop_window_counts_matching_events_only() {
        let fs = FaultState::new(FaultPlan {
            faults: vec![Fault::DropIpi {
                src: None,
                dst: Some(1),
                nth: 1,
                count: 2,
            }],
        });
        // Raises to other destinations don't advance the window.
        assert_eq!(fs.ipi_fault(0, 2), IpiOutcome::Deliver);
        assert_eq!(fs.ipi_fault(0, 1), IpiOutcome::Deliver); // n=0 < nth
        assert_eq!(fs.ipi_fault(2, 1), IpiOutcome::Drop); // n=1
        assert_eq!(fs.ipi_fault(0, 1), IpiOutcome::Drop); // n=2
        assert_eq!(fs.ipi_fault(0, 1), IpiOutcome::Deliver); // window exhausted
        assert_eq!(fs.hit_counts(), vec![4]);
    }

    #[test]
    fn drop_beats_delay_and_delays_accumulate() {
        let fs = FaultState::new(FaultPlan {
            faults: vec![
                Fault::DelayIpi {
                    src: None,
                    dst: None,
                    nth: 0,
                    count: u32::MAX,
                    cycles: 100,
                },
                Fault::DelayIpi {
                    src: None,
                    dst: None,
                    nth: 0,
                    count: u32::MAX,
                    cycles: 11,
                },
                Fault::DropIpi {
                    src: Some(0),
                    dst: None,
                    nth: 0,
                    count: 1,
                },
            ],
        });
        assert_eq!(fs.ipi_fault(0, 5), IpiOutcome::Drop);
        assert_eq!(fs.ipi_fault(0, 5), IpiOutcome::Delay(111));
    }

    #[test]
    fn freeze_is_one_shot_and_waits_for_the_mark() {
        let fs = FaultState::new(FaultPlan {
            faults: vec![Fault::FreezeCore {
                core: 2,
                at: 5_000,
                cycles: 40_000,
            }],
        });
        assert_eq!(fs.freeze_jump(2, 4_999), 0);
        assert_eq!(fs.freeze_jump(1, 9_000), 0); // other core
        assert_eq!(fs.freeze_jump(2, 5_000), 40_000);
        assert_eq!(fs.freeze_jump(2, 50_000), 0); // one-shot
    }

    #[test]
    fn tas_and_mail_windows() {
        let fs = FaultState::new(FaultPlan {
            faults: vec![
                Fault::StallTas {
                    reg: Some(7),
                    nth: 0,
                    count: 2,
                    cycles: 900,
                },
                Fault::DelayMailSlot {
                    src: Some(0),
                    dst: Some(1),
                    nth: 0,
                    count: 1,
                    cycles: 50_000,
                },
            ],
        });
        assert_eq!(fs.tas_stall(7), 900);
        assert_eq!(fs.tas_stall(6), 0);
        assert_eq!(fs.tas_stall(7), 900);
        assert_eq!(fs.tas_stall(7), 0);
        assert_eq!(fs.mail_delay(0, 1), 50_000);
        assert_eq!(fs.mail_delay(0, 1), 0);
        assert_eq!(fs.mail_delay(1, 0), 0);
    }
}
