//! The parallel conservative execution engine.
//!
//! The serial executor ([`crate::exec::Scheduler`]) passes one baton: a
//! single core thread runs at a time, elected as the minimum of
//! (virtual clock, slot) over runnable cores and blocked cores whose wait
//! condition holds. That schedule is the *specification*. This module
//! executes the same schedule while letting host threads actually run in
//! parallel, exploiting one observation: a core's execution between two
//! scheduler interactions (a **segment**) only needs to be serialised
//! against other cores at its *globally visible* operations. Everything
//! else — clock arithmetic, L1/L2/TLB simulation, WCB merges, reads and
//! writes to memory no other core may legally touch — commutes with every
//! other core's work and can run ahead freely.
//!
//! ## How the election sequence is reproduced exactly
//!
//! Per slot the engine keeps the key of its *oldest un-retired segment*
//! (`keys[slot]`, the virtual clock published when the previous segment
//! ended) and a FIFO of already-completed segment ends (`pending`). Threads
//! never wait to *end* a segment: a yield pushes its end and keeps running
//! the next segment (run-ahead). The engine replays the serial election
//! loop whenever no window is open:
//!
//! * evaluate every blocked slot's registered condition (the state is
//!   quiescent: no window is open, so no visible mutation is in flight);
//! * the winner is min-(key, slot) over runnable slots and satisfiable
//!   blocked slots — the exact serial `finalize`;
//! * a winner whose segment end is already queued is **retired instantly**
//!   (its published clock becomes current, a queued block takes effect, a
//!   queued finish marks it done) and the loop elects again — this is where
//!   the parallelism comes from: segments that already ran are replayed
//!   through the election order at bookkeeping speed;
//! * a winner that is still mid-segment gets the **window**: until that
//!   segment ends, the winner alone may perform globally visible
//!   operations. Its thread is notified in case it is parked in
//!   [`ParEngine::visible`].
//!
//! ## Epochs: lock-free demotion of order points
//!
//! Taking the engine mutex at *every* visible operation is what made the
//! PR 3 engine slower than serial (millions of gated ops, tens of
//! thousands of actual stalls). The engine therefore publishes three
//! lock-free mirrors of its election state, against which a core may
//! *demote* an order point — resolve it without the lock — when no
//! cross-core conflict is possible. A maximal run of demoted operations
//! between two locked interactions is an **epoch**; its boundaries are
//! exactly where real synchronisation happens. Election keys compare as
//! single `u64`s via [`crate::timing::pack_key`] (clock ≪ 8 | slot).
//!
//! * **Open-window mirror** (`open_slot`): the slot currently holding the
//!   window, `usize::MAX` when none. Only the owner's own thread ever
//!   closes its window, so `open_slot == me` read with `Acquire` is a
//!   stable licence for *any* visible operation: the `Release` store that
//!   opened the window happened under the lock, after every serially-prior
//!   segment retired, so all serially-prior writes are host-visible.
//! * **Floor** (`floor`): the packed minimum of `keys` over all non-done
//!   slots (blocked slots included — they hold the floor down), republished
//!   at the end of every election batch. `floor == pack(my_seg_key, me)`
//!   proves this core is the global serial minimum with no pending ends of
//!   its own: nothing can be elected past it, no other slot's window can be
//!   open, and no other slot can be at the floor, so the core may read
//!   *and write* visibly without the lock. The value is stable for the
//!   whole segment: the owner's key cannot advance while it is mid-segment
//!   and every other key only grows.
//! * **Published keys** (`pub_keys`): a per-slot mirror of `keys`
//!   (`u64::MAX` once done), stored with `Release` at every retirement.
//!   For a *read-only* peek of an object with a single known writer
//!   (mailbox flag peeks, iRCCE pipeline flags — the per-object sequence
//!   locks of DESIGN.md §8), `pub_keys[writer] > pack(my_seg_key, me)`
//!   proves every serially-prior write of that writer has retired (and is
//!   visible via the `Acquire` load) and that no serially-prior write can
//!   still be in flight — any in-flight gated or demoted write by the
//!   writer would pin `pub_keys[writer]` at or below its segment key,
//!   which the frontier invariant bounds by ours. Keys are monotone, so a
//!   single pre-read check suffices; there is no retry loop to run.
//!
//! The soundness of all three rests on the **frontier invariant**: while a
//! core is mid-segment and un-retired at key k, every election winner has
//! key ≤ k (the minimum ranges over a set containing k), so a demoted
//! operation can never observe a serially-*future* write; the only hazard
//! is missing a serially-*prior* one, which is exactly what each check
//! rules out. Checker evaluations inside elections may race floor-demoted
//! writes, but only for blocked slots whose keys lie above the floor; such
//! evaluations can never select the winner (the floor-holding core is
//! runnable at the minimum), are discarded, and are recomputed in a
//! quiescent election when they matter. All simulated memory is relaxed
//! atomics, so the races are benign data-wise too.
//!
//! A core reaching a visible operation that fails all three checks calls
//! [`ParEngine::visible`] — the **conflict** path — and proceeds once it
//! holds the open window. Deadlock detection is the serial rule verbatim:
//! an election with no winner while some slot is blocked.
//!
//! ## Host-thread throttling
//!
//! `SCC_PAR_HOST_THREADS=<n>` bounds how many core threads may *run*
//! concurrently (a permit gate, re-acquired after every park). This exists
//! for the CI determinism matrix — the schedule must be bit-identical at
//! any thread count — and for oversubscribed hosts. Unset or `0` means
//! one thread per simulated core.

use crate::error::HwError;
use crate::exec::DeadlockUnwind;
use crate::timing::pack_key;
use crate::topology::CoreId;
use parking_lot::{Condvar, Mutex, MutexGuard};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// `open_slot` value when no window is open.
const NO_SLOT: usize = usize::MAX;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    Runnable,
    Blocked,
    Done,
}

/// A completed-but-not-yet-retired segment end, queued by a run-ahead
/// thread.
enum SegEnd {
    /// The segment ended in a yield; the next segment starts at `next_key`.
    Yield { next_key: u64 },
    /// The segment ended in a wait: key is the block-time clock.
    Block {
        key: u64,
        reason: &'static str,
        checker: Box<dyn FnMut() -> bool + Send>,
    },
    /// The core's program returned.
    Done,
}

struct ParState {
    /// Key (published clock) of each slot's oldest un-retired segment.
    keys: Vec<u64>,
    status: Vec<Status>,
    reasons: Vec<&'static str>,
    /// Completed segment ends awaiting retirement, oldest first.
    pending: Vec<VecDeque<SegEnd>>,
    /// Registered wait conditions of retired-blocked slots; evaluated
    /// inline by whichever thread runs the election loop. Lifetime-erased
    /// borrows of the owning thread's stack — removed, under this lock, on
    /// every exit path of `wait_blocked`.
    checkers: Vec<Option<Box<dyn FnMut() -> bool + Send>>>,
    /// Scratch: last condition evaluation per blocked slot.
    satisfiable: Vec<bool>,
    /// Slot holding the open window, if any.
    open: Option<usize>,
    deadlock: Option<Arc<HwError>>,
    /// Threads currently holding a run permit (host-thread gate).
    running: usize,
    /// Permit capacity, from `SCC_PAR_HOST_THREADS`.
    max_running: usize,
}

/// The parallel conservative engine shared by all core threads of one run.
pub struct ParEngine {
    state: Mutex<ParState>,
    /// One condvar per slot; each slot's thread is its only waiter.
    cvs: Vec<Condvar>,
    /// Waiters for a run permit (host-thread gate).
    gate_cv: Condvar,
    /// Lock-free mirror of `ParState::open` (`NO_SLOT` when none).
    open_slot: AtomicUsize,
    /// Lock-free packed minimum of `keys` over non-done slots
    /// (`u64::MAX` when all are done).
    floor: AtomicU64,
    /// Lock-free per-slot mirror of `keys` (packed; `u64::MAX` once done).
    pub_keys: Vec<AtomicU64>,
    /// CoreId index → slot for the cores of this run (`NO_SLOT` if the
    /// core does not participate).
    slot_of: Vec<usize>,
    /// Host nanoseconds each slot's thread spent parked (windows, waits,
    /// gate) — the raw material of the bench utilisation report.
    park_ns: Vec<AtomicU64>,
}

impl ParEngine {
    pub fn new(cores: &[CoreId]) -> Arc<Self> {
        let nslots = cores.len();
        let max_idx = cores.iter().map(|c| c.idx()).max().unwrap_or(0);
        let mut slot_of = vec![NO_SLOT; max_idx + 1];
        for (slot, c) in cores.iter().enumerate() {
            slot_of[c.idx()] = slot;
        }
        let max_running = std::env::var("SCC_PAR_HOST_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(nslots)
            .min(nslots.max(1));
        Arc::new(ParEngine {
            state: Mutex::new(ParState {
                keys: vec![0; nslots],
                status: vec![Status::Runnable; nslots],
                reasons: vec![""; nslots],
                pending: (0..nslots).map(|_| VecDeque::new()).collect(),
                checkers: (0..nslots).map(|_| None).collect(),
                satisfiable: vec![false; nslots],
                open: None,
                deadlock: None,
                running: 0,
                max_running,
            }),
            cvs: (0..nslots).map(|_| Condvar::new()).collect(),
            gate_cv: Condvar::new(),
            open_slot: AtomicUsize::new(NO_SLOT),
            floor: AtomicU64::new(pack_key(0, 0)),
            pub_keys: (0..nslots)
                .map(|slot| AtomicU64::new(pack_key(0, slot)))
                .collect(),
            slot_of,
            park_ns: (0..nslots).map(|_| AtomicU64::new(0)).collect(),
        })
    }

    // ---- lock-free demotion checks (epoch fast paths) ----

    /// Does `slot` hold the open window? A `true` answer is stable until
    /// the slot's own thread ends its segment, and licenses any visible
    /// operation.
    #[inline]
    pub fn window_open_for(&self, slot: usize) -> bool {
        self.open_slot.load(Ordering::Acquire) == slot
    }

    /// Is `packed` (= `pack_key(seg_key, slot)`, the caller's *current*
    /// segment key) the published global floor? A `true` answer proves the
    /// caller is the serial minimum with nothing of its own pending and
    /// licenses any visible operation for the rest of the segment.
    #[inline]
    pub fn at_floor(&self, packed: u64) -> bool {
        self.floor.load(Ordering::Acquire) == packed
    }

    /// Per-object sequence-lock check for a *read-only* peek of an object
    /// whose only other possible writer is core `peer`: `true` when every
    /// serially-prior write of `peer` has retired and none can be in
    /// flight, so the peek may resolve lock-free. Callers must handle the
    /// writer-is-me case themselves (it is trivially clear).
    #[inline]
    pub fn peer_clear(&self, my_packed: u64, peer: CoreId) -> bool {
        let slot = self.slot_of.get(peer.idx()).copied().unwrap_or(NO_SLOT);
        if slot == NO_SLOT {
            return true; // not part of this run: it never writes
        }
        self.pub_keys[slot].load(Ordering::Acquire) > my_packed
    }

    /// Host nanoseconds `slot`'s thread has spent parked so far.
    pub fn park_ns(&self, slot: usize) -> u64 {
        self.park_ns[slot].load(Ordering::Relaxed)
    }

    // ---- engine state maintenance (all under the mutex) ----

    /// Mirror a retirement of `keys[w]`/`status[w]` into `pub_keys`.
    #[inline]
    fn publish_key(&self, st: &ParState, w: usize) {
        let v = match st.status[w] {
            Status::Done => u64::MAX,
            _ => pack_key(st.keys[w], w),
        };
        self.pub_keys[w].store(v, Ordering::Release);
    }

    /// Republish the packed floor from the current `keys`/`status`.
    fn publish_floor(&self, st: &ParState) {
        let f = (0..st.keys.len())
            .filter(|&i| st.status[i] != Status::Done)
            .map(|i| pack_key(st.keys[i], i))
            .min()
            .unwrap_or(u64::MAX);
        self.floor.store(f, Ordering::Release);
    }

    /// Acquire a run permit, waiting while the gate is full. Returns
    /// immediately once a deadlock is declared (the caller re-checks).
    fn gate_acquire(&self, st: &mut MutexGuard<'_, ParState>, slot: usize) {
        while st.deadlock.is_none() && st.running >= st.max_running {
            let t = Instant::now();
            self.gate_cv.wait(st);
            self.park_ns[slot].fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
        st.running += 1;
    }

    /// Release this thread's run permit.
    fn gate_release(&self, st: &mut ParState) {
        st.running -= 1;
        self.gate_cv.notify_one();
    }

    /// A core thread is about to start running its program: take a permit.
    pub fn start(&self, slot: usize) {
        let mut st = self.state.lock();
        self.gate_acquire(&mut st, slot);
    }

    /// Replay the serial election loop until a window opens, a blocked
    /// winner is woken, the run is over, or deadlock is proven. Must be
    /// called with no window open. Republishes the floor on every return.
    fn advance_elections(&self, st: &mut ParState) {
        self.elections_inner(st);
        self.publish_floor(st);
    }

    fn elections_inner(&self, st: &mut ParState) {
        debug_assert!(st.open.is_none());
        let n = st.keys.len();
        while st.deadlock.is_none() {
            // Quiescent point: evaluate every blocked condition inline,
            // exactly like the serial `elect`.
            for i in 0..n {
                if st.status[i] == Status::Blocked {
                    let mut checker = st.checkers[i].take().expect("blocked slot must register");
                    st.satisfiable[i] = checker();
                    st.checkers[i] = Some(checker);
                }
            }
            let winner = (0..n)
                .filter(|&i| {
                    st.status[i] == Status::Runnable
                        || (st.status[i] == Status::Blocked && st.satisfiable[i])
                })
                .min_by_key(|&i| (st.keys[i], i));
            let Some(w) = winner else {
                if st.status.contains(&Status::Blocked) {
                    let waiting = (0..n)
                        .map(|i| {
                            let why = match st.status[i] {
                                Status::Blocked => st.reasons[i].to_string(),
                                Status::Done => "<finished>".to_string(),
                                Status::Runnable => "<runnable?!>".to_string(),
                            };
                            (i, why)
                        })
                        .collect();
                    st.deadlock = Some(Arc::new(HwError::Deadlock { waiting }));
                    for cv in &self.cvs {
                        cv.notify_one();
                    }
                    self.gate_cv.notify_all();
                }
                return; // all done, or deadlock
            };
            if st.status[w] == Status::Blocked {
                // The winner's wait is satisfied: it resumes a new segment
                // at its block key. Its thread removes the checker box
                // itself, under this lock, when it wakes.
                st.status[w] = Status::Runnable;
                st.reasons[w] = "";
                st.open = Some(w);
                self.open_slot.store(w, Ordering::Release);
                self.cvs[w].notify_one();
                return;
            }
            match st.pending[w].pop_front() {
                Some(SegEnd::Yield { next_key }) => {
                    st.keys[w] = next_key;
                    self.publish_key(st, w);
                }
                Some(SegEnd::Block { key, reason, checker }) => {
                    st.keys[w] = key;
                    st.status[w] = Status::Blocked;
                    st.reasons[w] = reason;
                    st.checkers[w] = Some(checker);
                    self.publish_key(st, w);
                }
                Some(SegEnd::Done) => {
                    st.status[w] = Status::Done;
                    self.publish_key(st, w);
                }
                None => {
                    // Mid-segment: open the winner's window. It may be
                    // running ahead (the notify is then lost, harmlessly)
                    // or parked in `visible`.
                    st.open = Some(w);
                    self.open_slot.store(w, Ordering::Release);
                    self.cvs[w].notify_one();
                    return;
                }
            }
        }
    }

    /// Close the open window held by `slot`. Callers retire the segment
    /// end and re-run elections right after, under the same lock.
    #[inline]
    fn close_window(&self, st: &mut ParState, slot: usize) {
        debug_assert_eq!(st.open, Some(slot));
        st.open = None;
        self.open_slot.store(NO_SLOT, Ordering::Release);
    }

    fn unwind_deadlock(&self, st: &ParState) -> ! {
        let err = st.deadlock.clone().expect("deadlock error set");
        std::panic::panic_any(DeadlockUnwind(err));
    }

    /// Gate a globally visible operation that failed every demotion check:
    /// returns once this slot holds the open window (it keeps it until the
    /// segment ends). Returns `true` when the thread had to park — the
    /// horizon stall counter.
    pub fn visible(&self, slot: usize) -> bool {
        let mut st = self.state.lock();
        let mut stalled = false;
        let mut parked = false;
        loop {
            if st.deadlock.is_some() {
                self.unwind_deadlock(&st);
            }
            if st.open == Some(slot) {
                if parked {
                    // Re-take a run permit before running on.
                    self.gate_acquire(&mut st, slot);
                    parked = false;
                    continue;
                }
                return stalled;
            }
            if st.open.is_none() {
                self.advance_elections(&mut st);
                continue;
            }
            stalled = true;
            if !parked {
                parked = true;
                self.gate_release(&mut st);
            }
            let t = Instant::now();
            self.cvs[slot].wait(&mut st);
            self.park_ns[slot].fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
    }

    /// End the current segment with a yield; the next segment starts at
    /// `next_clock`. Never parks: a thread that does not hold the window
    /// queues the end and runs ahead.
    pub fn yield_now(&self, slot: usize, next_clock: u64) {
        let mut st = self.state.lock();
        if st.deadlock.is_some() {
            self.unwind_deadlock(&st);
        }
        if st.open == Some(slot) {
            self.close_window(&mut st, slot);
            st.keys[slot] = next_clock;
            self.publish_key(&st, slot);
            self.advance_elections(&mut st);
        } else {
            st.pending[slot].push_back(SegEnd::Yield { next_key: next_clock });
            if st.open.is_none() {
                self.advance_elections(&mut st);
            }
        }
    }

    /// End the current segment in a wait. Parks until the wait is
    /// satisfied *and* this slot wins an election; returns the condition's
    /// value, evaluated by the electing thread in the same critical
    /// section.
    pub fn wait_blocked<T: Send>(
        &self,
        slot: usize,
        clock: u64,
        reason: &'static str,
        mut cond: impl FnMut() -> Option<T> + Send,
    ) -> T {
        let result: Arc<Mutex<Option<T>>> = Arc::new(Mutex::new(None));
        let checker: Box<dyn FnMut() -> bool + Send + '_> = {
            let result = Arc::clone(&result);
            Box::new(move || match cond() {
                Some(v) => {
                    *result.lock() = Some(v);
                    true
                }
                None => {
                    *result.lock() = None;
                    false
                }
            })
        };
        // SAFETY: the box borrows `cond`'s captures on this thread's stack
        // below this frame. Every exit — winning or deadlock unwind —
        // removes the box (from the checker slot or the pending queue)
        // while holding the lock all evaluations run under, so the engine
        // can never invoke it after the borrowed frame is gone.
        let checker: Box<dyn FnMut() -> bool + Send + 'static> =
            unsafe { std::mem::transmute(checker) };

        let mut st = self.state.lock();
        if st.deadlock.is_some() {
            self.unwind_deadlock(&st);
        }
        if st.open == Some(slot) {
            // Retire inline: the block takes effect at the serial position.
            self.close_window(&mut st, slot);
            st.keys[slot] = clock;
            st.status[slot] = Status::Blocked;
            st.reasons[slot] = reason;
            st.checkers[slot] = Some(checker);
            self.publish_key(&st, slot);
            self.advance_elections(&mut st);
        } else {
            st.pending[slot].push_back(SegEnd::Block { key: clock, reason, checker });
            if st.open.is_none() {
                self.advance_elections(&mut st);
            }
        }
        let mut parked = false;
        loop {
            if st.deadlock.is_some() {
                // Drop our checker wherever it lives before unwinding.
                st.checkers[slot] = None;
                st.pending[slot].clear();
                if st.status[slot] == Status::Blocked {
                    st.status[slot] = Status::Runnable; // don't poison later reports
                }
                self.unwind_deadlock(&st);
            }
            if st.open == Some(slot) && st.status[slot] == Status::Runnable && st.checkers[slot].is_some() {
                // We won an election on a satisfied condition (the electing
                // thread flipped us Runnable and left our checker in place).
                if parked {
                    self.gate_acquire(&mut st, slot);
                    parked = false;
                    continue;
                }
                st.checkers[slot] = None;
                return result
                    .lock()
                    .take()
                    .expect("condition regressed between election and wake");
            }
            if !parked {
                parked = true;
                self.gate_release(&mut st);
            }
            let t = Instant::now();
            self.cvs[slot].wait(&mut st);
            self.park_ns[slot].fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
    }

    /// The core's program returned. Never parks.
    pub fn finish(&self, slot: usize) {
        let mut st = self.state.lock();
        self.gate_release(&mut st);
        if st.deadlock.is_some() {
            return; // the run is over; let the thread exit normally
        }
        if st.open == Some(slot) {
            self.close_window(&mut st, slot);
            st.status[slot] = Status::Done;
            self.publish_key(&st, slot);
            self.advance_elections(&mut st);
        } else {
            st.pending[slot].push_back(SegEnd::Done);
            if st.open.is_none() {
                self.advance_elections(&mut st);
            }
        }
    }

    /// The deadlock report, if the run deadlocked.
    pub fn deadlock_report(&self) -> Option<Arc<HwError>> {
        self.state.lock().deadlock.clone()
    }

    /// This slot's program is unwinding on a panic of its own. Declare
    /// the run over so gate waiters, window waiters, and election parks
    /// all unwind; the original panic payload is re-raised by
    /// [`crate::Machine::run_on`] and takes priority over this report.
    pub fn abort(&self, slot: usize) {
        let mut st = self.state.lock();
        st.status[slot] = Status::Done;
        if st.deadlock.is_none() {
            st.deadlock = Some(Arc::new(HwError::CorePanicked { slot }));
        }
        for cv in &self.cvs {
            cv.notify_one();
        }
        self.gate_cv.notify_all();
    }
}

/// The executor behind a [`crate::CoreCtx`]: the serial baton scheduler or
/// the parallel conservative engine, selected by `host_fast.parallel`.
pub enum Engine {
    Serial(Arc<crate::exec::Scheduler>),
    Parallel(Arc<ParEngine>),
}

impl Engine {
    /// Block until this slot may start running (serial: holds the baton;
    /// parallel: holds a run permit of the host-thread gate).
    pub fn wait_for_turn(&self, slot: usize) {
        match self {
            Engine::Serial(s) => s.wait_for_turn(slot),
            Engine::Parallel(p) => p.start(slot),
        }
    }

    pub fn deadlock_report(&self) -> Option<Arc<HwError>> {
        match self {
            Engine::Serial(s) => s.deadlock_report(),
            Engine::Parallel(p) => p.deadlock_report(),
        }
    }

    /// The slot's program returned.
    pub fn finish(&self, slot: usize) {
        match self {
            Engine::Serial(s) => s.finish(slot),
            Engine::Parallel(p) => p.finish(slot),
        }
    }

    /// The slot's program panicked: declare the run over so parked peers
    /// unwind instead of waiting on a thread that no longer exists.
    pub fn abort(&self, slot: usize) {
        match self {
            Engine::Serial(s) => s.abort(slot),
            Engine::Parallel(p) => p.abort(slot),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Scheduler;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn par_engine(n: usize) -> Arc<ParEngine> {
        let cores: Vec<CoreId> = (0..n).map(CoreId::new).collect();
        ParEngine::new(&cores)
    }

    /// A harness running the same slot bodies under either engine. Bodies
    /// call `yield_to`, `wait`, and `visibly` — under the serial scheduler
    /// `visibly` is the identity (the baton holder is always alone).
    enum AnyEngine {
        Serial(Arc<Scheduler>),
        Par(Arc<ParEngine>),
    }

    impl AnyEngine {
        fn yield_now(&self, slot: usize, clock: u64) {
            match self {
                AnyEngine::Serial(s) => {
                    s.yield_now(slot, clock);
                }
                AnyEngine::Par(p) => p.yield_now(slot, clock),
            }
        }
        fn visible(&self, slot: usize) {
            match self {
                AnyEngine::Serial(_) => {}
                AnyEngine::Par(p) => {
                    p.visible(slot);
                }
            }
        }
        fn wait<T: Send>(
            &self,
            slot: usize,
            clock: u64,
            reason: &'static str,
            cond: impl FnMut() -> Option<T> + Send,
        ) -> T {
            match self {
                AnyEngine::Serial(s) => s.wait_blocked(slot, clock, reason, cond),
                AnyEngine::Par(p) => p.wait_blocked(slot, clock, reason, cond),
            }
        }
    }

    fn run_engine<F>(n: usize, parallel: bool, f: F) -> Result<(), Arc<HwError>>
    where
        F: Fn(usize, &AnyEngine) + Send + Sync,
    {
        let eng = if parallel {
            AnyEngine::Par(par_engine(n))
        } else {
            AnyEngine::Serial(Scheduler::new(n))
        };
        let report = |e: &AnyEngine| match e {
            AnyEngine::Serial(s) => s.deadlock_report(),
            AnyEngine::Par(p) => p.deadlock_report(),
        };
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            for slot in 0..n {
                let eng = &eng;
                let f = &f;
                handles.push(s.spawn(move || {
                    match eng {
                        AnyEngine::Serial(sch) => sch.wait_for_turn(slot),
                        AnyEngine::Par(p) => p.start(slot),
                    }
                    f(slot, eng);
                    match eng {
                        AnyEngine::Serial(sch) => sch.finish(slot),
                        AnyEngine::Par(p) => p.finish(slot),
                    }
                }));
            }
            let mut failed = false;
            for h in handles {
                failed |= h.join().is_err();
            }
            if failed {
                Err(report(&eng).expect("non-deadlock panic in test"))
            } else {
                Ok(())
            }
        })
    }

    /// The global order of visible events must match the serial schedule.
    /// Events are recorded *while the window is open* (in parallel mode the
    /// recording thread holds the window until its segment ends, so pushes
    /// are election-ordered).
    fn wave_trace(parallel: bool) -> Vec<(usize, u64)> {
        let counter = AtomicU64::new(0);
        let trace = Mutex::new(Vec::new());
        run_engine(6, parallel, |slot, eng| {
            if slot == 0 {
                for wave in 1..=5u64 {
                    eng.yield_now(0, wave * 1000);
                    eng.visible(0);
                    counter.store(wave, Ordering::Relaxed);
                    trace.lock().push((0, wave * 1000));
                }
                eng.yield_now(0, 100_000);
            } else {
                for wave in 1..=5u64 {
                    eng.wait(slot, wave * 100 + slot as u64, "wave", || {
                        (counter.load(Ordering::Relaxed) >= wave).then_some(())
                    });
                    trace.lock().push((slot, wave * 100 + slot as u64));
                }
            }
        })
        .unwrap();
        trace.into_inner()
    }

    #[test]
    fn wave_schedule_matches_serial() {
        assert_eq!(wave_trace(true), wave_trace(false));
    }

    #[test]
    fn single_core_runs_to_completion() {
        run_engine(1, true, |_, eng| {
            eng.yield_now(0, 100);
            eng.visible(0);
            eng.yield_now(0, 200);
        })
        .unwrap();
    }

    #[test]
    fn pure_yielders_run_ahead_without_blocking() {
        // No visible ops at all: every thread may run to completion
        // immediately, in any host order — the engine must retire all
        // queued ends and terminate.
        run_engine(8, true, |slot, eng| {
            for step in 1..=50u64 {
                eng.yield_now(slot, step * 100 + slot as u64);
            }
        })
        .unwrap();
    }

    #[test]
    fn visible_order_is_clock_sorted() {
        // Cores at staggered clocks doing visible ops: the recorded global
        // order must be sorted by (clock, slot), like the serial baton.
        let order = Mutex::new(Vec::new());
        run_engine(4, true, |slot, eng| {
            for step in 1..=10u64 {
                let clk = step * 1000 + slot as u64 * 13;
                eng.yield_now(slot, clk);
                eng.visible(slot);
                order.lock().push((clk, slot));
            }
        })
        .unwrap();
        let o = order.into_inner();
        let mut sorted = o.clone();
        sorted.sort_unstable();
        assert_eq!(o, sorted, "visible ops must retire in election order");
    }

    #[test]
    fn deadlock_detected_and_reported_identically() {
        let report = |parallel| {
            run_engine(2, parallel, |slot, eng| {
                if slot == 1 {
                    eng.wait(1, 0, "a flag that never comes", || None::<()>);
                } else {
                    eng.yield_now(0, 50);
                }
            })
            .unwrap_err()
        };
        let (par, ser) = (report(true), report(false));
        match (&*par, &*ser) {
            (HwError::Deadlock { waiting: a }, HwError::Deadlock { waiting: b }) => {
                assert_eq!(a, b, "reports must match the serial oracle");
                assert_eq!(a.len(), 2);
                assert!(a[1].1.contains("never comes"));
            }
            other => panic!("wrong errors: {other:?}"),
        }
    }

    #[test]
    fn blocked_winner_resumes_at_block_key() {
        // A core blocking at a *low* clock must be elected before a runnable
        // core at a higher clock once its condition holds — the election
        // key sequence is not monotonic, and the engine must reproduce that.
        let flag = AtomicU64::new(0);
        let order = Mutex::new(Vec::new());
        run_engine(3, true, |slot, eng| {
            match slot {
                0 => {
                    eng.yield_now(0, 10_000);
                    eng.visible(0);
                    flag.store(1, Ordering::Relaxed);
                    eng.yield_now(0, 20_000);
                    eng.visible(0);
                    order.lock().push((0, 20_000u64));
                }
                1 => {
                    eng.wait(1, 5, "flag", || {
                        (flag.load(Ordering::Relaxed) != 0).then_some(())
                    });
                    // Resumes at key 5 — far below core 0's clock.
                    order.lock().push((1, 5u64));
                }
                _ => {
                    eng.yield_now(2, 15_000);
                    eng.visible(2);
                    order.lock().push((2, 15_000u64));
                }
            }
        })
        .unwrap();
        assert_eq!(
            order.into_inner(),
            vec![(1, 5), (2, 15_000), (0, 20_000)],
            "woken waiter must precede higher-clock runnables"
        );
    }

    #[test]
    fn floor_and_pub_keys_track_retirements() {
        // Single slot: the floor is its packed key; retiring a yield moves
        // both mirrors; finishing parks them at MAX.
        let p = par_engine(2);
        assert!(p.at_floor(pack_key(0, 0)));
        assert!(!p.at_floor(pack_key(0, 1)));
        p.start(0);
        p.start(1);
        p.yield_now(0, 100);
        // Slot 0 queued+retired (it is the floor), floor moves to slot 1.
        assert!(p.at_floor(pack_key(0, 1)));
        // Slot 1's oldest key (0,1) is below a reader at (50,0): not clear.
        assert!(!p.peer_clear(pack_key(50, 0), CoreId::new(1)));
        p.yield_now(1, 200);
        // Both retired: floor is slot 0 at clock 100.
        assert!(p.at_floor(pack_key(100, 0)));
        // Slot 1 now published at (200,1): clear for a reader at (150,0).
        assert!(p.peer_clear(pack_key(150, 0), CoreId::new(1)));
        assert!(!p.peer_clear(pack_key(250, 0), CoreId::new(1)));
        // A core outside the run is always clear.
        assert!(p.peer_clear(pack_key(9_999, 0), CoreId::new(7)));
        p.finish(1);
        p.finish(0);
        // Both retired as done: published keys park at MAX, floor empties.
        assert!(p.peer_clear(pack_key(u32::MAX as u64, 0), CoreId::new(1)));
        assert!(p.at_floor(u64::MAX));
    }

    #[test]
    fn gate_serialises_but_preserves_schedule() {
        // Force a single run permit: the wave schedule must be unchanged.
        std::env::set_var("SCC_PAR_HOST_THREADS", "1");
        let gated = wave_trace(true);
        std::env::remove_var("SCC_PAR_HOST_THREADS");
        assert_eq!(gated, wave_trace(false));
    }
}
