//! Error type of the hardware model.

use std::fmt;

/// Errors surfaced by the hardware simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HwError {
    /// The machine configuration failed validation.
    BadConfig(String),
    /// All live cores are blocked and no wait condition can ever become
    /// satisfiable — a genuine deadlock in the simulated software.
    Deadlock {
        /// One `(core, wait_reason)` pair per blocked core.
        waiting: Vec<(usize, String)>,
    },
    /// The requested operation cannot be honoured under the parallel
    /// conservative executor (`host_fast.parallel`) — e.g. `send_ipi`,
    /// whose asynchronous delivery a run-ahead receiver cannot replay.
    ParUnsupported {
        /// What was attempted and what to use instead.
        what: String,
    },
    /// The serial executor's election-budget livelock guard fired: the
    /// run consumed its whole schedule-decision budget without finishing.
    /// Distinct from [`HwError::Deadlock`] — at least one core was still
    /// runnable, it just never let the others make progress (e.g. a
    /// `PriorityBands` schedule starving the core a spin-wait depends on).
    ElectionBudget {
        /// Elections consumed when the guard fired.
        elections: u64,
    },
    /// A core program panicked mid-run. The executor declares the run
    /// over so parked peers unwind instead of waiting forever on a baton
    /// nobody holds; the original panic payload is re-raised by
    /// [`crate::Machine::run_on`], so callers normally see that panic,
    /// not this error.
    CorePanicked {
        /// The executor slot whose program panicked.
        slot: usize,
    },
}

impl fmt::Display for HwError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HwError::BadConfig(msg) => write!(f, "invalid machine configuration: {msg}"),
            HwError::Deadlock { waiting } => {
                writeln!(f, "simulated deadlock; all live cores are blocked:")?;
                for (c, why) in waiting {
                    writeln!(f, "  core {c}: waiting for {why}")?;
                }
                Ok(())
            }
            HwError::ParUnsupported { what } => {
                write!(f, "unsupported under the parallel executor: {what}")
            }
            HwError::ElectionBudget { elections } => write!(
                f,
                "election budget exceeded after {elections} schedule decisions — \
                 livelock under the active schedule policy (a runnable core \
                 never let the rest make progress)"
            ),
            HwError::CorePanicked { slot } => write!(
                f,
                "core program on executor slot {slot} panicked; the run was aborted"
            ),
        }
    }
}

impl std::error::Error for HwError {}
