//! Error type of the hardware model.

use std::fmt;

/// Errors surfaced by the hardware simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HwError {
    /// The machine configuration failed validation.
    BadConfig(String),
    /// All live cores are blocked and no wait condition can ever become
    /// satisfiable — a genuine deadlock in the simulated software.
    Deadlock {
        /// One `(core, wait_reason)` pair per blocked core.
        waiting: Vec<(usize, String)>,
    },
    /// The requested operation cannot be honoured under the parallel
    /// conservative executor (`host_fast.parallel`) — e.g. `send_ipi`,
    /// whose asynchronous delivery a run-ahead receiver cannot replay.
    ParUnsupported {
        /// What was attempted and what to use instead.
        what: String,
    },
}

impl fmt::Display for HwError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HwError::BadConfig(msg) => write!(f, "invalid machine configuration: {msg}"),
            HwError::Deadlock { waiting } => {
                writeln!(f, "simulated deadlock; all live cores are blocked:")?;
                for (c, why) in waiting {
                    writeln!(f, "  core {c}: waiting for {why}")?;
                }
                Ok(())
            }
            HwError::ParUnsupported { what } => {
                write!(f, "unsupported under the parallel executor: {what}")
            }
        }
    }
}

impl std::error::Error for HwError {}
