//! Mesh topology of the simulated machine: a rectangular tile grid with a
//! configurable number of cores per tile and memory controllers attached
//! at the left/right mesh edges.
//!
//! The hardware shape is a **runtime value**, [`Topology`], constructed
//! through a validated builder and carried by
//! [`SccConfig`](crate::config::SccConfig). The paper's machine — the
//! 48-core SCC, 24 tiles in a 6×4 grid with two P54C cores per tile and
//! four DDR3 controllers at the mesh corners — is the [`Topology::scc48`]
//! preset and the default; larger shapes such as [`Topology::mesh8x8`]
//! (128 cores) and [`Topology::mesh16x32`] (512 cores, the DiSquawk scale)
//! are first-class configurations, not forks.
//!
//! Core numbering follows the SCC convention used by RCCE: tile `t` hosts
//! cores `t * cores_per_tile .. (t + 1) * cores_per_tile`, tiles are
//! numbered row-major with tile 0 at coordinate (0, 0). Under the `scc48`
//! preset core 0 sits at (0, 0) and core 30 at (3, 2) — five hops apart,
//! matching the paper's Figure 7 setup.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Hard ceiling on the number of cores any topology may declare. Bounds
/// the per-(target, source) state of the interrupt controller and keeps
/// core slots comfortably inside the 16-bit field of the executor's packed
/// election keys. Well above the 512-core shapes the scalability work
/// targets.
pub const CORE_LIMIT: usize = 4096;

/// Identifier of one core (0..[`Topology::num_cores`]).
///
/// A `CoreId` is just an index; everything geometric about it — its tile,
/// hop distances, its nearest memory controller — depends on the machine
/// shape and lives on [`Topology`].
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CoreId(u16);

impl CoreId {
    /// Construct a core id validated against a topology.
    #[inline]
    pub fn try_new(id: usize, topo: &Topology) -> Result<CoreId, TopologyError> {
        if id < topo.num_cores() {
            Ok(CoreId(id as u16))
        } else {
            Err(TopologyError::CoreOutOfRange {
                id,
                cores: topo.num_cores(),
            })
        }
    }

    /// Construct a core id from an index that is structurally valid —
    /// produced by decoding a physical address, a bitmask bit position, or
    /// a loop bound that was already checked against the machine shape.
    /// Only the absolute ceiling is (debug-)checked here; use
    /// [`CoreId::try_new`] when the index comes from outside.
    #[inline]
    pub fn from_raw(id: usize) -> CoreId {
        debug_assert!(id < CORE_LIMIT, "core id {id} beyond the absolute limit");
        CoreId(id as u16)
    }

    /// Test-helper constructor: panics beyond the absolute core limit and
    /// performs **no** topology check. Production code validates through
    /// [`CoreId::try_new`] (or decodes via [`CoreId::from_raw`]).
    #[inline]
    pub fn new(id: usize) -> Self {
        assert!(id < CORE_LIMIT, "core id {id} out of range");
        CoreId(id as u16)
    }

    /// The raw index as `usize`, for table lookups.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Coordinate of a tile (or controller attach point) in the mesh.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TileCoord {
    pub x: u32,
    pub y: u32,
}

impl TileCoord {
    /// Manhattan distance — the mesh routes packets dimension-ordered
    /// (XY), so hop count equals the Manhattan distance.
    #[inline]
    pub fn hops_to(self, other: TileCoord) -> u32 {
        self.x.abs_diff(other.x) + self.y.abs_diff(other.y)
    }
}

/// Why a topology (or a core id checked against one) is invalid.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TopologyError {
    /// A mesh dimension or the cores-per-tile count is zero.
    ZeroDimension { field: &'static str },
    /// The shape declares more cores than the absolute limit.
    TooManyCores { cores: usize, limit: usize },
    /// Memory controllers attach in pairs at the left/right mesh edges and
    /// the slice math wants a power of two: `num_mcs` must be a power of
    /// two ≥ 2 with `num_mcs / 2 ≤ mesh_y`.
    BadMcCount { num_mcs: usize, mesh_y: u32 },
    /// A core id does not exist on this topology.
    CoreOutOfRange { id: usize, cores: usize },
    /// A topology spec string (`SCC_TOPOLOGY` or `--topo`) did not parse.
    BadSpec { spec: String },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::ZeroDimension { field } => {
                write!(f, "topology: {field} must be at least 1")
            }
            TopologyError::TooManyCores { cores, limit } => {
                write!(f, "topology: {cores} cores exceed the limit of {limit}")
            }
            TopologyError::BadMcCount { num_mcs, mesh_y } => write!(
                f,
                "topology: num_mcs {num_mcs} invalid — must be a power of two \
                 ≥ 2 with num_mcs/2 ≤ mesh_y ({mesh_y})"
            ),
            TopologyError::CoreOutOfRange { id, cores } => {
                write!(f, "core id {id} out of range on a {cores}-core topology")
            }
            TopologyError::BadSpec { spec } => write!(
                f,
                "bad topology spec {spec:?}: expected a preset (scc48, mesh8x8, \
                 mesh16x16, mesh16x32) or WxHxC:M (e.g. 8x8x1:4)"
            ),
        }
    }
}

impl std::error::Error for TopologyError {}

/// The machine shape: tile grid dimensions, cores per tile, and the number
/// of memory controllers. Construct via [`Topology::builder`] or a preset;
/// instances are always valid.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Topology {
    mesh_x: u32,
    mesh_y: u32,
    cores_per_tile: u32,
    num_mcs: u32,
}

impl Default for Topology {
    /// The paper's machine, [`Topology::scc48`].
    fn default() -> Self {
        Topology::scc48()
    }
}

impl Topology {
    /// Start building a custom shape.
    pub fn builder() -> TopologyBuilder {
        TopologyBuilder::default()
    }

    /// The SCC as the paper measured it: a 6×4 tile mesh, two cores per
    /// tile (48 cores), four DDR3 controllers at the mesh corners.
    pub fn scc48() -> Topology {
        Topology {
            mesh_x: 6,
            mesh_y: 4,
            cores_per_tile: 2,
            num_mcs: 4,
        }
    }

    /// A square 8×8 mesh with two cores per tile: 128 cores, four
    /// controllers — the first step past the SCC.
    pub fn mesh8x8() -> Topology {
        Topology {
            mesh_x: 8,
            mesh_y: 8,
            cores_per_tile: 2,
            num_mcs: 4,
        }
    }

    /// A square 16×16 mesh with one core per tile: 256 cores, eight
    /// controllers — the midpoint between `mesh8x8` and `mesh16x32` on the
    /// scaling curves (BENCH_scale.json records this shape).
    pub fn mesh16x16() -> Topology {
        Topology {
            mesh_x: 16,
            mesh_y: 16,
            cores_per_tile: 1,
            num_mcs: 8,
        }
    }

    /// A 16×32 mesh with one core per tile: 512 cores, eight controllers —
    /// the DiSquawk scale.
    pub fn mesh16x32() -> Topology {
        Topology {
            mesh_x: 16,
            mesh_y: 32,
            cores_per_tile: 1,
            num_mcs: 8,
        }
    }

    /// Look up a named preset.
    pub fn preset(name: &str) -> Option<Topology> {
        match name {
            "scc48" => Some(Topology::scc48()),
            "mesh8x8" => Some(Topology::mesh8x8()),
            "mesh16x16" => Some(Topology::mesh16x16()),
            "mesh16x32" => Some(Topology::mesh16x32()),
            _ => None,
        }
    }

    /// Parse a shape spec: a preset name or `WxHxC:M` (mesh width × height
    /// × cores per tile, `:M` memory controllers, e.g. `8x8x1:4`).
    pub fn from_spec(spec: &str) -> Result<Topology, TopologyError> {
        if let Some(t) = Topology::preset(spec) {
            return Ok(t);
        }
        let bad = || TopologyError::BadSpec {
            spec: spec.to_string(),
        };
        let (dims, mcs) = spec.split_once(':').ok_or_else(bad)?;
        let parts: Vec<u32> = dims
            .split('x')
            .map(|p| p.parse().map_err(|_| bad()))
            .collect::<Result<_, _>>()?;
        let [x, y, c] = parts[..] else {
            return Err(bad());
        };
        let m: u32 = mcs.parse().map_err(|_| bad())?;
        Topology::builder()
            .mesh(x, y)
            .cores_per_tile(c)
            .num_mcs(m as usize)
            .build()
    }

    /// The shape named by the `SCC_TOPOLOGY` environment variable (preset
    /// name or `WxHxC:M` spec), or `scc48` when unset. Panics on an
    /// invalid value — a misconfigured environment should fail loudly, not
    /// silently run the wrong machine.
    pub fn from_env_or_scc48() -> Topology {
        match std::env::var("SCC_TOPOLOGY") {
            Ok(spec) => Topology::from_spec(&spec)
                .unwrap_or_else(|e| panic!("SCC_TOPOLOGY: {e}")),
            Err(_) => Topology::scc48(),
        }
    }

    /// Mesh width in tiles.
    #[inline]
    pub fn mesh_x(&self) -> u32 {
        self.mesh_x
    }

    /// Mesh height in tiles.
    #[inline]
    pub fn mesh_y(&self) -> u32 {
        self.mesh_y
    }

    /// Cores per tile.
    #[inline]
    pub fn cores_per_tile(&self) -> u32 {
        self.cores_per_tile
    }

    /// Number of tiles.
    #[inline]
    pub fn num_tiles(&self) -> usize {
        (self.mesh_x * self.mesh_y) as usize
    }

    /// Number of cores.
    #[inline]
    pub fn num_cores(&self) -> usize {
        self.num_tiles() * self.cores_per_tile as usize
    }

    /// Number of memory controllers.
    #[inline]
    pub fn num_mcs(&self) -> usize {
        self.num_mcs as usize
    }

    /// Iterator over all cores of this topology.
    pub fn cores(&self) -> impl Iterator<Item = CoreId> {
        (0..self.num_cores()).map(CoreId::from_raw)
    }

    /// Validate an index into a core id of this topology.
    #[inline]
    pub fn try_core(&self, id: usize) -> Result<CoreId, TopologyError> {
        CoreId::try_new(id, self)
    }

    /// The tile a core sits on.
    #[inline]
    pub fn tile_of(&self, core: CoreId) -> TileCoord {
        let t = core.0 as u32 / self.cores_per_tile;
        TileCoord {
            x: t % self.mesh_x,
            y: t / self.mesh_x,
        }
    }

    /// Manhattan hop distance between two cores' tiles (XY routing).
    #[inline]
    pub fn hops(&self, a: CoreId, b: CoreId) -> u32 {
        self.tile_of(a).hops_to(self.tile_of(b))
    }

    /// Mesh attach coordinate of memory controller `mc`.
    ///
    /// Controllers attach in pairs at the left and right mesh edges, the
    /// pairs spread evenly over the rows — for four controllers on the
    /// SCC's 6×4 grid this is exactly the four corners the silicon uses.
    #[inline]
    pub fn mc_coord(&self, mc: usize) -> TileCoord {
        assert!(mc < self.num_mcs as usize, "memory controller {mc} out of range");
        let pair = mc as u32 / 2;
        let pairs = self.num_mcs / 2;
        let y = if pairs <= 1 {
            (self.mesh_y - 1) / 2
        } else {
            pair * (self.mesh_y - 1) / (pairs - 1)
        };
        let x = if mc.is_multiple_of(2) { 0 } else { self.mesh_x - 1 };
        TileCoord { x, y }
    }

    /// Hop distance from a core's tile to a memory controller.
    #[inline]
    pub fn hops_to_mc(&self, core: CoreId, mc: usize) -> u32 {
        self.tile_of(core).hops_to(self.mc_coord(mc))
    }

    /// The memory controller nearest to `core` (fewest hops, lowest index
    /// on ties). On the `scc48` preset this reproduces the silicon's
    /// lookup-table configuration: the die splits into four quadrants of
    /// twelve cores, each served by the controller at its corner.
    #[inline]
    pub fn nearest_mc(&self, core: CoreId) -> usize {
        let tile = self.tile_of(core);
        (0..self.num_mcs as usize)
            .min_by_key(|&mc| tile.hops_to(self.mc_coord(mc)))
            .expect("at least one memory controller")
    }

    /// Find a core whose tile is exactly `hops` away from `from`, if any.
    /// Used by the Figure 6 harness to place ping-pong partners.
    pub fn core_at_distance(&self, from: CoreId, hops: u32) -> Option<CoreId> {
        self.cores()
            .find(|c| *c != from && self.hops(from, *c) == hops)
    }

    /// The largest hop distance between any two tiles (opposite corners).
    #[inline]
    pub fn max_hops(&self) -> u32 {
        (self.mesh_x - 1) + (self.mesh_y - 1)
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{}x{}:{}",
            self.mesh_x, self.mesh_y, self.cores_per_tile, self.num_mcs
        )
    }
}

/// Builder for [`Topology`]; [`TopologyBuilder::build`] validates the
/// shape and is the only way to obtain a non-preset instance.
#[derive(Copy, Clone, Debug)]
pub struct TopologyBuilder {
    mesh_x: u32,
    mesh_y: u32,
    cores_per_tile: u32,
    num_mcs: u32,
}

impl Default for TopologyBuilder {
    /// Starts from the `scc48` shape; override what differs.
    fn default() -> Self {
        let t = Topology::scc48();
        TopologyBuilder {
            mesh_x: t.mesh_x,
            mesh_y: t.mesh_y,
            cores_per_tile: t.cores_per_tile,
            num_mcs: t.num_mcs,
        }
    }
}

impl TopologyBuilder {
    /// Set the tile grid dimensions.
    pub fn mesh(mut self, x: u32, y: u32) -> Self {
        self.mesh_x = x;
        self.mesh_y = y;
        self
    }

    /// Set the number of cores per tile.
    pub fn cores_per_tile(mut self, n: u32) -> Self {
        self.cores_per_tile = n;
        self
    }

    /// Set the number of memory controllers.
    pub fn num_mcs(mut self, n: usize) -> Self {
        self.num_mcs = n as u32;
        self
    }

    /// Validate and construct.
    pub fn build(self) -> Result<Topology, TopologyError> {
        for (field, v) in [
            ("mesh_x", self.mesh_x),
            ("mesh_y", self.mesh_y),
            ("cores_per_tile", self.cores_per_tile),
        ] {
            if v == 0 {
                return Err(TopologyError::ZeroDimension { field });
            }
        }
        let cores = self.mesh_x as usize * self.mesh_y as usize * self.cores_per_tile as usize;
        if cores > CORE_LIMIT {
            return Err(TopologyError::TooManyCores {
                cores,
                limit: CORE_LIMIT,
            });
        }
        if self.num_mcs < 2
            || !self.num_mcs.is_power_of_two()
            || self.num_mcs / 2 > self.mesh_y
        {
            return Err(TopologyError::BadMcCount {
                num_mcs: self.num_mcs as usize,
                mesh_y: self.mesh_y,
            });
        }
        Ok(Topology {
            mesh_x: self.mesh_x,
            mesh_y: self.mesh_y,
            cores_per_tile: self.cores_per_tile,
            num_mcs: self.num_mcs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scc48() -> Topology {
        Topology::scc48()
    }

    #[test]
    fn core0_is_origin() {
        let t = scc48();
        assert_eq!(t.tile_of(CoreId::new(0)), TileCoord { x: 0, y: 0 });
        assert_eq!(t.tile_of(CoreId::new(1)), TileCoord { x: 0, y: 0 });
    }

    #[test]
    fn paper_distance_core0_core30_is_5_hops() {
        // The paper's Figure 7 states cores 0 and 30 are 5 hops apart.
        let t = scc48();
        assert_eq!(t.hops(CoreId::new(0), CoreId::new(30)), 5);
    }

    #[test]
    fn tile_numbering_row_major() {
        let t = scc48();
        assert_eq!(t.tile_of(CoreId::new(12)), TileCoord { x: 0, y: 1 });
        assert_eq!(t.tile_of(CoreId::new(47)), TileCoord { x: 5, y: 3 });
    }

    #[test]
    fn same_tile_zero_hops() {
        assert_eq!(scc48().hops(CoreId::new(4), CoreId::new(5)), 0);
    }

    #[test]
    fn max_distance_is_8() {
        // Opposite corners of a 6x4 mesh: 5 + 3 = 8 hops.
        let t = scc48();
        let max = t
            .cores()
            .flat_map(|a| t.cores().map(move |b| (a, b)))
            .map(|(a, b)| t.hops(a, b))
            .max()
            .unwrap();
        assert_eq!(max, 8);
        assert_eq!(t.max_hops(), 8);
    }

    #[test]
    fn every_distance_up_to_8_reachable_from_core0() {
        let t = scc48();
        for d in 0..=8 {
            assert!(
                t.core_at_distance(CoreId::new(0), d).is_some(),
                "no core at distance {d}"
            );
        }
    }

    #[test]
    fn scc48_mcs_sit_at_the_corners() {
        let t = scc48();
        assert_eq!(t.mc_coord(0), TileCoord { x: 0, y: 0 });
        assert_eq!(t.mc_coord(1), TileCoord { x: 5, y: 0 });
        assert_eq!(t.mc_coord(2), TileCoord { x: 0, y: 3 });
        assert_eq!(t.mc_coord(3), TileCoord { x: 5, y: 3 });
    }

    #[test]
    fn nearest_mc_reproduces_the_scc_quadrant_table() {
        // The silicon's default LUT config: the die splits into four
        // quadrants of twelve cores. The generic argmin rule must
        // reproduce it exactly (the 6×4 grid has no ties).
        let t = scc48();
        for c in t.cores() {
            let TileCoord { x, y } = t.tile_of(c);
            let quadrant = match (x < 3, y < 2) {
                (true, true) => 0,
                (false, true) => 1,
                (true, false) => 2,
                (false, false) => 3,
            };
            assert_eq!(t.nearest_mc(c), quadrant, "{c:?} at ({x},{y})");
        }
    }

    #[test]
    fn nearest_mc_is_actually_nearest_on_every_preset() {
        for t in [
            scc48(),
            Topology::mesh8x8(),
            Topology::mesh16x16(),
            Topology::mesh16x32(),
        ] {
            for c in t.cores() {
                let near = t.hops_to_mc(c, t.nearest_mc(c));
                for mc in 0..t.num_mcs() {
                    assert!(
                        near <= t.hops_to_mc(c, mc),
                        "{t}: {c:?}: mc{mc} ({} hops) beats nearest {} ({near} hops)",
                        t.hops_to_mc(c, mc),
                        t.nearest_mc(c),
                    );
                }
            }
        }
    }

    #[test]
    fn presets_have_expected_sizes() {
        assert_eq!(scc48().num_cores(), 48);
        assert_eq!(Topology::mesh8x8().num_cores(), 128);
        assert_eq!(Topology::mesh16x16().num_cores(), 256);
        assert_eq!(Topology::mesh16x16().num_mcs(), 8);
        assert_eq!(Topology::mesh16x32().num_cores(), 512);
        assert_eq!(Topology::mesh16x32().num_mcs(), 8);
    }

    #[test]
    fn builder_validates() {
        assert!(matches!(
            Topology::builder().mesh(0, 4).build(),
            Err(TopologyError::ZeroDimension { field: "mesh_x" })
        ));
        assert!(matches!(
            Topology::builder().num_mcs(3).build(),
            Err(TopologyError::BadMcCount { .. })
        ));
        assert!(matches!(
            Topology::builder().num_mcs(0).build(),
            Err(TopologyError::BadMcCount { .. })
        ));
        // More MC pairs than rows to attach them to.
        assert!(matches!(
            Topology::builder().mesh(8, 1).num_mcs(4).build(),
            Err(TopologyError::BadMcCount { .. })
        ));
        assert!(matches!(
            Topology::builder().mesh(100, 100).cores_per_tile(2).build(),
            Err(TopologyError::TooManyCores { .. })
        ));
        let t = Topology::builder()
            .mesh(8, 8)
            .cores_per_tile(1)
            .num_mcs(4)
            .build()
            .unwrap();
        assert_eq!(t.num_cores(), 64);
    }

    #[test]
    fn spec_parsing() {
        assert_eq!(Topology::from_spec("scc48").unwrap(), scc48());
        // The named preset and the raw spec string are the same shape —
        // BENCH_scale.json used to reach this one via "16x16x1:8" only.
        assert_eq!(
            Topology::from_spec("mesh16x16").unwrap(),
            Topology::from_spec("16x16x1:8").unwrap()
        );
        assert_eq!(
            Topology::from_spec("8x8x1:4").unwrap(),
            Topology::builder()
                .mesh(8, 8)
                .cores_per_tile(1)
                .num_mcs(4)
                .build()
                .unwrap()
        );
        assert!(matches!(
            Topology::from_spec("8x8:4"),
            Err(TopologyError::BadSpec { .. })
        ));
        assert!(matches!(
            Topology::from_spec("banana"),
            Err(TopologyError::BadSpec { .. })
        ));
        // A structurally parseable but invalid shape surfaces the builder's
        // typed error, not BadSpec.
        assert!(matches!(
            Topology::from_spec("8x8x1:3"),
            Err(TopologyError::BadMcCount { .. })
        ));
    }

    #[test]
    fn try_new_is_fallible_not_panicking() {
        let t = scc48();
        assert!(CoreId::try_new(47, &t).is_ok());
        assert_eq!(
            CoreId::try_new(48, &t),
            Err(TopologyError::CoreOutOfRange { id: 48, cores: 48 })
        );
        let big = Topology::mesh16x32();
        assert!(CoreId::try_new(511, &big).is_ok());
        assert!(CoreId::try_new(512, &big).is_err());
    }

    #[test]
    #[should_panic]
    fn core_id_beyond_absolute_limit_panics() {
        CoreId::new(CORE_LIMIT);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", scc48()), "6x4x2:4");
        assert_eq!(format!("{}", CoreId::new(30)), "30");
        assert_eq!(format!("{:?}", CoreId::new(30)), "core30");
    }
}
