//! Mesh topology of the SCC: 24 tiles in a 6×4 grid, two cores per tile,
//! four memory controllers attached at the mesh edges.
//!
//! Core numbering follows the SCC convention used by RCCE: tile `t` hosts
//! cores `2t` and `2t + 1`, tiles are numbered row-major with tile 0 at
//! coordinate (0, 0). Under this numbering core 0 sits at (0, 0) and core 30
//! at (3, 2) — five hops apart, matching the paper's Figure 7 setup.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of physical cores on the SCC die.
pub const MAX_CORES: usize = 48;
/// Mesh width in tiles.
pub const MESH_X: u32 = 6;
/// Mesh height in tiles.
pub const MESH_Y: u32 = 4;
/// Number of on-die memory controllers.
pub const NUM_MCS: usize = 4;

/// Identifier of one P54C core (0..48).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CoreId(pub u8);

impl CoreId {
    /// Construct a core id, panicking on out-of-range values.
    #[inline]
    pub fn new(id: usize) -> Self {
        assert!(id < MAX_CORES, "core id {id} out of range");
        CoreId(id as u8)
    }

    /// The raw index as `usize`, for table lookups.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }

    /// The tile this core sits on.
    #[inline]
    pub fn tile(self) -> TileCoord {
        let t = self.0 as u32 / 2;
        TileCoord {
            x: t % MESH_X,
            y: t / MESH_X,
        }
    }

    /// Iterator over all 48 cores.
    pub fn all() -> impl Iterator<Item = CoreId> {
        (0..MAX_CORES).map(|i| CoreId(i as u8))
    }

    /// Manhattan hop distance to another core's tile (XY routing).
    #[inline]
    pub fn hops_to(self, other: CoreId) -> u32 {
        self.tile().hops_to(other.tile())
    }

    /// Hop distance from this core's tile to a memory controller.
    #[inline]
    pub fn hops_to_mc(self, mc: usize) -> u32 {
        self.tile().hops_to(mc_coord(mc))
    }

    /// The memory controller "nearest" to this core under the default SCC
    /// lookup-table configuration: the die is split into four quadrants of
    /// twelve cores and each quadrant is served by the controller at its
    /// corner.
    #[inline]
    pub fn nearest_mc(self) -> usize {
        let TileCoord { x, y } = self.tile();
        let west = x < MESH_X / 2;
        let south = y < MESH_Y / 2;
        match (west, south) {
            (true, true) => 0,
            (false, true) => 1,
            (true, false) => 2,
            (false, false) => 3,
        }
    }
}

impl fmt::Debug for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Coordinate of a tile (or controller attach point) in the mesh.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TileCoord {
    pub x: u32,
    pub y: u32,
}

impl TileCoord {
    /// Manhattan distance — the SCC routes packets dimension-ordered (XY),
    /// so hop count equals the Manhattan distance.
    #[inline]
    pub fn hops_to(self, other: TileCoord) -> u32 {
        self.x.abs_diff(other.x) + self.y.abs_diff(other.y)
    }
}

/// Mesh attach coordinate of memory controller `mc`.
///
/// The SCC attaches its four DDR3 controllers at the left and right edges of
/// mesh rows 0 and 2.
#[inline]
pub fn mc_coord(mc: usize) -> TileCoord {
    match mc {
        0 => TileCoord { x: 0, y: 0 },
        1 => TileCoord { x: MESH_X - 1, y: 0 },
        2 => TileCoord { x: 0, y: MESH_Y - 1 },
        3 => TileCoord {
            x: MESH_X - 1,
            y: MESH_Y - 1,
        },
        _ => panic!("memory controller {mc} out of range"),
    }
}

/// Find a core whose tile is exactly `hops` away from `from`, if any.
/// Used by the Figure 6 harness to place ping-pong partners.
pub fn core_at_distance(from: CoreId, hops: u32) -> Option<CoreId> {
    CoreId::all().find(|c| *c != from && from.hops_to(*c) == hops)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core0_is_origin() {
        assert_eq!(CoreId::new(0).tile(), TileCoord { x: 0, y: 0 });
        assert_eq!(CoreId::new(1).tile(), TileCoord { x: 0, y: 0 });
    }

    #[test]
    fn paper_distance_core0_core30_is_5_hops() {
        // The paper's Figure 7 states cores 0 and 30 are 5 hops apart.
        assert_eq!(CoreId::new(0).hops_to(CoreId::new(30)), 5);
    }

    #[test]
    fn tile_numbering_row_major() {
        assert_eq!(CoreId::new(12).tile(), TileCoord { x: 0, y: 1 });
        assert_eq!(CoreId::new(47).tile(), TileCoord { x: 5, y: 3 });
    }

    #[test]
    fn same_tile_zero_hops() {
        assert_eq!(CoreId::new(4).hops_to(CoreId::new(5)), 0);
    }

    #[test]
    fn max_distance_is_8() {
        // Opposite corners of a 6x4 mesh: 5 + 3 = 8 hops.
        let max = CoreId::all()
            .flat_map(|a| CoreId::all().map(move |b| a.hops_to(b)))
            .max()
            .unwrap();
        assert_eq!(max, 8);
    }

    #[test]
    fn every_distance_up_to_8_reachable_from_core0() {
        for d in 0..=8 {
            assert!(
                core_at_distance(CoreId::new(0), d).is_some(),
                "no core at distance {d}"
            );
        }
    }

    #[test]
    fn nearest_mc_quadrants() {
        assert_eq!(CoreId::new(0).nearest_mc(), 0);
        assert_eq!(CoreId::new(10).nearest_mc(), 1); // tile 5 = (5,0)
        assert_eq!(CoreId::new(24).nearest_mc(), 2); // tile 12 = (0,2)
        assert_eq!(CoreId::new(47).nearest_mc(), 3); // tile 23 = (5,3)
    }

    #[test]
    fn nearest_mc_is_actually_nearest() {
        for c in CoreId::all() {
            let near = c.hops_to_mc(c.nearest_mc());
            for mc in 0..NUM_MCS {
                assert!(
                    near <= c.hops_to_mc(mc),
                    "{c:?}: mc{} ({} hops) beats nearest {} ({} hops)",
                    mc,
                    c.hops_to_mc(mc),
                    c.nearest_mc(),
                    near
                );
            }
        }
    }

    #[test]
    #[should_panic]
    fn core_id_out_of_range_panics() {
        CoreId::new(48);
    }
}
