//! Topology-aware collective fan-in tree (DESIGN.md §12).
//!
//! A [`CollTree`] is the pure-data shape shared by every hierarchical
//! collective in the stack: the kernel's MPB-tree barrier
//! (`scc_kernel::collective`) and RCCE's log-depth bcast/reduce
//! (`rcce::coll`). It is derived from the [`Topology`] so that every edge
//! is as cheap as the mesh allows:
//!
//! 1. **Tile level** — cores combine within their tile (zero mesh hops:
//!    tile-mates share the same MPB router port).
//! 2. **Quadrant level** — tile leaders combine within their memory
//!    controller's region (`nearest_mc`), led by the tile leader closest
//!    to the controller's attach point; edges are sorted
//!    nearest-neighbour-first so fan-in traffic stays inside the
//!    quadrant.
//! 3. **Root level** — quadrant leaders meet at the root rank.
//!
//! Each grouping level is laid out as a heap-shaped tree of fan-out
//! [`FAN`], so no level hands a node more than `FAN` children and the
//! total over all three levels stays within [`MAX_CHILDREN`] — one MPB
//! flag line per child plus one release line fits the 512-byte collective
//! region ([`MPB_COLL_BYTES`](crate::config::MPB_COLL_BYTES)) every core
//! reserves below its kernel scratchpad.
//!
//! Construction is a pure function of `(topology, participant list, root
//! rank)` — rank order breaks every tie — so all participants build
//! bit-identical trees independently, with no bootstrap communication.

use crate::config::{LINE_BYTES, MPB_COLL_BYTES, MPB_COLL_OFF};
use crate::topology::{CoreId, TileCoord, Topology};

/// Fan-out of the heap layout at each grouping level. Four keeps any
/// node's per-level fan-in a single MPB line burst while holding the
/// within-level depth of a 64-tile quadrant at three.
pub const FAN: usize = 4;

/// Hard ceiling on the number of children any node may own across all
/// levels: the collective MPB region holds one 32-byte arrival line per
/// child plus one release line. The heap layout guarantees at most
/// `3 * FAN = 12`, comfortably inside.
pub const MAX_CHILDREN: usize = MPB_COLL_BYTES / LINE_BYTES - 1;

/// Which grouping level a rank's edge to its parent belongs to (the
/// instrumentation counters split arrivals/releases by this).
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum CollLevel {
    /// Within one tile (zero hops).
    Tile,
    /// Tile leaders within one memory controller's region.
    Quad,
    /// Quadrant leaders meeting at the root rank.
    Root,
}

impl CollLevel {
    /// Metric-label suffix.
    pub fn name(self) -> &'static str {
        match self {
            CollLevel::Tile => "tile",
            CollLevel::Quad => "quad",
            CollLevel::Root => "root",
        }
    }
}

/// The fan-in tree over one participant list. Indices everywhere are
/// *ranks* — positions in the participant list — not core ids.
#[derive(Clone, Debug)]
pub struct CollTree {
    cores: Vec<CoreId>,
    parent: Vec<Option<usize>>,
    children: Vec<Vec<usize>>,
    child_slot: Vec<usize>,
    level: Vec<CollLevel>,
    parent_hops: Vec<u32>,
    root: usize,
    depth: u32,
}

impl CollTree {
    /// Build the tree for `cores` rooted at rank `root`. Deterministic:
    /// every participant calling with the same arguments constructs the
    /// same tree. Panics on an empty list or an out-of-range root — both
    /// are caller bugs, not runtime conditions.
    pub fn build(topo: &Topology, cores: &[CoreId], root: usize) -> CollTree {
        assert!(!cores.is_empty(), "collective tree over no participants");
        assert!(root < cores.len(), "root rank {root} out of range");
        let n = cores.len();
        let mut t = CollTree {
            cores: cores.to_vec(),
            parent: vec![None; n],
            children: vec![Vec::new(); n],
            child_slot: vec![0; n],
            level: vec![CollLevel::Root; n],
            parent_hops: vec![0; n],
            root,
            depth: 0,
        };

        // Tile level: group ranks by tile (first-seen order; rank order
        // within a group). The lowest rank leads its tile — except the
        // root's tile, which the root leads so that bcast/reduce can be
        // rooted at any rank without an extra relay.
        let mut tiles: Vec<(TileCoord, Vec<usize>)> = Vec::new();
        for (r, &core) in cores.iter().enumerate() {
            let at = topo.tile_of(core);
            match tiles.iter_mut().find(|(c, _)| *c == at) {
                Some((_, members)) => members.push(r),
                None => tiles.push((at, vec![r])),
            }
        }
        let mut leaders = Vec::with_capacity(tiles.len());
        for (_, members) in &tiles {
            let lead = if members.contains(&root) { root } else { members[0] };
            let mut seq = vec![lead];
            seq.extend(members.iter().copied().filter(|&r| r != lead));
            t.attach(topo, &seq, CollLevel::Tile);
            leaders.push(lead);
        }

        // Quadrant level: group tile leaders by their nearest memory
        // controller. The leader closest to the controller's attach point
        // leads the quadrant (rank breaks ties); the rest fan in sorted
        // nearest-first so upper heap positions go to close neighbours.
        let mut quads: Vec<(usize, Vec<usize>)> = Vec::new();
        for &lead in &leaders {
            let mc = topo.nearest_mc(cores[lead]);
            match quads.iter_mut().find(|(m, _)| *m == mc) {
                Some((_, leads)) => leads.push(lead),
                None => quads.push((mc, vec![lead])),
            }
        }
        let mut qleaders = Vec::with_capacity(quads.len());
        for (mc, leads) in &quads {
            let qlead = if leads.contains(&root) {
                root
            } else {
                *leads
                    .iter()
                    .min_by_key(|&&r| (topo.hops_to_mc(cores[r], *mc), r))
                    .expect("non-empty quadrant")
            };
            let mut seq = vec![qlead];
            let mut rest: Vec<usize> =
                leads.iter().copied().filter(|&r| r != qlead).collect();
            rest.sort_by_key(|&r| (topo.hops(cores[r], cores[qlead]), r));
            seq.extend(rest);
            t.attach(topo, &seq, CollLevel::Quad);
            qleaders.push(qlead);
        }

        // Root level: quadrant leaders meet at the root.
        let mut seq = vec![root];
        let mut rest: Vec<usize> =
            qleaders.iter().copied().filter(|&r| r != root).collect();
        rest.sort_by_key(|&r| (topo.hops(cores[r], cores[root]), r));
        seq.extend(rest);
        t.attach(topo, &seq, CollLevel::Root);

        // Every rank must reach the root; record the tree depth.
        for r in 0..n {
            let mut d = 0u32;
            let mut cur = r;
            while let Some(p) = t.parent[cur] {
                d += 1;
                cur = p;
                assert!(d as usize <= n, "cycle in collective tree");
            }
            assert_eq!(cur, root, "rank {r} does not reach the root");
            t.depth = t.depth.max(d);
        }
        t
    }

    /// Lay one grouping level out as a heap: `seq[0]` is the level
    /// leader and `seq[i]` (i ≥ 1) attaches under `seq[(i-1)/FAN]`.
    fn attach(&mut self, topo: &Topology, seq: &[usize], level: CollLevel) {
        for i in 1..seq.len() {
            let child = seq[i];
            let parent = seq[(i - 1) / FAN];
            debug_assert!(self.parent[child].is_none(), "rank attached twice");
            self.parent[child] = Some(parent);
            self.level[child] = level;
            self.parent_hops[child] = topo.hops(self.cores[child], self.cores[parent]);
            self.child_slot[child] = self.children[parent].len();
            self.children[parent].push(child);
            assert!(
                self.children[parent].len() <= MAX_CHILDREN,
                "collective fan-in overflow: rank {parent} would own {} children",
                self.children[parent].len()
            );
        }
    }

    /// Number of participants.
    #[inline]
    pub fn nranks(&self) -> usize {
        self.cores.len()
    }

    /// The root rank.
    #[inline]
    pub fn root(&self) -> usize {
        self.root
    }

    /// The core a rank runs on.
    #[inline]
    pub fn core(&self, rank: usize) -> CoreId {
        self.cores[rank]
    }

    /// A rank's parent rank (`None` for the root).
    #[inline]
    pub fn parent(&self, rank: usize) -> Option<usize> {
        self.parent[rank]
    }

    /// A rank's children, in deterministic wait order.
    #[inline]
    pub fn children(&self, rank: usize) -> &[usize] {
        &self.children[rank]
    }

    /// The arrival-line slot this rank writes in its parent's MPB
    /// (meaningless for the root, which has no parent).
    #[inline]
    pub fn child_slot(&self, rank: usize) -> usize {
        self.child_slot[rank]
    }

    /// The grouping level of a rank's edge to its parent.
    #[inline]
    pub fn level(&self, rank: usize) -> CollLevel {
        self.level[rank]
    }

    /// Mesh hops between a rank and its parent (0 for the root).
    #[inline]
    pub fn parent_hops(&self, rank: usize) -> u32 {
        self.parent_hops[rank]
    }

    /// The longest rank→root path, in edges.
    #[inline]
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// MPB offset of the arrival line a child at `slot` writes in its
    /// parent's collective region.
    #[inline]
    pub fn arrival_off(slot: usize) -> usize {
        assert!(slot < MAX_CHILDREN);
        MPB_COLL_OFF + slot * LINE_BYTES
    }

    /// MPB offset of the release line a parent writes in each child's
    /// collective region (the sixteenth and last line).
    #[inline]
    pub fn release_off() -> usize {
        MPB_COLL_OFF + MAX_CHILDREN * LINE_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_cores(topo: &Topology) -> Vec<CoreId> {
        topo.cores().collect()
    }

    fn presets() -> [Topology; 4] {
        [
            Topology::scc48(),
            Topology::mesh8x8(),
            Topology::mesh16x16(),
            Topology::mesh16x32(),
        ]
    }

    #[test]
    fn every_rank_reaches_root_and_slots_are_unique() {
        for topo in presets() {
            let cores = all_cores(&topo);
            let t = CollTree::build(&topo, &cores, 0);
            assert_eq!(t.nranks(), cores.len());
            let mut child_count = 0;
            for r in 0..t.nranks() {
                assert!(t.children(r).len() <= MAX_CHILDREN);
                // Children's slots are their positions in the child list.
                for (slot, &c) in t.children(r).iter().enumerate() {
                    assert_eq!(t.parent(c), Some(r));
                    assert_eq!(t.child_slot(c), slot);
                    child_count += 1;
                }
            }
            // n-1 edges: a tree.
            assert_eq!(child_count, t.nranks() - 1);
            assert_eq!(t.parent(t.root()), None);
        }
    }

    #[test]
    fn tile_edges_have_zero_hops() {
        for topo in presets() {
            let cores = all_cores(&topo);
            let t = CollTree::build(&topo, &cores, 0);
            for r in 0..t.nranks() {
                if t.parent(r).is_some() && t.level(r) == CollLevel::Tile {
                    assert_eq!(
                        t.parent_hops(r),
                        0,
                        "tile-level edge of rank {r} leaves its tile"
                    );
                }
            }
        }
    }

    #[test]
    fn quad_edges_stay_in_their_quadrant() {
        for topo in presets() {
            let cores = all_cores(&topo);
            let t = CollTree::build(&topo, &cores, 0);
            for r in 0..t.nranks() {
                if let Some(p) = t.parent(r) {
                    if t.level(r) == CollLevel::Quad {
                        assert_eq!(
                            topo.nearest_mc(t.core(r)),
                            topo.nearest_mc(t.core(p)),
                            "quad-level edge {r}->{p} crosses quadrants"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn depth_is_logarithmic_not_linear() {
        // The point of the tree: 512 cores in a handful of levels, where
        // the flat rendezvous takes 511 sequential off-die round trips.
        let topo = Topology::mesh16x32();
        let t = CollTree::build(&topo, &all_cores(&topo), 0);
        assert!(t.depth() >= 2);
        assert!(
            t.depth() <= 8,
            "512-core tree depth {} is not logarithmic",
            t.depth()
        );
        let scc = Topology::scc48();
        let t48 = CollTree::build(&scc, &all_cores(&scc), 0);
        assert!(t48.depth() <= 6, "48-core depth {}", t48.depth());
    }

    #[test]
    fn rooting_at_any_rank_keeps_the_root_parentless() {
        let topo = Topology::scc48();
        let cores = all_cores(&topo);
        for root in [0usize, 1, 17, 30, 47] {
            let t = CollTree::build(&topo, &cores, root);
            assert_eq!(t.root(), root);
            assert_eq!(t.parent(root), None);
            // The root leads its tile and quadrant: no Tile/Quad-level
            // edge points *from* the root upward (it has none), and every
            // rank still reaches it.
            for r in 0..t.nranks() {
                let mut cur = r;
                while let Some(p) = t.parent(cur) {
                    cur = p;
                }
                assert_eq!(cur, root);
            }
        }
    }

    #[test]
    fn sparse_participant_subsets_build() {
        // Cluster::run_on boots arbitrary core subsets; the tree must not
        // assume dense rank→core numbering.
        let topo = Topology::scc48();
        let cores = vec![
            CoreId::new(30),
            CoreId::new(0),
            CoreId::new(47),
            CoreId::new(1),
            CoreId::new(31),
        ];
        for root in 0..cores.len() {
            let t = CollTree::build(&topo, &cores, root);
            assert_eq!(t.nranks(), 5);
            let edges: usize = (0..5).map(|r| t.children(r).len()).sum();
            assert_eq!(edges, 4);
            // Cores 30 and 31 share a tile; their edge (whoever is the
            // child) must be tile-level.
            for (a, b) in [(0usize, 4usize), (4, 0)] {
                if t.parent(a) == Some(b) {
                    assert_eq!(t.level(a), CollLevel::Tile);
                }
            }
        }
    }

    #[test]
    fn single_rank_tree_is_just_the_root() {
        let topo = Topology::scc48();
        let t = CollTree::build(&topo, &[CoreId::new(7)], 0);
        assert_eq!(t.nranks(), 1);
        assert_eq!(t.depth(), 0);
        assert!(t.children(0).is_empty());
    }

    #[test]
    fn deterministic_rebuild() {
        let topo = Topology::mesh8x8();
        let cores = all_cores(&topo);
        let a = CollTree::build(&topo, &cores, 3);
        let b = CollTree::build(&topo, &cores, 3);
        for r in 0..a.nranks() {
            assert_eq!(a.parent(r), b.parent(r));
            assert_eq!(a.children(r), b.children(r));
            assert_eq!(a.child_slot(r), b.child_slot(r));
        }
    }

    #[test]
    fn line_offsets_fit_the_region() {
        use crate::config::{MPB_BYTES, MPB_COLL_OFF};
        assert_eq!(CollTree::arrival_off(0), MPB_COLL_OFF);
        let last = CollTree::arrival_off(MAX_CHILDREN - 1);
        assert!(last < CollTree::release_off());
        assert_eq!(CollTree::release_off() + LINE_BYTES, MPB_BYTES - 1024);
    }
}
