//! Structured protocol-event tracing — the instrumentation half of the
//! unified instrumentation layer (the other half is [`crate::metrics`]).
//!
//! Every layer of the stack (hardware model, kernel, mailbox, SVM) emits
//! **typed events** through [`CoreCtx::trace`](crate::CoreCtx::trace):
//! the five steps of the ownership-migration protocol, mailbox traffic,
//! IPIs, lazy-release flush/invalidate actions, TLB activity and page
//! placement decisions. Each event is stamped with the emitting core's
//! simulated clock and recorded into a **per-core ring buffer** — each
//! simulated core only ever writes its own ring from its own thread, so
//! recording needs no synchronisation at all.
//!
//! ## Zero cost when disabled
//!
//! Recording is compiled in only under the `trace` cargo feature. Without
//! it, [`TraceRing`] is a zero-sized struct and
//! [`TraceRing::record`] is an empty `#[inline(always)]` function, so every
//! emission site in the stack folds away to nothing — the default build is
//! bit-for-bit the untraced simulator. With the feature on, tracing still
//! never touches a core's virtual clock: simulated time is identical with
//! recording on, masked off, or compiled out (the shadow tests assert
//! this).
//!
//! ## Export
//!
//! [`chrome_trace_json`] renders the rings as Chrome `trace_event` JSON
//! (open in `chrome://tracing` or <https://ui.perfetto.dev>; one thread
//! lane per core, timestamps in simulated microseconds).
//! [`protocol_log`] renders a flat, time-sorted plain-text protocol log
//! for grepping and diffing.

use crate::topology::CoreId;
use serde::{Deserialize, Serialize};

/// The event taxonomy. Discriminants are stable bit positions in
/// [`TraceConfig::mask`] and must stay below 64.
#[repr(u8)]
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A page fault entered the kernel (`a` = faulting VA, `b` = 1 for
    /// write access).
    PageFault = 0,
    /// Strong/WI model, step 2: requester sends an ownership request
    /// (`a` = page, `b` = believed owner).
    OwnRequest = 1,
    /// Owner side: request arrived for a page we no longer own; forwarded
    /// (`a` = page, `b` = current owner).
    OwnForward = 2,
    /// Owner side, steps 3–4: flushed, withdrew access, recorded the new
    /// owner (`a` = page, `b` = new owner).
    OwnGrant = 3,
    /// Requester side, step 5: the acknowledgement mail arrived
    /// (`a` = page).
    OwnAck = 4,
    /// Requester side: ownership migration complete, page mapped
    /// (`a` = page, `b` = frame).
    OwnAcquired = 5,
    /// First-touch frame allocation (`a` = page, `b` = frame).
    FirstTouch = 6,
    /// Affinity-on-next-touch migration (`a` = page, `b` = new frame).
    Migrate = 7,
    /// Write-invalidate model: read replica granted and mapped
    /// (`a` = page, `b` = version).
    ReadReplica = 8,
    /// Write-invalidate: invalidations sent to the copyset
    /// (`a` = page, `b` = number of replica holders).
    WiInvSend = 9,
    /// Write-invalidate: replica dropped on an invalidation mail
    /// (`a` = page).
    WiInvRecv = 10,
    /// Write-invalidate: grant mail arrived (`a` = page, `b` = 1 for a
    /// write grant).
    WiGrant = 11,
    /// Mailbox send (`a` = destination core, `b` = mail kind).
    MailSend = 12,
    /// Mailbox receive (`a` = source core, `b` = mail kind).
    MailRecv = 13,
    /// GIC doorbell raised (`a` = destination core).
    IpiSend = 14,
    /// GIC doorbell claimed (`a` = source core).
    IpiRecv = 15,
    /// Write-combine buffer line left the buffer (`a` = line address /
    /// 32).
    WcbFlush = 16,
    /// `CL1INVMB` executed: all MPBT-tagged L1 lines invalidated.
    Cl1Invmb = 17,
    /// Lazy-release acquire action: lock taken, tagged lines invalidated
    /// (`a` = test-and-set register).
    AcquireInv = 18,
    /// Lazy-release release action: WCB flushed, lock dropped
    /// (`a` = test-and-set register).
    ReleaseFlush = 19,
    /// SVM barrier entered (release + acquire actions around it).
    Barrier = 20,
    /// Software-TLB translation hit (`a` = virtual page number).
    /// Off in the default mask — it fires on nearly every access.
    TlbHit = 21,
    /// Software-TLB miss: page-table walk taken (`a` = virtual page
    /// number).
    TlbMiss = 22,
    /// TLB entry dropped by a PTE-mutation shootdown (`a` = virtual page
    /// number).
    TlbShootdown = 23,
    /// PTE installed (`a` = VA, `b` = frame).
    PageMap = 24,
    /// PTE permissions changed (`a` = VA, `b` = new flag bits).
    PageProtect = 25,
    /// PTE dropped (`a` = VA).
    PageUnmap = 26,
    /// Core entered a blocking wait in the executor.
    BlockEnter = 27,
    /// Core left a blocking wait (the exporter pairs Enter/Exit into
    /// duration slices).
    BlockExit = 28,
    /// SVM page read through an `SvmArray` accessor, deduplicated per
    /// synchronisation segment (`a` = page).
    SvmRead = 29,
    /// SVM page write through an `SvmArray` accessor, deduplicated per
    /// synchronisation segment (`a` = page).
    SvmWrite = 30,
    /// `SvmLock::acquire` entered: the test-and-set register was taken
    /// (`a` = register). The matching [`EventKind::AcquireInv`] records
    /// the invalidate half of the acquire action.
    LockAcquire = 31,
    /// `SvmLock::release` completed: the test-and-set register was
    /// dropped (`a` = register). The matching
    /// [`EventKind::ReleaseFlush`] records the flush half.
    LockRelease = 32,
    /// A typed synchronisation-misuse error was detected and reported
    /// (`a` = register, `b` = error code: 1 = acquire re-entry,
    /// 2 = release of a lock not held).
    SyncErr = 33,
    /// SVM region allocated (`a` = first page, `b` = page count,
    /// `c` = consistency model: 0 strong, 1 lazy release,
    /// 2 write-invalidate).
    RegionAlloc = 34,
    /// `FrameOwners` advisory registry update (`a` = frame,
    /// `b` = new owner core, or `u32::MAX` on release).
    FrameOwner = 35,
    /// MPB-tree collective: a child's arrival flag was observed by its
    /// parent (`a` = child core, `b` = barrier epoch, `c` = tree level:
    /// 0 tile, 1 quad, 2 root).
    CollArrive = 36,
    /// MPB-tree collective: a parent released a child (`a` = child core,
    /// `b` = barrier epoch, `c` = tree level as in `CollArrive`).
    CollRelease = 37,
    /// svm-kv: a client issued a request (`a` = op: 0 GET / 1 PUT /
    /// 2 SCAN, `b` = key, `c` = correlation id).
    KvReq = 38,
    /// svm-kv: the matching reply completed at the client
    /// (`a` = op, `b` = virtual-time latency in cycles, saturated at
    /// `u32::MAX`, `c` = correlation id).
    KvResp = 39,
}

/// All kinds, in discriminant order (kept in sync with the enum; the unit
/// tests assert the mapping).
pub const ALL_KINDS: [EventKind; 40] = [
    EventKind::PageFault,
    EventKind::OwnRequest,
    EventKind::OwnForward,
    EventKind::OwnGrant,
    EventKind::OwnAck,
    EventKind::OwnAcquired,
    EventKind::FirstTouch,
    EventKind::Migrate,
    EventKind::ReadReplica,
    EventKind::WiInvSend,
    EventKind::WiInvRecv,
    EventKind::WiGrant,
    EventKind::MailSend,
    EventKind::MailRecv,
    EventKind::IpiSend,
    EventKind::IpiRecv,
    EventKind::WcbFlush,
    EventKind::Cl1Invmb,
    EventKind::AcquireInv,
    EventKind::ReleaseFlush,
    EventKind::Barrier,
    EventKind::TlbHit,
    EventKind::TlbMiss,
    EventKind::TlbShootdown,
    EventKind::PageMap,
    EventKind::PageProtect,
    EventKind::PageUnmap,
    EventKind::BlockEnter,
    EventKind::BlockExit,
    EventKind::SvmRead,
    EventKind::SvmWrite,
    EventKind::LockAcquire,
    EventKind::LockRelease,
    EventKind::SyncErr,
    EventKind::RegionAlloc,
    EventKind::FrameOwner,
    EventKind::CollArrive,
    EventKind::CollRelease,
    EventKind::KvReq,
    EventKind::KvResp,
];

impl EventKind {
    /// Number of event kinds in the taxonomy (the coverage accumulators
    /// size their transition tables from this).
    pub const COUNT: usize = ALL_KINDS.len();

    /// Stable ordinal of this kind: its discriminant, an index into
    /// [`ALL_KINDS`]. Transition-coverage signals (svm-fuzz) encode pairs
    /// of ordinals, so these must never be renumbered — append new kinds
    /// at the end of the enum only.
    #[inline]
    pub const fn ordinal(self) -> u8 {
        self as u8
    }

    /// Inverse of [`EventKind::ordinal`].
    #[inline]
    pub fn from_ordinal(o: u8) -> Option<EventKind> {
        ALL_KINDS.get(o as usize).copied()
    }

    /// The SVM page (or frame, for [`EventKind::FrameOwner`]) an event is
    /// about, when its payload names one — the per-page key of the
    /// transition-coverage signal. `None` for kinds whose payload is not
    /// page-shaped (mail traffic, cache maintenance, kv ops...).
    #[inline]
    pub fn page_key(self, e: &TraceEvent) -> Option<u32> {
        match self {
            EventKind::OwnRequest
            | EventKind::OwnForward
            | EventKind::OwnGrant
            | EventKind::OwnAck
            | EventKind::OwnAcquired
            | EventKind::FirstTouch
            | EventKind::Migrate
            | EventKind::ReadReplica
            | EventKind::WiInvSend
            | EventKind::WiInvRecv
            | EventKind::WiGrant
            | EventKind::SvmRead
            | EventKind::SvmWrite
            | EventKind::RegionAlloc
            | EventKind::FrameOwner => Some(e.a),
            _ => None,
        }
    }

    /// The *other* core an event names, when its payload carries one —
    /// the core-pair key of the transition-coverage signal. The emitting
    /// core is implicit (rings are per-core), so `(emitter, peer, kind)`
    /// identifies one directed protocol edge.
    #[inline]
    pub fn peer_core(self, e: &TraceEvent) -> Option<u32> {
        match self {
            // Mail and doorbell traffic: `a` is the other endpoint.
            EventKind::MailSend
            | EventKind::MailRecv
            | EventKind::IpiSend
            | EventKind::IpiRecv => Some(e.a),
            // Ownership migration: `b` names the believed owner / new
            // owner / granter.
            EventKind::OwnRequest | EventKind::OwnGrant | EventKind::OwnAck => Some(e.b),
            // Collective tree edges: `a` is the child core.
            EventKind::CollArrive | EventKind::CollRelease => Some(e.a),
            _ => None,
        }
    }

    /// Event name as it appears in the Chrome trace and the protocol log.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::PageFault => "page_fault",
            EventKind::OwnRequest => "own_request",
            EventKind::OwnForward => "own_forward",
            EventKind::OwnGrant => "own_grant",
            EventKind::OwnAck => "own_ack",
            EventKind::OwnAcquired => "own_acquired",
            EventKind::FirstTouch => "first_touch",
            EventKind::Migrate => "migrate",
            EventKind::ReadReplica => "read_replica",
            EventKind::WiInvSend => "wi_inv_send",
            EventKind::WiInvRecv => "wi_inv_recv",
            EventKind::WiGrant => "wi_grant",
            EventKind::MailSend => "mail_send",
            EventKind::MailRecv => "mail_recv",
            EventKind::IpiSend => "ipi_send",
            EventKind::IpiRecv => "ipi_recv",
            EventKind::WcbFlush => "wcb_flush",
            EventKind::Cl1Invmb => "cl1invmb",
            EventKind::AcquireInv => "acquire_inv",
            EventKind::ReleaseFlush => "release_flush",
            EventKind::Barrier => "barrier",
            EventKind::TlbHit => "tlb_hit",
            EventKind::TlbMiss => "tlb_miss",
            EventKind::TlbShootdown => "tlb_shootdown",
            EventKind::PageMap => "page_map",
            EventKind::PageProtect => "page_protect",
            EventKind::PageUnmap => "page_unmap",
            EventKind::BlockEnter => "block",
            EventKind::BlockExit => "unblock",
            EventKind::SvmRead => "svm_read",
            EventKind::SvmWrite => "svm_write",
            EventKind::LockAcquire => "lock_acquire",
            EventKind::LockRelease => "lock_release",
            EventKind::SyncErr => "sync_err",
            EventKind::RegionAlloc => "region_alloc",
            EventKind::FrameOwner => "frame_owner",
            EventKind::CollArrive => "coll_arrive",
            EventKind::CollRelease => "coll_release",
            EventKind::KvReq => "kv_req",
            EventKind::KvResp => "kv_resp",
        }
    }

    /// Subsystem category (the Chrome trace `cat` field).
    pub fn category(self) -> &'static str {
        match self {
            EventKind::PageFault
            | EventKind::PageMap
            | EventKind::PageProtect
            | EventKind::PageUnmap => "paging",
            EventKind::OwnRequest
            | EventKind::OwnForward
            | EventKind::OwnGrant
            | EventKind::OwnAck
            | EventKind::OwnAcquired => "svm",
            EventKind::FirstTouch | EventKind::Migrate => "placement",
            EventKind::ReadReplica
            | EventKind::WiInvSend
            | EventKind::WiInvRecv
            | EventKind::WiGrant => "wi",
            EventKind::MailSend | EventKind::MailRecv => "mailbox",
            EventKind::IpiSend | EventKind::IpiRecv => "gic",
            EventKind::WcbFlush | EventKind::Cl1Invmb => "cache",
            EventKind::AcquireInv
            | EventKind::ReleaseFlush
            | EventKind::Barrier
            | EventKind::LockAcquire
            | EventKind::LockRelease
            | EventKind::SyncErr
            | EventKind::CollArrive
            | EventKind::CollRelease => "sync",
            EventKind::TlbHit | EventKind::TlbMiss | EventKind::TlbShootdown => "tlb",
            EventKind::BlockEnter | EventKind::BlockExit => "exec",
            EventKind::SvmRead | EventKind::SvmWrite | EventKind::RegionAlloc => "svm",
            EventKind::FrameOwner => "placement",
            EventKind::KvReq | EventKind::KvResp => "kv",
        }
    }

    /// Names of the three payload arguments; `""` marks an unused slot.
    pub fn arg_names(self) -> (&'static str, &'static str, &'static str) {
        match self {
            EventKind::PageFault => ("va", "write", ""),
            EventKind::OwnRequest => ("page", "owner", ""),
            EventKind::OwnForward => ("page", "owner", "requester"),
            EventKind::OwnGrant => ("page", "to", ""),
            EventKind::OwnAck => ("page", "granter", ""),
            EventKind::OwnAcquired => ("page", "frame", ""),
            EventKind::FirstTouch => ("page", "frame", ""),
            EventKind::Migrate => ("page", "frame", ""),
            EventKind::ReadReplica => ("page", "version", ""),
            EventKind::WiInvSend => ("page", "replicas", ""),
            EventKind::WiInvRecv => ("page", "", ""),
            EventKind::WiGrant => ("page", "write", ""),
            EventKind::MailSend => ("dst", "kind", "stamp"),
            EventKind::MailRecv => ("src", "kind", "stamp"),
            EventKind::IpiSend => ("dst", "", ""),
            EventKind::IpiRecv => ("src", "", ""),
            EventKind::WcbFlush => ("line", "", ""),
            EventKind::Cl1Invmb => ("", "", ""),
            EventKind::AcquireInv => ("reg", "", ""),
            EventKind::ReleaseFlush => ("reg", "", ""),
            EventKind::Barrier => ("", "", ""),
            EventKind::TlbHit => ("vpn", "", ""),
            EventKind::TlbMiss => ("vpn", "", ""),
            EventKind::TlbShootdown => ("vpn", "", ""),
            EventKind::PageMap => ("va", "frame", ""),
            EventKind::PageProtect => ("va", "flags", ""),
            EventKind::PageUnmap => ("va", "", ""),
            EventKind::BlockEnter => ("", "", ""),
            EventKind::BlockExit => ("", "", ""),
            EventKind::SvmRead => ("page", "", ""),
            EventKind::SvmWrite => ("page", "", ""),
            EventKind::LockAcquire => ("reg", "", ""),
            EventKind::LockRelease => ("reg", "", ""),
            EventKind::SyncErr => ("reg", "code", ""),
            EventKind::RegionAlloc => ("page", "pages", "model"),
            EventKind::FrameOwner => ("frame", "owner", ""),
            EventKind::CollArrive => ("child", "epoch", "level"),
            EventKind::CollRelease => ("child", "epoch", "level"),
            EventKind::KvReq => ("op", "key", "corr"),
            EventKind::KvResp => ("op", "latency", "corr"),
        }
    }

    /// Inverse of [`EventKind::name`] — used by the offline trace parsers.
    pub fn from_name(name: &str) -> Option<EventKind> {
        ALL_KINDS.iter().copied().find(|k| k.name() == name)
    }

    /// This kind's bit in [`TraceConfig::mask`].
    #[inline]
    pub fn bit(self) -> u64 {
        1 << (self as u8)
    }

    /// Mask with every kind enabled.
    pub fn all_mask() -> u64 {
        (1u64 << ALL_KINDS.len()) - 1
    }

    /// The default mask: everything except [`EventKind::TlbHit`], which
    /// fires on nearly every memory access and would instantly wrap any
    /// ring.
    pub fn default_mask() -> u64 {
        Self::all_mask() & !EventKind::TlbHit.bit()
    }
}

/// One recorded event. The core id is implicit — rings are per-core.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated time (core cycles) at emission.
    pub t: u64,
    pub kind: EventKind,
    pub a: u32,
    pub b: u32,
    /// Third payload slot — correlation ids and model tags; `0` for kinds
    /// whose third [`EventKind::arg_names`] slot is unused.
    pub c: u32,
}

/// Runtime trace configuration (part of [`crate::SccConfig`]). Inert
/// unless the crate is built with the `trace` feature.
#[derive(Copy, Clone, Debug, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Ring capacity per core, in events. `0` disables recording even when
    /// the `trace` feature is compiled in.
    pub per_core_capacity: usize,
    /// Bitmask of enabled [`EventKind`]s (bit index = discriminant).
    pub mask: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            per_core_capacity: 1 << 14,
            mask: EventKind::default_mask(),
        }
    }
}

impl TraceConfig {
    /// Recording off at runtime (the shadow-test baseline).
    pub fn disabled() -> Self {
        TraceConfig {
            per_core_capacity: 0,
            mask: 0,
        }
    }

    /// Every kind enabled with the given ring capacity.
    pub fn full(per_core_capacity: usize) -> Self {
        TraceConfig {
            per_core_capacity,
            mask: EventKind::all_mask(),
        }
    }
}

/// A per-core event ring. Without the `trace` feature this is a zero-sized
/// type and every method is a no-op.
#[derive(Debug, Default)]
pub struct TraceRing {
    #[cfg(feature = "trace")]
    buf: Vec<TraceEvent>,
    #[cfg(feature = "trace")]
    head: usize,
    #[cfg(feature = "trace")]
    cap: usize,
    #[cfg(feature = "trace")]
    mask: u64,
    #[cfg(feature = "trace")]
    overwritten: u64,
}

impl TraceRing {
    /// Whether event recording is compiled into this build.
    pub const fn compiled_in() -> bool {
        cfg!(feature = "trace")
    }

    #[allow(unused_variables)]
    pub fn new(cfg: &TraceConfig) -> TraceRing {
        #[cfg(feature = "trace")]
        {
            TraceRing {
                buf: Vec::with_capacity(cfg.per_core_capacity.min(1 << 20)),
                head: 0,
                cap: cfg.per_core_capacity.min(1 << 20),
                mask: cfg.mask,
                overwritten: 0,
            }
        }
        #[cfg(not(feature = "trace"))]
        TraceRing::default()
    }

    /// Record one event (two payload slots). The hot-path funnel: compiles
    /// to nothing without the `trace` feature, and to a mask test plus a
    /// ring store with it.
    #[inline(always)]
    pub fn record(&mut self, t: u64, kind: EventKind, a: u32, b: u32) {
        self.record3(t, kind, a, b, 0);
    }

    /// Record one event with all three payload slots.
    #[inline(always)]
    #[allow(unused_variables)]
    pub fn record3(&mut self, t: u64, kind: EventKind, a: u32, b: u32, c: u32) {
        #[cfg(feature = "trace")]
        {
            if self.cap == 0 || self.mask & kind.bit() == 0 {
                return;
            }
            let e = TraceEvent { t, kind, a, b, c };
            if self.buf.len() < self.cap {
                self.buf.push(e);
            } else {
                self.buf[self.head] = e;
                self.head = (self.head + 1) % self.cap;
                self.overwritten += 1;
            }
        }
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        #[cfg(feature = "trace")]
        {
            self.buf.len()
        }
        #[cfg(not(feature = "trace"))]
        0
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events overwritten after the ring wrapped (oldest-first eviction).
    pub fn overwritten(&self) -> u64 {
        #[cfg(feature = "trace")]
        {
            self.overwritten
        }
        #[cfg(not(feature = "trace"))]
        0
    }

    /// The held events in chronological order.
    pub fn events(&self) -> Vec<TraceEvent> {
        #[cfg(feature = "trace")]
        {
            let mut out = Vec::with_capacity(self.buf.len());
            out.extend_from_slice(&self.buf[self.head..]);
            out.extend_from_slice(&self.buf[..self.head]);
            out
        }
        #[cfg(not(feature = "trace"))]
        Vec::new()
    }
}

// ----------------------------------------------------------------------
// Exporters
// ----------------------------------------------------------------------

fn push_args(out: &mut String, e: &TraceEvent) {
    let (an, bn, cn) = e.kind.arg_names();
    out.push('{');
    let mut any = false;
    for (name, val) in [(an, e.a), (bn, e.b), (cn, e.c)] {
        if name.is_empty() {
            continue;
        }
        if any {
            out.push(',');
        }
        any = true;
        out.push_str(&format!("\"{name}\":{val}"));
    }
    out.push('}');
}

/// Render per-core rings as Chrome `trace_event` JSON (JSON-array format).
/// Timestamps are simulated microseconds (`cycles / core_mhz`); one thread
/// lane per core. `BlockEnter`/`BlockExit` pairs become duration slices,
/// everything else a thread-scoped instant event.
pub fn chrome_trace_json<'a>(
    per_core: impl IntoIterator<Item = (CoreId, &'a TraceRing)>,
    core_mhz: u32,
) -> String {
    let mhz = core_mhz as f64;
    let mut out = String::from("[\n");
    let mut first = true;
    let mut emit = |line: String, out: &mut String| {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&line);
    };
    for (core, ring) in per_core {
        let tid = core.idx();
        emit(
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\
                 \"args\":{{\"name\":\"core {tid:02}\"}}}}"
            ),
            &mut out,
        );
        let events = ring.events();
        let mut i = 0;
        while i < events.len() {
            let e = events[i];
            let ts = e.t as f64 / mhz;
            match e.kind {
                EventKind::BlockEnter => {
                    // Pair with the next BlockExit on this core.
                    let exit = events[i + 1..]
                        .iter()
                        .find(|x| x.kind == EventKind::BlockExit);
                    if let Some(x) = exit {
                        let dur = (x.t.saturating_sub(e.t)) as f64 / mhz;
                        emit(
                            format!(
                                "{{\"name\":\"blocked\",\"cat\":\"exec\",\"ph\":\"X\",\
                                 \"ts\":{ts:.3},\"dur\":{dur:.3},\"pid\":0,\"tid\":{tid}}}"
                            ),
                            &mut out,
                        );
                    }
                }
                EventKind::BlockExit => {} // consumed by its BlockEnter
                _ => {
                    let mut args = String::new();
                    push_args(&mut args, &e);
                    emit(
                        format!(
                            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\
                             \"ts\":{ts:.3},\"pid\":0,\"tid\":{tid},\"args\":{args}}}",
                            e.kind.name(),
                            e.kind.category(),
                        ),
                        &mut out,
                    );
                }
            }
            i += 1;
        }
    }
    out.push_str("\n]\n");
    out
}

/// Render per-core rings as a flat plain-text protocol log, sorted by
/// simulated time (ties broken by core id). One event per line:
///
/// ```text
/// [      123456] core 03 svm.own_request page=5 owner=2
/// ```
pub fn protocol_log<'a>(per_core: impl IntoIterator<Item = (CoreId, &'a TraceRing)>) -> String {
    let mut all: Vec<(u64, usize, TraceEvent)> = Vec::new();
    for (core, ring) in per_core {
        for e in ring.events() {
            all.push((e.t, core.idx(), e));
        }
    }
    all.sort_by_key(|(t, c, _)| (*t, *c));
    let mut out = String::new();
    for (t, core, e) in all {
        let (an, bn, cn) = e.kind.arg_names();
        out.push_str(&format!(
            "[{t:>12}] core {core:02} {}.{}",
            e.kind.category(),
            e.kind.name()
        ));
        for (name, val) in [(an, e.a), (bn, e.b), (cn, e.c)] {
            if !name.is_empty() {
                out.push_str(&format!(" {name}={val}"));
            }
        }
        out.push('\n');
    }
    out
}

// ----------------------------------------------------------------------
// Sinks
// ----------------------------------------------------------------------

/// A consumer of the merged, time-ordered event stream — the online
/// attachment point for analysis tools such as the `scc_checker` crate.
///
/// [`replay`] feeds every event from a set of per-core rings to a sink in
/// global simulated-time order, the same order [`protocol_log`] prints.
/// Because rings are only merged after a run completes, a sink observes
/// exactly what an offline parse of the exported trace would — the shadow
/// tests in the checker assert the two paths produce identical findings.
pub trait EventSink {
    /// One event from `core` at simulated time `event.t`.
    fn event(&mut self, core: CoreId, event: &TraceEvent);

    /// Ring-buffer truncation notice: `core` overwrote `lost` events
    /// before the replay started, so the stream is incomplete.
    fn truncated(&mut self, core: CoreId, lost: u64) {
        let _ = (core, lost);
    }
}

/// A consumer of per-core event streams in *ring order* — the attachment
/// point for coverage accumulators (svm-fuzz's transition-coverage
/// signal), alongside the checker's globally-merged [`EventSink`].
///
/// Unlike [`replay`], [`tap`] feeds each core's ring separately and in
/// the order events were recorded, without the global merge sort: a
/// transition signal is defined over each core's own event sequence (plus
/// per-page and per-core-pair keys carried in the payloads), so the
/// merge's O(n log n) and its allocation are pure waste on the fuzzing
/// hot loop. Without the `trace` feature every ring is empty and a tap
/// costs nothing — the fuzzer degrades to blind exploration.
pub trait CoverageSink {
    /// Called once before `core`'s events, in ring (chronological) order.
    fn begin_core(&mut self, core: CoreId) {
        let _ = core;
    }

    /// One event from `core`, in ring order.
    fn event(&mut self, core: CoreId, event: &TraceEvent);
}

/// Feed every event from the per-core rings to `sink`, core by core in
/// iteration order, each core's events in ring (chronological) order.
pub fn tap<'a>(
    per_core: impl IntoIterator<Item = (CoreId, &'a TraceRing)>,
    sink: &mut dyn CoverageSink,
) {
    for (core, ring) in per_core {
        sink.begin_core(core);
        for e in ring.events() {
            sink.event(core, &e);
        }
    }
}

/// Feed every event from the per-core rings to `sink` in global
/// simulated-time order (ties broken by core id, then by ring order —
/// a stable sort, matching [`protocol_log`]). Reports each wrapped ring
/// through [`EventSink::truncated`] before the first event.
pub fn replay<'a>(
    per_core: impl IntoIterator<Item = (CoreId, &'a TraceRing)>,
    sink: &mut dyn EventSink,
) {
    let mut all: Vec<(u64, usize, TraceEvent)> = Vec::new();
    for (core, ring) in per_core {
        if ring.overwritten() > 0 {
            sink.truncated(core, ring.overwritten());
        }
        for e in ring.events() {
            all.push((e.t, core.idx(), e));
        }
    }
    all.sort_by_key(|(t, c, _)| (*t, *c));
    for (_, core, e) in &all {
        sink.event(CoreId::new(*core), e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discriminants_match_all_kinds_table() {
        for (i, k) in ALL_KINDS.iter().enumerate() {
            assert_eq!(*k as u8 as usize, i, "{k:?} out of order in ALL_KINDS");
            assert!(!k.name().is_empty());
            assert!(!k.category().is_empty());
            assert_eq!(EventKind::from_name(k.name()), Some(*k));
        }
        assert!(ALL_KINDS.len() <= 64, "mask bits must fit a u64");
        assert_eq!(EventKind::from_name("no_such_event"), None);
    }

    #[test]
    fn ordinals_round_trip_and_stay_dense() {
        assert_eq!(EventKind::COUNT, ALL_KINDS.len());
        for k in ALL_KINDS {
            assert_eq!(EventKind::from_ordinal(k.ordinal()), Some(k));
            assert!((k.ordinal() as usize) < EventKind::COUNT);
        }
        assert_eq!(EventKind::from_ordinal(EventKind::COUNT as u8), None);
    }

    #[test]
    fn payload_keys_follow_arg_names() {
        // Every kind claiming a page key must name its first payload slot
        // "page" (or "frame" for the advisory registry); every peer kind
        // must name a core-shaped slot. Guards the classification against
        // taxonomy growth: a new kind with a `page` arg that forgets to
        // extend `page_key` fails here.
        for k in ALL_KINDS {
            let e = TraceEvent { t: 0, kind: k, a: 7, b: 9, c: 0 };
            let (an, bn, _) = k.arg_names();
            if let Some(p) = k.page_key(&e) {
                assert_eq!(p, 7, "{k:?}: page key must come from slot a");
                assert!(
                    an == "page" || an == "frame",
                    "{k:?}: page-keyed but slot a is {an:?}"
                );
            } else {
                assert_ne!(an, "page", "{k:?}: has a page arg but no page key");
            }
            if let Some(peer) = k.peer_core(&e) {
                assert!(
                    (peer == 7 && matches!(an, "dst" | "src" | "child"))
                        || (peer == 9 && matches!(bn, "owner" | "to" | "granter")),
                    "{k:?}: peer key does not match its arg names"
                );
            }
        }
    }

    #[cfg(feature = "trace")]
    #[test]
    fn tap_feeds_rings_in_ring_order() {
        struct Collect(Vec<(usize, u64)>, usize);
        impl CoverageSink for Collect {
            fn begin_core(&mut self, _core: CoreId) {
                self.1 += 1;
            }
            fn event(&mut self, core: CoreId, e: &TraceEvent) {
                self.0.push((core.idx(), e.t));
            }
        }
        let mut r0 = TraceRing::new(&TraceConfig::full(8));
        r0.record(30, EventKind::Barrier, 0, 0);
        r0.record(10, EventKind::Barrier, 0, 0); // ring order, not time order
        let mut r1 = TraceRing::new(&TraceConfig::full(8));
        r1.record(20, EventKind::Cl1Invmb, 0, 0);
        let mut sink = Collect(Vec::new(), 0);
        tap(
            [(CoreId::new(0), &r0), (CoreId::new(1), &r1)]
                .iter()
                .map(|(c, r)| (*c, *r)),
            &mut sink,
        );
        assert_eq!(sink.0, vec![(0, 30), (0, 10), (1, 20)]);
        assert_eq!(sink.1, 2, "begin_core once per ring");
    }

    #[test]
    fn default_mask_excludes_tlb_hits_only() {
        let m = EventKind::default_mask();
        assert_eq!(m & EventKind::TlbHit.bit(), 0);
        for k in ALL_KINDS {
            if k != EventKind::TlbHit {
                assert_ne!(m & k.bit(), 0, "{k:?} must be on by default");
            }
        }
    }

    #[cfg(feature = "trace")]
    #[test]
    fn ring_records_and_masks() {
        let mut r = TraceRing::new(&TraceConfig::full(8));
        r.record(1, EventKind::Barrier, 0, 0);
        r.record(2, EventKind::MailSend, 3, 1);
        assert_eq!(r.len(), 2);
        let ev = r.events();
        assert_eq!(ev[0].kind, EventKind::Barrier);
        assert_eq!(ev[1].a, 3);

        let mut masked = TraceRing::new(&TraceConfig {
            per_core_capacity: 8,
            mask: EventKind::Barrier.bit(),
        });
        masked.record(1, EventKind::MailSend, 0, 0);
        masked.record(2, EventKind::Barrier, 0, 0);
        assert_eq!(masked.len(), 1, "masked kinds must not record");
    }

    #[cfg(feature = "trace")]
    #[test]
    fn ring_wraps_oldest_first() {
        let mut r = TraceRing::new(&TraceConfig::full(4));
        for t in 0..10u64 {
            r.record(t, EventKind::Barrier, t as u32, 0);
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.overwritten(), 6);
        let ts: Vec<u64> = r.events().iter().map(|e| e.t).collect();
        assert_eq!(ts, vec![6, 7, 8, 9], "chronological after wrap");
    }

    #[cfg(feature = "trace")]
    #[test]
    fn exporters_render_names_and_args() {
        let mut r = TraceRing::new(&TraceConfig::full(16));
        r.record(533, EventKind::OwnRequest, 5, 2);
        r.record(1066, EventKind::BlockEnter, 0, 0);
        r.record(2132, EventKind::BlockExit, 0, 0);
        let pairs = [(CoreId::new(3), &r)];
        let json = chrome_trace_json(pairs.iter().map(|(c, r)| (*c, *r)), 533);
        assert!(json.contains("\"own_request\""));
        assert!(json.contains("\"page\":5"));
        assert!(json.contains("\"ph\":\"X\""), "block pair must become a slice");
        assert!(json.contains("\"ts\":1.000"), "533 cy at 533 MHz = 1 us");

        let log = protocol_log(pairs.iter().map(|(c, r)| (*c, *r)));
        assert!(log.contains("core 03 svm.own_request page=5 owner=2"));
    }

    #[cfg(feature = "trace")]
    #[test]
    fn third_payload_slot_renders_when_named() {
        let mut r = TraceRing::new(&TraceConfig::full(16));
        r.record3(100, EventKind::RegionAlloc, 4, 2, 1);
        r.record3(200, EventKind::MailSend, 7, 3, 123456);
        let pairs = [(CoreId::new(0), &r)];
        let log = protocol_log(pairs.iter().map(|(c, r)| (*c, *r)));
        assert!(log.contains("svm.region_alloc page=4 pages=2 model=1"));
        assert!(log.contains("mailbox.mail_send dst=7 kind=3 stamp=123456"));
        let json = chrome_trace_json(pairs.iter().map(|(c, r)| (*c, *r)), 533);
        assert!(json.contains("\"model\":1"));
        assert!(json.contains("\"stamp\":123456"));
    }

    #[cfg(feature = "trace")]
    #[test]
    fn replay_merges_rings_in_time_order() {
        struct Collect {
            seen: Vec<(usize, u64, EventKind)>,
            lost: u64,
        }
        impl EventSink for Collect {
            fn event(&mut self, core: CoreId, e: &TraceEvent) {
                self.seen.push((core.idx(), e.t, e.kind));
            }
            fn truncated(&mut self, _core: CoreId, lost: u64) {
                self.lost += lost;
            }
        }
        let mut r0 = TraceRing::new(&TraceConfig::full(8));
        r0.record(10, EventKind::Barrier, 0, 0);
        r0.record(30, EventKind::Barrier, 0, 0);
        let mut r1 = TraceRing::new(&TraceConfig::full(8));
        r1.record(10, EventKind::Cl1Invmb, 0, 0);
        r1.record(20, EventKind::Barrier, 0, 0);
        let mut sink = Collect {
            seen: Vec::new(),
            lost: 0,
        };
        replay(
            [(CoreId::new(0), &r0), (CoreId::new(1), &r1)]
                .iter()
                .map(|(c, r)| (*c, *r)),
            &mut sink,
        );
        let order: Vec<(usize, u64)> = sink.seen.iter().map(|(c, t, _)| (*c, *t)).collect();
        assert_eq!(
            order,
            vec![(0, 10), (1, 10), (1, 20), (0, 30)],
            "global time order, ties broken by core id"
        );
        assert_eq!(sink.lost, 0);
    }

    #[cfg(not(feature = "trace"))]
    #[test]
    fn without_feature_ring_is_inert() {
        let mut r = TraceRing::new(&TraceConfig::full(1024));
        r.record(1, EventKind::Barrier, 0, 0);
        assert!(r.is_empty());
        assert!(!TraceRing::compiled_in());
        assert_eq!(std::mem::size_of::<TraceRing>(), 0, "zero-sized when disabled");
    }
}
