//! Functional models of the P54C cache hierarchy as configured by MetalSVM:
//!
//! * **L1** — 8 KiB, 2-way, per-line `MPBT` tag. Lines tagged MPBT are the
//!   target of the `CL1INVMB` instruction (flash-invalidate, no writeback —
//!   MPBT data is always written through, so it is never dirty).
//! * **L2** — 256 KiB, 4-way. The SCC **bypasses** the L2 for MPBT accesses;
//!   the P54C also has no hardware L2 flush, which is exactly why MetalSVM
//!   restricts shared pages to the L1 + write-through + WCB combination and
//!   only re-enables the L2 for read-only regions.
//! * **WCB** — the write-combine buffer: a single 32-byte line that collects
//!   write-through stores to MPBT pages so they leave the core as one burst
//!   instead of one transaction per store.
//!
//! The caches are *functional*: they store data. A core that has a line
//! cached keeps reading its (possibly stale) copy until it invalidates —
//! which is precisely the behaviour that makes software-managed coherence
//! necessary, and which the test suite asserts.
//!
//! Replacement is true-LRU per set. Writes never allocate (P54C:
//! "update cache entries on read miss only").

use crate::config::{CacheGeom, LINE_BYTES};

/// Index of a 32-byte line in physical address space (`pa / 32`).
pub type LineAddr = u32;

/// Per-line bookkeeping, packed into 16 bytes so a tag probe touches a
/// minimal slice of the line struct.
#[derive(Clone, Copy)]
struct Meta {
    tag: u32,
    /// Bit 0 valid, bit 1 dirty, bit 2 MPBT.
    flags: u32,
    lru: u64,
}

const F_VALID: u32 = 1;
const F_DIRTY: u32 = 2;
const F_MPBT: u32 = 4;

impl Meta {
    fn empty() -> Self {
        Meta {
            tag: 0,
            flags: 0,
            lru: 0,
        }
    }

    #[inline]
    fn valid(&self) -> bool {
        self.flags & F_VALID != 0
    }

    #[inline]
    fn dirty(&self) -> bool {
        self.flags & F_DIRTY != 0
    }

    #[inline]
    fn mpbt(&self) -> bool {
        self.flags & F_MPBT != 0
    }
}

/// One cache line: bookkeeping and data kept adjacent (48 bytes) so that a
/// hit touches one or two host cache lines, not one per array.
#[derive(Clone, Copy)]
struct Line {
    meta: Meta,
    data: [u8; LINE_BYTES],
}

impl Line {
    fn empty() -> Self {
        Line {
            meta: Meta::empty(),
            data: [0; LINE_BYTES],
        }
    }
}

/// A dirty line pushed out of the cache; the memory engine must write it back.
pub struct Writeback {
    pub line: LineAddr,
    pub data: [u8; LINE_BYTES],
}

/// A set-associative, true-LRU, data-carrying cache model.
pub struct Cache {
    sets: usize,
    /// `log2(sets)`: the tag is `la >> set_shift` (sets is a power of two;
    /// a shift keeps the per-access lookup free of integer division).
    set_shift: u32,
    assoc: usize,
    lines: Vec<Line>,
    tick: u64,
}

impl Cache {
    pub fn new(geom: CacheGeom) -> Self {
        let sets = geom.sets();
        assert!(sets.is_power_of_two());
        Cache {
            sets,
            set_shift: sets.trailing_zeros(),
            assoc: geom.assoc,
            lines: vec![Line::empty(); sets * geom.assoc],
            tick: 0,
        }
    }

    #[inline]
    fn set_of(&self, la: LineAddr) -> usize {
        (la as usize) & (self.sets - 1)
    }

    #[inline]
    fn tag_of(&self, la: LineAddr) -> u32 {
        la >> self.set_shift
    }

    #[inline]
    fn ways(&self, set: usize) -> std::ops::Range<usize> {
        set * self.assoc..(set + 1) * self.assoc
    }

    #[inline]
    fn find(&self, la: LineAddr) -> Option<usize> {
        let tag = self.tag_of(la);
        let base = self.set_of(la) * self.assoc;
        let ways = &self.lines[base..base + self.assoc];
        ways.iter()
            .position(|l| l.meta.valid() && l.meta.tag == tag)
            .map(|w| base + w)
    }

    /// Probe without touching LRU state (used by tests and snoops).
    pub fn contains(&self, la: LineAddr) -> bool {
        self.find(la).is_some()
    }

    /// Read `len` bytes at `offset` within line `la`, if cached.
    /// Updates LRU on hit.
    #[inline]
    pub fn read(&mut self, la: LineAddr, offset: usize, len: usize) -> Option<u64> {
        let tag = la >> self.set_shift;
        let base = ((la as usize) & (self.sets - 1)) * self.assoc;
        let tick = self.tick + 1;
        for l in &mut self.lines[base..base + self.assoc] {
            if l.meta.valid() && l.meta.tag == tag {
                self.tick = tick;
                l.meta.lru = tick;
                let mut buf = [0u8; 8];
                buf[..len].copy_from_slice(&l.data[offset..offset + len]);
                return Some(u64::from_le_bytes(buf));
            }
        }
        None
    }

    /// Write `len` bytes into line `la` **iff present** (no write-allocate).
    ///
    /// `write_through == false` marks the line dirty (write-back policy for
    /// private memory); write-through lines stay clean because the store is
    /// simultaneously sent down the hierarchy by the memory engine.
    ///
    /// Returns `true` when the line was present (a write hit).
    #[inline]
    pub fn write_if_present(
        &mut self,
        la: LineAddr,
        offset: usize,
        len: usize,
        val: u64,
        write_through: bool,
    ) -> bool {
        let tag = la >> self.set_shift;
        let base = ((la as usize) & (self.sets - 1)) * self.assoc;
        let tick = self.tick + 1;
        for l in &mut self.lines[base..base + self.assoc] {
            if l.meta.valid() && l.meta.tag == tag {
                self.tick = tick;
                l.meta.lru = tick;
                l.data[offset..offset + len].copy_from_slice(&val.to_le_bytes()[..len]);
                if !write_through {
                    l.meta.flags |= F_DIRTY;
                }
                return true;
            }
        }
        false
    }

    /// Install line `la` with `data`, returning the victim if it was dirty.
    pub fn fill(&mut self, la: LineAddr, data: [u8; LINE_BYTES], mpbt: bool) -> Option<Writeback> {
        debug_assert!(self.find(la).is_none(), "fill of already-present line");
        self.tick += 1;
        let set = self.set_of(la);
        let victim = self
            .ways(set)
            .min_by_key(|&i| {
                let m = &self.lines[i].meta;
                if m.valid() {
                    m.lru
                } else {
                    0
                }
            })
            .expect("cache set has at least one way");
        let tag = self.tag_of(la);
        let old = self.lines[victim].meta;
        let wb = (old.valid() && old.dirty()).then(|| Writeback {
            line: (old.tag * self.sets as u32) + set as u32,
            data: self.lines[victim].data,
        });
        self.lines[victim] = Line {
            meta: Meta {
                tag,
                flags: F_VALID | if mpbt { F_MPBT } else { 0 },
                lru: self.tick,
            },
            data,
        };
        wb
    }

    /// Snapshot of a cached line's data (no LRU update); `None` if absent.
    pub fn peek_line(&self, la: LineAddr) -> Option<[u8; LINE_BYTES]> {
        self.find(la).map(|i| self.lines[i].data)
    }

    /// Overwrite a whole cached line with `data` and mark it dirty, if
    /// present. Used when a dirty line evicted from an upper level lands
    /// here: skipping this would leave a stale copy that later reads hit.
    /// Returns whether the line was present.
    pub fn absorb_writeback(&mut self, la: LineAddr, data: [u8; LINE_BYTES]) -> bool {
        if let Some(i) = self.find(la) {
            self.tick += 1;
            self.lines[i].meta.lru = self.tick;
            self.lines[i].data = data;
            self.lines[i].meta.flags |= F_DIRTY;
            true
        } else {
            false
        }
    }

    /// `CL1INVMB`: flash-invalidate every line tagged MPBT. No writeback —
    /// MPBT lines are write-through by construction and therefore clean.
    /// Returns the number of lines invalidated.
    pub fn invalidate_mpbt(&mut self) -> usize {
        let mut n = 0;
        for l in &mut self.lines {
            if l.meta.valid() && l.meta.mpbt() {
                l.meta.flags &= !F_VALID;
                n += 1;
            }
        }
        n
    }

    /// Invalidate one specific line if present (no writeback). Returns
    /// whether it was present.
    pub fn invalidate_line(&mut self, la: LineAddr) -> bool {
        if let Some(i) = self.find(la) {
            self.lines[i].meta.flags &= !F_VALID;
            true
        } else {
            false
        }
    }

    /// Invalidate everything, returning writebacks for dirty lines
    /// (software L2 flush routine — the paper notes it exists but is costly).
    pub fn flush_all(&mut self) -> Vec<Writeback> {
        let sets = self.sets as u32;
        let mut out = Vec::new();
        for (i, l) in self.lines.iter_mut().enumerate() {
            if l.meta.valid() && l.meta.dirty() {
                out.push(Writeback {
                    line: l.meta.tag * sets + (i / self.assoc) as u32,
                    data: l.data,
                });
            }
            l.meta.flags &= !F_VALID;
        }
        out
    }

    /// Number of currently valid lines.
    pub fn valid_lines(&self) -> usize {
        self.lines.iter().filter(|l| l.meta.valid()).count()
    }
}

/// The write-combine buffer: one line of pending write-through data.
#[derive(Clone)]
pub struct Wcb {
    line: Option<LineAddr>,
    mask: u32,
    data: [u8; LINE_BYTES],
}

/// A combined line leaving the WCB towards memory. `mask` has one bit per
/// byte; only set bytes are written.
pub struct WcbFlush {
    pub line: LineAddr,
    pub mask: u32,
    pub data: [u8; LINE_BYTES],
}

impl Default for Wcb {
    fn default() -> Self {
        Self::new()
    }
}

impl Wcb {
    pub fn new() -> Self {
        Wcb {
            line: None,
            mask: 0,
            data: [0; LINE_BYTES],
        }
    }

    /// Merge a store into the buffer. If the store touches a different line
    /// than the one currently buffered, the old line is flushed and returned
    /// (the "miss" case of the paper's description).
    pub fn merge(&mut self, la: LineAddr, offset: usize, len: usize, val: u64) -> Option<WcbFlush> {
        debug_assert!(offset + len <= LINE_BYTES);
        let flushed = if self.line.is_some() && self.line != Some(la) {
            self.take()
        } else {
            None
        };
        self.line = Some(la);
        self.data[offset..offset + len].copy_from_slice(&val.to_le_bytes()[..len]);
        self.mask |= (((1u64 << len) - 1) as u32) << offset;
        flushed
    }

    /// Is any write buffered?
    pub fn is_dirty(&self) -> bool {
        self.line.is_some()
    }

    /// Explicitly drain the buffer (lock release, mail send, fence).
    pub fn take(&mut self) -> Option<WcbFlush> {
        let line = self.line.take()?;
        let f = WcbFlush {
            line,
            mask: self.mask,
            data: self.data,
        };
        self.mask = 0;
        Some(f)
    }

    /// Overlay buffered bytes onto a value read from below (the core snoops
    /// its own write buffer, so its loads always see its own stores).
    #[inline]
    pub fn overlay(&self, la: LineAddr, offset: usize, len: usize, val: u64) -> u64 {
        if self.line != Some(la) {
            return val;
        }
        let mut out = val;
        for k in 0..len {
            if self.mask & (1 << (offset + k)) != 0 {
                out &= !(0xffu64 << (k * 8));
                out |= (self.data[offset + k] as u64) << (k * 8);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheGeom;

    fn small() -> Cache {
        // 4 sets x 2 ways x 32B = 256 B
        Cache::new(CacheGeom { size: 256, assoc: 2 })
    }

    fn line_of(byte: u8) -> [u8; LINE_BYTES] {
        [byte; LINE_BYTES]
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small();
        assert_eq!(c.read(10, 0, 4), None);
        assert!(c.fill(10, line_of(0xAB), false).is_none());
        assert_eq!(c.read(10, 0, 4), Some(0xABABABAB));
        assert_eq!(c.read(10, 3, 2), Some(0xABAB));
    }

    #[test]
    fn write_hit_updates_data() {
        let mut c = small();
        c.fill(7, line_of(0), false);
        assert!(c.write_if_present(7, 4, 4, 0xdeadbeef, true));
        assert_eq!(c.read(7, 4, 4), Some(0xdeadbeef));
        // Write-through: not dirty, so eviction yields no writeback.
        assert!(!c.write_if_present(99, 0, 1, 1, true)); // miss: no allocate
    }

    #[test]
    fn write_back_dirty_evicts() {
        let mut c = small();
        // Set = la % 4. Lines 0, 4, 8 all map to set 0 in a 2-way cache.
        c.fill(0, line_of(1), false);
        assert!(c.write_if_present(0, 0, 4, 0x55aa55aa, false));
        c.fill(4, line_of(2), false);
        let wb = c.fill(8, line_of(3), false).expect("dirty victim");
        assert_eq!(wb.line, 0);
        assert_eq!(&wb.data[0..4], &[0xaa, 0x55, 0xaa, 0x55]);
        assert!(!c.contains(0));
    }

    #[test]
    fn lru_prefers_least_recent() {
        let mut c = small();
        c.fill(0, line_of(1), false);
        c.fill(4, line_of(2), false);
        c.read(0, 0, 1); // 0 is now more recent than 4
        c.fill(8, line_of(3), false);
        assert!(c.contains(0));
        assert!(!c.contains(4));
        assert!(c.contains(8));
    }

    #[test]
    fn cl1invmb_only_hits_mpbt_lines() {
        let mut c = small();
        c.fill(1, line_of(1), true);
        c.fill(2, line_of(2), false);
        c.fill(3, line_of(3), true);
        assert_eq!(c.invalidate_mpbt(), 2);
        assert!(!c.contains(1));
        assert!(c.contains(2));
        assert!(!c.contains(3));
    }

    #[test]
    fn flush_all_reports_dirty_lines() {
        let mut c = small();
        c.fill(5, line_of(1), false);
        c.write_if_present(5, 0, 1, 9, false);
        c.fill(6, line_of(2), false);
        let wbs = c.flush_all();
        assert_eq!(wbs.len(), 1);
        assert_eq!(wbs[0].line, 5);
        assert_eq!(c.valid_lines(), 0);
    }

    #[test]
    fn wcb_combines_within_line() {
        let mut w = Wcb::new();
        assert!(w.merge(10, 0, 4, 0x11111111).is_none());
        assert!(w.merge(10, 4, 4, 0x22222222).is_none());
        assert!(w.is_dirty());
        let f = w.take().unwrap();
        assert_eq!(f.line, 10);
        assert_eq!(f.mask, 0xff);
        assert!(!w.is_dirty());
        assert!(w.take().is_none());
    }

    #[test]
    fn wcb_flushes_on_line_switch() {
        let mut w = Wcb::new();
        w.merge(10, 0, 4, 1);
        let f = w.merge(11, 0, 4, 2).expect("switch flushes");
        assert_eq!(f.line, 10);
        let f2 = w.take().unwrap();
        assert_eq!(f2.line, 11);
    }

    #[test]
    fn wcb_overlay_merges_own_stores() {
        let mut w = Wcb::new();
        w.merge(10, 2, 2, 0xBBAA);
        // Read 4 bytes at offset 0: bytes 2,3 come from the WCB.
        let v = w.overlay(10, 0, 4, 0x44332211);
        assert_eq!(v, 0xBBAA2211);
        // Other lines unaffected.
        assert_eq!(w.overlay(11, 0, 4, 0x44332211), 0x44332211);
    }

    #[test]
    fn invalidate_line_specific() {
        let mut c = small();
        c.fill(9, line_of(7), false);
        assert!(c.invalidate_line(9));
        assert!(!c.invalidate_line(9));
        assert!(!c.contains(9));
    }
}
