//! The SCC's test-and-set registers: one atomic flag per core, located in
//! the core's tile configuration registers. They are the only atomic
//! read-modify-write primitive visible to *all* cores and are what MetalSVM
//! uses to lock its first-touch scratch pad.
//!
//! Each register additionally records the virtual-time stamp of its last
//! release so that an acquiring core's clock advances past the releaser's —
//! lock-protected critical sections stay causally ordered in simulated time.

use crate::topology::CoreId;
use std::sync::atomic::{AtomicU64, Ordering};

const LOCKED: u64 = 1;

/// The bank of test-and-set registers — one per populated core, sized at
/// construction from the configured topology (48 on the SCC preset).
pub struct TasBank {
    /// bit 0: locked; bits 1..: cycle stamp of the last release.
    regs: Box<[AtomicU64]>,
    /// Per-register sequence counter: bumped on every successful acquire
    /// and every release. The acquisition *order* of a register is part of
    /// the deterministic schedule, so the final sequence value must be
    /// bit-identical across executors — the determinism stress suite
    /// asserts exactly that.
    seqs: Box<[AtomicU64]>,
}

impl TasBank {
    pub fn new(ncores: usize) -> Self {
        let mut regs = Vec::with_capacity(ncores);
        regs.resize_with(ncores, || AtomicU64::new(0));
        let mut seqs = Vec::with_capacity(ncores);
        seqs.resize_with(ncores, || AtomicU64::new(0));
        TasBank {
            regs: regs.into_boxed_slice(),
            seqs: seqs.into_boxed_slice(),
        }
    }

    /// Atomically try to acquire register `reg`.
    ///
    /// Returns `Some(release_stamp)` when the lock was free (and is now held
    /// by the caller); `None` when it was already taken.
    #[inline]
    pub fn test_and_set(&self, reg: CoreId) -> Option<u64> {
        let r = &self.regs[reg.idx()];
        let cur = r.load(Ordering::Acquire);
        if cur & LOCKED != 0 {
            return None;
        }
        r.compare_exchange(cur, cur | LOCKED, Ordering::AcqRel, Ordering::Acquire)
            .ok()
            .map(|_| {
                self.seqs[reg.idx()].fetch_add(1, Ordering::Relaxed);
                cur >> 1
            })
    }

    /// Release register `reg`, recording the releaser's cycle stamp.
    #[inline]
    pub fn release(&self, reg: CoreId, stamp: u64) {
        self.seqs[reg.idx()].fetch_add(1, Ordering::Relaxed);
        self.regs[reg.idx()].store(stamp << 1, Ordering::Release);
    }

    /// The acquire/release sequence number of register `reg` (odd while
    /// held, even while free — a per-register sequence lock).
    #[inline]
    pub fn seq(&self, reg: CoreId) -> u64 {
        self.seqs[reg.idx()].load(Ordering::Relaxed)
    }

    /// Non-destructive peek: is the register currently held?
    #[inline]
    pub fn is_locked(&self, reg: CoreId) -> bool {
        self.regs[reg.idx()].load(Ordering::Acquire) & LOCKED != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_release_cycle() {
        let b = TasBank::new(48);
        let r = CoreId::new(3);
        assert_eq!(b.seq(r), 0);
        assert_eq!(b.test_and_set(r), Some(0));
        assert!(b.is_locked(r));
        assert_eq!(b.seq(r), 1, "odd while held");
        assert_eq!(b.test_and_set(r), None);
        assert_eq!(b.seq(r), 1, "failed probes don't bump the sequence");
        b.release(r, 1234);
        assert!(!b.is_locked(r));
        assert_eq!(b.seq(r), 2, "even while free");
        assert_eq!(b.test_and_set(r), Some(1234));
    }

    #[test]
    fn registers_independent() {
        let b = TasBank::new(48);
        assert!(b.test_and_set(CoreId::new(0)).is_some());
        assert!(b.test_and_set(CoreId::new(1)).is_some());
        assert!(!b.is_locked(CoreId::new(2)));
    }
}
