//! The deterministic conservative executor.
//!
//! Each simulated core runs on its own OS thread, but only **one thread runs
//! at a time**: a baton is passed by a scheduler that always resumes the core
//! with the smallest virtual clock (ties broken by core id). This makes runs
//! deterministic, keeps virtual clocks tightly coupled, and is also the
//! fastest honest execution mode on a small host, because simulated cores
//! never busy-spin against each other in wall-clock time.
//!
//! Cores interact with the scheduler at three points:
//!
//! * [`Scheduler::yield_now`] — voluntary preemption, called by the memory
//!   engine once a core has run a full quantum;
//! * [`Scheduler::wait_blocked`] — a simulated wait ("mail flag set",
//!   "ownership granted", "barrier released"). The wait *condition* is a
//!   side-effect-free closure over atomics.
//! * [`Scheduler::finish`] — the core's program returned.
//!
//! ## Decision rounds
//!
//! Determinism requires that scheduling never races a blocked core's
//! condition re-evaluation. Every scheduling event therefore opens a
//! **decision round**: the baton is parked, every blocked core wakes once,
//! re-evaluates its condition under the scheduler lock and records whether
//! it is satisfiable; the last checker picks the minimum-clock core among
//! the runnable and satisfiable ones. While a core runs, everyone else is
//! asleep — conditions are only ever evaluated against quiescent state, so
//! the outcome is a pure function of simulated state, never of host timing.
//!
//! **Deadlock detection** falls out naturally: a round in which no core is
//! runnable and no condition is satisfiable is a proven deadlock of the
//! simulated software; every thread then unwinds with a report naming each
//! core's wait reason.
//!
//! ## Fast-path yields
//!
//! When **no core is blocked**, a decision round is pure bookkeeping: there
//! are no conditions to re-check, and the winner is simply the minimum-clock
//! runnable core — the exact value `finalize` would compute. With the
//! `fast_yield` host fast path enabled, `yield_now` computes that winner
//! inline and hands the baton over directly (or keeps it, if the yielder is
//! still minimal), skipping the round counter, the re-check sweep, and the
//! broadcast wakeup. Virtual time is bit-identical either way; only host
//! wall-clock changes. Wakeups are targeted per slot (one condvar each, all
//! guarding the same mutex) so a hand-off wakes one thread, not all N.
//!
//! ## Inline condition evaluation
//!
//! With blocked cores present, the historical protocol wakes every blocked
//! thread once per scheduling event so it re-evaluates its condition under
//! the lock — two context switches per blocked core per yield, which
//! dominates host time at high core counts (47 sleepers woken per quantum
//! of the one runnable core). Under `fast_yield`, each blocked core instead
//! *registers* its condition with the scheduler, and whichever thread
//! performs the scheduling event evaluates all registered conditions inline
//! while holding the lock. The state observed is identical (quiescent, same
//! critical section) and the winner is the same pure function of
//! (clock, status, satisfiability), so the schedule — and therefore every
//! virtual clock — is bit-identical to the historical protocol; blocked
//! threads simply stay asleep until they actually win. With `fast_yield`
//! off, the historical wake-everyone protocol runs unchanged, which is what
//! the shadow tests compare against.
//!
//! ## Election policies
//!
//! The *eligibility* rule above (runnable, or blocked with a satisfied
//! condition) is what makes runs correct; the *choice among eligible
//! cores* is a free parameter. [`SchedPolicy`] makes it pluggable:
//! [`SchedPolicy::Baton`] (the default) keeps the historical
//! minimum-clock order bit for bit, while `SeededRandom` and
//! `PriorityBands` deliberately perturb the election so schedule-sensitive
//! bugs surface (see `svmexplore`). Every policy is a pure function of
//! simulated state plus, for the random policy, a per-run election
//! counter — so any schedule is exactly replayable from the machine
//! configuration alone. Elections only happen at yield points; the
//! interleavings explored are precisely the legal schedules of the
//! simulated software.
//!
//! ## The parallel engine replays this schedule
//!
//! The serial baton schedule defined here is also the *reference* for the
//! epoch-based parallel engine ([`crate::par`], DESIGN.md §8): under
//! `host_fast.parallel`, cores run concurrently on host threads, resolve
//! most visible operations lock-free against per-object epoch/sequence
//! state, and fall back to replaying exactly these baton elections on
//! conflict. The shadow tests hold the two executors bit-identical.

use crate::error::HwError;
use parking_lot::{Condvar, Mutex};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How long a parked core thread sleeps before the watchdog logs one
/// "parked too long" observation. Pure diagnostics: the thread goes right
/// back to waiting, the schedule is unaffected. Generous enough that no
/// healthy run — including 512-core release CI legs — ever trips it.
const PARK_WATCHDOG_DEFAULT: Duration = Duration::from_secs(10);

/// The watchdog period every new [`Scheduler`] starts with: the
/// `SCC_PARK_WATCHDOG_MS` environment variable when set (host-side
/// diagnostics only — it cannot change any simulated result), otherwise
/// [`PARK_WATCHDOG_DEFAULT`]. The regression suite shrinks it to a few
/// milliseconds to make watchdog ticks observable without a real stall.
fn park_watchdog_default_ms() -> u64 {
    match std::env::var("SCC_PARK_WATCHDOG_MS") {
        Ok(v) => v
            .parse::<u64>()
            .unwrap_or_else(|_| panic!("SCC_PARK_WATCHDOG_MS: expected milliseconds, got {v:?}"))
            .max(1),
        Err(_) => PARK_WATCHDOG_DEFAULT.as_millis() as u64,
    }
}

/// Election policy of the deterministic executor: how the next baton
/// holder is chosen among the eligible (runnable or satisfiable) cores.
#[derive(Clone, Debug, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SchedPolicy {
    /// Historical order: minimum virtual clock, ties broken by core id.
    /// Bit-identical to the executor before policies existed.
    #[default]
    Baton,
    /// Deterministic pseudo-random pick among the eligible cores, keyed
    /// by `(seed, election counter, slot)`. Same seed, same schedule.
    SeededRandom { seed: u64 },
    /// Band-biased baton: lower band wins regardless of clock; within a
    /// band, minimum clock then core id. Slots beyond the vector get
    /// band 0. Starves high-band cores for as long as any lower-band
    /// core stays eligible.
    PriorityBands { bands: Vec<u8> },
}

impl SchedPolicy {
    pub fn is_baton(&self) -> bool {
        matches!(self, SchedPolicy::Baton)
    }
}

/// SplitMix64 — the same generator the shim `rand` crate uses; here it
/// hashes (seed, election, slot) into an election key.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    Runnable,
    Blocked,
    Done,
}

struct SchedState {
    clocks: Vec<u64>,
    status: Vec<Status>,
    reasons: Vec<&'static str>,
    /// Which slot currently holds the baton; `None` while a decision round
    /// is collecting re-checks.
    current: Option<usize>,
    /// Decision-round counter; blocked cores re-check when it advances.
    round: u64,
    /// Last round in which each slot re-checked its condition.
    checked: Vec<u64>,
    /// Whether the slot's condition held when it last re-checked.
    satisfiable: Vec<bool>,
    /// Count of slots in `Status::Blocked`; the fast yield path is only
    /// legal while this is zero.
    nblocked: usize,
    /// Registered wait conditions (fast path only): `Some` for each blocked
    /// slot, evaluated inline by whichever thread schedules. The boxes
    /// borrow state on their owning threads' stacks (lifetime-erased); the
    /// owning thread removes its box, under this scheduler's lock, before
    /// leaving `wait_blocked` by any path.
    checkers: Vec<Option<Box<dyn FnMut() -> bool + Send>>>,
    /// Elections held so far; feeds the `SeededRandom` key stream so each
    /// election draws a fresh deterministic value. Host-side bookkeeping
    /// only — under `Baton` it influences nothing.
    elections: u64,
    deadlock: Option<Arc<HwError>>,
}

impl SchedState {
    fn blocked_unchecked_remaining(&self) -> bool {
        (0..self.clocks.len())
            .any(|i| self.status[i] == Status::Blocked && self.checked[i] < self.round)
    }
}

/// The scheduler shared by all core threads of one [`crate::Machine::run`].
pub struct Scheduler {
    state: Mutex<SchedState>,
    /// One condvar per slot, all guarding `state`. Each slot's thread only
    /// ever waits on its own condvar, so wakeups can be targeted at exactly
    /// the thread that must act next.
    cvs: Vec<Condvar>,
    /// Host fast path: direct baton hand-off when no core is blocked.
    fast_yield: bool,
    /// Election policy (see the module docs); `Baton` by default.
    policy: SchedPolicy,
    /// Parked-too-long watchdog period, in milliseconds. Every condvar
    /// park in the baton hand-off waits with this timeout; expiry bumps
    /// `park_watchdog` and logs, then goes back to sleep. Exists to leave
    /// evidence if the one-off 512-core host-side stall (ROADMAP open
    /// item 2 — suspected lost wakeup) ever recurs.
    park_timeout_ms: AtomicU64,
    /// Number of times any parked thread slept a full watchdog period
    /// without being woken. Exported as the `exec.park_watchdog` metric.
    park_watchdog: AtomicU64,
    /// Livelock guard: abort the run once this many elections have been
    /// consumed (0 = unbounded, the default). Non-baton policies can
    /// *livelock* a spin-synchronized program — `PriorityBands` starves a
    /// flag-setting core for as long as a lower-band core spin-waits on
    /// the flag — which no deadlock detector can see (the spinner is
    /// runnable forever). Schedule explorers set a generous budget so a
    /// livelocked run unwinds with [`HwError::ElectionBudget`] instead of
    /// hanging the host.
    election_budget: AtomicU64,
}

/// Raised inside a core thread when the simulation deadlocks; carries the
/// full report. `Machine::run` converts it into [`HwError::Deadlock`].
pub struct DeadlockUnwind(pub Arc<HwError>);

impl Scheduler {
    pub fn new(nslots: usize) -> Arc<Self> {
        Self::with_fast_yield(nslots, true)
    }

    pub fn with_fast_yield(nslots: usize, fast_yield: bool) -> Arc<Self> {
        Self::with_policy(nslots, fast_yield, SchedPolicy::Baton)
    }

    pub fn with_policy(nslots: usize, fast_yield: bool, policy: SchedPolicy) -> Arc<Self> {
        Arc::new(Scheduler {
            state: Mutex::new(SchedState {
                clocks: vec![0; nslots],
                status: vec![Status::Runnable; nslots],
                reasons: vec![""; nslots],
                current: Some(0),
                round: 0,
                checked: vec![0; nslots],
                satisfiable: vec![false; nslots],
                nblocked: 0,
                checkers: (0..nslots).map(|_| None).collect(),
                elections: 0,
                deadlock: None,
            }),
            cvs: (0..nslots).map(|_| Condvar::new()).collect(),
            fast_yield,
            policy,
            park_timeout_ms: AtomicU64::new(park_watchdog_default_ms()),
            park_watchdog: AtomicU64::new(0),
            election_budget: AtomicU64::new(0),
        })
    }

    /// Arm (or disarm, with `None`) the election-budget livelock guard.
    /// Call before the core threads start; the budget is read on every
    /// yield.
    pub fn set_election_budget(&self, budget: Option<u64>) {
        self.election_budget
            .store(budget.unwrap_or(0), Ordering::Relaxed);
    }

    /// Elections consumed so far (schedule decisions; grows with run
    /// length under every policy).
    pub fn elections(&self) -> u64 {
        self.state.lock().elections
    }

    /// Declare livelock and unwind everyone once the election budget is
    /// spent. Called with the baton held, on the only running thread —
    /// parked threads observe `st.deadlock` on wake and unwind too.
    fn check_election_budget(&self, st: &mut parking_lot::MutexGuard<'_, SchedState>) {
        let budget = self.election_budget.load(Ordering::Relaxed);
        if budget != 0 && st.elections > budget && st.deadlock.is_none() {
            st.deadlock = Some(Arc::new(HwError::ElectionBudget {
                elections: st.elections,
            }));
            for cv in &self.cvs {
                cv.notify_one();
            }
        }
        if st.deadlock.is_some() {
            self.unwind_deadlock(st);
        }
    }

    /// Override the parked-too-long watchdog period (tests use a few
    /// milliseconds to make the watchdog observable without a real stall).
    pub fn set_park_timeout(&self, timeout: Duration) {
        self.park_timeout_ms
            .store(timeout.as_millis().max(1) as u64, Ordering::Relaxed);
    }

    /// How many watchdog periods expired with a thread still parked.
    /// Nonzero in a healthy run means a wakeup took suspiciously long —
    /// the lost-wakeup evidence ROADMAP open item 2 asks for.
    pub fn park_watchdog_count(&self) -> u64 {
        self.park_watchdog.load(Ordering::Relaxed)
    }

    /// Park `slot`'s thread on its condvar until notified, with the
    /// watchdog riding along: a full timeout without a wakeup increments
    /// `park_watchdog`, logs the scheduler state, and resumes waiting.
    /// Callers re-check their wake condition in a loop around this, so a
    /// spurious return is harmless — the watchdog changes no schedule.
    fn park(&self, st: &mut parking_lot::MutexGuard<'_, SchedState>, slot: usize) {
        let timeout = Duration::from_millis(self.park_timeout_ms.load(Ordering::Relaxed));
        if self.cvs[slot].wait_for(st, timeout).timed_out() {
            let n = self.park_watchdog.fetch_add(1, Ordering::Relaxed) + 1;
            eprintln!(
                "[exec] park watchdog #{n}: slot {slot} parked > {timeout:?} \
                 (current={:?}, round={}, nblocked={}, reason={:?})",
                st.current, st.round, st.nblocked, st.reasons[slot]
            );
        }
    }

    /// Election key for slot `i`; the eligible slot with the smallest
    /// key wins. The `Baton` arm reproduces the historical
    /// `(clock, id)` order exactly.
    fn election_key(&self, st: &SchedState, i: usize) -> (u64, u64, u64) {
        match &self.policy {
            SchedPolicy::Baton => (0, st.clocks[i], i as u64),
            SchedPolicy::PriorityBands { bands } => (
                u64::from(bands.get(i).copied().unwrap_or(0)),
                st.clocks[i],
                i as u64,
            ),
            // `elections << 8` and `i < MAX_CORES` never overlap bits, so
            // the hash input is unique per (election, slot).
            SchedPolicy::SeededRandom { seed } => {
                (splitmix64(seed ^ (st.elections << 8) ^ i as u64), 0, i as u64)
            }
        }
    }

    /// Pick the next baton holder among the slots passing `eligible`,
    /// under the policy in force. Consumes one tick of the election
    /// counter that feeds the `SeededRandom` key stream.
    fn pick(
        &self,
        st: &mut SchedState,
        eligible: impl Fn(&SchedState, usize) -> bool,
    ) -> Option<usize> {
        st.elections += 1;
        let st: &SchedState = st;
        (0..st.clocks.len())
            .filter(|&i| eligible(st, i))
            .min_by_key(|&i| self.election_key(st, i))
    }

    /// Pick the next baton holder among runnable cores and blocked cores
    /// whose conditions held during this round.
    fn finalize(&self, st: &mut SchedState) -> Option<usize> {
        let winner = self.pick(st, |st, i| {
            st.status[i] == Status::Runnable
                || (st.status[i] == Status::Blocked && st.satisfiable[i])
        });
        st.current = winner;
        winner
    }

    /// Wake the threads that must act on the state just produced by
    /// `open_round`/`close_round`: everyone on deadlock (all must unwind),
    /// the winner once a round is decided, or the blocked-unchecked slots
    /// while a round is still collecting re-checks.
    fn wake_after_open(&self, st: &SchedState) {
        // Each slot's thread is the only waiter on its condvar, so a
        // targeted notify_one suffices everywhere.
        if st.deadlock.is_some() {
            for cv in &self.cvs {
                cv.notify_one();
            }
            return;
        }
        match st.current {
            Some(w) => self.cvs[w].notify_one(),
            None => {
                for i in 0..st.clocks.len() {
                    if st.status[i] == Status::Blocked && st.checked[i] < st.round {
                        self.cvs[i].notify_one();
                    }
                }
            }
        }
    }

    /// Open a decision round. If no blocked cores need re-checking, the
    /// decision is immediate.
    fn open_round(&self, st: &mut SchedState) {
        st.round += 1;
        st.current = None;
        if !st.blocked_unchecked_remaining() {
            self.close_round(st);
        }
        self.wake_after_open(st);
    }

    /// Fast-path equivalent of a full decision round: evaluate every
    /// blocked core's registered condition inline (the lock is held and no
    /// core is running, so the state is exactly as quiescent as it is for
    /// the historical re-check-on-wake), then pick the winner. Same inputs,
    /// same winner function — same schedule — without waking any sleeper
    /// that doesn't win.
    fn elect(&self, st: &mut SchedState) {
        st.current = None;
        if st.deadlock.is_none() {
            for i in 0..st.clocks.len() {
                if st.status[i] == Status::Blocked {
                    let mut checker =
                        st.checkers[i].take().expect("blocked slot must register");
                    st.satisfiable[i] = checker();
                    st.checkers[i] = Some(checker);
                }
            }
        }
        self.close_round(st);
        self.wake_after_open(st);
    }

    /// Dispatch a scheduling event to the protocol in force.
    fn schedule_next(&self, st: &mut SchedState) {
        if self.fast_yield {
            self.elect(st);
        } else {
            self.open_round(st);
        }
    }

    /// All re-checks are in: pick the winner or declare deadlock.
    fn close_round(&self, st: &mut SchedState) {
        if self.finalize(st).is_none() && st.status.contains(&Status::Blocked) {
            let waiting = (0..st.clocks.len())
                .map(|i| {
                    let why = match st.status[i] {
                        Status::Blocked => st.reasons[i].to_string(),
                        Status::Done => "<finished>".to_string(),
                        Status::Runnable => "<runnable?!>".to_string(),
                    };
                    (i, why)
                })
                .collect();
            st.deadlock = Some(Arc::new(HwError::Deadlock { waiting }));
        }
    }

    fn unwind_deadlock(&self, st: &SchedState) -> ! {
        let err = st.deadlock.clone().expect("deadlock error set");
        std::panic::panic_any(DeadlockUnwind(err));
    }

    /// Wait until this slot holds the baton (used at thread start).
    pub fn wait_for_turn(&self, slot: usize) {
        let mut st = self.state.lock();
        while st.current != Some(slot) {
            if st.deadlock.is_some() {
                self.unwind_deadlock(&st);
            }
            self.park(&mut st, slot);
        }
    }

    /// Update this slot's clock and pass the baton.
    ///
    /// Returns `true` when the fast protocol resolved the yield — direct
    /// hand-off with nobody blocked, or an inline election with no sleeper
    /// wakeups — and `false` when a historical wake-everyone decision round
    /// ran. Virtual-time behaviour is identical either way.
    pub fn yield_now(&self, slot: usize, clock: u64) -> bool {
        let mut st = self.state.lock();
        debug_assert_eq!(st.current, Some(slot), "yield from a non-running core");
        // Every livelock passes through here unboundedly often (a core
        // that never yields cannot be scheduled around), so this is the
        // one place the election-budget guard needs to fire.
        self.check_election_budget(&mut st);
        st.clocks[slot] = clock;
        if self.fast_yield && st.nblocked == 0 {
            // With nobody blocked, a round would trivially elect among
            // the runnable cores — compute the same winner inline.
            let winner = self
                .pick(&mut st, |st, i| st.status[i] == Status::Runnable)
                .expect("the yielding core is runnable");
            if winner == slot {
                return true; // still minimal: keep the baton
            }
            st.current = Some(winner);
            self.cvs[winner].notify_one();
            while st.current != Some(slot) {
                if st.deadlock.is_some() {
                    self.unwind_deadlock(&st);
                }
                self.park(&mut st, slot);
            }
            return true;
        }
        self.schedule_next(&mut st);
        while st.current != Some(slot) {
            if st.deadlock.is_some() {
                self.unwind_deadlock(&st);
            }
            self.park(&mut st, slot);
        }
        self.fast_yield
    }

    /// Block until `cond` returns `Some`. The closure must be free of side
    /// effects and must not charge simulated time (use raw `peek`
    /// accessors); it runs with the scheduler lock held, against quiescent
    /// simulated state (under the fast path it may run on *another core's*
    /// thread, hence the `Send` bounds).
    ///
    /// Returns the closure's value; the caller advances its clock past the
    /// event stamp carried inside.
    pub fn wait_blocked<T: Send>(
        &self,
        slot: usize,
        clock: u64,
        reason: &'static str,
        mut cond: impl FnMut() -> Option<T> + Send,
    ) -> T {
        let mut st = self.state.lock();
        debug_assert_eq!(st.current, Some(slot), "block from a non-running core");
        st.clocks[slot] = clock;
        st.status[slot] = Status::Blocked;
        st.nblocked += 1;
        st.reasons[slot] = reason;
        if self.fast_yield {
            return self.wait_registered(st, slot, cond);
        }
        // Historical protocol: we held the baton, hand it over through a
        // decision round, then participate in rounds until we win one with
        // a satisfied condition.
        self.open_round(&mut st);
        loop {
            if st.deadlock.is_some() {
                st.status[slot] = Status::Runnable; // avoid poisoning later reports
                st.nblocked -= 1;
                self.unwind_deadlock(&st);
            }
            if st.current == Some(slot) {
                // We won a round on a satisfiable condition: produce the
                // value. State cannot have changed since the re-check (no
                // other core ran), so this must succeed.
                let v = cond().expect("condition regressed between re-check and wake");
                st.status[slot] = Status::Runnable;
                st.nblocked -= 1;
                st.reasons[slot] = "";
                return v;
            }
            if st.checked[slot] < st.round {
                st.checked[slot] = st.round;
                st.satisfiable[slot] = cond().is_some();
                if !st.blocked_unchecked_remaining() && st.current.is_none() {
                    self.close_round(&mut st);
                    self.wake_after_open(&st);
                    continue;
                }
            }
            self.park(&mut st, slot);
        }
    }

    /// Fast-path tail of [`Self::wait_blocked`]: register the condition for
    /// inline evaluation and sleep until this slot wins an election.
    fn wait_registered<T: Send>(
        &self,
        mut st: parking_lot::MutexGuard<'_, SchedState>,
        slot: usize,
        mut cond: impl FnMut() -> Option<T> + Send,
    ) -> T {
        // The evaluated value is produced under the scheduler lock by
        // whichever thread runs the election and consumed — still under
        // the same lock — by this thread once it wins, so the inner mutex
        // is never contended; it exists to carry `T` across threads.
        let result: Arc<Mutex<Option<T>>> = Arc::new(Mutex::new(None));
        let checker: Box<dyn FnMut() -> bool + Send + '_> = {
            let result = Arc::clone(&result);
            Box::new(move || match cond() {
                Some(v) => {
                    *result.lock() = Some(v);
                    true
                }
                None => {
                    *result.lock() = None;
                    false
                }
            })
        };
        // SAFETY: the box borrows `cond`'s captures, which live on this
        // thread's stack below this frame. Every exit from this function —
        // winning or deadlock unwind — removes the box from the scheduler
        // state while holding the lock all evaluations run under, so the
        // scheduler can never invoke it after the borrowed frame is gone.
        let checker: Box<dyn FnMut() -> bool + Send + 'static> =
            unsafe { std::mem::transmute(checker) };
        st.checkers[slot] = Some(checker);
        // We held the baton: hand it over.
        self.elect(&mut st);
        loop {
            if st.deadlock.is_some() {
                st.checkers[slot] = None;
                st.status[slot] = Status::Runnable; // avoid poisoning later reports
                st.nblocked -= 1;
                self.unwind_deadlock(&st);
            }
            if st.current == Some(slot) {
                // We won an election: the electing thread evaluated our
                // condition in the same critical section, so the stashed
                // value reflects exactly the state we now observe.
                st.checkers[slot] = None;
                st.status[slot] = Status::Runnable;
                st.nblocked -= 1;
                st.reasons[slot] = "";
                return result
                    .lock()
                    .take()
                    .expect("condition regressed between election and wake");
            }
            self.park(&mut st, slot);
        }
    }

    /// This slot's program is unwinding on a panic of its own (not a
    /// scheduler-initiated [`DeadlockUnwind`]). The panicking thread dies
    /// holding the baton, so declare the run over: parked peers observe
    /// `st.deadlock` on wake and unwind instead of waiting forever.
    /// [`crate::Machine::run_on`] re-raises the original panic payload,
    /// which takes priority over this report.
    pub fn abort(&self, slot: usize) {
        let mut st = self.state.lock();
        st.status[slot] = Status::Done;
        if st.current == Some(slot) {
            st.current = None;
        }
        if st.deadlock.is_none() {
            st.deadlock = Some(Arc::new(HwError::CorePanicked { slot }));
        }
        for cv in &self.cvs {
            cv.notify_one();
        }
    }

    /// Mark this slot finished and open a decision round for the rest.
    pub fn finish(&self, slot: usize) {
        let mut st = self.state.lock();
        st.status[slot] = Status::Done;
        if st.current == Some(slot) {
            self.schedule_next(&mut st);
        }
    }

    /// The deadlock report, if the run deadlocked.
    pub fn deadlock_report(&self) -> Option<Arc<HwError>> {
        self.state.lock().deadlock.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Run `n` slot bodies under the scheduler, catching deadlock unwinds.
    fn run_slots_fast<F>(n: usize, fast_yield: bool, f: F) -> Result<(), Arc<HwError>>
    where
        F: Fn(usize, &Scheduler) + Send + Sync,
    {
        let sched = Scheduler::with_fast_yield(n, fast_yield);
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            for slot in 0..n {
                let sched = Arc::clone(&sched);
                let f = &f;
                handles.push(s.spawn(move || {
                    sched.wait_for_turn(slot);
                    f(slot, &sched);
                    sched.finish(slot);
                }));
            }
            let mut failed = false;
            for h in handles {
                failed |= h.join().is_err();
            }
            if failed {
                Err(sched.deadlock_report().expect("non-deadlock panic in test"))
            } else {
                Ok(())
            }
        })
    }

    fn run_slots<F>(n: usize, f: F) -> Result<(), Arc<HwError>>
    where
        F: Fn(usize, &Scheduler) + Send + Sync,
    {
        run_slots_fast(n, true, f)
    }

    #[test]
    fn single_core_runs_to_completion() {
        run_slots(1, |_, sched| {
            sched.yield_now(0, 100);
            sched.yield_now(0, 200);
        })
        .unwrap();
    }

    #[test]
    fn min_clock_core_runs_first() {
        let order = Mutex::new(Vec::new());
        run_slots(2, |slot, sched| {
            if slot == 0 {
                order.lock().push((0, 0u64));
                sched.yield_now(0, 1000);
                order.lock().push((0, 1000));
                sched.yield_now(0, 2000);
            } else {
                sched.yield_now(1, 10);
                order.lock().push((1, 10));
                sched.yield_now(1, 1500);
                order.lock().push((1, 1500));
            }
        })
        .unwrap();
        let o = order.into_inner();
        let pos = |e: (usize, u64)| o.iter().position(|&x| x == e).unwrap();
        assert!(pos((1, 10)) < pos((0, 1000)));
    }

    #[test]
    fn flag_wait_wakes_up() {
        let flag = AtomicU64::new(0);
        run_slots(2, |slot, sched| {
            if slot == 0 {
                sched.yield_now(0, 500);
                flag.store(777, Ordering::Release);
                sched.yield_now(0, 1000);
            } else {
                let v = sched.wait_blocked(1, 0, "flag", || {
                    let v = flag.load(Ordering::Acquire);
                    (v != 0).then_some(v)
                });
                assert_eq!(v, 777);
            }
        })
        .unwrap();
    }

    #[test]
    fn min_clock_unblocked_core_wins_the_round() {
        // Two cores block on the same already-true condition with different
        // clocks; the round must deterministically wake the lower clock
        // first.
        let order = Mutex::new(Vec::new());
        run_slots(3, |slot, sched| {
            match slot {
                0 => {
                    // Let the two waiters block first.
                    sched.yield_now(0, 10_000);
                    order.lock().push(0);
                }
                s => {
                    let clock = if s == 1 { 500 } else { 400 };
                    sched.wait_blocked(s, clock, "always true", || Some(()));
                    order.lock().push(s);
                }
            }
        })
        .unwrap();
        let o = order.into_inner();
        // Slot 2 (clock 400) must come before slot 1 (clock 500), and both
        // before slot 0 (clock 10000).
        assert_eq!(o, vec![2, 1, 0]);
    }

    #[test]
    fn park_watchdog_counts_long_parks_without_changing_the_schedule() {
        // Slot 1 parks while slot 0 sits on the baton through a host-side
        // sleep several watchdog periods long; the watchdog must tick, and
        // the run must still complete normally with the same hand-offs.
        let sched = Scheduler::new(2);
        sched.set_park_timeout(Duration::from_millis(5));
        let order = Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for slot in 0..2 {
                let sched = Arc::clone(&sched);
                let order = &order;
                s.spawn(move || {
                    sched.wait_for_turn(slot);
                    if slot == 0 {
                        // Hold the baton in host time; the parked slot 1
                        // rides through multiple watchdog expiries.
                        std::thread::sleep(Duration::from_millis(40));
                        sched.yield_now(0, 1000);
                        order.lock().push(0);
                    } else {
                        sched.yield_now(1, 100);
                        order.lock().push(1);
                    }
                    sched.finish(slot);
                });
            }
        });
        assert_eq!(
            *order.lock(),
            vec![1, 0],
            "watchdog expiries must not perturb the baton order"
        );
        assert!(
            sched.park_watchdog_count() >= 1,
            "a 40ms park under a 5ms watchdog must be observed"
        );
    }

    #[test]
    fn park_watchdog_stays_zero_on_healthy_hand_offs() {
        let sched = Scheduler::new(2);
        std::thread::scope(|s| {
            for slot in 0..2 {
                let sched = Arc::clone(&sched);
                s.spawn(move || {
                    sched.wait_for_turn(slot);
                    for i in 0..100u64 {
                        sched.yield_now(slot, (i + 1) * 10 + slot as u64);
                    }
                    sched.finish(slot);
                });
            }
        });
        assert_eq!(sched.park_watchdog_count(), 0);
    }

    #[test]
    fn deadlock_detected_and_reported() {
        let err = run_slots(2, |slot, sched| {
            sched.wait_blocked(slot, 0, "a flag that never comes", || None::<()>);
        })
        .unwrap_err();
        match &*err {
            HwError::Deadlock { waiting } => {
                assert_eq!(waiting.len(), 2);
                assert!(waiting[0].1.contains("never comes"));
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn one_blocked_one_finishing_is_deadlock() {
        let err = run_slots(2, |slot, sched| {
            if slot == 1 {
                sched.wait_blocked(1, 0, "ghost", || None::<()>);
            }
        })
        .unwrap_err();
        match &*err {
            HwError::Deadlock { waiting } => assert_eq!(
                waiting,
                &[(0, "<finished>".to_string()), (1, "ghost".to_string())]
            ),
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn many_cores_interleave_deterministically() {
        let trace = Mutex::new(Vec::new());
        run_slots(8, |slot, sched| {
            for step in 1..=5u64 {
                let clk = step * 100 + slot as u64;
                sched.yield_now(slot, clk);
                trace.lock().push(clk);
            }
        })
        .unwrap();
        let t = trace.into_inner();
        let mut sorted = t.clone();
        sorted.sort_unstable();
        assert_eq!(t, sorted, "trace must be globally clock-ordered");
    }

    #[test]
    fn racing_unblocks_are_deterministic() {
        // Stress the decision rounds: many cores block on a shared counter
        // and are released in waves; the wake order must be identical
        // across repetitions.
        let run_once = || {
            let counter = AtomicU64::new(0);
            let order = Mutex::new(Vec::new());
            run_slots(6, |slot, sched| {
                if slot == 0 {
                    for wave in 1..=5u64 {
                        sched.yield_now(0, wave * 1000);
                        counter.store(wave, Ordering::Release);
                    }
                    sched.yield_now(0, 100_000);
                } else {
                    for wave in 1..=5u64 {
                        sched.wait_blocked(slot, wave * 100 + slot as u64, "wave", || {
                            (counter.load(Ordering::Acquire) >= wave).then_some(())
                        });
                        order.lock().push((wave, slot));
                    }
                }
            })
            .unwrap();
            order.into_inner()
        };
        assert_eq!(run_once(), run_once());
    }

    /// Run `n` slot bodies under a specific election policy.
    fn run_slots_policy<F>(n: usize, policy: SchedPolicy, f: F) -> Result<(), Arc<HwError>>
    where
        F: Fn(usize, &Scheduler) + Send + Sync,
    {
        let sched = Scheduler::with_policy(n, true, policy);
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            for slot in 0..n {
                let sched = Arc::clone(&sched);
                let f = &f;
                handles.push(s.spawn(move || {
                    sched.wait_for_turn(slot);
                    f(slot, &sched);
                    sched.finish(slot);
                }));
            }
            let mut failed = false;
            for h in handles {
                failed |= h.join().is_err();
            }
            if failed {
                Err(sched.deadlock_report().expect("non-deadlock panic in test"))
            } else {
                Ok(())
            }
        })
    }

    #[test]
    fn seeded_random_is_replayable_and_seed_sensitive() {
        let trace_with = |seed: u64| {
            let trace = Mutex::new(Vec::new());
            run_slots_policy(6, SchedPolicy::SeededRandom { seed }, |slot, sched| {
                for step in 1..=8u64 {
                    let clk = step * 100 + slot as u64;
                    sched.yield_now(slot, clk);
                    trace.lock().push((slot, clk));
                }
            })
            .unwrap();
            trace.into_inner()
        };
        assert_eq!(trace_with(17), trace_with(17), "same seed, same schedule");
        // Different seeds visit different interleavings: across a handful
        // of seeds at least one must deviate from the seed-17 order.
        let base = trace_with(17);
        assert!(
            (18..24u64).any(|s| trace_with(s) != base),
            "seeds 18..24 all reproduced seed 17's schedule"
        );
    }

    #[test]
    fn seeded_random_still_honours_wait_conditions() {
        // Whatever the election order, a blocked core must only run once
        // its condition holds.
        for seed in 0..10u64 {
            let flag = AtomicU64::new(0);
            run_slots_policy(3, SchedPolicy::SeededRandom { seed }, |slot, sched| {
                if slot == 0 {
                    for c in 1..=5u64 {
                        sched.yield_now(0, c * 1000);
                    }
                    flag.store(1, Ordering::Release);
                } else {
                    sched.wait_blocked(slot, 10, "flag", || {
                        (flag.load(Ordering::Acquire) != 0).then_some(())
                    });
                    assert_eq!(flag.load(Ordering::Acquire), 1);
                }
            })
            .unwrap();
        }
    }

    #[test]
    fn priority_bands_starve_the_high_band() {
        // Slot 0 is in band 1, slots 1..3 in band 0: every slot-0 step
        // must come after all band-0 work is done, regardless of clocks.
        let order = Mutex::new(Vec::new());
        run_slots_policy(
            3,
            SchedPolicy::PriorityBands { bands: vec![1, 0, 0] },
            |slot, sched| {
                for step in 1..=4u64 {
                    // Give the starved slot the *smallest* clocks so the
                    // bias, not the clock, decides.
                    let clk = step * if slot == 0 { 10 } else { 1000 };
                    sched.yield_now(slot, clk + slot as u64);
                    order.lock().push(slot);
                }
            },
        )
        .unwrap();
        let o = order.into_inner();
        let last_band0 = o.iter().rposition(|&s| s != 0).unwrap();
        let first_band1 = o.iter().position(|&s| s == 0).unwrap();
        assert!(
            first_band1 > last_band0,
            "band-1 slot ran while band-0 work remained: {o:?}"
        );
    }

    #[test]
    fn baton_policy_is_the_default_key() {
        // `with_policy(.., Baton)` must schedule exactly like the
        // historical constructor on a mixed yield/block workload.
        let trace_with = |policy: SchedPolicy| {
            let counter = AtomicU64::new(0);
            let trace = Mutex::new(Vec::new());
            run_slots_policy(4, policy, |slot, sched| {
                if slot == 0 {
                    for wave in 1..=4u64 {
                        sched.yield_now(0, wave * 1000);
                        trace.lock().push((0, wave * 1000));
                        counter.store(wave, Ordering::Release);
                    }
                } else if slot == 1 {
                    for wave in 1..=4u64 {
                        sched.wait_blocked(1, wave * 900, "wave", || {
                            (counter.load(Ordering::Acquire) >= wave).then_some(())
                        });
                        trace.lock().push((1, wave * 900));
                    }
                } else {
                    for step in 1..=6u64 {
                        let clk = step * 700 + slot as u64;
                        sched.yield_now(slot, clk);
                        trace.lock().push((slot, clk));
                    }
                }
            })
            .unwrap();
            trace.into_inner()
        };
        assert_eq!(
            trace_with(SchedPolicy::Baton),
            trace_with(SchedPolicy::PriorityBands { bands: vec![] }),
            "an all-zero band vector must degenerate to the baton order"
        );
    }

    #[test]
    fn fast_and_slow_yield_paths_schedule_identically() {
        // The fast yield path must pick exactly the core a full decision
        // round would pick: an identical workload produces an identical
        // global execution trace with the fast path on and off.
        let trace_with = |fast: bool| {
            let counter = AtomicU64::new(0);
            let trace = Mutex::new(Vec::new());
            run_slots_fast(5, fast, |slot, sched| {
                if slot == 0 {
                    for wave in 1..=4u64 {
                        sched.yield_now(0, wave * 1000);
                        trace.lock().push((0, wave * 1000));
                        counter.store(wave, Ordering::Release);
                    }
                    sched.yield_now(0, 50_000);
                } else if slot == 1 {
                    // One core that blocks, forcing fallback to rounds.
                    for wave in 1..=4u64 {
                        sched.wait_blocked(1, wave * 900, "wave", || {
                            (counter.load(Ordering::Acquire) >= wave).then_some(())
                        });
                        trace.lock().push((1, wave * 900));
                    }
                } else {
                    // Pure yielders exercising the fast path.
                    for step in 1..=6u64 {
                        let clk = step * 700 + slot as u64;
                        sched.yield_now(slot, clk);
                        trace.lock().push((slot, clk));
                    }
                }
            })
            .unwrap();
            trace.into_inner()
        };
        assert_eq!(trace_with(true), trace_with(false));
    }
}
