//! The deterministic conservative executor.
//!
//! Each simulated core runs on its own OS thread, but only **one thread runs
//! at a time**: a baton is passed by a scheduler that always resumes the core
//! with the smallest virtual clock (ties broken by core id). This makes runs
//! deterministic, keeps virtual clocks tightly coupled, and is also the
//! fastest honest execution mode on a small host, because simulated cores
//! never busy-spin against each other in wall-clock time.
//!
//! Cores interact with the scheduler at three points:
//!
//! * [`Scheduler::yield_now`] — voluntary preemption, called by the memory
//!   engine once a core has run a full quantum;
//! * [`Scheduler::wait_blocked`] — a simulated wait ("mail flag set",
//!   "ownership granted", "barrier released"). The wait *condition* is a
//!   side-effect-free closure over atomics.
//! * [`Scheduler::finish`] — the core's program returned.
//!
//! ## Decision rounds
//!
//! Determinism requires that scheduling never races a blocked core's
//! condition re-evaluation. Every scheduling event therefore opens a
//! **decision round**: the baton is parked, every blocked core wakes once,
//! re-evaluates its condition under the scheduler lock and records whether
//! it is satisfiable; the last checker picks the minimum-clock core among
//! the runnable and satisfiable ones. While a core runs, everyone else is
//! asleep — conditions are only ever evaluated against quiescent state, so
//! the outcome is a pure function of simulated state, never of host timing.
//!
//! **Deadlock detection** falls out naturally: a round in which no core is
//! runnable and no condition is satisfiable is a proven deadlock of the
//! simulated software; every thread then unwinds with a report naming each
//! core's wait reason.

use crate::error::HwError;
use parking_lot::{Condvar, Mutex};
use std::sync::Arc;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    Runnable,
    Blocked,
    Done,
}

struct SchedState {
    clocks: Vec<u64>,
    status: Vec<Status>,
    reasons: Vec<String>,
    /// Which slot currently holds the baton; `None` while a decision round
    /// is collecting re-checks.
    current: Option<usize>,
    /// Decision-round counter; blocked cores re-check when it advances.
    round: u64,
    /// Last round in which each slot re-checked its condition.
    checked: Vec<u64>,
    /// Whether the slot's condition held when it last re-checked.
    satisfiable: Vec<bool>,
    deadlock: Option<Arc<HwError>>,
}

impl SchedState {
    fn blocked_unchecked_remaining(&self) -> bool {
        (0..self.clocks.len())
            .any(|i| self.status[i] == Status::Blocked && self.checked[i] < self.round)
    }

    /// Pick the next baton holder among runnable cores and blocked cores
    /// whose conditions held during this round.
    fn finalize(&mut self) -> Option<usize> {
        let winner = (0..self.clocks.len())
            .filter(|&i| {
                self.status[i] == Status::Runnable
                    || (self.status[i] == Status::Blocked && self.satisfiable[i])
            })
            .min_by_key(|&i| (self.clocks[i], i));
        self.current = winner;
        winner
    }
}

/// The scheduler shared by all core threads of one [`crate::Machine::run`].
pub struct Scheduler {
    state: Mutex<SchedState>,
    cv: Condvar,
}

/// Raised inside a core thread when the simulation deadlocks; carries the
/// full report. `Machine::run` converts it into [`HwError::Deadlock`].
pub struct DeadlockUnwind(pub Arc<HwError>);

impl Scheduler {
    pub fn new(nslots: usize) -> Arc<Self> {
        Arc::new(Scheduler {
            state: Mutex::new(SchedState {
                clocks: vec![0; nslots],
                status: vec![Status::Runnable; nslots],
                reasons: vec![String::new(); nslots],
                current: Some(0),
                round: 0,
                checked: vec![0; nslots],
                satisfiable: vec![false; nslots],
                deadlock: None,
            }),
            cv: Condvar::new(),
        })
    }

    /// Open a decision round. If no blocked cores need re-checking, the
    /// decision is immediate.
    fn open_round(&self, st: &mut SchedState) {
        st.round += 1;
        st.current = None;
        if !st.blocked_unchecked_remaining() {
            self.close_round(st);
        }
        self.cv.notify_all();
    }

    /// All re-checks are in: pick the winner or declare deadlock.
    fn close_round(&self, st: &mut SchedState) {
        if st.finalize().is_none() && st.status.iter().any(|s| *s == Status::Blocked) {
            let waiting = (0..st.clocks.len())
                .map(|i| {
                    let why = match st.status[i] {
                        Status::Blocked => st.reasons[i].clone(),
                        Status::Done => "<finished>".to_string(),
                        Status::Runnable => "<runnable?!>".to_string(),
                    };
                    (i, why)
                })
                .collect();
            st.deadlock = Some(Arc::new(HwError::Deadlock { waiting }));
        }
    }

    fn unwind_deadlock(&self, st: &SchedState) -> ! {
        let err = st.deadlock.clone().expect("deadlock error set");
        std::panic::panic_any(DeadlockUnwind(err));
    }

    /// Wait until this slot holds the baton (used at thread start).
    pub fn wait_for_turn(&self, slot: usize) {
        let mut st = self.state.lock();
        while st.current != Some(slot) {
            if st.deadlock.is_some() {
                self.unwind_deadlock(&st);
            }
            self.cv.wait(&mut st);
        }
    }

    /// Update this slot's clock and open a decision round.
    pub fn yield_now(&self, slot: usize, clock: u64) {
        let mut st = self.state.lock();
        debug_assert_eq!(st.current, Some(slot), "yield from a non-running core");
        st.clocks[slot] = clock;
        self.open_round(&mut st);
        while st.current != Some(slot) {
            if st.deadlock.is_some() {
                self.unwind_deadlock(&st);
            }
            self.cv.wait(&mut st);
        }
    }

    /// Block until `cond` returns `Some`. The closure must be free of side
    /// effects and must not charge simulated time (use raw `peek`
    /// accessors); it runs with the scheduler lock held, against quiescent
    /// simulated state.
    ///
    /// Returns the closure's value; the caller advances its clock past the
    /// event stamp carried inside.
    pub fn wait_blocked<T>(
        &self,
        slot: usize,
        clock: u64,
        reason: &str,
        mut cond: impl FnMut() -> Option<T>,
    ) -> T {
        let mut st = self.state.lock();
        debug_assert_eq!(st.current, Some(slot), "block from a non-running core");
        st.clocks[slot] = clock;
        st.status[slot] = Status::Blocked;
        st.reasons[slot] = reason.to_string();
        // We held the baton: hand it over through a decision round.
        self.open_round(&mut st);
        // Participate in rounds until we win one with a satisfied condition.
        loop {
            if st.deadlock.is_some() {
                st.status[slot] = Status::Runnable; // avoid poisoning later reports
                self.unwind_deadlock(&st);
            }
            if st.current == Some(slot) {
                // We won a round on a satisfiable condition: produce the
                // value. State cannot have changed since the re-check (no
                // other core ran), so this must succeed.
                let v = cond().expect("condition regressed between re-check and wake");
                st.status[slot] = Status::Runnable;
                st.reasons[slot].clear();
                return v;
            }
            if st.checked[slot] < st.round {
                st.checked[slot] = st.round;
                st.satisfiable[slot] = cond().is_some();
                if !st.blocked_unchecked_remaining() && st.current.is_none() {
                    self.close_round(&mut st);
                    self.cv.notify_all();
                    continue;
                }
            }
            self.cv.wait(&mut st);
        }
    }

    /// Mark this slot finished and open a decision round for the rest.
    pub fn finish(&self, slot: usize) {
        let mut st = self.state.lock();
        st.status[slot] = Status::Done;
        if st.current == Some(slot) {
            self.open_round(&mut st);
        }
    }

    /// The deadlock report, if the run deadlocked.
    pub fn deadlock_report(&self) -> Option<Arc<HwError>> {
        self.state.lock().deadlock.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Run `n` slot bodies under the scheduler, catching deadlock unwinds.
    fn run_slots<F>(n: usize, f: F) -> Result<(), Arc<HwError>>
    where
        F: Fn(usize, &Scheduler) + Send + Sync,
    {
        let sched = Scheduler::new(n);
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            for slot in 0..n {
                let sched = Arc::clone(&sched);
                let f = &f;
                handles.push(s.spawn(move || {
                    sched.wait_for_turn(slot);
                    f(slot, &sched);
                    sched.finish(slot);
                }));
            }
            let mut failed = false;
            for h in handles {
                failed |= h.join().is_err();
            }
            if failed {
                Err(sched.deadlock_report().expect("non-deadlock panic in test"))
            } else {
                Ok(())
            }
        })
    }

    #[test]
    fn single_core_runs_to_completion() {
        run_slots(1, |_, sched| {
            sched.yield_now(0, 100);
            sched.yield_now(0, 200);
        })
        .unwrap();
    }

    #[test]
    fn min_clock_core_runs_first() {
        let order = Mutex::new(Vec::new());
        run_slots(2, |slot, sched| {
            if slot == 0 {
                order.lock().push((0, 0u64));
                sched.yield_now(0, 1000);
                order.lock().push((0, 1000));
                sched.yield_now(0, 2000);
            } else {
                sched.yield_now(1, 10);
                order.lock().push((1, 10));
                sched.yield_now(1, 1500);
                order.lock().push((1, 1500));
            }
        })
        .unwrap();
        let o = order.into_inner();
        let pos = |e: (usize, u64)| o.iter().position(|&x| x == e).unwrap();
        assert!(pos((1, 10)) < pos((0, 1000)));
    }

    #[test]
    fn flag_wait_wakes_up() {
        let flag = AtomicU64::new(0);
        run_slots(2, |slot, sched| {
            if slot == 0 {
                sched.yield_now(0, 500);
                flag.store(777, Ordering::Release);
                sched.yield_now(0, 1000);
            } else {
                let v = sched.wait_blocked(1, 0, "flag", || {
                    let v = flag.load(Ordering::Acquire);
                    (v != 0).then_some(v)
                });
                assert_eq!(v, 777);
            }
        })
        .unwrap();
    }

    #[test]
    fn min_clock_unblocked_core_wins_the_round() {
        // Two cores block on the same already-true condition with different
        // clocks; the round must deterministically wake the lower clock
        // first.
        let order = Mutex::new(Vec::new());
        run_slots(3, |slot, sched| {
            match slot {
                0 => {
                    // Let the two waiters block first.
                    sched.yield_now(0, 10_000);
                    order.lock().push(0);
                }
                s => {
                    let clock = if s == 1 { 500 } else { 400 };
                    sched.wait_blocked(s, clock, "always true", || Some(()));
                    order.lock().push(s);
                }
            }
        })
        .unwrap();
        let o = order.into_inner();
        // Slot 2 (clock 400) must come before slot 1 (clock 500), and both
        // before slot 0 (clock 10000).
        assert_eq!(o, vec![2, 1, 0]);
    }

    #[test]
    fn deadlock_detected_and_reported() {
        let err = run_slots(2, |slot, sched| {
            sched.wait_blocked(slot, 0, "a flag that never comes", || None::<()>);
        })
        .unwrap_err();
        match &*err {
            HwError::Deadlock { waiting } => {
                assert_eq!(waiting.len(), 2);
                assert!(waiting[0].1.contains("never comes"));
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn one_blocked_one_finishing_is_deadlock() {
        let err = run_slots(2, |slot, sched| {
            if slot == 1 {
                sched.wait_blocked(1, 0, "ghost", || None::<()>);
            }
        })
        .unwrap_err();
        match &*err {
            HwError::Deadlock { waiting } => assert_eq!(
                waiting,
                &[(0, "<finished>".to_string()), (1, "ghost".to_string())]
            ),
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn many_cores_interleave_deterministically() {
        let trace = Mutex::new(Vec::new());
        run_slots(8, |slot, sched| {
            for step in 1..=5u64 {
                let clk = step * 100 + slot as u64;
                sched.yield_now(slot, clk);
                trace.lock().push(clk);
            }
        })
        .unwrap();
        let t = trace.into_inner();
        let mut sorted = t.clone();
        sorted.sort_unstable();
        assert_eq!(t, sorted, "trace must be globally clock-ordered");
    }

    #[test]
    fn racing_unblocks_are_deterministic() {
        // Stress the decision rounds: many cores block on a shared counter
        // and are released in waves; the wake order must be identical
        // across repetitions.
        let run_once = || {
            let counter = AtomicU64::new(0);
            let order = Mutex::new(Vec::new());
            run_slots(6, |slot, sched| {
                if slot == 0 {
                    for wave in 1..=5u64 {
                        sched.yield_now(0, wave * 1000);
                        counter.store(wave, Ordering::Release);
                    }
                    sched.yield_now(0, 100_000);
                } else {
                    for wave in 1..=5u64 {
                        sched.wait_blocked(slot, wave * 100 + slot as u64, "wave", || {
                            (counter.load(Ordering::Acquire) >= wave).then_some(())
                        });
                        order.lock().push((wave, slot));
                    }
                }
            })
            .unwrap();
            order.into_inner()
        };
        assert_eq!(run_once(), run_once());
    }
}
