//! Per-core performance counters. Upper layers (kernel, mailbox, SVM) keep
//! their own statistics; these counters cover the hardware model itself.

use serde::{Deserialize, Serialize};

/// Event counters for one simulated core.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct PerfCounters {
    pub l1_hits: u64,
    pub l1_misses: u64,
    pub l2_hits: u64,
    pub l2_misses: u64,
    pub ram_reads: u64,
    pub ram_writes: u64,
    pub mpb_reads: u64,
    pub mpb_writes: u64,
    pub wcb_merges: u64,
    pub wcb_flushes: u64,
    pub cl1invmb_count: u64,
    pub ipis_sent: u64,
    pub ipis_received: u64,
    pub tas_acquires: u64,
    pub tas_spins: u64,
    pub yields: u64,
    pub blocks: u64,
    /// Kernel-layer software-TLB translation hits (host fast path).
    pub tlb_hits: u64,
    /// Kernel-layer software-TLB misses (page-table walks taken).
    pub tlb_misses: u64,
    /// TLB entries dropped by PTE-mutation shootdowns.
    pub tlb_shootdowns: u64,
    /// `yield_now` calls resolved by the executor's fast scheduling
    /// protocol (direct hand-off or inline election — no sleeper wakeups).
    pub fast_yields: u64,
}

impl PerfCounters {
    /// Merge another counter set into this one (used when aggregating runs).
    pub fn merge(&mut self, o: &PerfCounters) {
        self.l1_hits += o.l1_hits;
        self.l1_misses += o.l1_misses;
        self.l2_hits += o.l2_hits;
        self.l2_misses += o.l2_misses;
        self.ram_reads += o.ram_reads;
        self.ram_writes += o.ram_writes;
        self.mpb_reads += o.mpb_reads;
        self.mpb_writes += o.mpb_writes;
        self.wcb_merges += o.wcb_merges;
        self.wcb_flushes += o.wcb_flushes;
        self.cl1invmb_count += o.cl1invmb_count;
        self.ipis_sent += o.ipis_sent;
        self.ipis_received += o.ipis_received;
        self.tas_acquires += o.tas_acquires;
        self.tas_spins += o.tas_spins;
        self.yields += o.yields;
        self.blocks += o.blocks;
        self.tlb_hits += o.tlb_hits;
        self.tlb_misses += o.tlb_misses;
        self.tlb_shootdowns += o.tlb_shootdowns;
        self.fast_yields += o.fast_yields;
    }

    /// L1 hit rate in [0, 1]; `None` when no accesses were recorded.
    pub fn l1_hit_rate(&self) -> Option<f64> {
        let total = self.l1_hits + self.l1_misses;
        (total > 0).then(|| self.l1_hits as f64 / total as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds() {
        let mut a = PerfCounters {
            l1_hits: 1,
            ram_reads: 2,
            ..Default::default()
        };
        let b = PerfCounters {
            l1_hits: 10,
            wcb_flushes: 3,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.l1_hits, 11);
        assert_eq!(a.ram_reads, 2);
        assert_eq!(a.wcb_flushes, 3);
    }

    #[test]
    fn hit_rate() {
        let mut c = PerfCounters::default();
        assert_eq!(c.l1_hit_rate(), None);
        c.l1_hits = 3;
        c.l1_misses = 1;
        assert_eq!(c.l1_hit_rate(), Some(0.75));
    }
}
