//! Per-core performance counters. Upper layers (kernel, mailbox, SVM) keep
//! their own statistics; these counters cover the hardware model itself.
//! All of them surface through the unified registry ([`crate::metrics`])
//! under the `hw.` / `exec.` / `kernel.` label prefixes.

use crate::metrics::{MetricsSnapshot, MetricsSource};
use serde::{Deserialize, Serialize};

/// Defines the counter struct once and derives `merge` plus the
/// [`MetricsSource`] labeling from the same field list, so the three can
/// never drift apart.
macro_rules! counters {
    (
        $(#[$smeta:meta])*
        pub struct $name:ident {
            $( $(#[$fmeta:meta])* $field:ident => $label:literal ),+ $(,)?
        }
    ) => {
        $(#[$smeta])*
        pub struct $name {
            $( $(#[$fmeta])* pub $field: u64, )+
        }

        impl $name {
            /// Merge another counter set into this one (used when
            /// aggregating runs).
            pub fn merge(&mut self, o: &$name) {
                $( self.$field += o.$field; )+
            }
        }

        impl MetricsSource for $name {
            fn metrics_into(&self, m: &mut MetricsSnapshot) {
                $( m.add($label, self.$field); )+
            }
        }
    };
}

counters! {
    /// Event counters for one simulated core.
    #[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
    pub struct PerfCounters {
        l1_hits => "hw.l1_hits",
        l1_misses => "hw.l1_misses",
        l2_hits => "hw.l2_hits",
        l2_misses => "hw.l2_misses",
        ram_reads => "hw.ram_reads",
        ram_writes => "hw.ram_writes",
        mpb_reads => "hw.mpb_reads",
        mpb_writes => "hw.mpb_writes",
        wcb_merges => "hw.wcb_merges",
        wcb_flushes => "hw.wcb_flushes",
        cl1invmb_count => "hw.cl1invmb",
        ipis_sent => "hw.ipis_sent",
        ipis_received => "hw.ipis_received",
        tas_acquires => "hw.tas_acquires",
        tas_spins => "hw.tas_spins",
        yields => "exec.yields",
        blocks => "exec.blocks",
        /// Kernel-layer software-TLB translation hits (host fast path).
        tlb_hits => "kernel.tlb_hits",
        /// Kernel-layer software-TLB misses (page-table walks taken).
        tlb_misses => "kernel.tlb_misses",
        /// TLB entries dropped by PTE-mutation shootdowns.
        tlb_shootdowns => "kernel.tlb_shootdowns",
        /// `yield_now` calls resolved by the executor's fast scheduling
        /// protocol (direct hand-off or inline election — no sleeper
        /// wakeups).
        fast_yields => "exec.fast_yields",
        /// Parked-too-long watchdog expiries in the serial baton
        /// executor's condvar hand-off: a thread slept a full watchdog
        /// period without a wakeup. Nonzero is lost-wakeup evidence
        /// (the one-off 512-core host-side stall, ROADMAP open item 2).
        park_watchdog => "exec.park_watchdog",
        /// Schedule decisions consumed by the serial executor over the
        /// whole run (folded into the first core's counters, like
        /// `exec.park_watchdog`). Sizes the election-budget livelock
        /// guard: a healthy registry app finishes in well under a million
        /// elections.
        elections => "exec.elections",
        /// Safe windows this core executed under the parallel conservative
        /// engine (segments between scheduler interactions).
        par_windows => "exec.par.windows",
        /// Globally visible operations that had to synchronise with the
        /// parallel engine's election order (demoted + conflicting).
        par_visible_ops => "exec.par.visible_ops",
        /// Visible operations that actually parked waiting for the safe
        /// horizon (a subset of the conflicts).
        par_horizon_stalls => "exec.par.horizon_stalls",
        /// Visible operations resolved lock-free by a demotion fast path
        /// (open-window mirror, floor, or per-object sequence check).
        par_demoted_ops => "exec.par.demoted_ops",
        /// Visible operations that failed every demotion check and fell
        /// back to the locked election path (actual cross-core conflicts).
        par_conflicts => "exec.par.conflicts",
        /// Maximal lock-free stretches of demoted operations between two
        /// locked engine interactions.
        par_epochs => "exec.par.epochs",
        /// Host nanoseconds this core's thread spent parked (windows,
        /// waits, host-thread gate) — feeds the bench utilisation report.
        par_park_ns => "exec.par.park_ns",
        /// Epoch-length histogram: epochs of exactly 1 demoted op.
        par_epoch_len_1 => "exec.par.epoch_len.1",
        /// Epochs of 2–3 demoted ops.
        par_epoch_len_2_3 => "exec.par.epoch_len.2_3",
        /// Epochs of 4–7 demoted ops.
        par_epoch_len_4_7 => "exec.par.epoch_len.4_7",
        /// Epochs of 8–15 demoted ops.
        par_epoch_len_8_15 => "exec.par.epoch_len.8_15",
        /// Epochs of 16–63 demoted ops.
        par_epoch_len_16_63 => "exec.par.epoch_len.16_63",
        /// Epochs of 64 or more demoted ops.
        par_epoch_len_64 => "exec.par.epoch_len.64_plus",
        /// MPB-tree barriers this core completed (DESIGN.md §12).
        coll_barriers => "kernel.coll.barriers",
        /// Child arrival flags observed over tile-level tree edges.
        coll_arrive_tile => "kernel.coll.arrive.tile",
        /// Child arrival flags observed over quadrant-level tree edges.
        coll_arrive_quad => "kernel.coll.arrive.quad",
        /// Child arrival flags observed over root-level tree edges.
        coll_arrive_root => "kernel.coll.arrive.root",
        /// Release flags written to children over tile-level edges.
        coll_release_tile => "kernel.coll.release.tile",
        /// Release flags written to children over quadrant-level edges.
        coll_release_quad => "kernel.coll.release.quad",
        /// Release flags written to children over root-level edges.
        coll_release_root => "kernel.coll.release.root",
        /// Mesh hops traversed by this core's own collective flag
        /// traffic (arrival to its parent plus releases to its
        /// children), summed over completed barriers.
        coll_hops => "kernel.coll.hops",
    }
}

impl PerfCounters {
    /// L1 hit rate in [0, 1]; `None` when no accesses were recorded.
    pub fn l1_hit_rate(&self) -> Option<f64> {
        let total = self.l1_hits + self.l1_misses;
        (total > 0).then(|| self.l1_hits as f64 / total as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds() {
        let mut a = PerfCounters {
            l1_hits: 1,
            ram_reads: 2,
            ..Default::default()
        };
        let b = PerfCounters {
            l1_hits: 10,
            wcb_flushes: 3,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.l1_hits, 11);
        assert_eq!(a.ram_reads, 2);
        assert_eq!(a.wcb_flushes, 3);
    }

    #[test]
    fn hit_rate() {
        let mut c = PerfCounters::default();
        assert_eq!(c.l1_hit_rate(), None);
        c.l1_hits = 3;
        c.l1_misses = 1;
        assert_eq!(c.l1_hit_rate(), Some(0.75));
    }

    #[test]
    fn metrics_labels_cover_all_layers() {
        let c = PerfCounters {
            l1_hits: 7,
            tlb_hits: 5,
            fast_yields: 2,
            ..PerfCounters::default()
        };
        let m = c.metrics();
        assert_eq!(m.get("hw.l1_hits"), 7);
        assert_eq!(m.get("kernel.tlb_hits"), 5);
        assert_eq!(m.get("exec.fast_yields"), 2);
        // One label per field.
        assert_eq!(m.len(), 44);
        assert_eq!(m.get("exec.par.windows"), 0);
        assert_eq!(m.get("kernel.coll.barriers"), 0);
    }
}
