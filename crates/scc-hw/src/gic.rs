//! The Global Interrupt Controller introduced with sccKit 1.4.0.
//!
//! The GIC lives in the system FPGA and lets any core raise an
//! inter-processor interrupt at any other core. Crucially — and this is what
//! the paper's event-driven mailbox design exploits — the receiver can read
//! back *which* core raised the interrupt, so its handler only needs to scan
//! that one mailbox instead of every core's.
//!
//! The model keeps, per target core, a pending bitmask of source cores plus
//! a cycle stamp per (target, source) pair for virtual-time accounting. All
//! state is sized at construction from the configured core count — the
//! pending mask spans multiple 64-bit words on topologies past 64 cores.

use crate::topology::CoreId;
use std::sync::atomic::{AtomicU64, Ordering};

/// Global interrupt controller state.
pub struct Gic {
    ncores: usize,
    /// 64-bit words per target in the pending mask.
    words: usize,
    /// Pending source bitmask per target core (`words` u64s each).
    pending: Box<[AtomicU64]>,
    /// Raise stamp per (target, source).
    stamps: Box<[AtomicU64]>,
}

impl Gic {
    pub fn new(ncores: usize) -> Self {
        let words = ncores.div_ceil(64);
        let mut pending = Vec::with_capacity(ncores * words);
        pending.resize_with(ncores * words, || AtomicU64::new(0));
        let mut stamps = Vec::with_capacity(ncores * ncores);
        stamps.resize_with(ncores * ncores, || AtomicU64::new(0));
        Gic {
            ncores,
            words,
            pending: pending.into_boxed_slice(),
            stamps: stamps.into_boxed_slice(),
        }
    }

    #[inline]
    fn stamp_slot(&self, target: CoreId, source: CoreId) -> &AtomicU64 {
        &self.stamps[target.idx() * self.ncores + source.idx()]
    }

    /// Raise an IPI from `source` at `target`, stamped with the sender's
    /// clock at the moment of the doorbell write.
    pub fn raise(&self, source: CoreId, target: CoreId, stamp: u64) {
        // Stamp first, then publish the pending bit: a reader that sees the
        // bit is guaranteed to see a stamp at least this fresh.
        self.stamp_slot(target, source)
            .fetch_max(stamp, Ordering::Release);
        let w = target.idx() * self.words + source.idx() / 64;
        self.pending[w].fetch_or(1 << (source.idx() % 64), Ordering::Release);
    }

    /// Cheap check used at interrupt points: does `target` have anything
    /// pending?
    #[inline]
    pub fn has_pending(&self, target: CoreId) -> bool {
        let base = target.idx() * self.words;
        self.pending[base..base + self.words]
            .iter()
            .any(|w| w.load(Ordering::Acquire) != 0)
    }

    /// Atomically fetch-and-clear the pending mask of `target`, returning
    /// `(source, raise_stamp)` pairs in ascending source order.
    pub fn claim(&self, target: CoreId) -> Vec<(CoreId, u64)> {
        let base = target.idx() * self.words;
        let mut out = Vec::new();
        for wi in 0..self.words {
            let mut m = self.pending[base + wi].swap(0, Ordering::AcqRel);
            while m != 0 {
                let src = wi * 64 + m.trailing_zeros() as usize;
                m &= m - 1;
                let src = CoreId::from_raw(src);
                let stamp = self.stamp_slot(target, src).load(Ordering::Acquire);
                out.push((src, stamp));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raise_and_claim() {
        let g = Gic::new(48);
        let t = CoreId::new(5);
        assert!(!g.has_pending(t));
        g.raise(CoreId::new(1), t, 100);
        g.raise(CoreId::new(30), t, 200);
        assert!(g.has_pending(t));
        let got = g.claim(t);
        assert_eq!(got, vec![(CoreId::new(1), 100), (CoreId::new(30), 200)]);
        assert!(!g.has_pending(t));
        assert!(g.claim(t).is_empty());
    }

    #[test]
    fn stamps_keep_max() {
        let g = Gic::new(48);
        let t = CoreId::new(0);
        g.raise(CoreId::new(2), t, 500);
        g.raise(CoreId::new(2), t, 300); // older raise must not regress stamp
        let got = g.claim(t);
        assert_eq!(got, vec![(CoreId::new(2), 500)]);
    }

    #[test]
    fn targets_independent() {
        let g = Gic::new(48);
        g.raise(CoreId::new(0), CoreId::new(1), 1);
        assert!(!g.has_pending(CoreId::new(2)));
        assert!(g.has_pending(CoreId::new(1)));
    }

    #[test]
    fn sources_past_64_cores() {
        // Multi-word pending masks: sources on both sides of the 64-bit
        // boundary, claimed in ascending source order.
        let g = Gic::new(512);
        let t = CoreId::new(300);
        g.raise(CoreId::new(511), t, 30);
        g.raise(CoreId::new(63), t, 10);
        g.raise(CoreId::new(64), t, 20);
        assert!(g.has_pending(t));
        let got = g.claim(t);
        assert_eq!(
            got,
            vec![
                (CoreId::new(63), 10),
                (CoreId::new(64), 20),
                (CoreId::new(511), 30),
            ]
        );
        assert!(!g.has_pending(t));
    }
}
