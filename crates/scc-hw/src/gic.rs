//! The Global Interrupt Controller introduced with sccKit 1.4.0.
//!
//! The GIC lives in the system FPGA and lets any core raise an
//! inter-processor interrupt at any other core. Crucially — and this is what
//! the paper's event-driven mailbox design exploits — the receiver can read
//! back *which* core raised the interrupt, so its handler only needs to scan
//! that one mailbox instead of all 48.
//!
//! The model keeps, per target core, a pending bitmask of source cores plus
//! a cycle stamp per (target, source) pair for virtual-time accounting.

use crate::topology::{CoreId, MAX_CORES};
use std::sync::atomic::{AtomicU64, Ordering};

/// Global interrupt controller state.
pub struct Gic {
    /// Pending source bitmask per target core.
    pending: [AtomicU64; MAX_CORES],
    /// Raise stamp per (target, source).
    stamps: Box<[AtomicU64]>,
}

impl Default for Gic {
    fn default() -> Self {
        Self::new()
    }
}

impl Gic {
    pub fn new() -> Self {
        let mut stamps = Vec::with_capacity(MAX_CORES * MAX_CORES);
        stamps.resize_with(MAX_CORES * MAX_CORES, || AtomicU64::new(0));
        Gic {
            pending: std::array::from_fn(|_| AtomicU64::new(0)),
            stamps: stamps.into_boxed_slice(),
        }
    }

    #[inline]
    fn stamp_slot(&self, target: CoreId, source: CoreId) -> &AtomicU64 {
        &self.stamps[target.idx() * MAX_CORES + source.idx()]
    }

    /// Raise an IPI from `source` at `target`, stamped with the sender's
    /// clock at the moment of the doorbell write.
    pub fn raise(&self, source: CoreId, target: CoreId, stamp: u64) {
        // Stamp first, then publish the pending bit: a reader that sees the
        // bit is guaranteed to see a stamp at least this fresh.
        self.stamp_slot(target, source)
            .fetch_max(stamp, Ordering::Release);
        self.pending[target.idx()].fetch_or(1 << source.idx(), Ordering::Release);
    }

    /// Cheap check used at interrupt points: does `target` have anything
    /// pending?
    #[inline]
    pub fn has_pending(&self, target: CoreId) -> bool {
        self.pending[target.idx()].load(Ordering::Acquire) != 0
    }

    /// Atomically fetch-and-clear the pending mask of `target`, returning
    /// `(source, raise_stamp)` pairs in ascending source order.
    pub fn claim(&self, target: CoreId) -> Vec<(CoreId, u64)> {
        let mask = self.pending[target.idx()].swap(0, Ordering::AcqRel);
        let mut out = Vec::new();
        let mut m = mask;
        while m != 0 {
            let src = m.trailing_zeros() as usize;
            m &= m - 1;
            let stamp = self.stamp_slot(target, CoreId::new(src)).load(Ordering::Acquire);
            out.push((CoreId::new(src), stamp));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raise_and_claim() {
        let g = Gic::new();
        let t = CoreId::new(5);
        assert!(!g.has_pending(t));
        g.raise(CoreId::new(1), t, 100);
        g.raise(CoreId::new(30), t, 200);
        assert!(g.has_pending(t));
        let got = g.claim(t);
        assert_eq!(got, vec![(CoreId::new(1), 100), (CoreId::new(30), 200)]);
        assert!(!g.has_pending(t));
        assert!(g.claim(t).is_empty());
    }

    #[test]
    fn stamps_keep_max() {
        let g = Gic::new();
        let t = CoreId::new(0);
        g.raise(CoreId::new(2), t, 500);
        g.raise(CoreId::new(2), t, 300); // older raise must not regress stamp
        let got = g.claim(t);
        assert_eq!(got, vec![(CoreId::new(2), 500)]);
    }

    #[test]
    fn targets_independent() {
        let g = Gic::new();
        g.raise(CoreId::new(0), CoreId::new(1), 1);
        assert!(!g.has_pending(CoreId::new(2)));
        assert!(g.has_pending(CoreId::new(1)));
    }
}
