//! A simple energy model for the simulated SCC.
//!
//! §3 of the paper: "The power consumption of the full chip depends on the
//! configuration (frequency and voltage of the mesh and cores) and is
//! between 25 and 125 W." This module turns a run's event counters and
//! duration into an energy estimate, so design points (e.g. polling vs
//! IPI-driven mailboxes, which trade idle scan work against interrupt
//! overhead) can also be compared in joules.
//!
//! The model is deliberately simple — static power plus per-event energies
//! — and calibrated only to the envelope the paper quotes: a 48-core chip
//! at 533/800 MHz idles near the lower bound and saturates towards the
//! upper bound under full memory load.

use crate::perf::PerfCounters;
use crate::timing::TimingParams;
use serde::{Deserialize, Serialize};

/// Per-event energies in nanojoules, plus static power.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PowerParams {
    /// Chip-level static power (W), spread evenly over the chip's cores.
    pub static_chip_w: f64,
    /// Active energy per core cycle (nJ) — pipeline + L1.
    pub core_cycle_nj: f64,
    /// Energy per L2 access (nJ).
    pub l2_access_nj: f64,
    /// Energy per off-die DRAM access (nJ, word or line).
    pub dram_access_nj: f64,
    /// Energy per MPB access (nJ).
    pub mpb_access_nj: f64,
    /// Energy per interrupt delivery (nJ).
    pub ipi_nj: f64,
}

impl Default for PowerParams {
    fn default() -> Self {
        PowerParams {
            static_chip_w: 25.0,
            core_cycle_nj: 0.35,
            l2_access_nj: 0.6,
            dram_access_nj: 18.0,
            mpb_access_nj: 1.2,
            ipi_nj: 8.0,
        }
    }
}

/// Energy estimate for one core's run.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Energy {
    /// Static share (this core's 1/chip_cores of chip static power over
    /// the run — 1/48 on the SCC preset).
    pub static_j: f64,
    /// Dynamic energy from the event counters.
    pub dynamic_j: f64,
}

impl Energy {
    pub fn total_j(&self) -> f64 {
        self.static_j + self.dynamic_j
    }

    /// Average power over the run in watts.
    pub fn avg_power_w(&self, cycles: u64, timing: &TimingParams) -> f64 {
        let seconds = cycles as f64 / (timing.core_mhz as f64 * 1e6);
        if seconds == 0.0 {
            0.0
        } else {
            self.total_j() / seconds
        }
    }
}

/// Estimate one core's energy for a run of `cycles` with the given
/// counters. `chip_cores` is the total core count of the chip (the
/// topology's, not just the populated cores) — each core carries an even
/// share of static power.
pub fn estimate(
    perf: &PerfCounters,
    cycles: u64,
    chip_cores: usize,
    t: &TimingParams,
    p: &PowerParams,
) -> Energy {
    let seconds = cycles as f64 / (t.core_mhz as f64 * 1e6);
    let static_j = p.static_chip_w / chip_cores.max(1) as f64 * seconds;
    let nj = p.core_cycle_nj * cycles as f64
        + p.l2_access_nj * (perf.l2_hits + perf.l2_misses) as f64
        + p.dram_access_nj * (perf.ram_reads + perf.ram_writes) as f64
        + p.mpb_access_nj * (perf.mpb_reads + perf.mpb_writes) as f64
        + p.ipi_nj * (perf.ipis_sent + perf.ipis_received) as f64;
    Energy {
        static_j,
        dynamic_j: nj * 1e-9,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timing() -> TimingParams {
        TimingParams::default()
    }

    #[test]
    fn idle_core_sits_near_static_floor() {
        let perf = PerfCounters::default();
        let cycles = 533_000_000; // one second
        let e = estimate(&perf, cycles, 48, &timing(), &PowerParams::default());
        let chip_w = e.avg_power_w(cycles, &timing()) * 48.0;
        // An idle (but clocked) chip must land near the paper's 25 W floor
        // plus the clock tree: comfortably inside [25, 125].
        assert!(
            (25.0..60.0).contains(&chip_w),
            "idle chip power {chip_w:.1} W out of range"
        );
    }

    #[test]
    fn memory_bound_core_costs_more() {
        let mut perf = PerfCounters::default();
        let cycles = 533_000_000u64;
        perf.ram_reads = 10_000_000; // heavy DRAM traffic
        perf.ram_writes = 6_000_000;
        let base = estimate(
            &PerfCounters::default(),
            cycles,
            48,
            &timing(),
            &PowerParams::default(),
        );
        let hot = estimate(&perf, cycles, 48, &timing(), &PowerParams::default());
        assert!(hot.total_j() > base.total_j() * 1.3);
        // And the full chip under this load stays under the 125 W ceiling.
        let chip_w = hot.avg_power_w(cycles, &timing()) * 48.0;
        assert!(chip_w < 125.0, "chip power {chip_w:.1} W exceeds the envelope");
    }

    #[test]
    fn zero_cycles_zero_power() {
        let e = estimate(
            &PerfCounters::default(),
            0,
            48,
            &timing(),
            &PowerParams::default(),
        );
        assert_eq!(e.avg_power_w(0, &timing()), 0.0);
        assert_eq!(e.total_j(), 0.0);
    }
}
