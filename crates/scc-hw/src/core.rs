//! The per-core execution context: virtual clock, private cache hierarchy,
//! and the memory engine that charges calibrated costs for every access.
//!
//! A [`CoreCtx`] is handed to each simulated core's program by
//! [`crate::Machine::run_on`]. All methods that touch memory advance the
//! core's virtual clock; *raw* `peek`/`poke` accessors (on [`crate::Machine`])
//! exist for wait conditions and test assertions and are free.

use crate::cache::{Cache, Wcb, WcbFlush};
use crate::config::{LINE_BYTES, PAGE_BYTES};
use crate::error::HwError;
use crate::instr::{EventKind, TraceRing};
use crate::machine::MachineInner;
use crate::par::Engine;
use crate::perf::PerfCounters;
use crate::ram::{Backing, MPB_PA_BASE};
use crate::timing::{pack_key, TimingParams};
use crate::topology::{CoreId, Topology};
use std::sync::Arc;

/// Cacheability attributes of one access, normally derived from a page-table
/// entry by the kernel layer.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct MemAttr {
    /// May be cached in L1.
    pub l1: bool,
    /// May be cached in L2 (the SCC bypasses L2 for MPBT-tagged pages).
    pub l2: bool,
    /// Write-back (private memory) vs write-through (shared memory).
    pub write_back: bool,
    /// Tagged with the SCC's new MPBT memory type: L2 bypassed, lines
    /// invalidated by `CL1INVMB`, stores combined in the WCB.
    pub mpbt: bool,
}

impl MemAttr {
    /// Private off-die memory: full L1+L2, write-back.
    pub const PRIVATE_WB: MemAttr = MemAttr {
        l1: true,
        l2: true,
        write_back: true,
        mpbt: false,
    };
    /// Shared memory under MetalSVM: L1 only, write-through, MPBT tag,
    /// stores combined by the WCB.
    pub const SHARED_MPBT_WT: MemAttr = MemAttr {
        l1: true,
        l2: false,
        write_back: false,
        mpbt: true,
    };
    /// Read-only shared region after the collective `mprotect` of §6.4:
    /// MPBT cleared, L2 re-enabled, still write-through (writes trap anyway).
    pub const SHARED_RO_L2: MemAttr = MemAttr {
        l1: true,
        l2: true,
        write_back: false,
        mpbt: false,
    };
    /// The MPB itself: L1-cacheable with MPBT tag, no L2.
    pub const MPB: MemAttr = MemAttr {
        l1: true,
        l2: false,
        write_back: false,
        mpbt: true,
    };
    /// Uncacheable (device registers, the SVM ownership vector, the default
    /// for the SCC's shared region under Intel's stock configuration).
    pub const UNCACHED: MemAttr = MemAttr {
        l1: false,
        l2: false,
        write_back: false,
        mpbt: false,
    };
}

/// Execution context of one simulated core.
pub struct CoreCtx {
    id: CoreId,
    slot: usize,
    clock: u64,
    next_yield: u64,
    l1: Cache,
    l2: Cache,
    wcb: Wcb,
    /// Copies of `mach.cfg.timing` / `mach.cfg.quantum_cycles`: the memory
    /// model reads these on every access, and a local copy avoids chasing
    /// the `Arc` on the hot path.
    timing: TimingParams,
    quantum: u64,
    /// Copy of `mach.cfg.topo` (16 bytes): hop distances feed every memory
    /// cost, so geometry lookups must not chase the `Arc` either.
    topo: Topology,
    /// Hardware event counters for this core.
    pub perf: PerfCounters,
    /// Structured-event ring for this core (zero-sized without the `trace`
    /// feature).
    ring: TraceRing,
    /// Pages already reported to the ring since the last sync action
    /// (key = `page << 1 | is_write`); see [`CoreCtx::trace_svm_access`].
    #[cfg(feature = "trace")]
    svm_access_memo: std::collections::HashSet<u64>,
    mach: Arc<MachineInner>,
    sched: Arc<Engine>,
    /// True under the parallel conservative engine: every globally visible
    /// operation must pass a demotion check or hold the open window (see
    /// [`crate::par`]).
    par: bool,
    /// Election key of the current scheduling segment (the clock published
    /// when the previous segment ended) — the *true* current key, which may
    /// run ahead of the engine's retired view. Parallel engine only.
    seg_key: u64,
    /// Demoted visible operations since the last locked engine interaction
    /// (the running epoch length; folded into the histogram counters at
    /// every epoch close).
    epoch_len: u64,
    /// Cached `!mach.cfg.faults.is_empty()` so the fault-injection hooks
    /// cost one predictable branch on the hot paths.
    has_faults: bool,
    /// Cached region bounds for the private/visible access classifier.
    shared_base: u32,
    priv_base: u32,
    priv_end: u32,
}

/// Extend the running epoch by one demoted operation (free functions so
/// they can run under a live borrow of `CoreCtx::sched`).
#[inline]
fn bump_epoch(perf: &mut PerfCounters, epoch_len: &mut u64) {
    if *epoch_len == 0 {
        perf.par_epochs += 1;
    }
    *epoch_len += 1;
}

/// Close the running epoch, folding its length into the histogram buckets.
#[inline]
fn close_epoch(perf: &mut PerfCounters, epoch_len: &mut u64) {
    let n = std::mem::take(epoch_len);
    match n {
        0 => {}
        1 => perf.par_epoch_len_1 += 1,
        2..=3 => perf.par_epoch_len_2_3 += 1,
        4..=7 => perf.par_epoch_len_4_7 += 1,
        8..=15 => perf.par_epoch_len_8_15 += 1,
        16..=63 => perf.par_epoch_len_16_63 += 1,
        _ => perf.par_epoch_len_64 += 1,
    }
}

impl CoreCtx {
    pub(crate) fn new(
        id: CoreId,
        slot: usize,
        mach: Arc<MachineInner>,
        sched: Arc<Engine>,
    ) -> Self {
        let quantum = mach.cfg.quantum_cycles;
        let par = matches!(&*sched, Engine::Parallel(_));
        let has_faults = !mach.faults.is_empty();
        let priv_base = mach.map.private_base(id);
        CoreCtx {
            id,
            slot,
            clock: 0,
            next_yield: quantum,
            l1: Cache::new(mach.cfg.l1),
            l2: Cache::new(mach.cfg.l2),
            wcb: Wcb::new(),
            timing: mach.cfg.timing.clone(),
            quantum,
            topo: mach.cfg.topo,
            perf: PerfCounters::default(),
            ring: TraceRing::new(&mach.cfg.trace),
            #[cfg(feature = "trace")]
            svm_access_memo: std::collections::HashSet::new(),
            shared_base: mach.map.shared_base(),
            priv_base,
            priv_end: priv_base + mach.map.private_bytes(),
            mach,
            sched,
            par,
            seg_key: 0,
            epoch_len: 0,
            has_faults,
        }
    }

    /// Record a structured trace event stamped with this core's current
    /// simulated clock. Compiles to nothing without the `trace` feature;
    /// call sites stay unconditional. Never touches the virtual clock.
    #[inline(always)]
    pub fn trace(&mut self, kind: EventKind, a: u32, b: u32) {
        self.ring.record(self.clock, kind, a, b);
    }

    /// [`CoreCtx::trace`] with the third payload slot (correlation ids,
    /// model tags).
    #[inline(always)]
    pub fn trace3(&mut self, kind: EventKind, a: u32, b: u32, c: u32) {
        self.ring.record3(self.clock, kind, a, b, c);
    }

    /// Record an SVM shared-page access for the consistency checker,
    /// deduplicated per synchronisation segment: the first read and the
    /// first write of each page between two sync actions are recorded,
    /// repeats are dropped (a core's happens-before state is constant
    /// within a segment, so the duplicates carry no extra information —
    /// but they would swamp the rings). No-op without the `trace` feature.
    #[inline(always)]
    #[allow(unused_variables)]
    pub fn trace_svm_access(&mut self, page: u32, write: bool) {
        #[cfg(feature = "trace")]
        {
            let key = ((page as u64) << 1) | write as u64;
            if self.svm_access_memo.insert(key) {
                let kind = if write {
                    EventKind::SvmWrite
                } else {
                    EventKind::SvmRead
                };
                self.ring.record(self.clock, kind, page, 0);
            }
        }
    }

    /// Open a new synchronisation segment for the access memo: called by
    /// the SVM layer at every acquire, release and barrier, so
    /// [`CoreCtx::trace_svm_access`] records afresh. No-op without the
    /// `trace` feature.
    #[inline(always)]
    pub fn trace_sync_reset(&mut self) {
        #[cfg(feature = "trace")]
        self.svm_access_memo.clear();
    }

    /// This core's trace ring (empty without the `trace` feature).
    pub fn trace_ring(&self) -> &TraceRing {
        &self.ring
    }

    /// Detach the trace ring (used by the machine when a core's program
    /// finishes, to carry the events out in its `CoreResult`).
    pub(crate) fn take_trace(&mut self) -> TraceRing {
        std::mem::take(&mut self.ring)
    }

    /// This core's id.
    #[inline]
    pub fn id(&self) -> CoreId {
        self.id
    }

    /// The machine shape this core runs on.
    #[inline]
    pub fn topo(&self) -> &Topology {
        &self.topo
    }

    /// The machine this core belongs to.
    #[inline]
    pub fn machine(&self) -> &Arc<MachineInner> {
        &self.mach
    }

    /// Current virtual time in core cycles.
    #[inline]
    pub fn now(&self) -> u64 {
        self.clock
    }

    /// Advance the virtual clock (compute time, handler overheads, ...).
    #[inline]
    pub fn advance(&mut self, cycles: u64) {
        self.clock += cycles;
        if self.clock >= self.next_yield {
            self.yield_now();
        }
    }

    /// Voluntarily end the current scheduling segment: under the serial
    /// executor this hands the baton to the globally minimal core; under
    /// the parallel engine it publishes the segment end (and keeps running
    /// ahead).
    pub fn yield_now(&mut self) {
        if self.has_faults {
            // An armed freeze window makes no progress "during" it: the
            // clock jumps past the window at this yield point, so the
            // core loses every election until the window ends.
            self.clock += self.mach.faults.freeze_jump(self.id.idx(), self.clock);
        }
        self.perf.yields += 1;
        match &*self.sched {
            Engine::Serial(s) => {
                if s.yield_now(self.slot, self.clock) {
                    self.perf.fast_yields += 1;
                }
            }
            Engine::Parallel(p) => {
                self.perf.par_windows += 1;
                close_epoch(&mut self.perf, &mut self.epoch_len);
                p.yield_now(self.slot, self.clock);
                self.seg_key = self.clock;
            }
        }
        self.next_yield = self.clock + self.quantum;
    }

    /// Jump the clock forward to at least `stamp` (event delivery).
    #[inline]
    pub fn sync_to(&mut self, stamp: u64) {
        self.clock = self.clock.max(stamp);
    }

    /// Block until `cond` yields a value. `cond` must be side-effect-free
    /// and use only raw (`peek`-style) accessors; it runs with the scheduler
    /// lock held. The `u64` it returns is the event stamp; the clock is
    /// advanced to it (the caller charges delivery latency on top).
    pub fn wait_until<T: Send>(
        &mut self,
        reason: &'static str,
        cond: impl FnMut() -> Option<(T, u64)> + Send,
    ) -> T {
        self.perf.blocks += 1;
        self.trace(EventKind::BlockEnter, 0, 0);
        let (v, stamp) = match &*self.sched {
            Engine::Serial(s) => s.wait_blocked(self.slot, self.clock, reason, cond),
            Engine::Parallel(p) => {
                self.perf.par_windows += 1;
                close_epoch(&mut self.perf, &mut self.epoch_len);
                // The block clock is the next segment's election key.
                self.seg_key = self.clock;
                p.wait_blocked(self.slot, self.clock, reason, cond)
            }
        };
        self.sync_to(stamp);
        self.next_yield = self.clock + self.quantum;
        self.trace(EventKind::BlockExit, 0, 0);
        v
    }

    // ------------------------------------------------------------------
    // Parallel-engine access classification
    // ------------------------------------------------------------------

    /// May this core touch `pa` outside the safe window? True for its own
    /// private region and for shared frames it is the registered exclusive
    /// owner of (strong-model SVM pages mapped on exactly one core). The
    /// MPB, other cores' private regions and unowned shared memory are
    /// globally visible.
    #[inline]
    fn is_core_private(&self, pa: u32) -> bool {
        if pa >= MPB_PA_BASE {
            return false;
        }
        if pa < self.shared_base {
            return pa >= self.priv_base && pa < self.priv_end;
        }
        let frame = ((pa - self.shared_base) as usize) / PAGE_BYTES;
        self.mach.frame_owners.owned_by(frame, self.id.idx())
    }

    /// Order this core's next globally visible operation (parallel engine
    /// only). Fast paths first: holding the open window or sitting at the
    /// published floor licenses the operation lock-free (a **demoted**
    /// order point, extending the running epoch). Otherwise this is a
    /// **conflict**: the epoch closes and the core takes the engine lock,
    /// returning once it holds the window. Free in simulated time.
    #[inline]
    fn host_sync(&mut self) {
        if let Engine::Parallel(p) = &*self.sched {
            self.perf.par_visible_ops += 1;
            if p.window_open_for(self.slot) || p.at_floor(pack_key(self.seg_key, self.slot)) {
                self.perf.par_demoted_ops += 1;
                bump_epoch(&mut self.perf, &mut self.epoch_len);
                return;
            }
            self.perf.par_conflicts += 1;
            close_epoch(&mut self.perf, &mut self.epoch_len);
            if p.visible(self.slot) {
                self.perf.par_horizon_stalls += 1;
            }
        }
    }

    /// Gate an access to `pa` on the safe window unless it is core-private.
    /// No-op under the serial executor.
    #[inline]
    fn sync_visible(&mut self, pa: u32) {
        if self.par && !self.is_core_private(pa) {
            self.host_sync();
        }
    }

    /// Public order-point for host-side shared structures (bump allocators,
    /// raw flag peeks that precede timed accesses): under the parallel
    /// engine the caller's next host-side effect lands in deterministic
    /// election order (demoted lock-free when a fast path proves the
    /// absence of conflict). No-op (and free) under the serial executor.
    #[inline]
    pub fn host_order_point(&mut self) {
        if self.par {
            self.host_sync();
        }
    }

    /// Order point for a *read-only* peek of an object whose only possible
    /// writers are this core and `writer` — a mailbox slot's flag word, an
    /// iRCCE pipeline flag. On top of the generic window/floor fast paths,
    /// this demotes through the per-object sequence check: when every
    /// serially-prior write of `writer` has provably retired, the peek
    /// cannot race anything and resolves lock-free (DESIGN.md §8). The
    /// caller must not *write* under this order point, and must name the
    /// object's single possible other writer. No-op under the serial
    /// executor.
    #[inline]
    pub fn host_order_point_peer(&mut self, writer: CoreId) {
        if let Engine::Parallel(p) = &*self.sched {
            self.perf.par_visible_ops += 1;
            let packed = pack_key(self.seg_key, self.slot);
            if writer == self.id
                || p.window_open_for(self.slot)
                || p.at_floor(packed)
                || p.peer_clear(packed, writer)
            {
                self.perf.par_demoted_ops += 1;
                bump_epoch(&mut self.perf, &mut self.epoch_len);
                return;
            }
            self.perf.par_conflicts += 1;
            close_epoch(&mut self.perf, &mut self.epoch_len);
            if p.visible(self.slot) {
                self.perf.par_horizon_stalls += 1;
            }
        }
    }

    /// Fold end-of-run parallel-engine statistics into this core's perf
    /// counters: the trailing epoch and the host nanoseconds its thread
    /// spent parked. Called by the machine after the program returns.
    pub(crate) fn finalize_par_stats(&mut self) {
        close_epoch(&mut self.perf, &mut self.epoch_len);
        if let Engine::Parallel(p) = &*self.sched {
            self.perf.par_park_ns = p.park_ns(self.slot);
        }
    }

    // ------------------------------------------------------------------
    // Shared-frame ownership registry (host-side, free)
    // ------------------------------------------------------------------

    /// Index of `pfn` (an absolute physical frame number) in the shared
    /// region's ownership registry.
    #[inline]
    fn shared_frame_index(&self, pfn: u32) -> Option<usize> {
        let pa = (pfn as u64) * PAGE_BYTES as u64;
        if pa < self.shared_base as u64 {
            return None;
        }
        let idx = ((pa - self.shared_base as u64) as usize) / PAGE_BYTES;
        (idx < self.mach.frame_owners.len()).then_some(idx)
    }

    /// Register this core as exclusive owner of shared frame `pfn`: its
    /// accesses to the frame become core-private under the parallel engine.
    /// Callers must guarantee protocol-level exclusivity (strong-model SVM
    /// ownership). Host-side bookkeeping only — free in simulated time,
    /// no-op for non-shared frames.
    pub fn frame_claim_exclusive(&mut self, pfn: u32) {
        if let Some(idx) = self.shared_frame_index(pfn) {
            self.mach.frame_owners.claim(idx, self.id.idx());
            self.trace(EventKind::FrameOwner, pfn, self.id.idx() as u32);
        }
    }

    /// Hand exclusive ownership of shared frame `pfn` to core `to` (called
    /// by the *current* owner while granting the page away).
    pub fn frame_transfer_exclusive(&mut self, pfn: u32, to: CoreId) {
        if let Some(idx) = self.shared_frame_index(pfn) {
            self.mach.frame_owners.claim(idx, to.idx());
            self.trace(EventKind::FrameOwner, pfn, to.idx() as u32);
        }
    }

    /// Drop any exclusivity claim on shared frame `pfn` (frame freed or
    /// page demoted to a shared mapping).
    pub fn frame_release_exclusive(&mut self, pfn: u32) {
        if let Some(idx) = self.shared_frame_index(pfn) {
            self.mach.frame_owners.release(idx);
            self.trace(EventKind::FrameOwner, pfn, u32::MAX);
        }
    }

    // ------------------------------------------------------------------
    // Cost helpers
    // ------------------------------------------------------------------

    /// Cost of one word-granular access to `pa` (uncached path).
    #[inline]
    fn word_cost(&self, pa: u32) -> u64 {
        let t = &self.timing;
        match self.mach.map.resolve(pa) {
            Backing::Ram { mc } => t.ddr_word_cost(self.topo.hops_to_mc(self.id, mc)),
            Backing::Mpb { owner } => t.mpb_cost(self.topo.hops(self.id, owner)),
        }
    }

    /// Cost of one 32-byte line transfer from/to `pa`'s device.
    #[inline]
    fn line_cost(&self, pa: u32) -> u64 {
        let t = &self.timing;
        match self.mach.map.resolve(pa) {
            Backing::Ram { mc } => t.ddr_line_cost(self.topo.hops_to_mc(self.id, mc)),
            Backing::Mpb { owner } => t.mpb_cost(self.topo.hops(self.id, owner)),
        }
    }

    // ------------------------------------------------------------------
    // Backing-store plumbing (functional, no cost)
    // ------------------------------------------------------------------

    #[inline]
    fn backing_read(&mut self, pa: u32, len: usize) -> u64 {
        self.sync_visible(pa);
        match self.mach.map.resolve(pa) {
            Backing::Ram { .. } => {
                self.perf.ram_reads += 1;
                self.mach.ram.read(pa, len)
            }
            Backing::Mpb { .. } => {
                self.perf.mpb_reads += 1;
                self.mach.mpb.read(pa, len)
            }
        }
    }

    #[inline]
    fn backing_write(&mut self, pa: u32, len: usize, val: u64) {
        self.sync_visible(pa);
        match self.mach.map.resolve(pa) {
            Backing::Ram { .. } => {
                self.perf.ram_writes += 1;
                self.mach.ram.write(pa, len, val)
            }
            Backing::Mpb { .. } => {
                self.perf.mpb_writes += 1;
                self.mach.mpb.note_write(pa, pack_key(self.clock, self.slot));
                self.mach.mpb.write(pa, len, val)
            }
        }
    }

    fn backing_line(&mut self, la: u32) -> [u8; LINE_BYTES] {
        let base = la * LINE_BYTES as u32;
        self.sync_visible(base);
        match self.mach.map.resolve(base) {
            Backing::Ram { .. } => {
                self.perf.ram_reads += 1;
                self.mach.ram.read_line(base)
            }
            Backing::Mpb { .. } => {
                self.perf.mpb_reads += 1;
                self.mach.mpb.read_line(base)
            }
        }
    }

    fn apply_wcb_flush(&mut self, f: WcbFlush) {
        let base = f.line * LINE_BYTES as u32;
        self.perf.wcb_flushes += 1;
        self.trace(EventKind::WcbFlush, f.line, 0);
        self.sync_visible(base);
        match self.mach.map.resolve(base) {
            Backing::Ram { .. } => {
                self.mach.ram.write_line_masked(base, &f.data, f.mask);
                self.perf.ram_writes += 1;
            }
            Backing::Mpb { .. } => {
                self.mach.mpb.note_write(base, pack_key(self.clock, self.slot));
                self.mach.mpb.write_line_masked(base, &f.data, f.mask);
                self.perf.mpb_writes += 1;
            }
        }
        let cost = self.line_cost(base);
        self.advance(cost);
    }

    /// Final writeback of a dirty line to off-die memory (L2 victims, or L1
    /// victims whose line is not in the L2).
    fn writeback_line(&mut self, line: u32, data: [u8; LINE_BYTES]) {
        let base = line * LINE_BYTES as u32;
        self.sync_visible(base);
        self.mach.ram.write_line(base, &data);
        self.perf.ram_writes += 1;
        let cost = self.line_cost(base);
        self.advance(cost);
    }

    /// Writeback of a dirty **L1** victim: it must land in the L2 copy if
    /// one exists (otherwise a later L1 miss would hit the L2's stale
    /// data), and go to memory only when the L2 does not hold the line.
    fn writeback_l1_victim(&mut self, line: u32, data: [u8; LINE_BYTES]) {
        if self.l2.absorb_writeback(line, data) {
            let c = self.timing.l2_hit;
            self.advance(c);
        } else {
            self.writeback_line(line, data);
        }
    }

    // ------------------------------------------------------------------
    // The memory engine
    // ------------------------------------------------------------------

    /// Timed read of `len` (1..=8) bytes at physical address `pa`.
    #[inline]
    pub fn read(&mut self, pa: u32, len: usize, attr: MemAttr) -> u64 {
        debug_assert!((1..=8).contains(&len));
        // Split accesses that straddle a cache line (rare, unaligned).
        let off = (pa as usize) % LINE_BYTES;
        if off + len > LINE_BYTES {
            let first = LINE_BYTES - off;
            let lo = self.read(pa, first, attr);
            let hi = self.read(pa + first as u32, len - first, attr);
            return lo | (hi << (first * 8));
        }
        let la = pa / LINE_BYTES as u32;
        let t_l1_hit = self.timing.l1_hit;
        let t_l2_hit = self.timing.l2_hit;

        let val = if !attr.l1 {
            let cost = self.word_cost(pa);
            self.advance(cost);
            self.backing_read(pa, len)
        } else if let Some(v) = self.l1.read(la, off, len) {
            self.perf.l1_hits += 1;
            self.advance(t_l1_hit);
            v
        } else {
            self.perf.l1_misses += 1;
            // L1 miss: consult L2 unless this is an MPBT access.
            let line = if attr.l2 {
                if let Some(data) = self.l2.peek_line(la) {
                    self.perf.l2_hits += 1;
                    self.l2.read(la, 0, 1); // LRU touch
                    self.advance(t_l2_hit);
                    data
                } else {
                    self.perf.l2_misses += 1;
                    let cost = self.line_cost(pa);
                    self.advance(cost);
                    let data = self.backing_line(la);
                    if let Some(wb) = self.l2.fill(la, data, attr.mpbt) {
                        self.writeback_line(wb.line, wb.data);
                    }
                    data
                }
            } else {
                let cost = self.line_cost(pa);
                self.advance(cost);
                self.backing_line(la)
            };
            if let Some(wb) = self.l1.fill(la, line, attr.mpbt) {
                self.writeback_l1_victim(wb.line, wb.data);
            }
            let mut v = 0u64;
            for k in 0..len {
                v |= (line[off + k] as u64) << (k * 8);
            }
            v
        };
        // The core snoops its own write-combine buffer.
        self.wcb.overlay(la, off, len, val)
    }

    /// Timed write of the low `len` (1..=8) bytes of `val` at `pa`.
    #[inline]
    pub fn write(&mut self, pa: u32, len: usize, val: u64, attr: MemAttr) {
        debug_assert!((1..=8).contains(&len));
        let off = (pa as usize) % LINE_BYTES;
        if off + len > LINE_BYTES {
            let first = LINE_BYTES - off;
            self.write(pa, first, val, attr);
            self.write(
                pa + first as u32,
                len - first,
                val >> (first * 8),
                attr,
            );
            return;
        }
        let la = pa / LINE_BYTES as u32;
        let t_l1_hit = self.timing.l1_hit;

        if !attr.l1 {
            let cost = self.word_cost(pa);
            self.advance(cost);
            self.backing_write(pa, len, val);
            return;
        }

        if attr.write_back {
            // Private memory: write-back, no write-allocate (P54C).
            if self.l1.write_if_present(la, off, len, val, false) {
                self.advance(t_l1_hit);
            } else if attr.l2 && self.l2.write_if_present(la, off, len, val, false) {
                self.perf.l2_hits += 1;
                let c = self.timing.l2_hit;
                self.advance(c);
            } else {
                let cost = self.word_cost(pa);
                self.advance(cost);
                self.backing_write(pa, len, val);
            }
            return;
        }

        // Write-through path: keep any cached copies in this core's caches
        // up to date (they stay clean), then push the store down.
        self.l1.write_if_present(la, off, len, val, true);
        if attr.l2 {
            self.l2.write_if_present(la, off, len, val, true);
        }
        if attr.mpbt {
            // Write-combine buffer: the store costs a cycle; the transfer
            // is charged when the combined line leaves the buffer.
            self.advance(t_l1_hit);
            self.perf.wcb_merges += 1;
            if let Some(fl) = self.wcb.merge(la, off, len, val) {
                self.apply_wcb_flush(fl);
            }
        } else {
            let cost = self.word_cost(pa);
            self.advance(cost);
            self.backing_write(pa, len, val);
        }
    }

    /// Execute `CL1INVMB`: invalidate all MPBT-tagged L1 lines.
    pub fn cl1invmb(&mut self) {
        self.perf.cl1invmb_count += 1;
        self.trace(EventKind::Cl1Invmb, 0, 0);
        self.l1.invalidate_mpbt();
        let c = self.timing.cl1invmb;
        self.advance(c);
    }

    /// Drain the write-combine buffer to memory.
    pub fn flush_wcb(&mut self) {
        if let Some(f) = self.wcb.take() {
            self.apply_wcb_flush(f);
        }
    }

    /// Software flush of both caches (the costly routine the paper avoids):
    /// every dirty line is written back, everything is invalidated.
    pub fn flush_all_caches(&mut self) {
        self.flush_wcb();
        for wb in self.l1.flush_all() {
            self.writeback_l1_victim(wb.line, wb.data);
        }
        for wb in self.l2.flush_all() {
            self.writeback_line(wb.line, wb.data);
        }
    }

    /// Does this core's L1 currently hold the line containing `pa`?
    /// (test/diagnostic helper, free)
    pub fn l1_contains(&self, pa: u32) -> bool {
        self.l1.contains(pa / LINE_BYTES as u32)
    }

    /// Does this core's L2 currently hold the line containing `pa`?
    pub fn l2_contains(&self, pa: u32) -> bool {
        self.l2.contains(pa / LINE_BYTES as u32)
    }

    // ------------------------------------------------------------------
    // Test-and-set registers
    // ------------------------------------------------------------------

    /// One attempt at the test-and-set register of `reg`'s tile.
    pub fn tas_try(&mut self, reg: CoreId) -> bool {
        if self.has_faults {
            // Injected mesh contention: stall before the attempt.
            let stall = self.mach.faults.tas_stall(reg.idx());
            if stall > 0 {
                self.advance(stall);
            }
        }
        let hops = self.topo.hops(self.id, reg);
        let cost = self.timing.tas_cost(hops);
        self.advance(cost);
        self.host_order_point(); // TAS registers are always globally visible
        match self.mach.tas.test_and_set(reg) {
            Some(release_stamp) => {
                self.perf.tas_acquires += 1;
                self.sync_to(release_stamp + cost);
                true
            }
            None => {
                self.perf.tas_spins += 1;
                false
            }
        }
    }

    /// Spin (in virtual time: block) until the register is acquired.
    pub fn tas_lock(&mut self, reg: CoreId) {
        loop {
            if self.tas_try(reg) {
                return;
            }
            let tas = Arc::clone(&self.mach);
            self.wait_until("test-and-set register", move || {
                (!tas.tas.is_locked(reg)).then_some(((), 0))
            });
        }
    }

    /// Release a test-and-set register.
    pub fn tas_unlock(&mut self, reg: CoreId) {
        let hops = self.topo.hops(self.id, reg);
        let cost = self.timing.tas_cost(hops);
        self.advance(cost);
        self.host_order_point();
        self.mach.tas.release(reg, self.clock);
    }

    // ------------------------------------------------------------------
    // Inter-processor interrupts
    // ------------------------------------------------------------------

    /// Ring the GIC doorbell of `dst`.
    ///
    /// Unsupported under the parallel executor: an IPI interrupts the
    /// receiver at an *asynchronous* point in its instruction stream, which
    /// a run-ahead receiver cannot honour without rollback. Returns
    /// [`HwError::ParUnsupported`] (before charging any cost or raising the
    /// doorbell) under `host_fast.parallel`; such runs must use
    /// polling-mode notification (see DESIGN.md §8 and
    /// [`crate::HostFastPaths::parallel`]).
    pub fn send_ipi(&mut self, dst: CoreId) -> Result<(), HwError> {
        if self.par {
            return Err(HwError::ParUnsupported {
                what: "send_ipi: an IPI lands at an asynchronous point of the \
                       receiver, which a run-ahead receiver cannot honour; \
                       use polling-mode notification (Notify::Poll)"
                    .to_string(),
            });
        }
        let t = &self.timing;
        let cost = t.ipi_raise + t.hop_cost(self.topo.hops(self.id, dst));
        self.advance(cost);
        self.perf.ipis_sent += 1;
        self.trace(EventKind::IpiSend, dst.idx() as u32, 0);
        if self.has_faults {
            match self.mach.faults.ipi_fault(self.id.idx(), dst.idx()) {
                crate::faults::IpiOutcome::Drop => return Ok(()),
                crate::faults::IpiOutcome::Delay(d) => {
                    self.mach.gic.raise(self.id, dst, self.clock + d);
                    return Ok(());
                }
                crate::faults::IpiOutcome::Deliver => {}
            }
        }
        self.mach.gic.raise(self.id, dst, self.clock);
        Ok(())
    }

    /// Cheap check for pending IPIs (one register read, free — the pin is
    /// wired to the core).
    #[inline]
    pub fn has_pending_ipi(&self) -> bool {
        self.mach.gic.has_pending(self.id)
    }

    /// Claim all pending IPIs. For each, the clock is advanced past the
    /// raise stamp plus wire delivery; the caller charges handler entry.
    pub fn claim_ipis(&mut self) -> Vec<(CoreId, u64)> {
        let list = self.mach.gic.claim(self.id);
        let t = self.timing.clone();
        for (src, stamp) in &list {
            self.perf.ipis_received += 1;
            let deliver = t.ipi_delivery(self.topo.hops(self.id, *src));
            self.sync_to(stamp + deliver);
            self.trace(EventKind::IpiRecv, src.idx() as u32, 0);
        }
        list
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SccConfig;
    use crate::machine::Machine;

    fn one_core<R: Send>(f: impl Fn(&mut CoreCtx) -> R + Send + Sync) -> R {
        let m = Machine::new(SccConfig::small()).unwrap();
        let mut res = m.run_on(&[CoreId::new(0)], f).unwrap();
        res.pop().unwrap().result
    }

    #[test]
    fn uncached_roundtrip_charges_word_cost() {
        let (v, cycles) = one_core(|c| {
            let pa = c.machine().map.shared_base();
            let t0 = c.now();
            c.write(pa, 4, 0xfeed_f00d, MemAttr::UNCACHED);
            let v = c.read(pa, 4, MemAttr::UNCACHED);
            (v, c.now() - t0)
        });
        assert_eq!(v, 0xfeed_f00d);
        assert!(cycles > 100, "two DDR3 accesses should cost >100 cy, got {cycles}");
    }

    #[test]
    fn l1_hit_after_miss() {
        one_core(|c| {
            let pa = c.machine().map.shared_base();
            c.read(pa, 4, MemAttr::SHARED_MPBT_WT); // miss, fills L1
            let t0 = c.now();
            c.read(pa, 4, MemAttr::SHARED_MPBT_WT); // hit
            assert_eq!(c.now() - t0, 1, "L1 hit must cost 1 cycle");
            assert_eq!(c.perf.l1_hits, 1);
            assert_eq!(c.perf.l1_misses, 1);
        });
    }

    #[test]
    fn mpbt_read_bypasses_l2() {
        one_core(|c| {
            let pa = c.machine().map.shared_base();
            c.read(pa, 4, MemAttr::SHARED_MPBT_WT);
            assert!(c.l1_contains(pa));
            assert!(!c.l2_contains(pa));
            // Read-only attr goes through L2.
            let pa2 = pa + 4096;
            c.read(pa2, 4, MemAttr::SHARED_RO_L2);
            assert!(c.l2_contains(pa2));
        });
    }

    #[test]
    fn wcb_combines_and_flushes() {
        one_core(|c| {
            let pa = c.machine().map.shared_base();
            c.write(pa, 4, 0x11, MemAttr::SHARED_MPBT_WT);
            c.write(pa + 4, 4, 0x22, MemAttr::SHARED_MPBT_WT);
            // Not yet in RAM...
            assert_eq!(c.machine().ram.read(pa, 4), 0);
            // ...but visible to this core's own loads.
            assert_eq!(c.read(pa, 4, MemAttr::SHARED_MPBT_WT), 0x11);
            c.flush_wcb();
            assert_eq!(c.machine().ram.read(pa, 4), 0x11);
            assert_eq!(c.machine().ram.read(pa + 4, 4), 0x22);
            assert_eq!(c.perf.wcb_flushes, 1, "two stores combined into one flush");
        });
    }

    #[test]
    fn non_mpbt_write_through_goes_straight_to_ram() {
        one_core(|c| {
            let pa = c.machine().map.shared_base();
            c.write(pa, 4, 0x77, MemAttr::SHARED_RO_L2);
            assert_eq!(c.machine().ram.read(pa, 4), 0x77);
        });
    }

    #[test]
    fn stale_read_until_cl1invmb() {
        // The essence of non-coherence: a core keeps seeing its cached copy
        // after memory changed, until it executes CL1INVMB.
        one_core(|c| {
            let pa = c.machine().map.shared_base();
            c.machine().ram.write(pa, 4, 0xAAAA);
            let _ = c.read(pa, 4, MemAttr::SHARED_MPBT_WT); // cache it
            // Memory changes behind the core's back (as another core would).
            c.machine().ram.write(pa, 4, 0xBBBB);
            assert_eq!(
                c.read(pa, 4, MemAttr::SHARED_MPBT_WT),
                0xAAAA,
                "must read the stale cached copy"
            );
            c.cl1invmb();
            assert_eq!(
                c.read(pa, 4, MemAttr::SHARED_MPBT_WT),
                0xBBBB,
                "after CL1INVMB the fresh value must be fetched"
            );
        });
    }

    #[test]
    fn l1_victim_updates_stale_l2_copy() {
        // Regression test: a line is read (filling L1 and L2), dirtied in
        // L1, evicted from L1 by conflicting reads, then re-read. The
        // re-read must see the dirty data, not the L2's stale copy.
        one_core(|c| {
            let pa = c.machine().map.private_base(c.id());
            let l1_bytes = c.machine().cfg.l1.size as u32;
            c.read(pa, 8, MemAttr::PRIVATE_WB); // L1 + L2 now hold the line
            c.write(pa, 8, 0xDEAD, MemAttr::PRIVATE_WB); // dirty in L1 only
            // Evict the line from the (much smaller) L1 with conflicting
            // reads mapping to the same set, while staying inside the L2.
            for way in 1..=4u32 {
                c.read(pa + way * l1_bytes, 8, MemAttr::PRIVATE_WB);
            }
            assert!(!c.l1_contains(pa), "line must have left the L1");
            assert_eq!(
                c.read(pa, 8, MemAttr::PRIVATE_WB),
                0xDEAD,
                "the dirty L1 victim must be visible after re-read"
            );
        });
    }

    #[test]
    fn private_write_back_stays_cached() {
        one_core(|c| {
            let pa = c.machine().map.private_base(c.id());
            c.read(pa, 4, MemAttr::PRIVATE_WB); // allocate line
            c.write(pa, 4, 0x99, MemAttr::PRIVATE_WB); // dirty in L1
            assert_eq!(c.machine().ram.read(pa, 4), 0, "write-back: RAM stale");
            c.flush_all_caches();
            assert_eq!(c.machine().ram.read(pa, 4), 0x99);
        });
    }

    #[test]
    fn unaligned_cross_line_access() {
        one_core(|c| {
            let pa = c.machine().map.shared_base() + 30; // crosses a 32B line
            c.write(pa, 4, 0x1234_5678, MemAttr::UNCACHED);
            assert_eq!(c.read(pa, 4, MemAttr::UNCACHED), 0x1234_5678);
        });
    }

    #[test]
    fn tas_lock_unlock() {
        one_core(|c| {
            let r = CoreId::new(7);
            assert!(c.tas_try(r));
            assert!(!c.tas_try(r));
            c.tas_unlock(r);
            assert!(c.tas_try(r));
        });
    }

    #[test]
    fn ipi_self_roundtrip() {
        one_core(|c| {
            let me = c.id();
            assert!(!c.has_pending_ipi());
            c.send_ipi(me).unwrap();
            assert!(c.has_pending_ipi());
            let got = c.claim_ipis();
            assert_eq!(got.len(), 1);
            assert_eq!(got[0].0, me);
        });
    }
}
