//! Machine configuration: memory sizes, cache geometry, clock frequencies.

use crate::exec::SchedPolicy;
use crate::faults::FaultPlan;
use crate::instr::TraceConfig;
use crate::timing::TimingParams;
use crate::topology::Topology;
use serde::{Deserialize, Serialize};

/// Cache line size of the P54C in bytes.
pub const LINE_BYTES: usize = 32;
/// Page size in bytes.
pub const PAGE_BYTES: usize = 4096;
/// Size of one core's message-passing buffer in bytes.
pub const MPB_BYTES: usize = 8192;

/// Bytes of each core's MPB reserved for the kernel's hierarchical
/// collective engine (DESIGN.md §12): sixteen 32-byte flag lines — up to
/// fifteen per-child arrival slots plus one release line — used by the
/// MPB-tree barrier. Carved out of the top of the buffer, directly below
/// the 1 KiB kernel scratchpad that occupies the final kibibyte.
pub const MPB_COLL_BYTES: usize = 512;

/// Offset of the collective region inside each core's MPB (the kernel
/// scratchpad keeps the top 1 KiB; the collective lines sit just below).
pub const MPB_COLL_OFF: usize = MPB_BYTES - 1024 - MPB_COLL_BYTES;

/// Which algorithm the kernel-level collectives (and RCCE's `coll`
/// module) run. Selected per [`SccConfig`]; the `SCC_COLL` environment
/// variable (`flat` or `tree`) overrides the default for a whole run.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CollMode {
    /// The original flat rendezvous: every `ram_barrier` participant
    /// serialises on one off-die RAM word behind a TAS register, and
    /// RCCE's bcast/reduce are the linear root-loops of the original
    /// library. O(n) off-die round trips per collective — kept as the
    /// reference oracle and for the flat-vs-tree benchmark curves.
    Flat,
    /// Topology-aware hierarchical collectives (DESIGN.md §12): barriers
    /// combine over a fan-in tree of on-die MPB flag lines derived from
    /// the mesh shape (cores within a tile, tile leaders within their
    /// memory-controller quadrant, quadrant leaders at the root — off-die
    /// RAM is touched by the root only), and RCCE's bcast/reduce walk the
    /// same tree in log depth. The default.
    Tree,
}

impl CollMode {
    /// Parse a `SCC_COLL` value.
    pub fn from_name(name: &str) -> Option<CollMode> {
        match name {
            "flat" => Some(CollMode::Flat),
            "tree" => Some(CollMode::Tree),
            _ => None,
        }
    }

    /// The mode named by the `SCC_COLL` environment variable, or `Tree`
    /// when unset. Panics on an invalid value — a misconfigured
    /// environment should fail loudly, not silently run the wrong
    /// algorithm.
    pub fn from_env_or_tree() -> CollMode {
        match std::env::var("SCC_COLL") {
            Ok(spec) => CollMode::from_name(&spec).unwrap_or_else(|| {
                panic!("SCC_COLL: expected \"flat\" or \"tree\", got {spec:?}")
            }),
            Err(_) => CollMode::Tree,
        }
    }
}

/// Geometry of one cache level.
#[derive(Copy, Clone, Debug, Serialize, Deserialize)]
pub struct CacheGeom {
    /// Total capacity in bytes.
    pub size: usize,
    /// Associativity (ways per set).
    pub assoc: usize,
}

impl CacheGeom {
    /// Number of sets for a 32-byte line.
    pub fn sets(&self) -> usize {
        self.size / LINE_BYTES / self.assoc
    }
}

/// Host-performance fast-path toggles.
///
/// These switch purely host-side shortcuts (software TLB, bulk translation
/// reuse, direct baton hand-off in the executor) that leave simulated
/// virtual time bit-identical — see DESIGN.md §6. They default to on; the
/// walk-path configuration exists for the shadow-mode equivalence tests
/// and the `bench_fastpath` harness.
#[derive(Copy, Clone, Debug, Serialize, Deserialize)]
pub struct HostFastPaths {
    /// Per-core software TLB in the kernel layer (skips the page-table
    /// walk on translation hits).
    pub tlb: bool,
    /// Bulk `vread_block`/`vwrite_block` translate once per page instead
    /// of once per element.
    pub bulk: bool,
    /// `yield_now` hands the baton directly to the min-clock runnable
    /// core when no core is blocked, skipping the decision round.
    pub fast_yield: bool,
    /// Parallel conservative execution: cores run concurrently on host
    /// threads, resolving most globally visible operations lock-free
    /// against per-object epoch/sequence counters and serialising through
    /// the locked election path only on actual cross-core conflict (see
    /// DESIGN.md §8). Off by default; the serial baton executor remains
    /// the reference oracle and the replayed schedule is bit-identical
    /// (shadow- and stress-tested).
    ///
    /// Constraints under this engine:
    /// - [`CoreCtx::send_ipi`](crate::core::CoreCtx::send_ipi) returns the
    ///   typed [`HwError::ParUnsupported`](crate::error::HwError) — an IPI
    ///   lands at an asynchronous point of a run-ahead receiver, which
    ///   cannot be honoured without rollback. Configure polling-mode
    ///   notification (`Notify::Poll` in the mailbox layer) instead.
    /// - Only the Baton schedule is replayed, and fault injection
    ///   requires the serial engine.
    /// - `SCC_PAR_HOST_THREADS=N` caps how many simulated cores run on
    ///   host threads concurrently (unset or 0: one thread per core).
    ///   The cap changes host scheduling only, never simulated results.
    pub parallel: bool,
}

impl Default for HostFastPaths {
    fn default() -> Self {
        HostFastPaths {
            tlb: true,
            bulk: true,
            fast_yield: true,
            parallel: false,
        }
    }
}

impl HostFastPaths {
    /// Every shortcut disabled: the reference walk path.
    pub fn walk_path() -> Self {
        HostFastPaths {
            tlb: false,
            bulk: false,
            fast_yield: false,
            parallel: false,
        }
    }

    /// The default fast paths plus the parallel conservative executor.
    pub fn parallel() -> Self {
        HostFastPaths {
            parallel: true,
            ..Self::default()
        }
    }
}

/// Full machine configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SccConfig {
    /// The machine shape: mesh dimensions, cores per tile, memory
    /// controllers. Defaults to the validated `scc48` paper preset (or the
    /// shape named by the `SCC_TOPOLOGY` environment variable); every
    /// geometric quantity — hop distances, MC assignment, routing costs —
    /// derives from this instance.
    pub topo: Topology,
    /// Number of cores that are populated (at most `topo.num_cores()`;
    /// smaller values build a cut-down die, handy in unit tests).
    pub ncores: usize,
    /// L1 data cache geometry (P54C: 8 KiB, 2-way; the other 8 KiB of the
    /// "16 KiB L1" is the instruction cache, which the model ignores).
    pub l1: CacheGeom,
    /// L2 cache geometry (256 KiB, 4-way on the SCC).
    pub l2: CacheGeom,
    /// Private off-die memory per core, in bytes.
    pub private_bytes_per_core: usize,
    /// Shared off-die memory, in bytes (split evenly over the topology's
    /// memory controllers).
    pub shared_bytes: usize,
    /// Cycle cost model.
    pub timing: TimingParams,
    /// Scheduling quantum of the deterministic executor, in core cycles: a
    /// core voluntarily yields after running at least this far ahead of the
    /// globally minimal clock.
    pub quantum_cycles: u64,
    /// Period of the per-core timer tick, in core cycles. The paper's
    /// mailbox system without IPIs relies on this tick (plus the idle loop)
    /// to scan its receive buffers.
    pub tick_cycles: u64,
    /// Host-side fast-path toggles (simulation-invisible).
    pub host_fast: HostFastPaths,
    /// Structured-event trace configuration (simulation-invisible; inert
    /// unless the `trace` cargo feature is compiled in).
    pub trace: TraceConfig,
    /// Election policy of the deterministic executor. `Baton` (the
    /// default) is bit-identical to the pre-policy executor; the other
    /// policies deliberately perturb the schedule for exploration and
    /// require the serial engine.
    pub sched: SchedPolicy,
    /// Election-budget livelock guard of the serial executor: abort the
    /// run with `HwError::ElectionBudget` once this many schedule
    /// decisions have been consumed. `None` (the default) is unbounded.
    /// Schedule explorers set a generous budget because non-baton
    /// policies can livelock spin-synchronized programs (a starved core
    /// never sets the flag a spinning lower-band core waits on), which no
    /// deadlock detector can observe.
    pub election_budget: Option<u64>,
    /// Fault-injection plan (see `scc_hw::faults`). Empty by default;
    /// a non-empty plan requires the serial engine and switches the
    /// mailbox into its resilient (retry/backoff) mode.
    pub faults: FaultPlan,
    /// Collective algorithm: hierarchical MPB-tree (`Tree`, the default)
    /// or the original flat off-die rendezvous (`Flat`). Defaults to the
    /// mode named by the `SCC_COLL` environment variable, `Tree` when
    /// unset.
    pub coll: CollMode,
}

impl Default for SccConfig {
    /// The `scc48` paper machine — unless the `SCC_TOPOLOGY` environment
    /// variable names another shape (preset or `WxHxC:M` spec), in which
    /// case that shape is fully populated instead.
    fn default() -> Self {
        Self::default_with(Topology::from_env_or_scc48())
    }
}

impl SccConfig {
    /// A default configuration for an explicit topology, fully populated.
    pub fn default_with(topo: Topology) -> Self {
        SccConfig {
            topo,
            ncores: topo.num_cores(),
            l1: CacheGeom {
                size: 8 * 1024,
                assoc: 2,
            },
            l2: CacheGeom {
                size: 256 * 1024,
                assoc: 4,
            },
            private_bytes_per_core: 2 * 1024 * 1024,
            shared_bytes: 64 * 1024 * 1024,
            timing: TimingParams::default(),
            quantum_cycles: 20_000,
            // 1 ms at 533 MHz, the classic 1000 Hz kernel tick.
            tick_cycles: 533_000,
            host_fast: HostFastPaths::default(),
            trace: TraceConfig::default(),
            sched: SchedPolicy::Baton,
            election_budget: None,
            faults: FaultPlan::default(),
            coll: CollMode::from_env_or_tree(),
        }
    }

    /// A configuration with a small memory footprint for unit tests.
    pub fn small() -> Self {
        SccConfig {
            private_bytes_per_core: 256 * 1024,
            shared_bytes: 4 * 1024 * 1024,
            ..Self::default()
        }
    }

    /// `small()` for an explicit topology.
    pub fn small_with(topo: Topology) -> Self {
        SccConfig {
            private_bytes_per_core: 256 * 1024,
            shared_bytes: 4 * 1024 * 1024,
            ..Self::default_with(topo)
        }
    }

    /// Validate internal consistency; called by `Machine::new`.
    pub fn validate(&self) -> Result<(), String> {
        let max = self.topo.num_cores();
        if self.ncores == 0 || self.ncores > max {
            return Err(format!(
                "ncores must be in 1..={max} on topology {}",
                self.topo
            ));
        }
        let mcs = self.topo.num_mcs();
        if !self.shared_bytes.is_multiple_of(mcs * PAGE_BYTES) {
            return Err(format!(
                "shared_bytes must be a multiple of {mcs} pages"
            ));
        }
        let ram = self.ncores as u64 * self.private_bytes_per_core as u64 + self.shared_bytes as u64;
        if ram >= crate::ram::MPB_PA_BASE as u64 {
            return Err(format!(
                "off-die RAM ({ram:#x} bytes) collides with the MPB window at {:#x}",
                crate::ram::MPB_PA_BASE
            ));
        }
        if !self.private_bytes_per_core.is_multiple_of(PAGE_BYTES) {
            return Err("private_bytes_per_core must be page-aligned".into());
        }
        for (name, g) in [("l1", &self.l1), ("l2", &self.l2)] {
            if g.size % (LINE_BYTES * g.assoc) != 0 || g.sets() == 0 || !g.sets().is_power_of_two()
            {
                return Err(format!("{name}: invalid cache geometry {g:?}"));
            }
        }
        if self.quantum_cycles == 0 || self.tick_cycles == 0 {
            return Err("quantum_cycles and tick_cycles must be nonzero".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        SccConfig::default().validate().unwrap();
        SccConfig::small().validate().unwrap();
    }

    #[test]
    fn preset_configs_are_valid() {
        for t in [
            Topology::scc48(),
            Topology::mesh8x8(),
            Topology::mesh16x16(),
            Topology::mesh16x32(),
        ] {
            SccConfig::default_with(t).validate().unwrap();
            SccConfig::small_with(t).validate().unwrap();
        }
    }

    #[test]
    fn coll_mode_names() {
        assert_eq!(CollMode::from_name("flat"), Some(CollMode::Flat));
        assert_eq!(CollMode::from_name("tree"), Some(CollMode::Tree));
        assert_eq!(CollMode::from_name("linear"), None);
        assert_eq!(CollMode::from_name(""), None);
    }

    #[test]
    fn coll_region_sits_below_the_scratchpad() {
        // 16 flag lines between the RCCE chunk region and the kernel
        // scratchpad KiB at the top of the 8 KiB buffer.
        assert_eq!(MPB_COLL_BYTES / LINE_BYTES, 16);
        assert_eq!(MPB_COLL_OFF, 6656);
        assert_eq!(MPB_COLL_OFF + MPB_COLL_BYTES + 1024, MPB_BYTES);
    }

    #[test]
    fn geometry_sets() {
        let g = CacheGeom {
            size: 8 * 1024,
            assoc: 2,
        };
        assert_eq!(g.sets(), 128);
    }

    #[test]
    fn rejects_bad_configs() {
        let c = SccConfig {
            ncores: 0,
            ..SccConfig::default()
        };
        assert!(c.validate().is_err());

        // More cores than the topology has.
        let c = SccConfig {
            ncores: 49,
            ..SccConfig::default()
        };
        assert!(c.validate().is_err());

        // The same count is fine on a bigger mesh.
        let c = SccConfig {
            ncores: 49,
            ..SccConfig::default_with(Topology::mesh8x8())
        };
        assert!(c.validate().is_ok());

        // RAM must stay below the MPB window.
        let c = SccConfig {
            private_bytes_per_core: 8 * 1024 * 1024,
            ..SccConfig::default_with(Topology::mesh16x32())
        };
        assert!(c.validate().is_err());

        let c = SccConfig {
            private_bytes_per_core: 1000,
            ..SccConfig::default()
        };
        assert!(c.validate().is_err());

        let mut c = SccConfig::default();
        c.l1.assoc = 3;
        assert!(c.validate().is_err());
    }
}
