//! # scc-hw — a functional + timing simulator of the Intel Single-chip Cloud Computer
//!
//! The Single-chip Cloud Computer (SCC) is a 48-core research processor built by
//! Intel Labs as a *concept vehicle* for the many-core era. Its distinguishing
//! property is that the cores are **memory-coupled but non-coherent**: all cores
//! can reach all memory, but no hardware keeps their caches in sync.
//!
//! This crate models exactly the architectural features the MetalSVM paper
//! (Lankes et al., PMAM 2012) exploits:
//!
//! * a 6×4 mesh of tiles with two P54C cores each and XY routing,
//! * four DDR3 memory controllers at the mesh edges,
//! * off-die memory split into per-core private regions and one shared region,
//! * an 8 KiB on-die *Message-Passing Buffer* (MPB) per core,
//! * per-core L1 and L2 caches **without any coherence between cores**,
//!   including the `MPBT` page-type tag, the `CL1INVMB` instruction and the
//!   one-line *write-combine buffer* (WCB),
//! * one test-and-set register per core,
//! * the Global Interrupt Controller (GIC) of sccKit 1.4 that lets a core
//!   raise a remote inter-processor interrupt carrying its source id.
//!
//! The machine *shape* — mesh dimensions, cores per tile, number of memory
//! controllers — is a runtime [`Topology`] value carried by [`SccConfig`];
//! the SCC above is the validated `scc48` preset and the default, while
//! larger meshes (e.g. `mesh8x8` with 128 cores, `mesh16x32` with 512)
//! exercise the same protocols at scale.
//!
//! ## Simulation model
//!
//! The simulator is *functional* — caches store real data, so a core genuinely
//! reads **stale** values after another core's write until it invalidates —
//! and *timing-approximate*: every memory operation charges calibrated cycle
//! costs to the issuing core's virtual clock ([`timing::TimingParams`]).
//!
//! Execution uses a deterministic conservative discrete-event scheme: each
//! simulated core is an OS thread, but only one runs at a time and the
//! scheduler always resumes the core with the smallest virtual clock
//! ([`exec`]). Cross-core events (flags, mails, IPIs) carry the sender's cycle
//! stamp; an observer advances its clock to `max(own, stamp + delivery)`
//! before acting, which keeps virtual time causal no matter how the host
//! schedules the threads.
//!
//! All shared state lives in atomics, so the model is data-race-free by
//! construction and the executor could be replaced by free-running threads on
//! a large host without touching any protocol code.

pub mod cache;
pub mod coll;
pub mod config;
pub mod core;
pub mod error;
pub mod exec;
pub mod faults;
pub mod gic;
pub mod instr;
pub mod machine;
pub mod metrics;
pub mod mpb;
pub mod par;
pub mod perf;
pub mod power;
pub mod ram;
pub mod tas;
pub mod timing;
pub mod topology;

pub use crate::core::{CoreCtx, MemAttr};
pub use coll::{CollLevel, CollTree};
pub use config::{CollMode, HostFastPaths, SccConfig};
pub use error::HwError;
pub use exec::SchedPolicy;
pub use faults::{Fault, FaultPlan};
pub use instr::{replay, tap, CoverageSink, EventKind, EventSink, TraceConfig, TraceEvent, TraceRing};
pub use machine::Machine;
pub use metrics::{MetricsSnapshot, MetricsSource};
pub use perf::PerfCounters;
pub use timing::{Cycles, TimingParams};
pub use topology::{CoreId, TileCoord, Topology, TopologyBuilder, TopologyError};
