//! Dot product over read-only vectors (§6.4 in action).
//!
//! Two shared vectors are initialised once, then collectively sealed with
//! `mprotect_readonly`: the MPBT tag is dropped and the L2 cache — which
//! MetalSVM otherwise sacrifices for shared data — serves the many re-reads
//! of the reduction. Partial sums flow back through a small lazy-release
//! scratch array.

use metalsvm::{Consistency, SvmArray, SvmCtx};
use scc_kernel::Kernel;

/// Compute the dot product of two deterministic vectors of length `len`,
/// distributed over all cores; `passes` controls how often each element is
/// re-read (to expose the L2 benefit). Returns the dot product on every
/// rank.
pub fn dotprod(k: &mut Kernel<'_>, svm: &mut SvmCtx, len: usize, passes: usize) -> f64 {
    dotprod_opt(k, svm, len, passes, true)
}

/// Like [`dotprod`], but the read-only sealing is optional — the A3
/// ablation compares the sealed (L2-served) and unsealed (MPBT
/// write-through) read paths.
pub fn dotprod_opt(
    k: &mut Kernel<'_>,
    svm: &mut SvmCtx,
    len: usize,
    passes: usize,
    seal: bool,
) -> f64 {
    let x_r = svm.alloc(k, (len * 8) as u32, Consistency::LazyRelease);
    let y_r = svm.alloc(k, (len * 8) as u32, Consistency::LazyRelease);
    let n = k.nranks();
    let parts_r = svm.alloc(k, (n * 8) as u32, Consistency::LazyRelease);
    let x = SvmArray::<f64>::new(x_r, len);
    let y = SvmArray::<f64>::new(y_r, len);
    let parts = SvmArray::<f64>::new(parts_r, n);

    // Block distribution; the initialiser is also the later reader
    // (first-touch discipline).
    let rank = k.rank();
    let lo = rank * len / n;
    let hi = (rank + 1) * len / n;
    let mine = hi - lo;
    let mut xs = vec![0.0f64; mine];
    let mut ys = vec![0.0f64; mine];
    for (off, v) in xs.iter_mut().enumerate() {
        *v = ((lo + off) % 97) as f64 * 0.5;
    }
    for (off, v) in ys.iter_mut().enumerate() {
        *v = ((lo + off) % 89) as f64 - 44.0;
    }
    x.write_row(k, lo, &xs);
    y.write_row(k, lo, &ys);
    svm.barrier(k);

    // Seal the inputs: stray writes now fault, L2 is re-enabled.
    if seal {
        svm.mprotect_readonly(k, x_r);
        svm.mprotect_readonly(k, y_r);
    }

    let mut acc = 0.0;
    for _ in 0..passes {
        x.read_row(k, lo, &mut xs);
        y.read_row(k, lo, &mut ys);
        let mut s = 0.0;
        for i in 0..mine {
            s += xs[i] * ys[i];
        }
        acc = s;
    }
    parts.set(k, rank, acc);
    svm.barrier(k);

    let mut dot = 0.0;
    for r in 0..n {
        dot += parts.get(k, r);
    }
    svm.barrier(k);
    dot
}

/// Host-side reference.
pub fn dotprod_reference(len: usize) -> f64 {
    (0..len)
        .map(|i| ((i % 97) as f64 * 0.5) * ((i % 89) as f64 - 44.0))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use metalsvm::{install as svm_install, SvmConfig};
    use scc_hw::SccConfig;
    use scc_kernel::Cluster;
    use scc_mailbox::{install as mbx_install, Notify};

    #[test]
    fn matches_reference_over_4_cores() {
        let len = 1024;
        let cl = Cluster::new(SccConfig::small()).unwrap();
        let res = cl
            .run(4, move |k| {
                let mbx = mbx_install(k, Notify::Ipi);
                let mut svm = svm_install(k, &mbx, SvmConfig::default());
                dotprod(k, &mut svm, len, 2)
            })
            .unwrap();
        // Partial sums are added in rank order on every core: exact match.
        let want: f64 = {
            let n = 4;
            (0..n)
                .map(|r| {
                    (r * len / n..(r + 1) * len / n)
                        .map(|i| ((i % 97) as f64 * 0.5) * ((i % 89) as f64 - 44.0))
                        .sum::<f64>()
                })
                .sum()
        };
        for r in &res {
            assert_eq!(r.result, want);
        }
        let _ = dotprod_reference(len);
    }

    #[test]
    fn second_pass_hits_l2() {
        let cl = Cluster::new(SccConfig::small()).unwrap();
        let res = cl
            .run(1, |k| {
                let mbx = mbx_install(k, Notify::Ipi);
                let mut svm = svm_install(k, &mbx, SvmConfig::default());
                let _ = dotprod(k, &mut svm, 4096, 3);
                k.hw.perf
            })
            .unwrap();
        assert!(
            res[0].result.l2_hits > 0,
            "read-only passes must be served by the L2: {:?}",
            res[0].result
        );
    }
}
