//! # scc-apps — application workloads for the MetalSVM reproduction
//!
//! * [`laplace`] — the paper's evaluation workload (§7.2.2): the
//!   two-dimensional Laplace problem (heat distribution on a square metal
//!   sheet) solved by Jacobi over-relaxation, in three variants:
//!   shared-memory on the SVM system under the **strong** and **lazy
//!   release** models, and the message-passing baseline on **iRCCE** with
//!   non-blocking halo exchange.
//! * [`histogram`] — lock-protected shared updates under lazy release
//!   consistency (exercises `SvmLock`).
//! * [`dotprod`] — read-mostly data sealed with `mprotect_readonly`
//!   (exercises §6.4 and the L2 path).
//! * [`matmul`] — dense matrix product with sealed input matrices.
//! * [`pipeline`] — a token pipeline over the raw mailbox system.
//! * [`fixtures`] — deliberately buggy kernels, one planted finding each,
//!   for the `svmcheck` consistency checker.

pub mod dotprod;
pub mod fixtures;
pub mod histogram;
pub mod laplace;
pub mod matmul;
pub mod pipeline;

pub use laplace::{
    laplace_ircce, laplace_reference, laplace_svm, LaplaceParams, LaplaceResult,
};
