//! Deliberately buggy fixture kernels for the `svmcheck` consistency
//! checker.
//!
//! Each fixture plants exactly one bug of a kind the checker's detectors
//! are specified to catch, and nothing else — run traced, each must
//! produce exactly one finding with the slug in its [`Fixture::expect`]
//! field (the checker test suite and `ci/check.sh` assert this). The
//! misuse helpers they call (`*_for_test`) live in the sync layer and are
//! not part of the paper's API.
//!
//! The fixtures are ordinary SPMD kernels and run fine without the `trace`
//! feature — they just leave no events behind, which is exactly the
//! checker's no-op story.

use metalsvm::{
    install as svm_install, Consistency, SvmArray, SvmConfig, SvmCtx,
};
use scc_hw::instr::{EventKind, TraceConfig};
use scc_hw::{CoreId, MemAttr, SccConfig, TraceRing};
use scc_kernel::{Cluster, Kernel};
use scc_mailbox::{install as mbx_install, Notify};
use std::sync::Arc;

/// One buggy kernel plus what the checker must say about it.
pub struct Fixture {
    /// Stable name (`svmcheck` trace files are named after it).
    pub name: &'static str,
    /// Cores the kernel runs on.
    pub cores: usize,
    /// Detector expected to fire: `race`, `protocol` or `lint`.
    pub detector: &'static str,
    /// The single finding slug the checker must report.
    pub expect: &'static str,
    pub run: fn(&mut Kernel<'_>, &mut SvmCtx),
}

/// All checker fixtures, in stable order.
pub const FIXTURES: &[Fixture] = &[
    Fixture {
        name: "stale_read",
        cores: 2,
        detector: "race",
        expect: "stale-read",
        run: stale_read,
    },
    Fixture {
        name: "forged_grant",
        cores: 2,
        detector: "protocol",
        expect: "grant-by-non-owner",
        run: forged_grant,
    },
    Fixture {
        name: "unreleased_lock",
        cores: 1,
        detector: "lint",
        expect: "unreleased-lock",
        run: unreleased_lock,
    },
    Fixture {
        name: "double_release",
        cores: 1,
        detector: "lint",
        expect: "release-not-held",
        run: double_release,
    },
    Fixture {
        name: "acquire_no_invalidate",
        cores: 1,
        detector: "lint",
        expect: "acquire-without-invalidate",
        run: acquire_no_invalidate,
    },
    Fixture {
        name: "release_no_flush",
        cores: 1,
        detector: "lint",
        expect: "release-without-flush",
        run: release_no_flush,
    },
];

/// Schedule-sensitive fixtures: planted bugs that the default baton
/// election order does *not* trigger. Each has exactly one racy window
/// placed so that the loser's side runs 50 000 cycles later in virtual
/// time — the lowest-clock-first baton serialises the windows and the run
/// is clean, while a single baton-deviating election (e.g. under
/// `SchedPolicy::SeededRandom`) interleaves them and the bug fires.
///
/// These are deliberately NOT in [`FIXTURES`]: that list's contract is
/// "one finding under the default schedule", asserted by the checker test
/// suite. This list's contract is the opposite (clean under baton) and is
/// asserted by the `svmexplore` test suite. `detector`/`expect` name the
/// outcome class `svmexplore` must reach: a checker slug for
/// `toctou_scratchpad`, the literal `deadlock` for `lost_wakeup_barrier`
/// (the executor, not the checker, reports deadlocks).
pub const SCHEDULE_FIXTURES: &[Fixture] = &[
    Fixture {
        name: "lost_wakeup_barrier",
        cores: 2,
        detector: "executor",
        expect: "deadlock",
        run: lost_wakeup_barrier,
    },
    Fixture {
        name: "toctou_scratchpad",
        cores: 2,
        detector: "protocol",
        expect: "double-first-touch",
        run: toctou_scratchpad,
    },
];

/// Look a fixture up by name (checker fixtures first, then the
/// schedule-sensitive set).
pub fn fixture(name: &str) -> Option<&'static Fixture> {
    FIXTURES
        .iter()
        .chain(SCHEDULE_FIXTURES.iter())
        .find(|f| f.name == name)
}

/// Run a fixture on a fresh small machine with tracing configured,
/// returning each core's event ring for the checker.
pub fn run_fixture_traced(f: &Fixture, trace: TraceConfig) -> Vec<(CoreId, TraceRing)> {
    let cfg = SccConfig {
        trace,
        ..SccConfig::small()
    };
    let cl = Cluster::new(cfg).expect("machine");
    let run = f.run;
    let res = cl
        .run(f.cores, move |k| {
            let mbx = mbx_install(k, Notify::Ipi);
            let mut svm = svm_install(k, &mbx, SvmConfig::default());
            run(k, &mut svm);
        })
        .expect("fixture must not deadlock");
    res.into_iter().map(|r| (r.core, r.trace)).collect()
}

/// Core 0 writes a lazy-release page; both cores pass a barrier *without*
/// the acquire-side invalidate; core 1 reads the page. No happens-before
/// edge connects write and read → one `stale-read` (race detector),
/// writer core 0, reader core 1.
fn stale_read(k: &mut Kernel<'_>, svm: &mut SvmCtx) {
    let r = svm.alloc(k, 4096, Consistency::LazyRelease);
    let a = SvmArray::<f64>::new(r, 8);
    if k.rank() == 0 {
        a.set(k, 0, 42.0);
    }
    svm.barrier_no_invalidate_for_test(k);
    if k.rank() == 1 {
        let _ = a.get(k, 0);
    }
}

/// Core 0 first-touches a strong page and owns it; core 1 then injects a
/// forged `OwnGrant` for that page without being its owner → one
/// `grant-by-non-owner` (protocol monitor), owner core 0, granter core 1.
fn forged_grant(k: &mut Kernel<'_>, svm: &mut SvmCtx) {
    let r = svm.alloc(k, 4096, Consistency::Strong);
    let a = SvmArray::<f64>::new(r, 8);
    if k.rank() == 0 {
        a.set(k, 0, 1.0);
    }
    svm.barrier(k);
    if k.rank() == 1 {
        // A grant event for a page this core does not own — the 5-step
        // protocol never produces this.
        k.hw.trace(EventKind::OwnGrant, r.first_page(), 0);
    }
    svm.barrier(k);
}

/// Acquire a lock and end the run without releasing it → one
/// `unreleased-lock` (linter).
fn unreleased_lock(k: &mut Kernel<'_>, svm: &mut SvmCtx) {
    let lock = svm.lock_new(k);
    lock.acquire(k).expect("first acquire is legal");
}

/// Acquire, release, release again. The second release is refused by the
/// sync layer and recorded as a typed `SyncErr` → one `release-not-held`
/// (linter).
fn double_release(k: &mut Kernel<'_>, svm: &mut SvmCtx) {
    let lock = svm.lock_new(k);
    lock.acquire(k).expect("first acquire is legal");
    lock.release(k).expect("first release is legal");
    lock.release(k)
        .expect_err("double release must be refused");
}

/// Take the lock without the acquire-side `CL1INVMB`, then release
/// properly → one `acquire-without-invalidate` (linter).
fn acquire_no_invalidate(k: &mut Kernel<'_>, svm: &mut SvmCtx) {
    let lock = svm.lock_new(k);
    lock.acquire_no_invalidate_for_test(k);
    lock.release(k).expect("release of a held lock is legal");
}

/// Take the lock properly, then release without the release-side WCB
/// flush → one `release-without-flush` (linter).
fn release_no_flush(k: &mut Kernel<'_>, svm: &mut SvmCtx) {
    let lock = svm.lock_new(k);
    lock.acquire(k).expect("acquire is legal");
    lock.release_no_flush_for_test(k);
}

/// A hand-rolled flag/wait "barrier" with the classic lost-wakeup bug.
///
/// Shared words (off-die, uncached): `flag` at +0, `waiting` at +4, `wake`
/// at +8, wake stamp at +16. Rank 0 checks `flag`, yields (the racy
/// window), and only *then* records itself as `waiting` before sleeping on
/// `wake`. Rank 1 advances 50 000 cycles, sets `flag`, and wakes rank 0
/// only if it already saw `waiting`.
///
/// Under the baton schedule rank 0's whole check-register-sleep sequence
/// runs before cycle 50 000, so rank 1 always observes `waiting` and the
/// run completes. If the scheduler elects rank 1 inside rank 0's window,
/// rank 1 reads `waiting == 0`, skips the wakeup, and rank 0 sleeps
/// forever → the executor reports a deadlock.
fn lost_wakeup_barrier(k: &mut Kernel<'_>, _svm: &mut SvmCtx) {
    let pa = k.shared.named_header("fixture.lostwake", 24, 64);
    if k.rank() == 0 {
        let flag = k.hw.read(pa, 4, MemAttr::UNCACHED);
        // The racy window: checked, not yet registered as waiting.
        k.hw.yield_now();
        if flag == 0 {
            k.hw.write(pa + 4, 4, 1, MemAttr::UNCACHED);
            let mach = Arc::clone(k.hw.machine());
            k.wait_event("lost-wakeup fixture", move || {
                if mach.ram.read(pa + 8, 4) != 0 {
                    Some(((), mach.ram.read(pa + 16, 8)))
                } else {
                    None
                }
            });
        }
    } else {
        k.hw.advance(50_000);
        k.hw.write(pa, 4, 1, MemAttr::UNCACHED);
        let waiting = k.hw.read(pa + 4, 4, MemAttr::UNCACHED);
        if waiting != 0 {
            k.hw.write(pa + 16, 8, k.hw.now(), MemAttr::UNCACHED);
            k.hw.write(pa + 8, 4, 1, MemAttr::UNCACHED);
        }
    }
}

/// Check-then-act race on the placement scratchpad: both ranks resolve the
/// same strong page through the TEST-ONLY unlocked first-touch path
/// (`SvmCtx::first_touch_unlocked_for_test`), rank 1 offset 50 000 cycles
/// into the future.
///
/// Under the baton schedule rank 0 finishes its check→allocate→publish
/// sequence long before rank 1 looks, so rank 1 hits the scratchpad entry
/// and allocates nothing. A baton-deviating election inside rank 0's
/// window lets rank 1 also see an empty entry, and both cores allocate a
/// frame for the page → `double-first-touch` (protocol monitor).
fn toctou_scratchpad(k: &mut Kernel<'_>, svm: &mut SvmCtx) {
    let r = svm.alloc(k, 4096, Consistency::Strong);
    if k.rank() == 1 {
        k.hw.advance(50_000);
    }
    let _ = svm.first_touch_unlocked_for_test(k, r.first_page());
}
