//! A software pipeline over the mailbox system: stage *i* transforms each
//! token and mails it to stage *i+1*. Exercises sustained point-to-point
//! mailbox traffic (send-side stalls, receive ordering) rather than the
//! SVM path.

use scc_hw::CoreId;
use scc_kernel::Kernel;
use scc_mailbox::{MailKind, Mailbox, Notify};

/// Drive `tokens` items through a pipeline over all participating cores
/// (rank 0 is the source, the last rank the sink). Returns, on the sink,
/// the folded checksum of everything that came through; other ranks
/// return 0.
pub fn pipeline(k: &mut Kernel<'_>, mbx: &Mailbox, tokens: u32) -> u64 {
    let rank = k.rank();
    let n = k.nranks();
    assert!(n >= 2, "a pipeline needs at least two stages");
    let next = (rank + 1 < n).then(|| k.participants()[rank + 1]);
    let prev = (rank > 0).then(|| k.participants()[rank - 1]);

    let stage = |v: u64, r: usize| v.wrapping_mul(2862933555777941757).wrapping_add(r as u64);

    if rank == 0 {
        for t in 0..tokens {
            let v = stage(u64::from(t), 0);
            mbx.send(k, next.unwrap(), MailKind::USER, &v.to_le_bytes());
            // Source-side work per token.
            k.hw.advance(500);
        }
        0
    } else {
        let mut acc = 0u64;
        for _ in 0..tokens {
            let m = mbx.recv_from(k, prev.unwrap());
            let v = u64::from_le_bytes(m.data()[0..8].try_into().unwrap());
            let v = stage(v, rank);
            k.hw.advance(800); // per-stage compute
            match next {
                Some(nx) => mbx.send(k, nx, MailKind::USER, &v.to_le_bytes()),
                None => acc = acc.wrapping_add(v),
            }
        }
        acc
    }
}

/// Host-side reference for the sink checksum.
pub fn pipeline_reference(tokens: u32, stages: usize) -> u64 {
    let stage = |v: u64, r: usize| v.wrapping_mul(2862933555777941757).wrapping_add(r as u64);
    let mut acc = 0u64;
    for t in 0..tokens {
        let mut v = stage(u64::from(t), 0);
        for r in 1..stages {
            v = stage(v, r);
        }
        acc = acc.wrapping_add(v);
    }
    acc
}

/// Convenience: which notification strategy suits a pipeline is measured
/// by the `ablation_notify` harness; both work.
pub fn default_notify() -> Notify {
    Notify::Ipi
}

/// Placement helper used by examples: the pipeline's stage cores.
pub fn stage_cores(n: usize) -> Vec<CoreId> {
    (0..n).map(CoreId::new).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use scc_hw::SccConfig;
    use scc_kernel::Cluster;
    use scc_mailbox::install;

    #[test]
    fn pipeline_delivers_all_tokens_in_order() {
        for stages in [2usize, 3, 5] {
            let cl = Cluster::new(SccConfig::small()).unwrap();
            let res = cl
                .run(stages, move |k| {
                    let mbx = install(k, Notify::Ipi);
                    pipeline(k, &mbx, 40)
                })
                .unwrap();
            let sink = res.last().unwrap().result;
            assert_eq!(
                sink,
                pipeline_reference(40, stages),
                "{stages}-stage pipeline checksum"
            );
        }
    }

    #[test]
    fn pipeline_works_with_polling_too() {
        let cl = Cluster::new(SccConfig::small()).unwrap();
        let res = cl
            .run(3, |k| {
                let mbx = install(k, Notify::Poll);
                pipeline(k, &mbx, 25)
            })
            .unwrap();
        assert_eq!(res[2].result, pipeline_reference(25, 3));
    }

    #[test]
    fn backpressure_stalls_fast_source() {
        // A slow sink forces the single-slot mailboxes to exert
        // backpressure all the way to the source.
        let cl = Cluster::new(SccConfig::small()).unwrap();
        let res = cl
            .run(2, |k| {
                let mbx = install(k, Notify::Ipi);
                if k.rank() == 1 {
                    // Make the sink very slow.
                    k.hw.advance(1);
                }
                let r = pipeline(k, &mbx, 30);
                (r, mbx.stats().snapshot().3) // send_stalls
            })
            .unwrap();
        assert_eq!(res[1].result.0, pipeline_reference(30, 2));
        assert!(
            res[0].result.1 > 0,
            "the source must have hit a full mailbox at least once"
        );
    }
}
