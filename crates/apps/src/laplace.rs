//! The two-dimensional Laplace problem (§7.2.2).
//!
//! Heat distribution on a square metal sheet with fixed edge temperatures,
//! solved with Jacobi over-relaxation:
//!
//! ```text
//! u[i][j]' = 1/4 (u[i-1][j] + u[i+1][j] + u[i][j-1] + u[i][j+1])
//! ```
//!
//! The simulation data — `width × height` doubles in two arrays `old` and
//! `new` whose roles swap after every iteration — is distributed statically
//! by blocks of rows; a barrier after each iteration keeps the cores
//! synchronous. The paper's configuration is 1024 × 512 over 5000
//! iterations; the harness defaults to fewer iterations because every
//! memory access is simulated functionally (see `EXPERIMENTS.md`).

use metalsvm::{Consistency, SvmArray, SvmCtx};
use rcce::{irecv, isend, wait_all, RcceComm};
use scc_kernel::Kernel;

/// Problem parameters.
#[derive(Copy, Clone, Debug)]
pub struct LaplaceParams {
    pub width: usize,
    pub height: usize,
    pub iters: usize,
}

impl LaplaceParams {
    /// The paper's grid with a configurable iteration count.
    pub fn paper(iters: usize) -> Self {
        LaplaceParams {
            width: 1024,
            height: 512,
            iters,
        }
    }

    /// A small grid for tests.
    pub fn tiny() -> Self {
        LaplaceParams {
            width: 32,
            height: 16,
            iters: 8,
        }
    }
}

/// Doubles of padding appended to each row in the simulated-memory
/// layouts. The P54C's 8 KiB 2-way L1 aliases addresses 8 KiB apart; an
/// unpadded 1024-double row makes the three input-row streams of the
/// Jacobi stencil collide in a single set and thrash. Padding by one cache
/// line (standard HPC practice) removes the pathology from *both*
/// variants, so the comparison is decided by the effects the paper
/// describes (WCB write combining vs L2 read reuse), not by an aliasing
/// artefact.
pub const ROW_PAD: usize = 4;

/// Outcome of one run on one core.
#[derive(Copy, Clone, Debug)]
pub struct LaplaceResult {
    /// Row-major sum over the final grid, computed by rank 0 (0.0 on other
    /// ranks). Identical across all variants for equal parameters.
    pub checksum: f64,
    /// This core's simulated cycles spent between the start barrier and
    /// the end of the last iteration.
    pub cycles: u64,
}

/// Boundary condition: the top edge is hot, the rest cold.
fn boundary(i: usize, _j: usize, height: usize) -> f64 {
    let _ = height;
    if i == 0 {
        100.0
    } else {
        0.0
    }
}

/// Rows [lo, hi) owned by `rank` of `n` under block distribution.
fn my_rows(height: usize, rank: usize, n: usize) -> (usize, usize) {
    let per = height / n;
    let rem = height % n;
    let lo = rank * per + rank.min(rem);
    let hi = lo + per + usize::from(rank < rem);
    (lo, hi)
}

/// Host-side sequential reference (no simulation), for correctness checks.
pub fn laplace_reference(p: LaplaceParams) -> f64 {
    let (w, h) = (p.width, p.height);
    let mut old = vec![0.0f64; w * h];
    let mut new = vec![0.0f64; w * h];
    for i in 0..h {
        for j in 0..w {
            old[i * w + j] = boundary(i, j, h);
        }
    }
    new.copy_from_slice(&old);
    for _ in 0..p.iters {
        for i in 1..h - 1 {
            for j in 1..w - 1 {
                new[i * w + j] = 0.25
                    * (old[(i - 1) * w + j]
                        + old[(i + 1) * w + j]
                        + old[i * w + j - 1]
                        + old[i * w + j + 1]);
            }
        }
        std::mem::swap(&mut old, &mut new);
    }
    old.iter().sum()
}

// ----------------------------------------------------------------------
// Shared-memory variant on the SVM system
// ----------------------------------------------------------------------

/// Run the shared-memory Laplace solver on the SVM system under the given
/// consistency model. Collective over all participants of the cluster run.
pub fn laplace_svm(
    k: &mut Kernel<'_>,
    svm: &mut SvmCtx,
    model: Consistency,
    p: LaplaceParams,
) -> LaplaceResult {
    let (w, h) = (p.width, p.height);
    let stride = w + ROW_PAD;
    let cells = (stride * h) as u32;
    let a = svm.alloc(k, cells * 8, model);
    let b = svm.alloc(k, cells * 8, model);
    let bufs = [
        SvmArray::<f64>::new(a, stride * h),
        SvmArray::<f64>::new(b, stride * h),
    ];

    let rank = k.rank();
    let n = k.nranks();
    let (lo, hi) = my_rows(h, rank, n);

    // First-touch initialisation with the same distribution as the
    // computation (the NUMA discipline §6.3 asks of applications). The
    // boundary value is constant along a row, so each row is one fill.
    for grid in &bufs {
        for i in lo..hi {
            grid.fill(k, i * stride, w, boundary(i, 0, h));
        }
    }
    svm.barrier(k);

    // Row buffer for the bulk-streamed checksum pass below.
    let mut mid = vec![0.0f64; w];

    // The timed stencil stays element-wise: the four-read Jacobi access
    // pattern is what Figure 9 measures (WCB write combining vs L2 read
    // reuse), and restructuring it would change the cache behaviour of the
    // variants asymmetrically. The host-time win inside this loop comes
    // from the kernel's simulated TLB, which memoizes the translation of
    // the streamed rows.
    let t0 = k.hw.now();
    for it in 0..p.iters {
        let old = &bufs[it % 2];
        let new = &bufs[(it + 1) % 2];
        for i in lo.max(1)..hi.min(h - 1) {
            for j in 1..w - 1 {
                let v = 0.25
                    * (old.get(k, (i - 1) * stride + j)
                        + old.get(k, (i + 1) * stride + j)
                        + old.get(k, i * stride + j - 1)
                        + old.get(k, i * stride + j + 1));
                new.set(k, i * stride + j, v);
            }
        }
        // The barrier carries the release/acquire cache actions the lazy
        // model needs; under the strong model they are implicit anyway.
        svm.barrier(k);
    }
    let cycles = k.hw.now() - t0;

    let final_grid = &bufs[p.iters % 2];
    let mut checksum = 0.0;
    if rank == 0 {
        for i in 0..h {
            final_grid.read_row(k, i * stride, &mut mid);
            for &v in &mid[..w] {
                checksum += v;
            }
        }
    }
    svm.barrier(k);
    LaplaceResult { checksum, cycles }
}

// ----------------------------------------------------------------------
// Message-passing baseline on iRCCE
// ----------------------------------------------------------------------

/// Run the message-passing Laplace solver: private row blocks with halo
/// rows, exchanged after every iteration through non-blocking iRCCE
/// transfers (the paper's baseline under SCC Linux).
pub fn laplace_ircce(
    k: &mut Kernel<'_>,
    comm: &mut RcceComm,
    p: LaplaceParams,
) -> LaplaceResult {
    let (w, h) = (p.width, p.height);
    let rank = comm.ue();
    let n = comm.num_ues();
    let (lo, hi) = my_rows(h, rank, n);
    let mine = hi - lo;
    let stride = w + ROW_PAD;
    let row_bytes = (w * 8) as u32;

    // Private buffers: my rows plus one halo row above and below, twice
    // (old/new). Layout: row r of the block lives at index (r + 1).
    let block_rows = mine + 2;
    let buf_bytes = (block_rows * stride * 8) as u32;
    let va_a = k.kalloc_pages(buf_bytes.div_ceil(4096));
    let va_b = k.kalloc_pages(buf_bytes.div_ceil(4096));
    let bufs = [va_a, va_b];
    let idx = |va: u32, r: usize, j: usize| va + ((r * stride + j) * 8) as u32;

    for va in bufs {
        for r in 0..block_rows {
            // Global row of local row r; halos initialised like their
            // sources (and refreshed by the first exchange anyway). The
            // value is constant along the row.
            let gi = (lo + r).wrapping_sub(1);
            let v = if (r == 0 && lo == 0) || (r == block_rows - 1 && hi == h) {
                0.0
            } else {
                boundary(gi, 0, h)
            };
            k.vwrite_block(idx(va, r, 0), 8, w, |_| v.to_bits());
        }
    }
    comm.barrier(k);

    // Row buffer for the bulk-streamed checksum gather below.
    let mut mid = vec![0.0f64; w];

    let t0 = k.hw.now();
    for it in 0..p.iters {
        let old = bufs[it % 2];
        let new = bufs[(it + 1) % 2];

        // Exchange halo rows of `old` with both neighbours, non-blocking
        // in both directions at once.
        let mut sends = Vec::new();
        let mut recvs = Vec::new();
        if rank > 0 {
            sends.push(isend(comm, rank - 1, idx(old, 1, 0), row_bytes));
            recvs.push(irecv(comm, rank - 1, idx(old, 0, 0), row_bytes));
        }
        if rank + 1 < n {
            sends.push(isend(comm, rank + 1, idx(old, mine, 0), row_bytes));
            recvs.push(irecv(comm, rank + 1, idx(old, mine + 1, 0), row_bytes));
        }
        wait_all(k, comm, &mut sends, &mut recvs);

        for r in 1..=mine {
            let gi = lo + r - 1;
            if gi == 0 || gi == h - 1 {
                continue; // fixed boundary rows
            }
            for j in 1..w - 1 {
                let v = 0.25
                    * (k.vread_f64(idx(old, r - 1, j))
                        + k.vread_f64(idx(old, r + 1, j))
                        + k.vread_f64(idx(old, r, j - 1))
                        + k.vread_f64(idx(old, r, j + 1)));
                k.vwrite_f64(idx(new, r, j), v);
            }
        }
        comm.barrier(k);
    }
    let cycles = k.hw.now() - t0;

    // Checksum: rank 0 gathers everyone's block rows in order.
    let final_buf = bufs[p.iters % 2];
    let mut checksum = 0.0;
    if rank == 0 {
        for i in lo..hi {
            k.vread_block(idx(final_buf, i - lo + 1, 0), 8, w, |j, v| {
                mid[j] = f64::from_bits(v)
            });
            for &v in &mid[..w] {
                checksum += v;
            }
        }
        let gather = k.kalloc_pages(row_bytes.div_ceil(4096).max(1));
        for ue in 1..n {
            let (olo, ohi) = my_rows(h, ue, n);
            for _ in olo..ohi {
                rcce::recv(k, comm, ue, gather, row_bytes);
                k.vread_block(gather, 8, w, |j, v| mid[j] = f64::from_bits(v));
                for &v in &mid[..w] {
                    checksum += v;
                }
            }
        }
    } else {
        for r in 1..=mine {
            rcce::send(k, comm, 0, idx(final_buf, r, 0), row_bytes);
        }
    }
    comm.barrier(k);
    LaplaceResult { checksum, cycles }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metalsvm::{install as svm_install, SvmConfig};
    use scc_hw::SccConfig;
    use scc_kernel::Cluster;
    use scc_mailbox::{install as mbx_install, Notify};

    fn run_svm(n: usize, model: Consistency, p: LaplaceParams) -> f64 {
        let cl = Cluster::new(SccConfig::small()).unwrap();
        let res = cl
            .run(n, move |k| {
                let mbx = mbx_install(k, Notify::Ipi);
                let mut svm = svm_install(k, &mbx, SvmConfig::default());
                laplace_svm(k, &mut svm, model, p)
            })
            .unwrap();
        res[0].result.checksum
    }

    fn run_mp(n: usize, p: LaplaceParams) -> f64 {
        let cl = Cluster::new(SccConfig::small()).unwrap();
        let res = cl
            .run(n, move |k| {
                let mut comm = RcceComm::init(k);
                laplace_ircce(k, &mut comm, p)
            })
            .unwrap();
        res[0].result.checksum
    }

    #[test]
    fn reference_converges_towards_hot_edge() {
        let p = LaplaceParams {
            width: 16,
            height: 16,
            iters: 200,
        };
        let sum = laplace_reference(p);
        // The interior heats up: sum must exceed the initial hot-row-only
        // total (16 cells x 100) after diffusion... the hot row stays, and
        // interior cells become positive.
        assert!(sum > 1600.0, "diffusion must spread heat, sum = {sum}");
    }

    #[test]
    fn svm_lazy_matches_reference_1_core() {
        let p = LaplaceParams::tiny();
        assert_eq!(run_svm(1, Consistency::LazyRelease, p), laplace_reference(p));
    }

    #[test]
    fn svm_lazy_matches_reference_3_cores() {
        let p = LaplaceParams::tiny();
        assert_eq!(run_svm(3, Consistency::LazyRelease, p), laplace_reference(p));
    }

    #[test]
    fn svm_strong_matches_reference_2_cores() {
        let p = LaplaceParams::tiny();
        assert_eq!(run_svm(2, Consistency::Strong, p), laplace_reference(p));
    }

    #[test]
    fn ircce_matches_reference_1_core() {
        let p = LaplaceParams::tiny();
        assert_eq!(run_mp(1, p), laplace_reference(p));
    }

    #[test]
    fn ircce_matches_reference_4_cores() {
        let p = LaplaceParams::tiny();
        assert_eq!(run_mp(4, p), laplace_reference(p));
    }

    #[test]
    fn row_distribution_covers_exactly() {
        for h in [16, 17, 48, 512] {
            for n in [1, 2, 3, 7, 48] {
                let mut covered = 0;
                let mut last_hi = 0;
                for r in 0..n {
                    let (lo, hi) = my_rows(h, r, n);
                    assert_eq!(lo, last_hi, "blocks must be contiguous");
                    covered += hi - lo;
                    last_hi = hi;
                }
                assert_eq!(covered, h);
                assert_eq!(last_hi, h);
            }
        }
    }
}
