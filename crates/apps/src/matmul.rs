//! Dense matrix multiplication with read-only input matrices (§6.4).
//!
//! `C = A × B` with `A` and `B` initialised once and then collectively
//! sealed read-only: stray writes become hard faults and — because the
//! seal clears the MPBT tag — the inputs are served by the L2 cache, which
//! MetalSVM otherwise sacrifices for shared data. The output `C` stays a
//! lazy-release region written through the WCB. Row-block distribution,
//! first-touch placement by the later reader.

use metalsvm::{Consistency, SvmArray, SvmCtx};
use scc_kernel::Kernel;

/// Deterministic input entries.
fn a_at(i: usize, j: usize) -> f64 {
    ((i * 31 + j * 7) % 23) as f64 - 11.0
}

fn b_at(i: usize, j: usize) -> f64 {
    ((i * 13 + j * 3) % 19) as f64 * 0.25
}

/// Multiply two `n × n` matrices on all participating cores; returns the
/// trace of `C` (identical on every rank).
pub fn matmul(k: &mut Kernel<'_>, svm: &mut SvmCtx, n: usize) -> f64 {
    let bytes = (n * n * 8) as u32;
    let a_r = svm.alloc(k, bytes, Consistency::LazyRelease);
    let b_r = svm.alloc(k, bytes, Consistency::LazyRelease);
    let c_r = svm.alloc(k, bytes, Consistency::LazyRelease);
    let trace_r = svm.alloc(k, (k.nranks() * 8) as u32, Consistency::LazyRelease);
    let a = SvmArray::<f64>::new(a_r, n * n);
    let b = SvmArray::<f64>::new(b_r, n * n);
    let c = SvmArray::<f64>::new(c_r, n * n);
    let partial = SvmArray::<f64>::new(trace_r, k.nranks());

    let rank = k.rank();
    let ranks = k.nranks();
    let lo = rank * n / ranks;
    let hi = (rank + 1) * n / ranks;

    // A is needed row-wise by its block owner; B column-wise by everyone.
    // First-touch A by row blocks; stripe B the same way (it will be
    // re-read everywhere through the L2 after sealing). Rows are written
    // with one bulk store each.
    let mut row = vec![0.0f64; n];
    for i in lo..hi {
        for (j, v) in row.iter_mut().enumerate() {
            *v = a_at(i, j);
        }
        a.write_row(k, i * n, &row);
        for (j, v) in row.iter_mut().enumerate() {
            *v = b_at(i, j);
        }
        b.write_row(k, i * n, &row);
    }
    svm.barrier(k);
    svm.mprotect_readonly(k, a_r);
    svm.mprotect_readonly(k, b_r);

    // Stream each A row in once per output row; B is accessed column-wise,
    // which a row-bulk accessor cannot help with, so it stays element-wise
    // (and is served by the L2 after the seal). The C row is buffered and
    // written back in one bulk store.
    let mut a_row = vec![0.0f64; n];
    let mut c_row = vec![0.0f64; n];
    for i in lo..hi {
        a.read_row(k, i * n, &mut a_row);
        for (j, cj) in c_row.iter_mut().enumerate() {
            let mut s = 0.0;
            for (l, &al) in a_row.iter().enumerate() {
                s += al * b.get(k, l * n + j);
            }
            *cj = s;
        }
        c.write_row(k, i * n, &c_row);
    }
    // Trace contribution of the owned rows.
    let mut t = 0.0;
    for i in lo..hi {
        t += c.get(k, i * n + i);
    }
    partial.set(k, rank, t);
    svm.barrier(k);

    let mut trace = 0.0;
    for r in 0..ranks {
        trace += partial.get(k, r);
    }
    svm.barrier(k);
    trace
}

/// Host-side reference trace.
pub fn matmul_reference_trace(n: usize) -> f64 {
    let mut trace = 0.0;
    for i in 0..n {
        let mut s = 0.0;
        for l in 0..n {
            s += a_at(i, l) * b_at(l, i);
        }
        trace += s;
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use metalsvm::{install as svm_install, SvmConfig};
    use scc_hw::SccConfig;
    use scc_kernel::Cluster;
    use scc_mailbox::{install as mbx_install, Notify};

    #[test]
    fn trace_matches_reference() {
        let n = 24;
        let cl = Cluster::new(SccConfig::small()).unwrap();
        let res = cl
            .run(3, move |k| {
                let mbx = mbx_install(k, Notify::Ipi);
                let mut svm = svm_install(k, &mbx, SvmConfig::default());
                matmul(k, &mut svm, n)
            })
            .unwrap();
        // Partial traces are summed in rank order on every core.
        for r in &res {
            assert!((r.result - matmul_reference_trace(n)).abs() < 1e-9);
        }
    }

    #[test]
    fn inputs_served_by_l2_after_seal() {
        let cl = Cluster::new(SccConfig::small()).unwrap();
        // n = 48: B is 18 KiB, larger than the 8 KiB L1, so its column
        // streams must be served by the (seal-re-enabled) L2.
        let res = cl
            .run(2, |k| {
                let mbx = mbx_install(k, Notify::Ipi);
                let mut svm = svm_install(k, &mbx, SvmConfig::default());
                let _ = matmul(k, &mut svm, 48);
                k.hw.perf.l2_hits
            })
            .unwrap();
        assert!(
            res[0].result > 1000,
            "B is streamed repeatedly; the seal must let the L2 serve it \
             (got {} hits)",
            res[0].result
        );
    }
}
