//! Histogram: lock-protected shared updates under lazy release consistency.
//!
//! Every core draws a private block of samples from a seeded RNG and folds
//! them into a shared histogram. Bin updates happen in batches inside an
//! `SvmLock` critical section — the acquire/release hooks of the lazy
//! model are what make the read-modify-write of the shared bins safe on
//! non-coherent cores.

use metalsvm::{Consistency, SvmArray, SvmCtx};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scc_kernel::Kernel;

/// Parameters of the histogram workload.
#[derive(Copy, Clone, Debug)]
pub struct HistParams {
    pub bins: usize,
    pub samples_per_core: usize,
    pub seed: u64,
}

impl HistParams {
    pub fn tiny() -> Self {
        HistParams {
            bins: 16,
            samples_per_core: 200,
            seed: 42,
        }
    }
}

/// Run the workload; returns the final bin counts (rank 0) and the total
/// number of samples folded in (all ranks).
pub fn histogram(
    k: &mut Kernel<'_>,
    svm: &mut SvmCtx,
    p: HistParams,
) -> (Vec<u64>, u64) {
    let region = svm.alloc(k, (p.bins * 8) as u32, Consistency::LazyRelease);
    let bins = SvmArray::<u64>::new(region, p.bins);
    let lock = svm.lock_new(k);

    if k.rank() == 0 {
        bins.fill(k, 0, p.bins, 0);
        k.hw.flush_wcb();
    }
    svm.barrier(k);

    // Per-core deterministic sample stream.
    let mut rng = StdRng::seed_from_u64(p.seed ^ (k.rank() as u64) << 32);
    let mut local = vec![0u64; p.bins];
    for _ in 0..p.samples_per_core {
        let v: f64 = rng.gen();
        let b = ((v * p.bins as f64) as usize).min(p.bins - 1);
        local[b] += 1;
        // Simulated compute for drawing/classifying a sample.
        k.hw.advance(30);
    }

    // Fold the private histogram into the shared one under the lock: one
    // bulk read of the bins, add, one bulk write-back.
    lock.with(k, |k| {
        let mut cur = vec![0u64; p.bins];
        bins.read_row(k, 0, &mut cur);
        for b in 0..p.bins {
            cur[b] += local[b];
        }
        bins.write_row(k, 0, &cur);
    });
    svm.barrier(k);

    let mut readback = vec![0u64; p.bins];
    bins.read_row(k, 0, &mut readback);
    let total = readback.iter().sum();
    let out = if k.rank() == 0 { readback } else { Vec::new() };
    svm.barrier(k);
    (out, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use metalsvm::{install as svm_install, SvmConfig};
    use scc_hw::SccConfig;
    use scc_kernel::Cluster;
    use scc_mailbox::{install as mbx_install, Notify};

    #[test]
    fn all_samples_accounted_for() {
        let n = 4;
        let p = HistParams::tiny();
        let cl = Cluster::new(SccConfig::small()).unwrap();
        let res = cl
            .run(n, move |k| {
                let mbx = mbx_install(k, Notify::Ipi);
                let mut svm = svm_install(k, &mbx, SvmConfig::default());
                histogram(k, &mut svm, p)
            })
            .unwrap();
        for r in &res {
            assert_eq!(
                r.result.1,
                (n * p.samples_per_core) as u64,
                "every sample must be counted exactly once"
            );
        }
        let bins = &res[0].result.0;
        assert_eq!(bins.iter().sum::<u64>(), (n * p.samples_per_core) as u64);
        assert!(bins.iter().filter(|&&b| b > 0).count() > p.bins / 2);
    }
}
