//! TLB shootdown correctness: every PTE mutation must drop the matching
//! simulated-TLB entry, so a core can never read (or write) through a
//! stale cached translation — neither after a strong-model ownership
//! migration nor after a region is sealed read-only.

use metalsvm::{install, Consistency, SvmArray, SvmConfig};
use scc_hw::{PerfCounters, SccConfig};
use scc_kernel::{Cluster, Kernel};
use scc_mailbox::{install as mbx_install, Notify};

/// Boot the full stack on `n` cores and run `body`; returns the per-core
/// results together with the merged hardware perf counters.
fn with_svm_perf<R, F>(n: usize, body: F) -> (Vec<R>, PerfCounters)
where
    R: Send,
    F: Fn(&mut Kernel<'_>, &mut metalsvm::SvmCtx) -> R + Send + Sync,
{
    let cl = Cluster::new(SccConfig::small()).unwrap();
    let res = cl
        .run(n, |k| {
            let mbx = mbx_install(k, Notify::Ipi);
            let mut svm = install(k, &mbx, SvmConfig::default());
            body(k, &mut svm)
        })
        .unwrap();
    let mut perf = PerfCounters::default();
    for r in &res {
        perf.merge(&r.perf);
    }
    (res.into_iter().map(|r| r.result).collect(), perf)
}

#[test]
fn strong_migration_invalidates_the_old_owners_tlb() {
    // Core 0 first-touches the page: its TLB caches a writable
    // translation. Core 1 then writes, migrating ownership — the
    // invalidation request executed on core 0 must also shoot down core
    // 0's TLB entry, so its next read faults and fetches the fresh data
    // instead of reading through the stale mapping.
    let (results, perf) = with_svm_perf(2, |k, svm| {
        let r = svm.alloc(k, 4096, Consistency::Strong);
        let a = SvmArray::<u64>::new(r, 8);
        if k.rank() == 0 {
            a.set(k, 0, 111); // first touch: own the page, warm the TLB
            let warm = a.get(k, 0); // guaranteed TLB hit path
            assert_eq!(warm, 111);
            svm.barrier(k);
            svm.barrier(k);
            let v = a.get(k, 0); // stale TLB would miss core 1's write
            svm.barrier(k);
            v
        } else {
            svm.barrier(k);
            assert_eq!(a.get(k, 0), 111, "must see core 0's write");
            a.set(k, 0, 222);
            svm.barrier(k);
            svm.barrier(k);
            0
        }
    });
    assert_eq!(results[0], 222, "read after migration must see fresh data");
    assert!(
        perf.tlb_hits > 0,
        "the TLB fast path must have been exercised: {perf:?}"
    );
    assert!(
        perf.tlb_shootdowns > 0,
        "ownership migration must shoot down TLB entries: {perf:?}"
    );
}

#[test]
fn strong_ping_pong_never_reads_stale_data() {
    // Tighter variant: the page ping-pongs between two writers for many
    // rounds; each round both cores re-read through their (potentially
    // cached) translations. Any missed shootdown surfaces as a stale value.
    let rounds = 16u64;
    let (results, perf) = with_svm_perf(2, |k, svm| {
        let r = svm.alloc(k, 4096, Consistency::Strong);
        let a = SvmArray::<u64>::new(r, 8);
        if k.rank() == 0 {
            a.set(k, 0, 0);
        }
        svm.barrier(k);
        for round in 1..=rounds {
            if k.rank() == (round % 2) as usize {
                assert_eq!(a.get(k, 0), round - 1, "stale read in round {round}");
                a.set(k, 0, round);
            }
            svm.barrier(k);
        }
        a.get(k, 0)
    });
    for v in &results {
        assert_eq!(*v, rounds);
    }
    // The TLB is direct-mapped, so conflict evictions may beat some
    // shootdowns to the entry — but the ping-pong must trigger plenty.
    assert!(perf.tlb_shootdowns > 0, "migrations must invalidate: {perf:?}");
}

#[test]
#[should_panic(expected = "unhandled Write fault")]
fn mprotect_readonly_shoots_down_cached_writable_translation() {
    // The write caches a *writable* translation in the TLB; the seal
    // rewrites the PTE to read-only. A missed shootdown would let the
    // second write slip through the stale writable entry instead of
    // hard-faulting.
    with_svm_perf(1, |k, svm| {
        let r = svm.alloc(k, 4096, Consistency::LazyRelease);
        let a = SvmArray::<u64>::new(r, 8);
        a.set(k, 0, 1); // TLB now holds a writable entry for the page
        svm.mprotect_readonly(k, r);
        a.set(k, 0, 2); // must panic: the entry was shot down
    });
}

#[test]
fn mprotect_readonly_counts_shootdowns_and_still_serves_reads() {
    let (results, perf) = with_svm_perf(2, |k, svm| {
        let r = svm.alloc(k, 8192, Consistency::LazyRelease);
        let a = SvmArray::<u64>::new(r, 16);
        if k.rank() == 0 {
            for i in 0..16 {
                a.set(k, i, 0xFEED + i as u64);
            }
        }
        svm.barrier(k);
        svm.mprotect_readonly(k, r);
        // Reads go through the re-inserted read-only TLB entries.
        let mut sum = 0;
        for i in 0..16 {
            sum += a.get(k, i);
        }
        svm.barrier(k);
        sum
    });
    let want: u64 = (0..16).map(|i| 0xFEED + i as u64).sum();
    assert_eq!(results[0], want);
    assert_eq!(results[1], want);
    assert!(
        perf.tlb_shootdowns > 0,
        "sealing rewrites PTEs and must invalidate TLB entries: {perf:?}"
    );
}
