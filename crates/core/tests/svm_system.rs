//! Integration tests of the SVM system: both consistency models, the
//! affinity policies, read-only regions, and the protocol edge cases.

use metalsvm::{install, Consistency, SvmArray, SvmConfig, SvmCtx};
use scc_hw::{CoreId, SccConfig};
use scc_kernel::{Cluster, Kernel};
use scc_mailbox::{install as mbx_install, Notify};

/// Boot the full stack on `n` cores and run `body`.
fn with_svm<R, F>(n: usize, notify: Notify, body: F) -> Vec<R>
where
    R: Send,
    F: Fn(&mut Kernel<'_>, &mut SvmCtx) -> R + Send + Sync,
{
    let cl = Cluster::new(SccConfig::small()).unwrap();
    cl.run(n, |k| {
        let mbx = mbx_install(k, notify);
        let mut svm = install(k, &mbx, SvmConfig::default());
        body(k, &mut svm)
    })
    .unwrap()
    .into_iter()
    .map(|r| r.result)
    .collect()
}

#[test]
fn alloc_is_collective_and_reserving_only() {
    with_svm(2, Notify::Ipi, |k, svm| {
        let before = k.page_table().mapped_pages();
        let r = svm.alloc(k, 4 * 1024 * 1024, Consistency::LazyRelease);
        assert_eq!(r.pages(), 1024);
        assert_eq!(
            k.page_table().mapped_pages(),
            before,
            "svm_alloc must reserve only; frames appear on first touch"
        );
    });
}

#[test]
fn lazy_first_touch_then_remote_read() {
    with_svm(2, Notify::Ipi, |k, svm| {
        let r = svm.alloc(k, 8192, Consistency::LazyRelease);
        let a = SvmArray::<u64>::new(r, 1024);
        if k.rank() == 0 {
            for i in 0..1024 {
                a.set(k, i, 0xC0FFEE00 + i as u64);
            }
        }
        svm.barrier(k); // release (flush) + acquire (invalidate)
        if k.rank() == 1 {
            for i in 0..1024 {
                assert_eq!(a.get(k, i), 0xC0FFEE00 + i as u64);
            }
        }
        svm.barrier(k);
    });
}

#[test]
fn strong_ownership_migrates_and_data_follows() {
    let results = with_svm(2, Notify::Ipi, |k, svm| {
        let r = svm.alloc(k, 4096, Consistency::Strong);
        let a = SvmArray::<u64>::new(r, 8);
        if k.rank() == 0 {
            a.set(k, 0, 111); // first touch: core 0 owns the page
            svm.barrier(k);
            // Core 1 now writes; we read it back after the next barrier.
            svm.barrier(k);
            let v = a.get(k, 0); // ownership comes back to core 0
            svm.barrier(k);
            v
        } else {
            svm.barrier(k);
            assert_eq!(a.get(k, 0), 111, "must see core 0's write");
            a.set(k, 0, 222);
            svm.barrier(k);
            svm.barrier(k);
            0
        }
    });
    assert_eq!(results[0], 222);
}

#[test]
fn strong_transfer_counts_recorded() {
    let cl = Cluster::new(SccConfig::small()).unwrap();
    let res = cl
        .run(2, |k| {
            let mbx = mbx_install(k, Notify::Ipi);
            let mut svm = install(k, &mbx, SvmConfig::default());
            let r = svm.alloc(k, 4096, Consistency::Strong);
            let a = SvmArray::<u64>::new(r, 8);
            for round in 0..10u64 {
                if k.rank() == (round % 2) as usize {
                    a.set(k, 0, round);
                }
                svm.barrier(k);
            }
            svm.shared().stats.snapshot()
        })
        .unwrap();
    let snap = res[0].result;
    assert!(
        snap.ownership_transfers >= 9,
        "page must have ping-ponged: {snap:?}"
    );
    assert_eq!(snap.first_touch_allocs, 1);
}

#[test]
fn first_touch_places_frame_near_toucher() {
    // Core 47 (quadrant mc3) first-touches: the frame must be behind mc3.
    let cl = Cluster::new(SccConfig::small()).unwrap();
    let res = cl
        .run_on(&[CoreId::new(0), CoreId::new(47)], |k| {
            let mbx = mbx_install(k, Notify::Ipi);
            let mut svm = install(k, &mbx, SvmConfig::default());
            let r = svm.alloc(k, 4096, Consistency::LazyRelease);
            let a = SvmArray::<u64>::new(r, 8);
            if k.id() == CoreId::new(47) {
                a.set(k, 0, 1);
            }
            svm.barrier(k);
            let pfn = svm.shared().page_info(r.first_page()).frame.unwrap();
            let scc_hw::ram::Backing::Ram { mc } =
                k.hw.machine().map.resolve(pfn << 12)
            else {
                panic!()
            };
            mc
        })
        .unwrap();
    assert_eq!(res[0].result, 3, "frame must live behind controller 3");
}

#[test]
fn readonly_region_enables_l2_and_serves_reads() {
    with_svm(2, Notify::Ipi, |k, svm| {
        let r = svm.alloc(k, 8192, Consistency::LazyRelease);
        let a = SvmArray::<u64>::new(r, 16);
        if k.rank() == 0 {
            for i in 0..16 {
                a.set(k, i, 0xD00D + i as u64);
            }
        }
        svm.barrier(k);
        svm.mprotect_readonly(k, r);
        // Reads work everywhere, twice (second read from cache).
        for i in 0..16 {
            assert_eq!(a.get(k, i), 0xD00D + i as u64);
        }
        for i in 0..16 {
            assert_eq!(a.get(k, i), 0xD00D + i as u64);
        }
        // The mapping now allows L2: check via the attr of the PTE.
        let pte = k.page_table().lookup(r.va);
        assert!(pte.flags().present());
        assert!(!pte.flags().writable());
        assert!(!pte.flags().mpbt(), "MPBT must be cleared for RO regions");
        svm.barrier(k);
    });
}

#[test]
#[should_panic(expected = "unhandled Write fault")]
fn readonly_write_is_a_hard_fault() {
    with_svm(1, Notify::Ipi, |k, svm| {
        let r = svm.alloc(k, 4096, Consistency::LazyRelease);
        let a = SvmArray::<u64>::new(r, 8);
        a.set(k, 0, 1);
        svm.mprotect_readonly(k, r);
        a.set(k, 0, 2); // must panic
    });
}

#[test]
fn next_touch_migrates_frame() {
    let cl = Cluster::new(SccConfig::small()).unwrap();
    let res = cl
        .run_on(&[CoreId::new(0), CoreId::new(47)], |k| {
            let mbx = mbx_install(k, Notify::Ipi);
            let mut svm = install(k, &mbx, SvmConfig::default());
            let r = svm.alloc(k, 4096, Consistency::LazyRelease);
            let a = SvmArray::<u64>::new(r, 8);
            // Core 0 initialises: frame lands near mc0.
            if k.rank() == 0 {
                a.set(k, 0, 42);
                k.hw.flush_wcb();
            }
            svm.barrier(k);
            svm.arm_next_touch(k, r);
            // Now core 47 touches first.
            if k.id() == CoreId::new(47) {
                assert_eq!(a.get(k, 0), 42, "data must survive migration");
            }
            svm.barrier(k);
            if k.rank() == 0 {
                assert_eq!(a.get(k, 0), 42);
            }
            let pfn = svm.shared().page_info(r.first_page()).frame.unwrap();
            let scc_hw::ram::Backing::Ram { mc } =
                k.hw.machine().map.resolve(pfn << 12)
            else {
                panic!()
            };
            (mc, svm.shared().stats.snapshot().migrations)
        })
        .unwrap();
    assert_eq!(res[0].result.0, 3, "frame must have migrated to mc3");
    assert_eq!(res[0].result.1, 1, "exactly one migration");
}

#[test]
fn locks_protect_a_shared_counter_lazy() {
    let n = 4;
    let rounds = 25u64;
    let results = with_svm(n, Notify::Ipi, |k, svm| {
        let r = svm.alloc(k, 4096, Consistency::LazyRelease);
        let a = SvmArray::<u64>::new(r, 8);
        let lock = svm.lock_new(k);
        if k.rank() == 0 {
            a.set(k, 0, 0);
            k.hw.flush_wcb();
        }
        svm.barrier(k);
        for _ in 0..rounds {
            lock.acquire(k).unwrap();
            let v = a.get(k, 0);
            a.set(k, 0, v + 1);
            lock.release(k).unwrap();
        }
        svm.barrier(k);
        a.get(k, 0)
    });
    for r in &results {
        assert_eq!(*r, n as u64 * rounds, "increments must not be lost");
    }
}

#[test]
fn strong_many_cores_rotating_writer() {
    let n = 6;
    let results = with_svm(n, Notify::Ipi, |k, svm| {
        let r = svm.alloc(k, 4096, Consistency::Strong);
        let a = SvmArray::<u64>::new(r, 4);
        if k.rank() == 0 {
            a.set(k, 0, 0);
        }
        svm.barrier(k);
        for round in 0..12u64 {
            if k.rank() == (round % n as u64) as usize {
                let v = a.get(k, 0);
                a.set(k, 0, v + round);
            }
            svm.barrier(k);
        }
        a.get(k, 0)
    });
    let expect: u64 = (0..12).sum();
    for r in &results {
        assert_eq!(*r, expect);
    }
}

#[test]
fn poll_mode_works_for_strong_model() {
    // The ownership protocol must also work without IPIs (tick/idle scan).
    let results = with_svm(2, Notify::Poll, |k, svm| {
        let r = svm.alloc(k, 4096, Consistency::Strong);
        let a = SvmArray::<u64>::new(r, 4);
        if k.rank() == 0 {
            a.set(k, 0, 5);
        }
        svm.barrier(k);
        if k.rank() == 1 {
            let v = a.get(k, 0);
            a.set(k, 0, v * 3);
        }
        svm.barrier(k);
        a.get(k, 0)
    });
    assert_eq!(results[0], 15);
}

#[test]
fn two_regions_different_models_coexist() {
    with_svm(2, Notify::Ipi, |k, svm| {
        let strong = svm.alloc(k, 4096, Consistency::Strong);
        let lazy = svm.alloc(k, 4096, Consistency::LazyRelease);
        let s = SvmArray::<u32>::new(strong, 4);
        let l = SvmArray::<u32>::new(lazy, 4);
        if k.rank() == 0 {
            s.set(k, 0, 10);
            l.set(k, 0, 20);
        }
        svm.barrier(k);
        if k.rank() == 1 {
            assert_eq!(s.get(k, 0), 10);
            assert_eq!(l.get(k, 0), 20);
        }
        svm.barrier(k);
    });
}

#[test]
fn offdie_scratchpad_variant_works() {
    let cl = Cluster::new(SccConfig::small()).unwrap();
    cl.run(2, |k| {
        let mbx = mbx_install(k, Notify::Ipi);
        let mut svm = install(
            k,
            &mbx,
            SvmConfig::builder()
                .scratch(metalsvm::ScratchLocation::OffDie)
                .build()
                .unwrap(),
        );
        let r = svm.alloc(k, 16384, Consistency::LazyRelease);
        let a = SvmArray::<u64>::new(r, 2048);
        if k.rank() == 0 {
            for i in (0..2048).step_by(512) {
                a.set(k, i, i as u64);
            }
        }
        svm.barrier(k);
        if k.rank() == 1 {
            for i in (0..2048).step_by(512) {
                assert_eq!(a.get(k, i), i as u64);
            }
        }
        svm.barrier(k);
    })
    .unwrap();
}

#[test]
fn default_scratch_resolves_to_mpb_on_scc48() {
    // Bit-identity guard: on the paper's machine the Auto default must
    // pick the MPB design, not the sharded directory.
    let cl = Cluster::new(SccConfig::small()).unwrap();
    cl.run(1, |k| {
        let mbx = mbx_install(k, Notify::Ipi);
        let svm = install(k, &mbx, SvmConfig::default());
        assert_eq!(
            svm.shared().scratch_location(),
            metalsvm::ScratchLocation::Mpb
        );
    })
    .unwrap();
}

#[test]
fn sharded_scratchpad_variant_works() {
    // The sharded per-MC directory, forced onto the 48-core machine.
    let cl = Cluster::new(SccConfig::small()).unwrap();
    cl.run(4, |k| {
        let mbx = mbx_install(k, Notify::Ipi);
        let mut svm = install(
            k,
            &mbx,
            SvmConfig::builder()
                .scratch(metalsvm::ScratchLocation::ShardedMc)
                .build()
                .unwrap(),
        );
        assert_eq!(
            svm.shared().scratch_location(),
            metalsvm::ScratchLocation::ShardedMc
        );
        let r = svm.alloc(k, 16384, Consistency::Strong);
        let a = SvmArray::<u64>::new(r, 2048);
        let me = k.rank();
        a.set(k, me * 512, me as u64 + 1); // 4 first touches, 4 shards
        svm.barrier(k);
        let peer = (me + 1) % 4;
        assert_eq!(a.get(k, peer * 512), peer as u64 + 1);
        svm.barrier(k);
    })
    .unwrap();
}

#[test]
fn auto_picks_sharded_directory_on_a_big_mesh() {
    // 512 cores: beyond the MPB design's limits, Auto must shard. Run a
    // strong-model ownership migration on a handful of participants. The
    // shared region must hold the mailbox's off-die slot rows (512
    // receivers x 4 pages = 8 MiB) on top of the SVM window.
    let cfg = SccConfig {
        shared_bytes: 32 * 1024 * 1024,
        private_bytes_per_core: 256 * 1024,
        ..SccConfig::default_with(scc_hw::Topology::mesh16x32())
    };
    let cl = Cluster::new(cfg).unwrap();
    cl.run(8, |k| {
        let mbx = mbx_install(k, Notify::Poll);
        let mut svm = install(k, &mbx, SvmConfig::default());
        assert_eq!(
            svm.shared().scratch_location(),
            metalsvm::ScratchLocation::ShardedMc
        );
        let r = svm.alloc(k, 8 * 4096, Consistency::Strong);
        let a = SvmArray::<u64>::new(r, 8 * 512);
        let me = k.rank();
        a.set(k, me * 512, 0xBEEF + me as u64);
        svm.barrier(k);
        let peer = (me + 1) % 8;
        assert_eq!(a.get(k, peer * 512), 0xBEEF + peer as u64);
        svm.barrier(k);
    })
    .unwrap();
}

#[test]
fn staleness_without_invalidate_lazy_model() {
    // Negative test: lazy release WITHOUT the acquire-invalidate shows the
    // stale value — the bug class the consistency hooks exist to fix.
    let results = with_svm(2, Notify::Ipi, |k, svm| {
        let r = svm.alloc(k, 4096, Consistency::LazyRelease);
        let a = SvmArray::<u64>::new(r, 8);
        if k.rank() == 0 {
            a.set(k, 0, 1);
            k.hw.flush_wcb();
        }
        svm.barrier(k);
        // Both cores now cache the line. From here on, barriers must not
        // invalidate, or there would be nothing stale to observe.
        let _ = a.get(k, 0);
        svm.barrier_no_invalidate_for_test(k);
        if k.rank() == 0 {
            a.set(k, 0, 2);
            k.hw.flush_wcb();
        }
        svm.barrier_no_invalidate_for_test(k);
        if k.rank() == 1 {
            let stale = a.get(k, 0);
            k.hw.cl1invmb();
            let fresh = a.get(k, 0);
            (stale, fresh)
        } else {
            (0, 0)
        }
    });
    assert_eq!(results[1], (1, 2), "stale read then fresh read");
}

#[test]
fn svm_config_builder_validates() {
    use metalsvm::{Placement, SvmConfig, SvmConfigError};

    // The builder defaults match `SvmConfig::default()`.
    let built = SvmConfig::builder().build().unwrap();
    assert_eq!(built, SvmConfig::default());

    // Explicit page caps are carried through.
    let capped = SvmConfig::builder().pages(128).build().unwrap();
    assert_eq!(capped.max_pages(), Some(128));

    // Zero shared pages can never work.
    assert_eq!(
        SvmConfig::builder().pages(0).build().unwrap_err(),
        SvmConfigError::ZeroPages
    );

    // Round-robin striping over fewer pages than memory controllers is a
    // configuration error, not a silent no-op.
    assert_eq!(
        SvmConfig::builder()
            .placement(Placement::RoundRobin)
            .pages(2)
            .build()
            .unwrap_err(),
        SvmConfigError::StripingTooFewPages { pages: 2 }
    );
    assert!(SvmConfig::builder()
        .placement(Placement::RoundRobin)
        .pages(4)
        .build()
        .is_ok());
}

#[test]
fn page_info_reports_owner_frame_and_copyset() {
    let owners = with_svm(2, Notify::Ipi, |k, svm| {
        let r = svm.alloc(k, 8192, Consistency::Strong);
        let a = SvmArray::<u64>::new(r, 16);
        if k.rank() == 0 {
            a.set(k, 0, 7);
        }
        svm.barrier(k);

        let info = svm.shared().page_info(r.first_page());
        assert_eq!(info.page, r.first_page());
        assert_eq!(info.owner, Some(CoreId::new(0)), "core 0 touched first");
        assert!(info.frame.is_some(), "touched page must be backed");
        // Untouched page of the same region: no owner, no frame.
        let untouched = svm.shared().page_info(r.first_page() + 1);
        assert_eq!(untouched.owner, None);
        assert_eq!(untouched.frame, None);

        svm.barrier(k);
        info.owner
    });
    assert_eq!(owners, vec![Some(CoreId::new(0)); 2]);
}
