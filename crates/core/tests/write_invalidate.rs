//! Tests of the IVY-style write-invalidate consistency model.

use metalsvm::{install, Consistency, SvmArray, SvmConfig};
use scc_hw::{CoreId, SccConfig, Topology};
use scc_kernel::Cluster;
use scc_mailbox::{install as mbx_install, Notify};

fn with_wi<R, F>(n: usize, body: F) -> Vec<R>
where
    R: Send,
    F: Fn(&mut scc_kernel::Kernel<'_>, &mut metalsvm::SvmCtx) -> R + Send + Sync,
{
    let cl = Cluster::new(SccConfig::small()).unwrap();
    cl.run(n, |k| {
        let mbx = mbx_install(k, Notify::Ipi);
        let mut svm = install(k, &mbx, SvmConfig::default());
        body(k, &mut svm)
    })
    .unwrap()
    .into_iter()
    .map(|r| r.result)
    .collect()
}

#[test]
fn basic_write_then_remote_reads() {
    with_wi(4, |k, svm| {
        let r = svm.alloc(k, 4096, Consistency::WriteInvalidate);
        let a = SvmArray::<u64>::new(r, 8);
        if k.rank() == 0 {
            a.set(k, 0, 77);
            k.hw.flush_wcb();
        }
        svm.barrier(k);
        assert_eq!(a.get(k, 0), 77, "all cores read the replica");
        svm.barrier(k);
    });
}

#[test]
fn readers_share_without_protocol_traffic() {
    // The decisive advantage over the strong model: once every core holds
    // a replica, repeated reads cause no ownership transfers at all.
    let results = with_wi(4, |k, svm| {
        let r = svm.alloc(k, 4096, Consistency::WriteInvalidate);
        let a = SvmArray::<u64>::new(r, 8);
        if k.rank() == 0 {
            a.set(k, 0, 5);
            k.hw.flush_wcb();
        }
        svm.barrier(k);
        let _ = a.get(k, 0); // fault in the replica
        svm.barrier(k);
        let before = svm.shared().stats.snapshot();
        for _ in 0..50 {
            assert_eq!(a.get(k, 0), 5);
        }
        svm.barrier(k);
        let after = svm.shared().stats.snapshot();
        (
            after.faults - before.faults,
            after.ownership_transfers - before.ownership_transfers,
        )
    });
    for (faults, transfers) in results {
        assert_eq!(faults, 0, "warm replicas must not fault");
        assert_eq!(transfers, 0, "reads must not migrate ownership");
    }
}

#[test]
fn write_invalidates_all_replicas() {
    let results = with_wi(3, |k, svm| {
        let r = svm.alloc(k, 4096, Consistency::WriteInvalidate);
        let a = SvmArray::<u64>::new(r, 8);
        if k.rank() == 0 {
            a.set(k, 0, 1);
            k.hw.flush_wcb();
        }
        svm.barrier(k);
        let first = a.get(k, 0); // everyone replicates
        svm.barrier(k);
        if k.rank() == 2 {
            a.set(k, 0, 2); // invalidates replicas on 0 and 1
        }
        svm.barrier(k);
        let second = a.get(k, 0); // re-faults, sees the new value
        svm.barrier(k);
        (first, second, svm.shared().stats.snapshot().invalidations)
    });
    for (first, second, _) in &results {
        assert_eq!(*first, 1);
        assert_eq!(*second, 2, "replicas must observe the invalidating write");
    }
    // Core 0's own replica is dropped inside the ownership grant, so only
    // core 1's replica goes through a WI_INV mail.
    assert!(
        results[0].2 >= 1,
        "the third party's replica must have been invalidated: {results:?}"
    );
}

#[test]
fn rotating_writers_stay_coherent() {
    let n = 4;
    let results = with_wi(n, |k, svm| {
        let r = svm.alloc(k, 4096, Consistency::WriteInvalidate);
        let a = SvmArray::<u64>::new(r, 8);
        if k.rank() == 0 {
            a.set(k, 0, 0);
        }
        svm.barrier(k);
        for round in 0..12u64 {
            // Everyone reads (builds replicas), one writes.
            let v = a.get(k, 0);
            svm.barrier(k);
            if k.rank() == (round % n as u64) as usize {
                a.set(k, 0, v + round);
            }
            svm.barrier(k);
        }
        a.get(k, 0)
    });
    let expect: u64 = (0..12).sum();
    for r in &results {
        assert_eq!(*r, expect);
    }
}

#[test]
fn owner_upgrade_from_shared_works() {
    // The first toucher keeps ownership while others replicate; its next
    // write must invalidate the replicas without asking anyone for
    // ownership.
    let results = with_wi(3, |k, svm| {
        let r = svm.alloc(k, 4096, Consistency::WriteInvalidate);
        let a = SvmArray::<u64>::new(r, 8);
        if k.rank() == 0 {
            a.set(k, 0, 10);
            k.hw.flush_wcb();
        }
        svm.barrier(k);
        let _ = a.get(k, 0);
        svm.barrier(k);
        if k.rank() == 0 {
            a.set(k, 0, 20); // owner upgrade: rank 0 still owns the page
        }
        svm.barrier(k);
        a.get(k, 0)
    });
    for r in &results {
        assert_eq!(*r, 20);
    }
}

#[test]
fn copyset_spans_multiple_words_past_64_cores() {
    // The growable multi-word copyset (second u64 word and beyond) on the
    // 128-core mesh8x8: cores above index 63 replicate and get invalidated
    // like any other — the old single-u64 cap is gone. Participants sit in
    // both copyset words (3 below 64, 70/127 above).
    let cores = [0usize, 3, 70, 127].map(CoreId::new);
    let cl = Cluster::new(SccConfig::small_with(Topology::mesh8x8())).unwrap();
    let results = cl
        .run_on(&cores, |k| {
            let mbx = mbx_install(k, Notify::Ipi);
            let mut svm = install(k, &mbx, SvmConfig::default());
            let r = svm.alloc(k, 4096, Consistency::WriteInvalidate);
            let a = SvmArray::<u64>::new(r, 8);
            if k.rank() == 0 {
                a.set(k, 0, 1);
                k.hw.flush_wcb();
            }
            svm.barrier(k);
            let first = a.get(k, 0); // all four replicate
            svm.barrier(k);
            if k.id() == CoreId::new(127) {
                a.set(k, 0, 2); // high-word writer invalidates low-word replicas
            }
            svm.barrier(k);
            let second = a.get(k, 0);
            svm.barrier(k);
            if k.id() == CoreId::new(3) {
                a.set(k, 0, 3); // low-word writer invalidates the high word
            }
            svm.barrier(k);
            let third = a.get(k, 0);
            svm.barrier(k);
            (first, second, third, svm.shared().stats.snapshot().invalidations)
        })
        .unwrap();
    let inv_total: u64 = results.iter().map(|r| r.result.3).sum();
    for r in &results {
        assert_eq!(r.result.0, 1);
        assert_eq!(r.result.1, 2, "replicas above core 64 must see the write");
        assert_eq!(r.result.2, 3, "high-word replicas must be invalidated");
    }
    assert!(
        inv_total >= 4,
        "both directions must have sent real invalidations: {inv_total}"
    );
}

#[test]
fn wi_coexists_with_other_models() {
    with_wi(2, |k, svm| {
        let s = svm.alloc(k, 4096, Consistency::Strong);
        let l = svm.alloc(k, 4096, Consistency::LazyRelease);
        let w = svm.alloc(k, 4096, Consistency::WriteInvalidate);
        let sa = SvmArray::<u32>::new(s, 4);
        let la = SvmArray::<u32>::new(l, 4);
        let wa = SvmArray::<u32>::new(w, 4);
        if k.rank() == 0 {
            sa.set(k, 0, 1);
            la.set(k, 0, 2);
            wa.set(k, 0, 3);
        }
        svm.barrier(k);
        if k.rank() == 1 {
            assert_eq!(sa.get(k, 0), 1);
            assert_eq!(la.get(k, 0), 2);
            assert_eq!(wa.get(k, 0), 3);
        }
        svm.barrier(k);
    });
}
