//! SVM event counters (shared across the cores of one machine).

use scc_hw::metrics::{MetricsSnapshot, MetricsSource};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counters over all cores; per-core attribution is available through the
/// kernel's hardware counters.
#[derive(Default, Debug)]
pub struct SvmStats {
    /// Page faults taken inside the SVM window.
    pub faults: AtomicU64,
    /// Frames allocated on first touch.
    pub first_touch_allocs: AtomicU64,
    /// Ownership transfers completed (strong model).
    pub ownership_transfers: AtomicU64,
    /// Ownership requests forwarded because the addressee no longer owned
    /// the page.
    pub forwards: AtomicU64,
    /// Pages migrated by affinity-on-next-touch.
    pub migrations: AtomicU64,
    /// Read replicas granted (write-invalidate model).
    pub read_replicas: AtomicU64,
    /// Replica invalidations performed (write-invalidate model).
    pub invalidations: AtomicU64,
}

impl SvmStats {
    pub fn snapshot(&self) -> SvmStatsSnapshot {
        SvmStatsSnapshot {
            faults: self.faults.load(Ordering::Relaxed),
            first_touch_allocs: self.first_touch_allocs.load(Ordering::Relaxed),
            ownership_transfers: self.ownership_transfers.load(Ordering::Relaxed),
            forwards: self.forwards.load(Ordering::Relaxed),
            migrations: self.migrations.load(Ordering::Relaxed),
            read_replicas: self.read_replicas.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
        }
    }

    #[inline]
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// A plain copy of the counters at one instant.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct SvmStatsSnapshot {
    pub faults: u64,
    pub first_touch_allocs: u64,
    pub ownership_transfers: u64,
    pub forwards: u64,
    pub migrations: u64,
    pub read_replicas: u64,
    pub invalidations: u64,
}

impl MetricsSource for SvmStatsSnapshot {
    fn metrics_into(&self, m: &mut MetricsSnapshot) {
        m.add("svm.faults", self.faults);
        m.add("svm.first_touch_allocs", self.first_touch_allocs);
        m.add("svm.ownership_transfers", self.ownership_transfers);
        m.add("svm.forwards", self.forwards);
        m.add("svm.migrations", self.migrations);
        m.add("svm.read_replicas", self.read_replicas);
        m.add("svm.invalidations", self.invalidations);
    }
}

impl MetricsSource for SvmStats {
    fn metrics_into(&self, m: &mut MetricsSnapshot) {
        self.snapshot().metrics_into(m);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_bumps() {
        let s = SvmStats::default();
        SvmStats::bump(&s.faults);
        SvmStats::bump(&s.faults);
        SvmStats::bump(&s.migrations);
        let snap = s.snapshot();
        assert_eq!(snap.faults, 2);
        assert_eq!(snap.migrations, 1);
        assert_eq!(snap.ownership_transfers, 0);
    }

    #[test]
    fn metrics_labels() {
        let s = SvmStats::default();
        SvmStats::bump(&s.faults);
        SvmStats::bump(&s.read_replicas);
        let m = s.metrics();
        assert_eq!(m.get("svm.faults"), 1);
        assert_eq!(m.get("svm.read_replicas"), 1);
        assert_eq!(m.get("svm.invalidations"), 0);
        assert_eq!(m.len(), 7);
    }
}
