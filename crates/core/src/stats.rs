//! SVM event counters (shared across the cores of one machine).

use std::sync::atomic::{AtomicU64, Ordering};

/// Counters over all cores; per-core attribution is available through the
/// kernel's hardware counters.
#[derive(Default, Debug)]
pub struct SvmStats {
    /// Page faults taken inside the SVM window.
    pub faults: AtomicU64,
    /// Frames allocated on first touch.
    pub first_touch_allocs: AtomicU64,
    /// Ownership transfers completed (strong model).
    pub ownership_transfers: AtomicU64,
    /// Ownership requests forwarded because the addressee no longer owned
    /// the page.
    pub forwards: AtomicU64,
    /// Pages migrated by affinity-on-next-touch.
    pub migrations: AtomicU64,
    /// Read replicas granted (write-invalidate model).
    pub read_replicas: AtomicU64,
    /// Replica invalidations performed (write-invalidate model).
    pub invalidations: AtomicU64,
}

impl SvmStats {
    pub fn snapshot(&self) -> SvmStatsSnapshot {
        SvmStatsSnapshot {
            faults: self.faults.load(Ordering::Relaxed),
            first_touch_allocs: self.first_touch_allocs.load(Ordering::Relaxed),
            ownership_transfers: self.ownership_transfers.load(Ordering::Relaxed),
            forwards: self.forwards.load(Ordering::Relaxed),
            migrations: self.migrations.load(Ordering::Relaxed),
            read_replicas: self.read_replicas.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
        }
    }

    #[inline]
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// A plain copy of the counters at one instant.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct SvmStatsSnapshot {
    pub faults: u64,
    pub first_touch_allocs: u64,
    pub ownership_transfers: u64,
    pub forwards: u64,
    pub migrations: u64,
    pub read_replicas: u64,
    pub invalidations: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_bumps() {
        let s = SvmStats::default();
        SvmStats::bump(&s.faults);
        SvmStats::bump(&s.faults);
        SvmStats::bump(&s.migrations);
        let snap = s.snapshot();
        assert_eq!(snap.faults, 2);
        assert_eq!(snap.migrations, 1);
        assert_eq!(snap.ownership_transfers, 0);
    }
}
