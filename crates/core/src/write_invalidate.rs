//! The IVY-style **write-invalidate** consistency model
//! ([`Consistency::WriteInvalidate`]): multiple readers / single writer.
//!
//! The paper's outlook (§8) announces the investigation of further memory
//! models beyond its two; the natural next step — and the model of the
//! IVY system the paper builds upon [15] — is page-grained MRSW:
//!
//! * a page has one **owner** (its last writer) and a **copyset** of cores
//!   holding read-only replicas;
//! * a *read* fault asks the owner, which downgrades itself to read-only,
//!   adds the requester to the copyset and grants a replica — after which
//!   reads on all sharers are pure cache hits, with **no protocol traffic
//!   at all** (the weakness of the strong model, which migrates the page
//!   even between readers);
//! * a *write* fault asks the owner for ownership plus the copyset, then
//!   invalidates every replica and waits for their acknowledgements before
//!   mapping read-write.
//!
//! A per-page **version counter** (bumped on every write grant) closes the
//! window where a read grant races a concurrent invalidation: a reader
//! whose grant carries a stale version unmaps and retries.
//!
//! All protocol mails ride on the mailbox system, like the strong model's.

use crate::stats::SvmStats;
use crate::svm::SvmShared;
use scc_hw::instr::EventKind;
use scc_hw::{CoreId, MemAttr};
use scc_kernel::{Kernel, PageFlags};
use scc_mailbox::{Mail, MailHandler, MailKind, Mailbox};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// Mail kinds of the write-invalidate protocol.
pub const WI_READ_REQ: MailKind = MailKind(3);
pub const WI_WRITE_REQ: MailKind = MailKind(4);
pub const WI_GRANT: MailKind = MailKind(5);
pub const WI_INV: MailKind = MailKind(6);
pub const WI_INV_ACK: MailKind = MailKind(7);

const NO_PAGE: u32 = u32::MAX;

/// Per-core cells for in-flight protocol state (one outstanding fault per
/// core, so single cells suffice).
pub(crate) struct WiCells {
    /// Which page's grant arrived (NO_PAGE = none), with its payload.
    grant_page: AtomicU32,
    grant_write: AtomicU32,
    grant_version: AtomicU32,
    grant_copyset: AtomicU64,
    grant_stamp: AtomicU64,
    /// Invalidation-acknowledgement countdown.
    inv_page: AtomicU32,
    inv_remaining: AtomicU32,
    inv_stamp: AtomicU64,
}

impl WiCells {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(WiCells {
            grant_page: AtomicU32::new(NO_PAGE),
            grant_write: AtomicU32::new(0),
            grant_version: AtomicU32::new(0),
            grant_copyset: AtomicU64::new(0),
            grant_stamp: AtomicU64::new(0),
            inv_page: AtomicU32::new(NO_PAGE),
            inv_remaining: AtomicU32::new(0),
            inv_stamp: AtomicU64::new(0),
        })
    }
}

impl SvmShared {
    /// Timed uncached read of a page's copyset (bitmask of replica holders).
    fn copyset_read(&self, k: &mut Kernel<'_>, p: u32) -> u64 {
        k.hw.read(self.copyset_pa() + 8 * p, 8, MemAttr::UNCACHED)
    }

    fn copyset_write(&self, k: &mut Kernel<'_>, p: u32, cs: u64) {
        k.hw.write(self.copyset_pa() + 8 * p, 8, cs, MemAttr::UNCACHED);
    }

    /// Timed uncached read of a page's version counter.
    fn version_read(&self, k: &mut Kernel<'_>, p: u32) -> u32 {
        k.hw.read(self.version_pa() + 4 * p, 4, MemAttr::UNCACHED) as u32
    }

    fn version_write(&self, k: &mut Kernel<'_>, p: u32, v: u32) {
        k.hw
            .write(self.version_pa() + 4 * p, 4, u64::from(v), MemAttr::UNCACHED);
    }
}

fn req_payload(p: u32, requester: CoreId) -> [u8; 8] {
    let mut out = [0u8; 8];
    out[0..4].copy_from_slice(&p.to_le_bytes());
    out[4..8].copy_from_slice(&(requester.idx() as u32).to_le_bytes());
    out
}

fn grant_payload(p: u32, write: bool, version: u32, copyset: u64) -> [u8; 17] {
    let mut out = [0u8; 17];
    out[0..4].copy_from_slice(&p.to_le_bytes());
    out[4..8].copy_from_slice(&version.to_le_bytes());
    out[8..16].copy_from_slice(&copyset.to_le_bytes());
    out[16] = u8::from(write);
    out
}

/// The requester-side fault logic; called by the SVM fault handler for
/// pages of a write-invalidate region.
#[allow(clippy::too_many_arguments)] // internal fault plumbing, one call site
pub(crate) fn wi_fault(
    sh: &Arc<SvmShared>,
    mbx: &Mailbox,
    cells: &Arc<WiCells>,
    k: &mut Kernel<'_>,
    p: u32,
    pfn: u32,
    page_va: u32,
    write: bool,
) {
    let me = k.id();
    loop {
        let owner = sh
            .owner_read(k, p)
            .expect("write-invalidate page must have an owner after first touch");
        if owner == me {
            if !write {
                // The owner always has the freshest data; a read-fault with
                // ownership means our mapping was dropped (e.g. next-touch)
                // — remap read-only if replicas exist, read-write otherwise.
                let cs = sh.copyset_read(k, p) & !(1 << me.idx());
                let flags = if cs == 0 {
                    PageFlags::shared_rw()
                } else {
                    PageFlags::shared_ro_mpbt()
                };
                k.map_page(page_va, pfn, flags);
                k.hw.cl1invmb();
                return;
            }
            // Owner upgrading from shared to exclusive: invalidate every
            // replica ourselves.
            k.hw.flush_wcb();
            let cs = sh.copyset_read(k, p) & !(1 << me.idx());
            let v = sh.version_read(k, p);
            sh.version_write(k, p, v.wrapping_add(1));
            sh.copyset_write(k, p, 1 << me.idx());
            invalidate_replicas(mbx, cells, k, p, cs);
            // Ownership might have been granted away by our own interrupt
            // handler while we waited for the acknowledgements.
            if sh.owner_read(k, p) == Some(me) {
                k.map_page(page_va, pfn, PageFlags::shared_rw());
                k.hw.cl1invmb();
                return;
            }
            continue;
        }

        // Ask the owner.
        let kind = if write { WI_WRITE_REQ } else { WI_READ_REQ };
        cells.grant_page.store(NO_PAGE, Ordering::Release);
        mbx.send(k, owner, kind, &req_payload(p, me));
        let cells2 = Arc::clone(cells);
        let want_write = u32::from(write);
        k.wait_event("write-invalidate grant", move || {
            (cells2.grant_page.load(Ordering::Acquire) == p
                && cells2.grant_write.load(Ordering::Acquire) == want_write)
                .then(|| ((), cells2.grant_stamp.load(Ordering::Acquire)))
        });
        cells.grant_page.store(NO_PAGE, Ordering::Release);
        let c = k.hw.machine().cfg.timing.dsm_handler;
        k.hw.advance(c);

        if write {
            let cs = cells.grant_copyset.load(Ordering::Acquire);
            invalidate_replicas(mbx, cells, k, p, cs);
            if sh.owner_read(k, p) == Some(me) {
                k.map_page(page_va, pfn, PageFlags::shared_rw());
                k.hw.cl1invmb();
                SvmStats::bump(&sh.stats.ownership_transfers);
                return;
            }
            continue;
        }

        // Read grant: map the replica, then verify no write grant raced us
        // (the version would have moved on).
        let granted_version = cells.grant_version.load(Ordering::Acquire);
        k.map_page(page_va, pfn, PageFlags::shared_ro_mpbt());
        k.hw.cl1invmb();
        if sh.version_read(k, p) == granted_version {
            SvmStats::bump(&sh.stats.read_replicas);
            k.hw.trace(EventKind::ReadReplica, p, granted_version);
            return;
        }
        k.unmap_page(page_va);
    }
}

/// Send `WI_INV` to every core in `copyset` (excluding ourselves) and wait
/// for all acknowledgements.
fn invalidate_replicas(
    mbx: &Mailbox,
    cells: &Arc<WiCells>,
    k: &mut Kernel<'_>,
    p: u32,
    copyset: u64,
) {
    let me = k.id();
    let targets = copyset & !(1 << me.idx());
    let n = targets.count_ones();
    if n == 0 {
        return;
    }
    cells.inv_page.store(p, Ordering::Release);
    cells.inv_remaining.store(n, Ordering::Release);
    k.hw.trace(EventKind::WiInvSend, p, n);
    let mut m = targets;
    while m != 0 {
        let core = CoreId::from_raw(m.trailing_zeros() as usize);
        m &= m - 1;
        mbx.send(k, core, WI_INV, &p.to_le_bytes());
    }
    let cells2 = Arc::clone(cells);
    k.wait_event("replica invalidation acks", move || {
        (cells2.inv_remaining.load(Ordering::Acquire) == 0)
            .then(|| ((), cells2.inv_stamp.load(Ordering::Acquire)))
    });
    cells.inv_page.store(NO_PAGE, Ordering::Release);
}

// ----------------------------------------------------------------------
// Mail handlers
// ----------------------------------------------------------------------

/// Owner side: read and write requests.
pub(crate) struct WiRequestHandler {
    pub(crate) sh: Arc<SvmShared>,
    pub(crate) mbx: Mailbox,
}

impl WiRequestHandler {
    fn handle(&self, k: &mut Kernel<'_>, mail: Mail, write: bool) {
        let sh = &self.sh;
        let p = mail.u32_at(0);
        let requester = CoreId::from_raw(mail.u32_at(4) as usize);
        let me = k.id();
        let cur = sh.owner_read(k, p).expect("request for unowned page");
        if cur == requester {
            return; // raced: requester already became owner
        }
        if cur != me {
            SvmStats::bump(&sh.stats.forwards);
            let kind = if write { WI_WRITE_REQ } else { WI_READ_REQ };
            self.mbx.send(k, cur, kind, mail.data());
            return;
        }
        let c = k.hw.machine().cfg.timing.dsm_handler;
        k.hw.advance(c);
        k.hw.flush_wcb();
        let va = crate::svm::SvmShared::va_of_page(p);
        let version = sh.version_read(k, p);
        if write {
            // Hand over ownership; the requester runs the invalidation.
            if !k.protect_page(
                va,
                PageFlags(PageFlags::PWT | PageFlags::MPBT),
            ) {
                k.unmap_page(va);
            }
            let cs = sh.copyset_read(k, p) & !(1 << requester.idx()) & !(1 << me.idx());
            let new_version = version.wrapping_add(1);
            sh.version_write(k, p, new_version);
            sh.owner_write(k, p, requester);
            sh.copyset_write(k, p, 1 << requester.idx());
            self.mbx.send(
                k,
                requester,
                WI_GRANT,
                &grant_payload(p, true, new_version, cs),
            );
        } else {
            // Stay owner, downgrade to a shared replica, extend the copyset.
            k.protect_page(va, PageFlags::shared_ro_mpbt());
            let cs = sh.copyset_read(k, p) | (1 << requester.idx()) | (1 << me.idx());
            sh.copyset_write(k, p, cs);
            self.mbx.send(
                k,
                requester,
                WI_GRANT,
                &grant_payload(p, false, version, 0),
            );
        }
    }
}

pub(crate) struct WiReadHandler(pub(crate) Arc<WiRequestHandler>);
impl MailHandler for WiReadHandler {
    fn on_mail(&self, k: &mut Kernel<'_>, mail: Mail) {
        self.0.handle(k, mail, false);
    }
}

pub(crate) struct WiWriteHandler(pub(crate) Arc<WiRequestHandler>);
impl MailHandler for WiWriteHandler {
    fn on_mail(&self, k: &mut Kernel<'_>, mail: Mail) {
        self.0.handle(k, mail, true);
    }
}

/// Requester side: grants.
pub(crate) struct WiGrantHandler {
    pub(crate) cells: Arc<WiCells>,
}

impl MailHandler for WiGrantHandler {
    fn on_mail(&self, k: &mut Kernel<'_>, mail: Mail) {
        let d = mail.data();
        let version = u32::from_le_bytes(d[4..8].try_into().unwrap());
        let copyset = u64::from_le_bytes(d[8..16].try_into().unwrap());
        let write = d[16] != 0;
        k.hw
            .trace(EventKind::WiGrant, mail.u32_at(0), u32::from(write));
        self.cells.grant_version.store(version, Ordering::Release);
        self.cells.grant_copyset.store(copyset, Ordering::Release);
        self.cells
            .grant_write
            .store(u32::from(write), Ordering::Release);
        self.cells.grant_stamp.store(k.hw.now(), Ordering::Release);
        self.cells.grant_page.store(mail.u32_at(0), Ordering::Release);
    }
}

/// Replica side: invalidations.
pub(crate) struct WiInvHandler {
    pub(crate) sh: Arc<SvmShared>,
    pub(crate) mbx: Mailbox,
}

impl MailHandler for WiInvHandler {
    fn on_mail(&self, k: &mut Kernel<'_>, mail: Mail) {
        let p = mail.u32_at(0);
        let va = crate::svm::SvmShared::va_of_page(p);
        // Drop the replica (keep the frame number for cheap re-mapping).
        if !k.protect_page(va, PageFlags(PageFlags::PWT | PageFlags::MPBT)) {
            k.unmap_page(va);
        }
        k.hw.cl1invmb();
        SvmStats::bump(&self.sh.stats.invalidations);
        k.hw.trace(EventKind::WiInvRecv, p, 0);
        self.mbx.send(k, mail.from, WI_INV_ACK, &p.to_le_bytes());
    }
}

/// Writer side: invalidation acknowledgements.
pub(crate) struct WiInvAckHandler {
    pub(crate) cells: Arc<WiCells>,
}

impl MailHandler for WiInvAckHandler {
    fn on_mail(&self, k: &mut Kernel<'_>, mail: Mail) {
        let p = mail.u32_at(0);
        if self.cells.inv_page.load(Ordering::Acquire) == p {
            self.cells.inv_stamp.store(k.hw.now(), Ordering::Release);
            self.cells.inv_remaining.fetch_sub(1, Ordering::AcqRel);
        }
    }
}
