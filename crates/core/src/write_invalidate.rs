//! The IVY-style **write-invalidate** consistency model
//! ([`Consistency::WriteInvalidate`]): multiple readers / single writer.
//!
//! The paper's outlook (§8) announces the investigation of further memory
//! models beyond its two; the natural next step — and the model of the
//! IVY system the paper builds upon [15] — is page-grained MRSW:
//!
//! * a page has one **owner** (its last writer) and a **copyset** of cores
//!   holding read-only replicas;
//! * a *read* fault asks the owner, which downgrades itself to read-only,
//!   adds the requester to the copyset and grants a replica — after which
//!   reads on all sharers are pure cache hits, with **no protocol traffic
//!   at all** (the weakness of the strong model, which migrates the page
//!   even between readers);
//! * a *write* fault asks the owner for ownership plus the copyset, then
//!   invalidates every replica and waits for their acknowledgements before
//!   mapping read-write.
//!
//! A per-page **version counter** (bumped on every write grant) closes the
//! window where a read grant races a concurrent invalidation: a reader
//! whose grant carries a stale version unmaps and retries.
//!
//! ## Copyset representation
//!
//! The copyset is a **growable multi-word bitmask** (the same
//! word-per-64-cores pattern the sync layer uses for held-lock tracking),
//! sized for the machine at install time: `ceil(ncores / 64)` u64 words
//! per page, in off-die memory next to the owner vector. This is what lets
//! the model join the 128-, 256- and 512-core meshes; the only remaining
//! participant limit is the topology's own `CORE_LIMIT`, enforced with a
//! typed error when the topology is built.
//!
//! A multi-word copyset no longer fits a 20-byte protocol mail, so a write
//! grant does not carry the invalidation set inline. Instead the owner
//! deposits it in the requester's **grant-set scratch row** (per-core, in
//! shared memory) before publishing the grant mail; the requester — which
//! can have only one fault outstanding, so the row cannot be clobbered —
//! reads the row back after the grant arrives and runs the invalidation.
//!
//! All protocol mails ride on the mailbox system, like the strong model's.

use crate::stats::SvmStats;
use crate::svm::SvmShared;
use scc_hw::instr::EventKind;
use scc_hw::{CoreId, MemAttr};
use scc_kernel::{Kernel, PageFlags};
use scc_mailbox::{Mail, MailHandler, MailKind, Mailbox};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// Mail kinds of the write-invalidate protocol.
pub const WI_READ_REQ: MailKind = MailKind(3);
pub const WI_WRITE_REQ: MailKind = MailKind(4);
pub const WI_GRANT: MailKind = MailKind(5);
pub const WI_INV: MailKind = MailKind(6);
pub const WI_INV_ACK: MailKind = MailKind(7);

const NO_PAGE: u32 = u32::MAX;

/// A growable core bitmask: word `i` carries cores `64*i .. 64*i+63`,
/// mirroring the held-lock tracking pattern in the sync layer. Backed by
/// exactly `ceil(ncores / 64)` words when read from shared memory.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct CopySet(pub(crate) Vec<u64>);

impl CopySet {
    pub(crate) fn empty(words: usize) -> CopySet {
        CopySet(vec![0; words])
    }

    #[cfg(test)]
    pub(crate) fn contains(&self, core: CoreId) -> bool {
        let i = core.idx();
        self.0.get(i / 64).is_some_and(|w| w & (1 << (i % 64)) != 0)
    }

    pub(crate) fn insert(&mut self, core: CoreId) {
        let i = core.idx();
        if self.0.len() <= i / 64 {
            self.0.resize(i / 64 + 1, 0);
        }
        self.0[i / 64] |= 1 << (i % 64);
    }

    pub(crate) fn remove(&mut self, core: CoreId) {
        let i = core.idx();
        if let Some(w) = self.0.get_mut(i / 64) {
            *w &= !(1 << (i % 64));
        }
    }

    /// Number of cores in the set.
    pub(crate) fn count(&self) -> u32 {
        self.0.iter().map(|w| w.count_ones()).sum()
    }

    /// Iterate the member cores in ascending id order.
    pub(crate) fn cores(&self) -> impl Iterator<Item = CoreId> + '_ {
        self.0.iter().enumerate().flat_map(|(wi, &w)| {
            let mut m = w;
            std::iter::from_fn(move || {
                (m != 0).then(|| {
                    let bit = m.trailing_zeros() as usize;
                    m &= m - 1;
                    CoreId::from_raw(wi * 64 + bit)
                })
            })
        })
    }
}

impl SvmShared {
    /// Timed uncached read of a page's full copyset (multi-word bitmask of
    /// replica holders).
    pub(crate) fn copyset_read(&self, k: &mut Kernel<'_>, p: u32) -> CopySet {
        let words = self.copyset_words();
        let base = self.copyset_pa() + 8 * words * p;
        let mut out = Vec::with_capacity(words as usize);
        for w in 0..words {
            out.push(k.hw.read(base + 8 * w, 8, MemAttr::UNCACHED));
        }
        CopySet(out)
    }

    pub(crate) fn copyset_write(&self, k: &mut Kernel<'_>, p: u32, cs: &CopySet) {
        let words = self.copyset_words();
        let base = self.copyset_pa() + 8 * words * p;
        for w in 0..words {
            let v = cs.0.get(w as usize).copied().unwrap_or(0);
            k.hw.write(base + 8 * w, 8, v, MemAttr::UNCACHED);
        }
    }

    /// Reset page `p`'s copyset to the single core `only`.
    pub(crate) fn copyset_write_single(&self, k: &mut Kernel<'_>, p: u32, only: CoreId) {
        let mut cs = CopySet::empty(self.copyset_words() as usize);
        cs.insert(only);
        self.copyset_write(k, p, &cs);
    }

    /// Deposit the invalidation set a write grant hands to `requester`
    /// (the multi-word set no longer fits a protocol mail; see the module
    /// docs). Must happen before the grant mail is published.
    fn grantset_write(&self, k: &mut Kernel<'_>, requester: CoreId, cs: &CopySet) {
        let words = self.copyset_words();
        let base = self.grantset_pa() + 8 * words * requester.idx() as u32;
        for w in 0..words {
            let v = cs.0.get(w as usize).copied().unwrap_or(0);
            k.hw.write(base + 8 * w, 8, v, MemAttr::UNCACHED);
        }
    }

    /// Read back this core's deposited invalidation set after a write
    /// grant arrived. Only one fault can be outstanding per core, so the
    /// row is stable until the next grant directed at us.
    fn grantset_read(&self, k: &mut Kernel<'_>) -> CopySet {
        let words = self.copyset_words();
        let base = self.grantset_pa() + 8 * words * k.id().idx() as u32;
        let mut out = Vec::with_capacity(words as usize);
        for w in 0..words {
            out.push(k.hw.read(base + 8 * w, 8, MemAttr::UNCACHED));
        }
        CopySet(out)
    }

    /// Timed uncached read of a page's version counter.
    fn version_read(&self, k: &mut Kernel<'_>, p: u32) -> u32 {
        k.hw.read(self.version_pa() + 4 * p, 4, MemAttr::UNCACHED) as u32
    }

    fn version_write(&self, k: &mut Kernel<'_>, p: u32, v: u32) {
        k.hw
            .write(self.version_pa() + 4 * p, 4, u64::from(v), MemAttr::UNCACHED);
    }
}

/// Per-core cells for in-flight protocol state (one outstanding fault per
/// core, so single cells suffice).
pub(crate) struct WiCells {
    /// Which page's grant arrived (NO_PAGE = none), with its payload.
    grant_page: AtomicU32,
    grant_write: AtomicU32,
    grant_version: AtomicU32,
    grant_stamp: AtomicU64,
    /// Invalidation-acknowledgement countdown.
    inv_page: AtomicU32,
    inv_remaining: AtomicU32,
    inv_stamp: AtomicU64,
}

impl WiCells {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(WiCells {
            grant_page: AtomicU32::new(NO_PAGE),
            grant_write: AtomicU32::new(0),
            grant_version: AtomicU32::new(0),
            grant_stamp: AtomicU64::new(0),
            inv_page: AtomicU32::new(NO_PAGE),
            inv_remaining: AtomicU32::new(0),
            inv_stamp: AtomicU64::new(0),
        })
    }
}

fn req_payload(p: u32, requester: CoreId) -> [u8; 8] {
    let mut out = [0u8; 8];
    out[0..4].copy_from_slice(&p.to_le_bytes());
    out[4..8].copy_from_slice(&(requester.idx() as u32).to_le_bytes());
    out
}

fn grant_payload(p: u32, write: bool, version: u32) -> [u8; 9] {
    let mut out = [0u8; 9];
    out[0..4].copy_from_slice(&p.to_le_bytes());
    out[4..8].copy_from_slice(&version.to_le_bytes());
    out[8] = u8::from(write);
    out
}

/// The requester-side fault logic; called by the SVM fault handler for
/// pages of a write-invalidate region.
#[allow(clippy::too_many_arguments)] // internal fault plumbing, one call site
pub(crate) fn wi_fault(
    sh: &Arc<SvmShared>,
    mbx: &Mailbox,
    cells: &Arc<WiCells>,
    k: &mut Kernel<'_>,
    p: u32,
    pfn: u32,
    page_va: u32,
    write: bool,
) {
    let me = k.id();
    loop {
        let owner = sh
            .owner_read(k, p)
            .expect("write-invalidate page must have an owner after first touch");
        if owner == me {
            if !write {
                // The owner always has the freshest data; a read-fault with
                // ownership means our mapping was dropped (e.g. next-touch)
                // — remap read-only if replicas exist, read-write otherwise.
                let mut cs = sh.copyset_read(k, p);
                cs.remove(me);
                let flags = if cs.count() == 0 {
                    PageFlags::shared_rw()
                } else {
                    PageFlags::shared_ro_mpbt()
                };
                k.map_page(page_va, pfn, flags);
                k.hw.cl1invmb();
                return;
            }
            // Owner upgrading from shared to exclusive: invalidate every
            // replica ourselves.
            k.hw.flush_wcb();
            let mut cs = sh.copyset_read(k, p);
            cs.remove(me);
            let v = sh.version_read(k, p);
            sh.version_write(k, p, v.wrapping_add(1));
            sh.copyset_write_single(k, p, me);
            invalidate_replicas(mbx, cells, k, p, &cs);
            // Ownership might have been granted away by our own interrupt
            // handler while we waited for the acknowledgements.
            if sh.owner_read(k, p) == Some(me) {
                k.map_page(page_va, pfn, PageFlags::shared_rw());
                k.hw.cl1invmb();
                return;
            }
            continue;
        }

        // Ask the owner.
        let kind = if write { WI_WRITE_REQ } else { WI_READ_REQ };
        cells.grant_page.store(NO_PAGE, Ordering::Release);
        mbx.send(k, owner, kind, &req_payload(p, me));
        let cells2 = Arc::clone(cells);
        let want_write = u32::from(write);
        k.wait_event("write-invalidate grant", move || {
            (cells2.grant_page.load(Ordering::Acquire) == p
                && cells2.grant_write.load(Ordering::Acquire) == want_write)
                .then(|| ((), cells2.grant_stamp.load(Ordering::Acquire)))
        });
        cells.grant_page.store(NO_PAGE, Ordering::Release);
        let c = k.hw.machine().cfg.timing.dsm_handler;
        k.hw.advance(c);

        if write {
            // The granter deposited the invalidation set in our grant-set
            // row before publishing the grant (it no longer travels in the
            // mail; see the module docs).
            let cs = sh.grantset_read(k);
            invalidate_replicas(mbx, cells, k, p, &cs);
            if sh.owner_read(k, p) == Some(me) {
                k.map_page(page_va, pfn, PageFlags::shared_rw());
                k.hw.cl1invmb();
                SvmStats::bump(&sh.stats.ownership_transfers);
                return;
            }
            continue;
        }

        // Read grant: map the replica, then verify no write grant raced us
        // (the version would have moved on).
        let granted_version = cells.grant_version.load(Ordering::Acquire);
        k.map_page(page_va, pfn, PageFlags::shared_ro_mpbt());
        k.hw.cl1invmb();
        if sh.version_read(k, p) == granted_version {
            SvmStats::bump(&sh.stats.read_replicas);
            k.hw.trace(EventKind::ReadReplica, p, granted_version);
            return;
        }
        k.unmap_page(page_va);
    }
}

/// Send `WI_INV` to every core in `copyset` (excluding ourselves) and wait
/// for all acknowledgements.
fn invalidate_replicas(
    mbx: &Mailbox,
    cells: &Arc<WiCells>,
    k: &mut Kernel<'_>,
    p: u32,
    copyset: &CopySet,
) {
    let me = k.id();
    let mut targets = copyset.clone();
    targets.remove(me);
    let n = targets.count();
    if n == 0 {
        return;
    }
    cells.inv_page.store(p, Ordering::Release);
    cells.inv_remaining.store(n, Ordering::Release);
    k.hw.trace(EventKind::WiInvSend, p, n);
    for core in targets.cores() {
        mbx.send(k, core, WI_INV, &p.to_le_bytes());
    }
    let cells2 = Arc::clone(cells);
    k.wait_event("replica invalidation acks", move || {
        (cells2.inv_remaining.load(Ordering::Acquire) == 0)
            .then(|| ((), cells2.inv_stamp.load(Ordering::Acquire)))
    });
    cells.inv_page.store(NO_PAGE, Ordering::Release);
}

// ----------------------------------------------------------------------
// Mail handlers
// ----------------------------------------------------------------------

/// Owner side: read and write requests.
pub(crate) struct WiRequestHandler {
    pub(crate) sh: Arc<SvmShared>,
    pub(crate) mbx: Mailbox,
}

impl WiRequestHandler {
    fn handle(&self, k: &mut Kernel<'_>, mail: Mail, write: bool) {
        let sh = &self.sh;
        let p = mail.u32_at(0);
        let requester = CoreId::from_raw(mail.u32_at(4) as usize);
        let me = k.id();
        let cur = sh.owner_read(k, p).expect("request for unowned page");
        if cur == requester {
            return; // raced: requester already became owner
        }
        if cur != me {
            SvmStats::bump(&sh.stats.forwards);
            let kind = if write { WI_WRITE_REQ } else { WI_READ_REQ };
            self.mbx.send(k, cur, kind, mail.data());
            return;
        }
        let c = k.hw.machine().cfg.timing.dsm_handler;
        k.hw.advance(c);
        k.hw.flush_wcb();
        let va = crate::svm::SvmShared::va_of_page(p);
        let version = sh.version_read(k, p);
        if write {
            // Hand over ownership; the requester runs the invalidation.
            if !k.protect_page(
                va,
                PageFlags(PageFlags::PWT | PageFlags::MPBT),
            ) {
                k.unmap_page(va);
            }
            let mut cs = sh.copyset_read(k, p);
            cs.remove(requester);
            cs.remove(me);
            let new_version = version.wrapping_add(1);
            sh.version_write(k, p, new_version);
            // The invalidation set must be visible in the requester's
            // grant-set row before the grant mail is — the requester reads
            // it the moment the grant lands.
            sh.grantset_write(k, requester, &cs);
            sh.owner_write(k, p, requester);
            sh.copyset_write_single(k, p, requester);
            self.mbx.send(
                k,
                requester,
                WI_GRANT,
                &grant_payload(p, true, new_version),
            );
        } else {
            // Stay owner, downgrade to a shared replica, extend the copyset.
            k.protect_page(va, PageFlags::shared_ro_mpbt());
            let mut cs = sh.copyset_read(k, p);
            cs.insert(requester);
            cs.insert(me);
            sh.copyset_write(k, p, &cs);
            self.mbx.send(
                k,
                requester,
                WI_GRANT,
                &grant_payload(p, false, version),
            );
        }
    }
}

pub(crate) struct WiReadHandler(pub(crate) Arc<WiRequestHandler>);
impl MailHandler for WiReadHandler {
    fn on_mail(&self, k: &mut Kernel<'_>, mail: Mail) {
        self.0.handle(k, mail, false);
    }
}

pub(crate) struct WiWriteHandler(pub(crate) Arc<WiRequestHandler>);
impl MailHandler for WiWriteHandler {
    fn on_mail(&self, k: &mut Kernel<'_>, mail: Mail) {
        self.0.handle(k, mail, true);
    }
}

/// Requester side: grants.
pub(crate) struct WiGrantHandler {
    pub(crate) cells: Arc<WiCells>,
}

impl MailHandler for WiGrantHandler {
    fn on_mail(&self, k: &mut Kernel<'_>, mail: Mail) {
        let d = mail.data();
        let version = u32::from_le_bytes(d[4..8].try_into().unwrap());
        let write = d[8] != 0;
        k.hw
            .trace(EventKind::WiGrant, mail.u32_at(0), u32::from(write));
        self.cells.grant_version.store(version, Ordering::Release);
        self.cells
            .grant_write
            .store(u32::from(write), Ordering::Release);
        self.cells.grant_stamp.store(k.hw.now(), Ordering::Release);
        self.cells.grant_page.store(mail.u32_at(0), Ordering::Release);
    }
}

/// Replica side: invalidations.
pub(crate) struct WiInvHandler {
    pub(crate) sh: Arc<SvmShared>,
    pub(crate) mbx: Mailbox,
}

impl MailHandler for WiInvHandler {
    fn on_mail(&self, k: &mut Kernel<'_>, mail: Mail) {
        let p = mail.u32_at(0);
        let va = crate::svm::SvmShared::va_of_page(p);
        // Drop the replica (keep the frame number for cheap re-mapping).
        if !k.protect_page(va, PageFlags(PageFlags::PWT | PageFlags::MPBT)) {
            k.unmap_page(va);
        }
        k.hw.cl1invmb();
        SvmStats::bump(&self.sh.stats.invalidations);
        k.hw.trace(EventKind::WiInvRecv, p, 0);
        self.mbx.send(k, mail.from, WI_INV_ACK, &p.to_le_bytes());
    }
}

/// Writer side: invalidation acknowledgements.
pub(crate) struct WiInvAckHandler {
    pub(crate) cells: Arc<WiCells>,
}

impl MailHandler for WiInvAckHandler {
    fn on_mail(&self, k: &mut Kernel<'_>, mail: Mail) {
        let p = mail.u32_at(0);
        if self.cells.inv_page.load(Ordering::Acquire) == p {
            self.cells.inv_stamp.store(k.hw.now(), Ordering::Release);
            self.cells.inv_remaining.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copyset_grows_past_64_cores() {
        let mut cs = CopySet::empty(1);
        cs.insert(CoreId::from_raw(3));
        cs.insert(CoreId::from_raw(127));
        cs.insert(CoreId::from_raw(400));
        assert!(cs.contains(CoreId::from_raw(3)));
        assert!(cs.contains(CoreId::from_raw(127)));
        assert!(cs.contains(CoreId::from_raw(400)));
        assert!(!cs.contains(CoreId::from_raw(64)));
        assert_eq!(cs.count(), 3);
        let cores: Vec<usize> = cs.cores().map(|c| c.idx()).collect();
        assert_eq!(cores, vec![3, 127, 400], "ascending id order");
        cs.remove(CoreId::from_raw(127));
        assert!(!cs.contains(CoreId::from_raw(127)));
        assert_eq!(cs.count(), 2);
        // Removing beyond the backing words is a no-op, not a panic.
        cs.remove(CoreId::from_raw(4000));
        assert_eq!(cs.count(), 2);
    }
}
