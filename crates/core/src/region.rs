//! SVM regions and the shared region table.

use scc_kernel::SVM_VA_BASE;
use serde::{Deserialize, Serialize};

/// The memory consistency model of one SVM region (§6).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Consistency {
    /// Single-owner pages, ownership migrates on fault via the mailbox
    /// system ("Strong Memory Consistency Model").
    Strong,
    /// Lazy release consistency: correctness relies on lock/barrier
    /// acquire–release pairs; pages are writable everywhere.
    LazyRelease,
    /// IVY-style multiple-reader/single-writer write-invalidate (the
    /// paper's announced "other memory models" direction; see
    /// `write_invalidate.rs`).
    WriteInvalidate,
}

/// One allocated SVM region (a contiguous run of shared virtual pages).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SvmRegion {
    /// Base virtual address (page-aligned, inside the SVM window).
    pub va: u32,
    /// Requested size in bytes.
    pub bytes: u32,
    /// Consistency model chosen at allocation.
    pub model: Consistency,
    /// Index in the region table.
    pub index: usize,
}

impl SvmRegion {
    /// Number of pages spanned.
    pub fn pages(&self) -> u32 {
        self.bytes.div_ceil(4096)
    }

    /// Global SVM page index of the first page.
    pub fn first_page(&self) -> u32 {
        (self.va - SVM_VA_BASE) / 4096
    }

    /// Does `va` fall inside this region?
    pub fn contains(&self, va: u32) -> bool {
        va >= self.va && va < self.va + self.pages() * 4096
    }
}

/// Mutable per-region state shared by all cores (host-side).
#[derive(Debug)]
pub struct RegionState {
    pub region: SvmRegion,
    /// Sealed read-only by `mprotect_readonly`.
    pub readonly: bool,
    /// Current next-touch epoch (see `next_touch.rs`); 0 = never armed.
    pub nt_epoch: u32,
}

/// The shared region table: deterministic bump allocation over the SVM
/// virtual window.
#[derive(Debug, Default)]
pub struct RegionTable {
    pub regions: Vec<RegionState>,
    next_off: u32,
}

impl RegionTable {
    /// Create-or-fetch region number `index` (cores call in the same order,
    /// so the first arrival creates and the rest validate).
    pub fn get_or_create(
        &mut self,
        index: usize,
        bytes: u32,
        model: Consistency,
        max_bytes: u32,
    ) -> SvmRegion {
        assert!(bytes > 0, "svm_alloc of zero bytes");
        if index == self.regions.len() {
            let pages = bytes.div_ceil(4096);
            let va = SVM_VA_BASE + self.next_off;
            assert!(
                self.next_off + pages * 4096 <= max_bytes,
                "SVM window exhausted: {} + {} pages > {max_bytes} bytes",
                self.next_off,
                pages
            );
            self.next_off += pages * 4096;
            self.regions.push(RegionState {
                region: SvmRegion {
                    va,
                    bytes,
                    model,
                    index,
                },
                readonly: false,
                nt_epoch: 0,
            });
        }
        let r = &self.regions[index].region;
        assert!(
            r.bytes == bytes && r.model == model,
            "collective svm_alloc mismatch at index {index}: \
             {bytes}B/{model:?} here vs {}B/{:?} first",
            r.bytes,
            r.model
        );
        *r
    }

    /// The region containing `va`, if any.
    pub fn find(&self, va: u32) -> Option<SvmRegion> {
        self.regions
            .iter()
            .map(|s| s.region)
            .find(|r| r.contains(va))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_page_rounded_and_contiguous() {
        let mut t = RegionTable::default();
        let a = t.get_or_create(0, 100, Consistency::Strong, 1 << 20);
        let b = t.get_or_create(1, 8192, Consistency::LazyRelease, 1 << 20);
        assert_eq!(a.va, SVM_VA_BASE);
        assert_eq!(a.pages(), 1);
        assert_eq!(b.va, SVM_VA_BASE + 4096);
        assert_eq!(b.pages(), 2);
        assert_eq!(b.first_page(), 1);
    }

    #[test]
    fn second_caller_gets_same_region() {
        let mut t = RegionTable::default();
        let a1 = t.get_or_create(0, 4096, Consistency::Strong, 1 << 20);
        let a2 = t.get_or_create(0, 4096, Consistency::Strong, 1 << 20);
        assert_eq!(a1, a2);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn mismatched_collective_alloc_panics() {
        let mut t = RegionTable::default();
        t.get_or_create(0, 4096, Consistency::Strong, 1 << 20);
        t.get_or_create(0, 8192, Consistency::Strong, 1 << 20);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn window_exhaustion_panics() {
        let mut t = RegionTable::default();
        t.get_or_create(0, 8192, Consistency::Strong, 4096);
    }

    #[test]
    fn contains_and_find() {
        let mut t = RegionTable::default();
        let r = t.get_or_create(0, 10000, Consistency::Strong, 1 << 20);
        assert!(r.contains(SVM_VA_BASE));
        assert!(r.contains(SVM_VA_BASE + 3 * 4096 - 1));
        assert!(!r.contains(SVM_VA_BASE + 3 * 4096));
        assert_eq!(t.find(SVM_VA_BASE + 5), Some(r));
        assert_eq!(t.find(SVM_VA_BASE + 4 * 4096), None);
    }
}
