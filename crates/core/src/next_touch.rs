//! Affinity-on-next-touch (§8, the paper's announced future work,
//! following Noordergraaf/van der Pas and the authors' own Linux-kernel
//! extension [13]).
//!
//! Arming a region invalidates every core's mappings of it; the *next*
//! core to touch each page migrates the backing frame to its own memory
//! controller (unless it is already local). Later touchers map the
//! migrated frame. This gives applications a dynamic re-distribution
//! point, e.g. between the phases of an adaptive computation.

use crate::region::{Consistency, SvmRegion};
use crate::svm::SvmCtx;
use scc_kernel::Kernel;

impl SvmCtx {
    /// Collectively arm next-touch migration for `region`.
    ///
    /// Supported for [`Consistency::LazyRelease`] regions: the strong
    /// model's ownership migration already moves access (though not the
    /// frame), and combining both would require a cross-protocol dance the
    /// paper leaves to future work as well.
    pub fn arm_next_touch(&self, k: &mut Kernel<'_>, region: SvmRegion) {
        assert_eq!(
            region.model,
            Consistency::LazyRelease,
            "next-touch is supported for lazy-release regions"
        );
        k.hw.flush_wcb();
        k.hw.cl1invmb();
        // Drop our mappings so the next access faults.
        let first = region.first_page();
        for p in first..first + region.pages() {
            let va = scc_kernel::SVM_VA_BASE + p * 4096;
            k.unmap_page(va);
        }
        scc_kernel::ram_barrier(k, "svm.nt.pre");
        if k.rank() == 0 {
            self.sh.table.lock().regions[region.index].nt_epoch += 1;
        }
        scc_kernel::ram_barrier(k, "svm.nt.post");
    }
}
