//! Read-only memory regions (§6.4).
//!
//! After initialisation, data that is never written again can be sealed:
//! a collective system call clears the `read/write` bit — so stray writes
//! become hard page faults, catching bugs "by their first occurrence and
//! not by a wrong final result" — and clears the `MPBT` bit, which
//! re-enables the otherwise sacrificed L2 cache for these pages.

use crate::region::SvmRegion;
use crate::svm::SvmCtx;
use scc_kernel::{Kernel, PageFlags};

impl SvmCtx {
    /// Collectively seal `region` read-only and L2-cacheable.
    ///
    /// All participants must call this together; each core remaps its view
    /// of every already-backed page. Pages never touched anywhere remain
    /// unmapped and are mapped read-only on their first (read) fault.
    pub fn mprotect_readonly(&self, k: &mut Kernel<'_>, region: SvmRegion) {
        // The seal is a collective flush + invalidate + rendezvous — full
        // barrier semantics, which the trace must reflect so the checker's
        // happens-before model orders pre-seal writes before post-seal
        // reads.
        k.hw.trace(scc_hw::instr::EventKind::Barrier, 0, 0);
        k.hw.trace_sync_reset();
        // Make our own modifications globally visible, then forget our
        // (possibly stale) tagged cache lines before re-reading through L2.
        k.hw.flush_wcb();
        k.hw.cl1invmb();
        scc_kernel::ram_barrier(k, "svm.ro.pre");
        if k.rank() == 0 {
            self.sh.table.lock().regions[region.index].readonly = true;
        }
        // The page_info peeks below read frozen metadata (nothing mutates
        // between the two barriers), but take the safe window once so the
        // first peek happens at a deterministic point under the parallel
        // engine.
        k.hw.host_order_point();
        let first = region.first_page();
        for p in first..first + region.pages() {
            if let Some(pfn) = self.sh.page_info(p).frame {
                let va = scc_kernel::SVM_VA_BASE + p * 4096;
                k.map_page(va, pfn, PageFlags::readonly_l2());
                // Sealed pages are mapped on every core: drop any strong-
                // model exclusivity claim (reads are now globally shared).
                k.hw.frame_release_exclusive(pfn);
            }
        }
        scc_kernel::ram_barrier(k, "svm.ro.post");
    }
}
