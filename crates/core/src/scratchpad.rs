//! The first-touch scratch pad (§6.3) — the ownership directory mapping
//! shared pages to backing frames.
//!
//! The paper places this table in the on-die MPBs — "the SCC's on-die
//! memory partly as scratch pad" — striped across the cores with 16-bit
//! entries, and notes that relocating it to off-die memory would lift the
//! 256 MByte limit at the price of slower faults. Both variants are
//! implemented; the off-die one doubles as the A1 ablation.
//!
//! Neither paper variant survives large meshes: the 16-bit entry encoding
//! caps the shared region at 64 Ki frames, and striping one lock register
//! per core over *all* cores makes every fault a cross-die TAS round trip.
//! The third variant, [`ScratchLocation::ShardedMc`], shards the directory
//! per memory controller: page `p` is homed on controller `p % num_mcs`,
//! its 32-bit entry lives in frames allocated behind that controller, and
//! its lock is a TAS register of a core *near* that controller. Lookups,
//! updates and lock traffic for a page all travel to the same quadrant.
//! [`ScratchLocation::Auto`] (the default) picks the paper's MPB design
//! on SCC-sized machines and the sharded directory beyond it.
//!
//! Entries are read/written uncached (one word each); allocation races are
//! excluded by an SCC test-and-set register.
//!
//! Under the parallel conservative engine (DESIGN.md §8) a first-touch
//! lookup is a globally visible read of on-die memory; it demotes to the
//! lock-free fast path like any other order point. The hardware layer
//! additionally tags every shared frame with an ownership epoch
//! (`FrameOwners::epoch_of`, bumped on each claim/release), so a
//! first-touch decision can be attributed to the ownership generation it
//! was made under when diagnosing parallel-engine schedules.

use scc_hw::mpb::MpbArray;
use scc_hw::{CoreId, MemAttr, Topology};
use scc_kernel::Kernel;
use std::sync::Arc;

/// Bytes reserved at the top of each MPB for the scratch pad.
pub const SCRATCH_BYTES_PER_CORE: u32 = 1024;
/// Offset of the scratch pad inside each MPB.
pub const SCRATCH_OFF: u32 = scc_hw::config::MPB_BYTES as u32 - SCRATCH_BYTES_PER_CORE;

/// Largest populated-core count for which [`ScratchLocation::Auto`] keeps
/// the paper's MPB design (matches the mailbox system's in-MPB slot limit).
pub const MPB_SCRATCH_CORE_LIMIT: usize = 128;

/// Where the scratch pad (the page-ownership directory) lives.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ScratchLocation {
    /// Pick [`Mpb`](Self::Mpb) on machines where it fits (the paper's
    /// design, up to [`MPB_SCRATCH_CORE_LIMIT`] cores and 16-bit frame
    /// indices), [`ShardedMc`](Self::ShardedMc) beyond.
    Auto,
    /// Striped over the MPBs (the paper's design: fast, capacity-limited).
    Mpb,
    /// One flat table in off-die shared memory (unlimited, slower).
    OffDie,
    /// Sharded per memory controller: page `p` is homed on controller
    /// `p % num_mcs`, its 32-bit entry lives in off-die frames behind that
    /// controller, and its lock is a TAS register of a core near it.
    ShardedMc,
}

impl ScratchLocation {
    /// Resolve [`Auto`](Self::Auto) against a concrete machine shape;
    /// explicit locations pass through unchanged.
    pub fn resolve(self, ncores: usize, pages: u32) -> ScratchLocation {
        match self {
            ScratchLocation::Auto => {
                let fits_mpb = ncores <= MPB_SCRATCH_CORE_LIMIT
                    && pages <= Scratchpad::mpb_capacity(ncores)
                    && pages < u16::MAX as u32;
                if fits_mpb {
                    ScratchLocation::Mpb
                } else {
                    ScratchLocation::ShardedMc
                }
            }
            loc => loc,
        }
    }
}

/// The scratch pad accessor.
#[derive(Clone, Debug)]
pub struct Scratchpad {
    loc: ScratchLocation,
    ncores: u32,
    /// Base PA of the off-die table (when `loc == OffDie`).
    offdie_pa: u32,
    pages: u32,
    /// First frame of the shared region (entries are relative to it).
    base_pfn: u32,
    /// `ShardedMc`: number of directory shards (= memory controllers).
    num_mcs: u32,
    /// `ShardedMc`: frames per shard.
    frames_per_shard: u32,
    /// `ShardedMc`: shard-major frame table — shard `s` owns
    /// `shard_frames[s*frames_per_shard .. (s+1)*frames_per_shard]`,
    /// each frame allocated behind controller `s`.
    shard_frames: Arc<Vec<u32>>,
    /// `ShardedMc`: lock registers grouped by home controller — the
    /// populated cores whose nearest controller is `s`.
    lock_groups: Arc<Vec<Vec<CoreId>>>,
}

impl Scratchpad {
    /// Capacity (pages) of the MPB variant for `ncores` cores.
    pub fn mpb_capacity(ncores: usize) -> u32 {
        ncores as u32 * SCRATCH_BYTES_PER_CORE / 2
    }

    /// Frames each shard of a [`ScratchLocation::ShardedMc`] directory
    /// needs for `pages` entries over `num_mcs` controllers (32-bit
    /// entries, round-robin page-to-shard assignment).
    pub fn shard_frames_each(num_mcs: usize, pages: u32) -> u32 {
        let entries = pages.div_ceil(num_mcs as u32);
        (entries * 4).div_ceil(4096).max(1)
    }

    pub fn new(
        loc: ScratchLocation,
        ncores: usize,
        pages: u32,
        offdie_pa: u32,
        base_pfn: u32,
    ) -> Self {
        match loc {
            ScratchLocation::Mpb => assert!(
                pages <= Self::mpb_capacity(ncores),
                "shared region too large for the MPB scratch pad \
                 ({pages} pages > {}); use ScratchLocation::ShardedMc",
                Self::mpb_capacity(ncores)
            ),
            ScratchLocation::OffDie => {}
            ScratchLocation::Auto | ScratchLocation::ShardedMc => panic!(
                "Scratchpad::new takes a resolved flat location; \
                 use ScratchLocation::resolve and Scratchpad::sharded"
            ),
        }
        Scratchpad {
            loc,
            ncores: ncores as u32,
            offdie_pa,
            pages,
            base_pfn,
            num_mcs: 0,
            frames_per_shard: 0,
            shard_frames: Arc::new(Vec::new()),
            lock_groups: Arc::new(Vec::new()),
        }
    }

    /// Build the per-controller sharded directory. `shard_frames` must
    /// hold `num_mcs * shard_frames_each(..)` zeroed frames in shard-major
    /// order, shard `s` allocated behind controller `s`.
    pub fn sharded(
        topo: &Topology,
        ncores: usize,
        pages: u32,
        shard_frames: Arc<Vec<u32>>,
        base_pfn: u32,
    ) -> Self {
        let num_mcs = topo.num_mcs();
        let frames_per_shard = Self::shard_frames_each(num_mcs, pages);
        assert_eq!(
            shard_frames.len(),
            num_mcs * frames_per_shard as usize,
            "sharded scratch pad frame table has the wrong shape"
        );
        let mut lock_groups = vec![Vec::new(); num_mcs];
        for c in (0..ncores).map(CoreId::from_raw) {
            lock_groups[topo.nearest_mc(c)].push(c);
        }
        Scratchpad {
            loc: ScratchLocation::ShardedMc,
            ncores: ncores as u32,
            offdie_pa: 0,
            pages,
            base_pfn,
            num_mcs: num_mcs as u32,
            frames_per_shard,
            shard_frames,
            lock_groups: Arc::new(lock_groups),
        }
    }

    /// Where this scratch pad lives (always a resolved location, never
    /// [`ScratchLocation::Auto`]).
    pub fn location(&self) -> ScratchLocation {
        self.loc
    }

    /// Entry width in bytes: the paper's variants keep the 16-bit
    /// representation, the sharded directory uses full 32-bit entries.
    #[inline]
    fn entry_size(&self) -> u32 {
        match self.loc {
            ScratchLocation::ShardedMc => 4,
            _ => 2,
        }
    }

    /// Physical address of page `p`'s entry.
    #[inline]
    fn entry_pa(&self, p: u32) -> u32 {
        debug_assert!(p < self.pages, "page {p} beyond scratch pad");
        match self.loc {
            ScratchLocation::Mpb => {
                let core = CoreId::from_raw((p % self.ncores) as usize);
                MpbArray::pa(core, (SCRATCH_OFF + (p / self.ncores) * 2) as usize)
            }
            ScratchLocation::OffDie => self.offdie_pa + p * 2,
            ScratchLocation::ShardedMc => {
                let shard = p % self.num_mcs;
                let byte = (p / self.num_mcs) * 4;
                let f = self.shard_frames
                    [(shard * self.frames_per_shard + byte / 4096) as usize];
                (f << 12) + (byte % 4096)
            }
            ScratchLocation::Auto => unreachable!("constructors resolve Auto"),
        }
    }

    /// The test-and-set register protecting page `p`'s entry. Flat
    /// variants stripe over all cores; the sharded directory stripes over
    /// the cores nearest the page's home controller, so lock and entry
    /// traffic share a quadrant.
    #[inline]
    pub fn lock_of(&self, p: u32) -> CoreId {
        if self.loc == ScratchLocation::ShardedMc {
            let g = &self.lock_groups[(p % self.num_mcs) as usize];
            if !g.is_empty() {
                return g[((p / self.num_mcs) as usize) % g.len()];
            }
        }
        CoreId::from_raw((p % self.ncores) as usize)
    }

    /// Timed read of page `p`'s entry: `Some(pfn)` if allocated.
    pub fn read(&self, k: &mut Kernel<'_>, p: u32) -> Option<u32> {
        let v = k.hw.read(self.entry_pa(p), self.entry_size() as usize, MemAttr::UNCACHED) as u32;
        (v != 0).then(|| self.decode(v))
    }

    /// Raw (untimed) peek for tests and wait conditions.
    pub fn peek(&self, mach: &scc_hw::machine::MachineInner, p: u32) -> Option<u32> {
        let pa = self.entry_pa(p);
        let sz = self.entry_size() as usize;
        let v = match mach.map.resolve(pa) {
            scc_hw::ram::Backing::Mpb { .. } => mach.mpb.read(pa, sz),
            scc_hw::ram::Backing::Ram { .. } => mach.ram.read(pa, sz),
        } as u32;
        (v != 0).then(|| self.decode(v))
    }

    /// Timed write of page `p`'s entry.
    pub fn write(&self, k: &mut Kernel<'_>, p: u32, pfn: u32) {
        let enc = self.encode(pfn);
        k.hw.write(
            self.entry_pa(p),
            self.entry_size() as usize,
            enc as u64,
            MemAttr::UNCACHED,
        );
    }

    /// Clear page `p`'s entry (used by next-touch migration).
    pub fn clear(&self, k: &mut Kernel<'_>, p: u32) {
        k.hw.write(self.entry_pa(p), self.entry_size() as usize, 0, MemAttr::UNCACHED);
    }

    /// Encode a shared-region frame as a directory entry: the frame index
    /// relative to the shared base, plus 1 (0 = unallocated). The paper's
    /// variants store a "16 bit representation" from which the physical
    /// address can be rebuilt; the sharded directory widens to 32 bits.
    fn encode(&self, pfn: u32) -> u32 {
        let rel = pfn
            .checked_sub(self.base_pfn)
            .expect("frame below the shared region");
        if self.entry_size() == 2 {
            assert!(rel < u16::MAX as u32, "frame beyond 16-bit scratch range");
        }
        rel + 1
    }

    fn decode(&self, entry: u32) -> u32 {
        self.base_pfn + entry - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pad(loc: ScratchLocation) -> Scratchpad {
        Scratchpad::new(loc, 48, 1000, 0x100000, 0x4000)
    }

    fn sharded_pad(pages: u32) -> Scratchpad {
        let topo = Topology::scc48();
        let fps = Scratchpad::shard_frames_each(topo.num_mcs(), pages);
        // Synthetic frame table: shard s at frames 0x8000 + s*0x100 ...
        let frames: Vec<u32> = (0..topo.num_mcs() as u32)
            .flat_map(|s| (0..fps).map(move |i| 0x8000 + s * 0x100 + i))
            .collect();
        Scratchpad::sharded(&topo, 48, pages, Arc::new(frames), 0x4000)
    }

    #[test]
    fn mpb_entries_stripe_across_cores() {
        let s = pad(ScratchLocation::Mpb);
        // Pages p and p+48 land in the same core's MPB, 2 bytes apart.
        let a = s.entry_pa(5);
        let b = s.entry_pa(5 + 48);
        assert_eq!(b - a, 2);
        // Consecutive pages land on different cores.
        assert_ne!(
            MpbArray::owner_and_offset(s.entry_pa(5)).0,
            MpbArray::owner_and_offset(s.entry_pa(6)).0
        );
    }

    #[test]
    fn offdie_entries_flat() {
        let s = pad(ScratchLocation::OffDie);
        assert_eq!(s.entry_pa(0), 0x100000);
        assert_eq!(s.entry_pa(7), 0x100000 + 14);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let s = pad(ScratchLocation::OffDie);
        for pfn in [0x4000, 0x4001, 0x4000 + 60000] {
            assert_eq!(s.decode(s.encode(pfn)), pfn);
        }
    }

    #[test]
    #[should_panic(expected = "16-bit")]
    fn encode_overflow_panics() {
        let s = pad(ScratchLocation::OffDie);
        s.encode(0x4000 + 70000);
    }

    #[test]
    #[should_panic(expected = "too large for the MPB")]
    fn mpb_capacity_enforced() {
        Scratchpad::new(ScratchLocation::Mpb, 48, 100_000, 0, 0);
    }

    #[test]
    fn lock_striping() {
        let s = pad(ScratchLocation::Mpb);
        assert_eq!(s.lock_of(0), CoreId::new(0));
        assert_eq!(s.lock_of(49), CoreId::new(1));
    }

    #[test]
    fn auto_resolves_by_machine_shape() {
        // SCC-sized: the paper's MPB design.
        assert_eq!(ScratchLocation::Auto.resolve(48, 16384), ScratchLocation::Mpb);
        // 512 cores: beyond the in-MPB core limit.
        assert_eq!(ScratchLocation::Auto.resolve(512, 16384), ScratchLocation::ShardedMc);
        // Region beyond the 16-bit frame index even at SCC size.
        assert_eq!(ScratchLocation::Auto.resolve(48, 70000), ScratchLocation::ShardedMc);
        // Explicit locations pass through.
        assert_eq!(ScratchLocation::OffDie.resolve(512, 70000), ScratchLocation::OffDie);
    }

    #[test]
    fn sharded_entries_land_in_home_shard() {
        let s = sharded_pad(1000);
        // Page p's entry sits in shard p % num_mcs (frames 0x8000+s*0x100).
        for p in [0u32, 1, 2, 3, 4, 7, 999] {
            let pa = s.entry_pa(p);
            let shard = (pa >> 12).wrapping_sub(0x8000) / 0x100;
            assert_eq!(shard, p % 4, "page {p}");
        }
        // Pages p and p+num_mcs share a shard, 4 bytes apart.
        assert_eq!(s.entry_pa(8) - s.entry_pa(4), 4);
    }

    #[test]
    fn sharded_entries_cross_frames_without_straddling() {
        // 4 MCs, 9000 pages -> 2250 entries = 9000 bytes = 3 frames/shard.
        let s = sharded_pad(9000);
        assert_eq!(Scratchpad::shard_frames_each(4, 9000), 3);
        // Entry 1024 of shard 0 is the first entry of the shard's 2nd frame.
        let p = 1024 * 4;
        assert_eq!(s.entry_pa(p) & 0xfff, 0);
        assert_ne!(s.entry_pa(p) >> 12, s.entry_pa(p - 4) >> 12);
    }

    #[test]
    fn sharded_encode_is_32_bit() {
        let s = sharded_pad(1000);
        // Far beyond the 16-bit range the flat variants enforce.
        let pfn = 0x4000 + 70000;
        assert_eq!(s.decode(s.encode(pfn)), pfn);
    }

    #[test]
    fn sharded_locks_stay_near_the_home_controller() {
        let topo = Topology::scc48();
        let s = sharded_pad(1000);
        for p in 0..100u32 {
            let mc = (p % 4) as usize;
            assert_eq!(
                topo.nearest_mc(s.lock_of(p)),
                mc,
                "page {p}'s lock must live in its home quadrant"
            );
        }
        // Different pages of the same shard stripe over that quadrant's
        // cores rather than hammering one register.
        assert_ne!(s.lock_of(0), s.lock_of(4));
    }
}
