//! The first-touch scratch pad (§6.3).
//!
//! Each shared page has a 16-bit entry recording which physical frame backs
//! it (0 = not yet allocated). The paper places this table in the on-die
//! MPBs — "the SCC's on-die memory partly as scratch pad" — striped across
//! the cores, and notes that relocating it to off-die memory would lift the
//! 256 MByte limit at the price of slower faults. Both variants are
//! implemented; the off-die one doubles as the A1 ablation.
//!
//! Entries are read/written uncached (one word each); allocation races are
//! excluded by an SCC test-and-set register.
//!
//! Under the parallel conservative engine (DESIGN.md §8) a first-touch
//! lookup is a globally visible read of on-die memory; it demotes to the
//! lock-free fast path like any other order point. The hardware layer
//! additionally tags every shared frame with an ownership epoch
//! (`FrameOwners::epoch_of`, bumped on each claim/release), so a
//! first-touch decision can be attributed to the ownership generation it
//! was made under when diagnosing parallel-engine schedules.

use scc_hw::mpb::MpbArray;
use scc_hw::{CoreId, MemAttr};
use scc_kernel::Kernel;

/// Bytes reserved at the top of each MPB for the scratch pad.
pub const SCRATCH_BYTES_PER_CORE: u32 = 1024;
/// Offset of the scratch pad inside each MPB.
pub const SCRATCH_OFF: u32 = scc_hw::config::MPB_BYTES as u32 - SCRATCH_BYTES_PER_CORE;

/// Where the scratch pad lives.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ScratchLocation {
    /// Striped over the MPBs (the paper's design: fast, capacity-limited).
    Mpb,
    /// One flat table in off-die shared memory (unlimited, slower).
    OffDie,
}

/// The scratch pad accessor.
#[derive(Clone, Debug)]
pub struct Scratchpad {
    loc: ScratchLocation,
    ncores: u32,
    /// Base PA of the off-die table (when `loc == OffDie`).
    offdie_pa: u32,
    pages: u32,
    /// First frame of the shared region (entries are relative to it).
    base_pfn: u32,
}

impl Scratchpad {
    /// Capacity (pages) of the MPB variant for `ncores` cores.
    pub fn mpb_capacity(ncores: usize) -> u32 {
        ncores as u32 * SCRATCH_BYTES_PER_CORE / 2
    }

    pub fn new(
        loc: ScratchLocation,
        ncores: usize,
        pages: u32,
        offdie_pa: u32,
        base_pfn: u32,
    ) -> Self {
        if loc == ScratchLocation::Mpb {
            assert!(
                pages <= Self::mpb_capacity(ncores),
                "shared region too large for the MPB scratch pad \
                 ({pages} pages > {}); use ScratchLocation::OffDie",
                Self::mpb_capacity(ncores)
            );
        }
        Scratchpad {
            loc,
            ncores: ncores as u32,
            offdie_pa,
            pages,
            base_pfn,
        }
    }

    /// Where this scratch pad lives.
    pub fn location(&self) -> ScratchLocation {
        self.loc
    }

    /// Physical address of page `p`'s entry.
    #[inline]
    fn entry_pa(&self, p: u32) -> u32 {
        debug_assert!(p < self.pages, "page {p} beyond scratch pad");
        match self.loc {
            ScratchLocation::Mpb => {
                let core = CoreId::new((p % self.ncores) as usize);
                MpbArray::pa(core, (SCRATCH_OFF + (p / self.ncores) * 2) as usize)
            }
            ScratchLocation::OffDie => self.offdie_pa + p * 2,
        }
    }

    /// The test-and-set register protecting page `p`'s entry.
    #[inline]
    pub fn lock_of(&self, p: u32) -> CoreId {
        CoreId::new((p % self.ncores) as usize)
    }

    /// Timed read of page `p`'s entry: `Some(pfn)` if allocated.
    pub fn read(&self, k: &mut Kernel<'_>, p: u32) -> Option<u32> {
        let v = k.hw.read(self.entry_pa(p), 2, MemAttr::UNCACHED) as u32;
        (v != 0).then(|| self.decode(v))
    }

    /// Raw (untimed) peek for tests and wait conditions.
    pub fn peek(&self, mach: &scc_hw::machine::MachineInner, p: u32) -> Option<u32> {
        let pa = self.entry_pa(p);
        let v = match mach.map.resolve(pa) {
            scc_hw::ram::Backing::Mpb { .. } => mach.mpb.read(pa, 2),
            scc_hw::ram::Backing::Ram { .. } => mach.ram.read(pa, 2),
        } as u32;
        (v != 0).then(|| self.decode(v))
    }

    /// Timed write of page `p`'s entry.
    pub fn write(&self, k: &mut Kernel<'_>, p: u32, pfn: u32) {
        let enc = self.encode(pfn);
        k.hw.write(self.entry_pa(p), 2, enc as u64, MemAttr::UNCACHED);
    }

    /// Clear page `p`'s entry (used by next-touch migration).
    pub fn clear(&self, k: &mut Kernel<'_>, p: u32) {
        k.hw.write(self.entry_pa(p), 2, 0, MemAttr::UNCACHED);
    }

    /// Encode a shared-region frame as a 16-bit entry. The paper stores a
    /// "16 bit representation" from which the physical address can be
    /// rebuilt — here: the frame index relative to the shared base, plus 1.
    fn encode(&self, pfn: u32) -> u32 {
        let rel = pfn
            .checked_sub(self.base_pfn)
            .expect("frame below the shared region");
        assert!(rel < u16::MAX as u32, "frame beyond 16-bit scratch range");
        rel + 1
    }

    fn decode(&self, entry: u32) -> u32 {
        self.base_pfn + entry - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pad(loc: ScratchLocation) -> Scratchpad {
        Scratchpad::new(loc, 48, 1000, 0x100000, 0x4000)
    }

    #[test]
    fn mpb_entries_stripe_across_cores() {
        let s = pad(ScratchLocation::Mpb);
        // Pages p and p+48 land in the same core's MPB, 2 bytes apart.
        let a = s.entry_pa(5);
        let b = s.entry_pa(5 + 48);
        assert_eq!(b - a, 2);
        // Consecutive pages land on different cores.
        assert_ne!(
            MpbArray::owner_and_offset(s.entry_pa(5)).0,
            MpbArray::owner_and_offset(s.entry_pa(6)).0
        );
    }

    #[test]
    fn offdie_entries_flat() {
        let s = pad(ScratchLocation::OffDie);
        assert_eq!(s.entry_pa(0), 0x100000);
        assert_eq!(s.entry_pa(7), 0x100000 + 14);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let s = pad(ScratchLocation::OffDie);
        for pfn in [0x4000, 0x4001, 0x4000 + 60000] {
            assert_eq!(s.decode(s.encode(pfn)), pfn);
        }
    }

    #[test]
    #[should_panic(expected = "16-bit")]
    fn encode_overflow_panics() {
        let s = pad(ScratchLocation::OffDie);
        s.encode(0x4000 + 70000);
    }

    #[test]
    #[should_panic(expected = "too large for the MPB")]
    fn mpb_capacity_enforced() {
        Scratchpad::new(ScratchLocation::Mpb, 48, 100_000, 0, 0);
    }

    #[test]
    fn lock_striping() {
        let s = pad(ScratchLocation::Mpb);
        assert_eq!(s.lock_of(0), CoreId::new(0));
        assert_eq!(s.lock_of(49), CoreId::new(1));
    }
}
