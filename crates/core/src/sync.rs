//! SVM synchronisation primitives: locks and barriers with the
//! acquire/release cache actions of the lazy release consistency model.
//!
//! In MetalSVM the lazy model "extends our synchronization primitives":
//! entering a critical section invalidates the tagged cache lines via
//! `CL1INVMB`; leaving it flushes the write-combine buffer. The same hooks
//! are harmless (and cheap) under the strong model, so they run always.

use crate::svm::SvmCtx;
use scc_hw::instr::EventKind;
use scc_hw::CoreId;
use scc_kernel::Kernel;

/// A global SVM lock, realised by one of the SCC's test-and-set registers
/// (as in §6.3), carrying the lazy-release cache actions.
#[derive(Copy, Clone, Debug)]
pub struct SvmLock {
    reg: CoreId,
}

impl SvmCtx {
    /// Create a lock. Collective in the SPMD sense: every core must create
    /// its locks in the same order to agree on register assignment.
    pub fn lock_new(&mut self, k: &mut Kernel<'_>) -> SvmLock {
        let ncores = k.hw.machine().cfg.ncores as u32;
        // Skip register 0, which backs the RAM barrier and scratch-pad
        // slice 0, to reduce contention (correctness does not depend on
        // this: none of the users nest acquisitions).
        let reg = CoreId::new((1 + self.lock_cursor % (ncores - 1)) as usize);
        self.lock_cursor += 1;
        SvmLock { reg }
    }

    /// Barrier over all participating cores with release/acquire cache
    /// semantics: flush the WCB before waiting, invalidate after release.
    pub fn barrier(&self, k: &mut Kernel<'_>) {
        k.hw.trace(EventKind::Barrier, 0, 0);
        k.hw.flush_wcb();
        scc_kernel::ram_barrier(k, "svm.barrier");
        k.hw.cl1invmb();
    }

    /// A barrier *without* the acquire-side invalidation. Exists so tests
    /// and demos can exhibit the staleness that the lazy release model's
    /// hooks prevent; not part of the paper's API.
    pub fn barrier_no_invalidate_for_test(&self, k: &mut Kernel<'_>) {
        k.hw.flush_wcb();
        scc_kernel::ram_barrier(k, "svm.barrier");
    }
}

impl SvmLock {
    /// Enter the critical section: acquire the register, then invalidate
    /// tagged lines so all prior writers' data becomes visible.
    pub fn acquire(&self, k: &mut Kernel<'_>) {
        k.hw.tas_lock(self.reg);
        k.hw.trace(EventKind::AcquireInv, self.reg.idx() as u32, 0);
        k.hw.cl1invmb();
    }

    /// Leave the critical section: push out combined writes, release.
    pub fn release(&self, k: &mut Kernel<'_>) {
        k.hw.trace(EventKind::ReleaseFlush, self.reg.idx() as u32, 0);
        k.hw.flush_wcb();
        k.hw.tas_unlock(self.reg);
    }

    /// Run `f` inside the critical section.
    pub fn with<R>(&self, k: &mut Kernel<'_>, f: impl FnOnce(&mut Kernel<'_>) -> R) -> R {
        self.acquire(k);
        let r = f(k);
        self.release(k);
        r
    }
}
