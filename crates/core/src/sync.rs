//! SVM synchronisation primitives: locks and barriers with the
//! acquire/release cache actions of the lazy release consistency model.
//!
//! In MetalSVM the lazy model "extends our synchronization primitives":
//! entering a critical section invalidates the tagged cache lines via
//! `CL1INVMB`; leaving it flushes the write-combine buffer. The same hooks
//! are harmless (and cheap) under the strong model, so they run always.
//!
//! Misuse of the primitives — re-acquiring a lock this core already
//! holds, or releasing one it does not — is reported as a typed
//! [`SyncError`] and recorded as an [`EventKind::SyncErr`] trace event,
//! which the `svmcheck` synchronization linter turns into a finding. The
//! simulated hardware state is left untouched on error, so a misbehaving
//! kernel cannot deadlock the cluster through the error path.

use crate::svm::SvmCtx;
use scc_hw::instr::EventKind;
use scc_hw::CoreId;
use scc_kernel::Kernel;
use std::sync::Arc;

/// Acquire `reg` while still servicing interrupts between attempts.
///
/// A core waiting for an SVM lock may be the current owner of a
/// strong-model page that another core — possibly the lock holder itself,
/// faulting inside the critical section — needs before it can ever
/// release the lock. The raw hardware spin (`CoreCtx::tas_lock`) never
/// runs the mail handlers, so that cycle deadlocks; waiting through the
/// kernel keeps the ownership protocol live, like keeping interrupts
/// enabled while spinning on the real hardware.
fn tas_lock_service(k: &mut Kernel<'_>, reg: CoreId) {
    loop {
        if k.hw.tas_try(reg) {
            return;
        }
        let mach = Arc::clone(k.hw.machine());
        k.wait_event("SVM lock", move || {
            (!mach.tas.is_locked(reg)).then_some(((), 0))
        });
    }
}

/// A global SVM lock, realised by one of the SCC's test-and-set registers
/// (as in §6.3), carrying the lazy-release cache actions.
#[derive(Copy, Clone, Debug)]
pub struct SvmLock {
    reg: CoreId,
}

/// Typed synchronisation-misuse error. The discriminant codes are what
/// [`EventKind::SyncErr`] carries in its `b` payload slot.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SyncError {
    /// `acquire` on a lock this core already holds (code 1).
    AcquireReentry { reg: usize },
    /// `release` of a lock this core does not hold — a double release or
    /// a release without acquire (code 2).
    ReleaseNotHeld { reg: usize },
}

impl SyncError {
    /// The error code recorded in the [`EventKind::SyncErr`] `b` slot.
    pub fn code(self) -> u32 {
        match self {
            SyncError::AcquireReentry { .. } => 1,
            SyncError::ReleaseNotHeld { .. } => 2,
        }
    }

    /// The test-and-set register involved.
    pub fn reg(self) -> usize {
        match self {
            SyncError::AcquireReentry { reg } | SyncError::ReleaseNotHeld { reg } => reg,
        }
    }
}

impl std::fmt::Display for SyncError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SyncError::AcquireReentry { reg } => {
                write!(f, "acquire re-entry on held lock (reg {reg})")
            }
            SyncError::ReleaseNotHeld { reg } => {
                write!(f, "release of a lock not held (reg {reg})")
            }
        }
    }
}

/// Per-core bitset of held lock registers, stored as a kernel extension.
/// Registers are core ids, which exceed 64 on large meshes, so this is a
/// growable word vector rather than a single mask.
struct HeldLocks(Vec<u64>);

fn is_held(k: &mut Kernel<'_>, reg: usize) -> bool {
    if !k.ext_has::<HeldLocks>() {
        k.ext_put(HeldLocks(Vec::new()));
        return false;
    }
    let HeldLocks(v) = k.ext_take::<HeldLocks>();
    let held = v.get(reg / 64).is_some_and(|w| w & (1 << (reg % 64)) != 0);
    k.ext_restore(HeldLocks(v));
    held
}

fn set_held(k: &mut Kernel<'_>, reg: usize, held: bool) {
    is_held(k, reg); // ensure the extension exists
    let HeldLocks(mut v) = k.ext_take::<HeldLocks>();
    if v.len() <= reg / 64 {
        v.resize(reg / 64 + 1, 0);
    }
    if held {
        v[reg / 64] |= 1 << (reg % 64);
    } else {
        v[reg / 64] &= !(1 << (reg % 64));
    }
    k.ext_restore(HeldLocks(v));
}

impl SvmCtx {
    /// Create a lock. Collective in the SPMD sense: every core must create
    /// its locks in the same order to agree on register assignment.
    pub fn lock_new(&mut self, k: &mut Kernel<'_>) -> SvmLock {
        let ncores = k.hw.machine().cfg.ncores as u32;
        // Skip register 0, which backs the RAM barrier and scratch-pad
        // slice 0, to reduce contention (correctness does not depend on
        // this: none of the users nest acquisitions).
        let reg = CoreId::from_raw((1 + self.lock_cursor % (ncores - 1)) as usize);
        self.lock_cursor += 1;
        SvmLock { reg }
    }

    /// Barrier over all participating cores with release/acquire cache
    /// semantics: flush the WCB before waiting, invalidate after release.
    pub fn barrier(&self, k: &mut Kernel<'_>) {
        k.hw.trace(EventKind::Barrier, 0, 0);
        k.hw.trace_sync_reset();
        k.hw.flush_wcb();
        scc_kernel::ram_barrier(k, "svm.barrier");
        k.hw.cl1invmb();
    }

    /// A barrier *without* the acquire-side invalidation. Exists so tests
    /// and demos can exhibit the staleness that the lazy release model's
    /// hooks prevent; not part of the paper's API.
    ///
    /// Always the flat (RAM-spinning) barrier: the MPB-tree barrier issues
    /// `CL1INVMB` internally to re-read its flag lines, which would
    /// invalidate every MPBT-tagged line as a side effect — exactly the
    /// staleness this hook exists to preserve.
    pub fn barrier_no_invalidate_for_test(&self, k: &mut Kernel<'_>) {
        k.hw.trace_sync_reset();
        k.hw.flush_wcb();
        scc_kernel::flat_ram_barrier(k, "svm.barrier");
    }
}

impl SvmLock {
    /// Enter the critical section: acquire the register, then invalidate
    /// tagged lines so all prior writers' data becomes visible.
    ///
    /// Re-acquiring a lock this core already holds would self-deadlock on
    /// real hardware (the TAS register is already 1); it is reported as
    /// [`SyncError::AcquireReentry`] without touching the register.
    pub fn acquire(&self, k: &mut Kernel<'_>) -> Result<(), SyncError> {
        let reg = self.reg.idx();
        if is_held(k, reg) {
            let err = SyncError::AcquireReentry { reg };
            k.hw.trace(EventKind::SyncErr, reg as u32, err.code());
            return Err(err);
        }
        tas_lock_service(k, self.reg);
        set_held(k, reg, true);
        k.hw.trace(EventKind::LockAcquire, reg as u32, 0);
        k.hw.trace(EventKind::AcquireInv, reg as u32, 0);
        k.hw.trace_sync_reset();
        k.hw.cl1invmb();
        Ok(())
    }

    /// Leave the critical section: push out combined writes, release.
    ///
    /// Releasing a lock this core does not hold (double release, or
    /// release without acquire) would corrupt another core's critical
    /// section; it is reported as [`SyncError::ReleaseNotHeld`] without
    /// touching the register.
    pub fn release(&self, k: &mut Kernel<'_>) -> Result<(), SyncError> {
        let reg = self.reg.idx();
        if !is_held(k, reg) {
            let err = SyncError::ReleaseNotHeld { reg };
            k.hw.trace(EventKind::SyncErr, reg as u32, err.code());
            return Err(err);
        }
        set_held(k, reg, false);
        k.hw.trace(EventKind::ReleaseFlush, reg as u32, 0);
        k.hw.trace_sync_reset();
        k.hw.flush_wcb();
        k.hw.trace(EventKind::LockRelease, reg as u32, 0);
        k.hw.tas_unlock(self.reg);
        Ok(())
    }

    /// Run `f` inside the critical section. Panics on misuse (the typed
    /// errors exist for code that wants to handle them; `with` is the
    /// structured path where misuse is impossible unless the same lock is
    /// acquired again inside `f`).
    pub fn with<R>(&self, k: &mut Kernel<'_>, f: impl FnOnce(&mut Kernel<'_>) -> R) -> R {
        self.acquire(k).expect("SvmLock::with: acquire failed");
        let r = f(k);
        self.release(k).expect("SvmLock::with: release failed");
        r
    }

    /// Acquire the register *without* the invalidate half of the acquire
    /// action — deliberately broken, so the `svmcheck` linter's
    /// acquire-without-invalidate detector has something to catch. Not
    /// part of the paper's API.
    pub fn acquire_no_invalidate_for_test(&self, k: &mut Kernel<'_>) {
        let reg = self.reg.idx();
        tas_lock_service(k, self.reg);
        set_held(k, reg, true);
        k.hw.trace(EventKind::LockAcquire, reg as u32, 0);
        k.hw.trace_sync_reset();
    }

    /// Release the register *without* the flush half of the release
    /// action — deliberately broken, for the release-without-flush
    /// detector. Not part of the paper's API.
    pub fn release_no_flush_for_test(&self, k: &mut Kernel<'_>) {
        let reg = self.reg.idx();
        set_held(k, reg, false);
        k.hw.trace_sync_reset();
        k.hw.trace(EventKind::LockRelease, reg as u32, 0);
        k.hw.tas_unlock(self.reg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scc_hw::SccConfig;
    use scc_kernel::Cluster;
    use scc_mailbox::{install as mbx_install, Notify};

    fn with_svm<R: Send + 'static>(
        f: impl Fn(&mut Kernel<'_>, &mut SvmCtx) -> R + Send + Sync + 'static,
    ) -> R {
        let cl = Cluster::new(SccConfig::small()).unwrap();
        let mut res = cl
            .run(1, move |k| {
                let mbx = mbx_install(k, Notify::Ipi);
                let mut svm = crate::install(k, &mbx, crate::SvmConfig::default());
                f(k, &mut svm)
            })
            .unwrap();
        res.remove(0).result
    }

    #[test]
    fn acquire_release_round_trip_is_ok() {
        with_svm(|k, svm| {
            let lock = svm.lock_new(k);
            assert_eq!(lock.acquire(k), Ok(()));
            assert_eq!(lock.release(k), Ok(()));
            // A second full round trip works: state is properly cleared.
            assert_eq!(lock.acquire(k), Ok(()));
            assert_eq!(lock.release(k), Ok(()));
        });
    }

    #[test]
    fn double_release_is_a_typed_error() {
        with_svm(|k, svm| {
            let lock = svm.lock_new(k);
            lock.acquire(k).unwrap();
            lock.release(k).unwrap();
            let err = lock.release(k).unwrap_err();
            assert!(matches!(err, SyncError::ReleaseNotHeld { .. }));
            assert_eq!(err.code(), 2);
        });
    }

    #[test]
    fn release_without_acquire_is_a_typed_error() {
        with_svm(|k, svm| {
            let lock = svm.lock_new(k);
            let err = lock.release(k).unwrap_err();
            assert_eq!(err, SyncError::ReleaseNotHeld { reg: 1 });
        });
    }

    #[test]
    fn acquire_reentry_is_a_typed_error_and_lock_stays_usable() {
        with_svm(|k, svm| {
            let lock = svm.lock_new(k);
            lock.acquire(k).unwrap();
            let err = lock.acquire(k).unwrap_err();
            assert!(matches!(err, SyncError::AcquireReentry { .. }));
            assert_eq!(err.code(), 1);
            // The failed re-entry must not have clobbered the register:
            // the original hold is still releasable.
            assert_eq!(lock.release(k), Ok(()));
        });
    }

    #[test]
    fn errors_are_per_lock_not_per_core() {
        with_svm(|k, svm| {
            let a = svm.lock_new(k);
            let b = svm.lock_new(k);
            a.acquire(k).unwrap();
            // A different lock is unaffected by `a` being held.
            assert_eq!(b.acquire(k), Ok(()));
            b.release(k).unwrap();
            a.release(k).unwrap();
        });
    }
}
