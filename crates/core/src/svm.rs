//! The SVM system proper: installation, collective allocation, the page
//! fault path and the five-step ownership-transfer protocol of Figure 5.

use crate::region::{Consistency, RegionTable, SvmRegion};
use crate::scratchpad::{ScratchLocation, Scratchpad};
use crate::stats::SvmStats;
use parking_lot::Mutex;
use scc_hw::instr::EventKind;
use scc_hw::machine::MachineInner;
use scc_hw::{CoreId, MemAttr};
use scc_kernel::{Access, FaultHandler, Kernel, PageFlags, SVM_VA_BASE};
use scc_mailbox::{Mail, MailHandler, MailKind, Mailbox};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// Frame placement policy on first touch.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Placement {
    /// Allocate behind the toucher's quadrant controller — the paper's
    /// affinity-on-first-touch (§6.3).
    NearToucher,
    /// Stripe pages round-robin over the four controllers regardless of
    /// who touches (the A4 ablation baseline).
    RoundRobin,
}

/// Configuration of the SVM system. Construct via [`SvmConfig::builder`]
/// (validated) or [`SvmConfig::default`] (scratch pad chosen by machine
/// shape — the paper's MPB design on SCC-sized machines —
/// affinity-on-first-touch, whole shared region).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SvmConfig {
    scratch: ScratchLocation,
    placement: Placement,
    max_pages: Option<u32>,
    model_override: Option<Consistency>,
}

impl Default for SvmConfig {
    fn default() -> Self {
        SvmConfig {
            scratch: ScratchLocation::Auto,
            placement: Placement::NearToucher,
            max_pages: None,
            model_override: None,
        }
    }
}

impl SvmConfig {
    /// Start building a validated configuration.
    pub fn builder() -> SvmConfigBuilder {
        SvmConfigBuilder::default()
    }

    /// Where the first-touch scratch pad lives (§6.3; `OffDie` is the
    /// paper's capacity/performance trade-off and our A1 ablation;
    /// `Auto`, the default, is resolved against the machine shape at
    /// [`install`] time).
    pub fn scratch(&self) -> ScratchLocation {
        self.scratch
    }

    /// Frame placement on first touch.
    pub fn placement(&self) -> Placement {
        self.placement
    }

    /// Cap on the number of SVM pages (`None` = the whole shared region).
    pub fn max_pages(&self) -> Option<u32> {
        self.max_pages
    }

    /// Consistency model forced onto every `alloc`, if any.
    pub fn model_override(&self) -> Option<Consistency> {
        self.model_override
    }
}

/// Validation failure from [`SvmConfigBuilder::build`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SvmConfigError {
    /// `pages(0)` — an SVM window with no pages cannot back any region.
    ZeroPages,
    /// Round-robin striping needs at least one page per memory controller
    /// (4 on the SCC) to be meaningful.
    StripingTooFewPages { pages: u32 },
}

impl std::fmt::Display for SvmConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SvmConfigError::ZeroPages => write!(f, "SVM window must have at least one page"),
            SvmConfigError::StripingTooFewPages { pages } => write!(
                f,
                "round-robin placement stripes over 4 memory controllers but only {pages} page(s) were configured"
            ),
        }
    }
}

impl std::error::Error for SvmConfigError {}

/// Builder for [`SvmConfig`] — the validated construction path replacing
/// struct literals.
#[derive(Copy, Clone, Debug, Default)]
pub struct SvmConfigBuilder {
    scratch: Option<ScratchLocation>,
    placement: Option<Placement>,
    max_pages: Option<u32>,
    model_override: Option<Consistency>,
}

impl SvmConfigBuilder {
    /// Scratch-pad location (default: [`ScratchLocation::Auto`], which
    /// resolves to the paper's MPB design on SCC-sized machines and to
    /// the per-controller sharded directory on large meshes).
    pub fn scratch(mut self, s: ScratchLocation) -> Self {
        self.scratch = Some(s);
        self
    }

    /// First-touch placement policy (default: near the toucher).
    pub fn placement(mut self, p: Placement) -> Self {
        self.placement = Some(p);
        self
    }

    /// Cap the SVM window at `pages` 4 KiB pages (default: the whole
    /// shared region).
    pub fn pages(mut self, pages: u32) -> Self {
        self.max_pages = Some(pages);
        self
    }

    /// Force every region onto one consistency model, overriding the model
    /// passed to `alloc`. Lets harnesses and the checker's test matrix run
    /// an unmodified application under either model. Collective in the
    /// SPMD sense: all cores must agree.
    pub fn model_override(mut self, model: Consistency) -> Self {
        self.model_override = Some(model);
        self
    }

    /// Validate and produce the configuration.
    pub fn build(self) -> Result<SvmConfig, SvmConfigError> {
        let cfg = SvmConfig {
            scratch: self.scratch.unwrap_or(ScratchLocation::Auto),
            placement: self.placement.unwrap_or(Placement::NearToucher),
            max_pages: self.max_pages,
            model_override: self.model_override,
        };
        if let Some(pages) = cfg.max_pages {
            if pages == 0 {
                return Err(SvmConfigError::ZeroPages);
            }
            if cfg.placement == Placement::RoundRobin && pages < 4 {
                return Err(SvmConfigError::StripingTooFewPages { pages });
            }
        }
        Ok(cfg)
    }
}

/// Machine-wide shared state of the SVM system.
pub struct SvmShared {
    mach: Arc<MachineInner>,
    /// Owner vector: one u32 per shared page (core id + 1; 0 = unowned),
    /// in off-die memory, always accessed uncached.
    owner_pa: u32,
    /// Copyset vectors (write-invalidate model): a growable multi-word
    /// bitmask of `cs_words` u64 words per page (word per 64 cores).
    copyset_pa: u32,
    /// Words per copyset entry: `ceil(ncores / 64)`.
    cs_words: u32,
    /// Per-core grant-set scratch rows (write-invalidate model): the
    /// invalidation set a write grant deposits for its requester,
    /// `cs_words` u64 words per core.
    grantset_pa: u32,
    /// Version vector (write-invalidate model): u32 per page.
    version_pa: u32,
    scratch: Scratchpad,
    pub(crate) table: Mutex<RegionTable>,
    /// Per-page next-touch epoch (see `next_touch.rs`).
    pub(crate) page_nt: Vec<AtomicU32>,
    /// Upper bound of the SVM window in bytes.
    max_bytes: u32,
    placement: Placement,
    pub stats: SvmStats,
}

impl SvmShared {
    /// Timed uncached read of the owner vector.
    pub(crate) fn owner_read(&self, k: &mut Kernel<'_>, p: u32) -> Option<CoreId> {
        let v = k.hw.read(self.owner_pa + 4 * p, 4, MemAttr::UNCACHED) as u32;
        (v != 0).then(|| CoreId::from_raw(v as usize - 1))
    }

    /// Timed uncached write of the owner vector.
    pub(crate) fn owner_write(&self, k: &mut Kernel<'_>, p: u32, owner: CoreId) {
        k.hw.write(
            self.owner_pa + 4 * p,
            4,
            owner.idx() as u64 + 1,
            MemAttr::UNCACHED,
        );
    }

    /// Raw, untimed snapshot of everything the SVM system knows about page
    /// `p`: owner, backing frame, write-invalidate copyset/version and the
    /// next-touch epoch, in one coherent struct. This replaces the loose
    /// `owner_peek`/`frame_peek` accessors (tests, diagnostics).
    pub fn page_info(&self, p: u32) -> PageInfo {
        let v = self.mach.ram.read(self.owner_pa + 4 * p, 4) as u32;
        PageInfo {
            page: p,
            owner: (v != 0).then(|| CoreId::from_raw(v as usize - 1)),
            frame: self.scratch.peek(&self.mach, p),
            copyset: (0..self.cs_words)
                .map(|w| self.mach.ram.read(self.copyset_pa + 8 * (self.cs_words * p + w), 8))
                .collect(),
            version: self.mach.ram.read(self.version_pa + 4 * p, 4) as u32,
            nt_epoch: self.page_nt[p as usize].load(Ordering::Acquire),
        }
    }

    /// Where the first-touch directory ended up after resolving the
    /// configured [`ScratchLocation`] against the machine shape.
    pub fn scratch_location(&self) -> ScratchLocation {
        self.scratch.location()
    }

    /// Virtual address of SVM page `p`.
    #[inline]
    pub(crate) fn va_of_page(p: u32) -> u32 {
        SVM_VA_BASE + p * 4096
    }

    #[inline]
    pub(crate) fn copyset_pa(&self) -> u32 {
        self.copyset_pa
    }

    /// u64 words per copyset entry (`ceil(ncores / 64)`).
    #[inline]
    pub(crate) fn copyset_words(&self) -> u32 {
        self.cs_words
    }

    #[inline]
    pub(crate) fn grantset_pa(&self) -> u32 {
        self.grantset_pa
    }

    #[inline]
    pub(crate) fn version_pa(&self) -> u32 {
        self.version_pa
    }

    /// Global SVM page index of `va`.
    #[inline]
    fn page_of(va: u32) -> u32 {
        (va - SVM_VA_BASE) / 4096
    }
}

/// One coherent, untimed view of an SVM page's metadata, returned by
/// [`SvmShared::page_info`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PageInfo {
    /// Global SVM page index.
    pub page: u32,
    /// Current owner, if the page was ever touched.
    pub owner: Option<CoreId>,
    /// Backing physical frame, if allocated.
    pub frame: Option<u32>,
    /// Write-invalidate replica bitmask, one u64 word per 64 cores
    /// (word `i` bit `b` = core `64*i + b`).
    pub copyset: Vec<u64>,
    /// Write-invalidate version counter.
    pub version: u32,
    /// Next-touch epoch last applied to the page.
    pub nt_epoch: u32,
}

/// The per-core acknowledgement cell: which page's ownership ack arrived.
struct AckCell {
    page: AtomicU32,
    stamp: AtomicU64,
}

const NO_ACK: u32 = u32::MAX;

/// Per-core handle to the SVM system, returned by [`install`].
pub struct SvmCtx {
    pub(crate) sh: Arc<SvmShared>,
    mbx: Mailbox,
    alloc_cursor: usize,
    pub(crate) lock_cursor: u32,
    model_override: Option<Consistency>,
}

/// Install the SVM system on this kernel. Requires an installed mailbox
/// system (the SVM protocols ride on it). Collective.
pub fn install(k: &mut Kernel<'_>, mbx: &Mailbox, cfg: SvmConfig) -> SvmCtx {
    let mach = Arc::clone(k.hw.machine());
    let pages = {
        let avail = mach.map.shared_pages() as u32;
        cfg.max_pages.map_or(avail, |cap| cap.min(avail))
    };
    // The header arena is a host-side bump allocator: pin the allocation
    // (and service-init) order to the deterministic election order.
    k.hw.host_order_point();
    let owner_pa = k.shared.named_header("svm.owner", pages * 4, 64);
    let scratch_pa = k.shared.named_header("svm.scratch", pages * 2, 64);
    // Write-invalidate copysets are growable multi-word bitmasks sized
    // for this machine, plus a per-core grant-set scratch row (the
    // invalidation set handed over on a write grant — too big for a mail).
    let cs_words = (mach.cfg.ncores as u32).div_ceil(64);
    let copyset_pa = k.shared.named_header("svm.copyset", pages * 8 * cs_words, 64);
    let grantset_pa = k.shared.named_header(
        "svm.wi_grantset",
        mach.cfg.ncores as u32 * 8 * cs_words,
        64,
    );
    let version_pa = k.shared.named_header("svm.version", pages * 4, 64);
    let header_pages = scc_kernel::cluster::header_bytes(&mach) / 4096;
    let base_pfn = (mach.map.shared_base() >> 12) + header_pages;
    let scratch_loc = cfg.scratch.resolve(mach.cfg.ncores, pages);
    let shared = Arc::clone(&k.shared);
    let frames = Arc::clone(&k.shared);
    let sh = shared.service_get_or_init("svm", move || {
        // First core on this machine: wipe the MPB scratch areas of all
        // cores (boot-time provisioning, untimed).
        for c in (0..mach.cfg.ncores).map(CoreId::from_raw) {
            for off in (crate::scratchpad::SCRATCH_OFF..scc_hw::config::MPB_BYTES as u32)
                .step_by(4)
            {
                mach.mpb
                    .write(scc_hw::mpb::MpbArray::pa(c, off as usize), 4, 0);
            }
        }
        let scratch = if scratch_loc == ScratchLocation::ShardedMc {
            // Carve the directory shards out of the shared frame pool, one
            // run of frames behind each home controller, in controller
            // order: the result is identical no matter which core runs
            // this init. Fresh frames are zero (all entries unallocated).
            let topo = &mach.cfg.topo;
            let each = Scratchpad::shard_frames_each(topo.num_mcs(), pages);
            let mut shard_frames = Vec::with_capacity(topo.num_mcs() * each as usize);
            for mc in 0..topo.num_mcs() {
                for _ in 0..each {
                    shard_frames.push(
                        frames
                            .frames
                            .alloc_at(mc)
                            .expect("shared memory exhausted allocating scratch shards"),
                    );
                }
            }
            Scratchpad::sharded(topo, mach.cfg.ncores, pages, Arc::new(shard_frames), base_pfn)
        } else {
            Scratchpad::new(scratch_loc, mach.cfg.ncores, pages, scratch_pa, base_pfn)
        };
        let mut page_nt = Vec::with_capacity(pages as usize);
        page_nt.resize_with(pages as usize, || AtomicU32::new(0));
        Arc::new(SvmShared {
            scratch,
            owner_pa,
            copyset_pa,
            cs_words,
            grantset_pa,
            version_pa,
            table: Mutex::new(RegionTable::default()),
            page_nt,
            max_bytes: pages * 4096,
            placement: cfg.placement,
            stats: SvmStats::default(),
            mach: Arc::clone(&mach),
        })
    });
    let ack = Arc::new(AckCell {
        page: AtomicU32::new(NO_ACK),
        stamp: AtomicU64::new(0),
    });
    let wi_cells = crate::write_invalidate::WiCells::new();
    // Fault handler over the whole SVM window.
    k.register_fault_handler(
        SVM_VA_BASE..SVM_VA_BASE + sh.max_bytes,
        Arc::new(SvmFaultHandler {
            sh: Arc::clone(&sh),
            mbx: mbx.clone(),
            ack: Arc::clone(&ack),
            wi: Arc::clone(&wi_cells),
        }),
    );
    // Protocol mail handlers.
    mbx.register_handler(
        MailKind::SVM_REQUEST,
        Arc::new(RequestHandler {
            sh: Arc::clone(&sh),
            mbx: mbx.clone(),
        }),
    );
    mbx.register_handler(MailKind::SVM_ACK, Arc::new(AckHandler { ack: Arc::clone(&ack) }));
    // Write-invalidate protocol handlers.
    {
        use crate::write_invalidate as wi;
        let req = Arc::new(wi::WiRequestHandler {
            sh: Arc::clone(&sh),
            mbx: mbx.clone(),
        });
        mbx.register_handler(wi::WI_READ_REQ, Arc::new(wi::WiReadHandler(Arc::clone(&req))));
        mbx.register_handler(wi::WI_WRITE_REQ, Arc::new(wi::WiWriteHandler(req)));
        mbx.register_handler(
            wi::WI_GRANT,
            Arc::new(wi::WiGrantHandler {
                cells: Arc::clone(&wi_cells),
            }),
        );
        mbx.register_handler(
            wi::WI_INV,
            Arc::new(wi::WiInvHandler {
                sh: Arc::clone(&sh),
                mbx: mbx.clone(),
            }),
        );
        mbx.register_handler(
            wi::WI_INV_ACK,
            Arc::new(wi::WiInvAckHandler {
                cells: Arc::clone(&wi_cells),
            }),
        );
    }
    scc_kernel::ram_barrier(k, "svm.install");
    SvmCtx {
        sh,
        mbx: mbx.clone(),
        alloc_cursor: 0,
        lock_cursor: 0,
        model_override: cfg.model_override,
    }
}

impl SvmCtx {
    /// Shared SVM state (stats, peeks).
    pub fn shared(&self) -> &Arc<SvmShared> {
        &self.sh
    }

    /// The mailbox system the protocols ride on.
    pub fn mailbox(&self) -> &Mailbox {
        &self.mbx
    }

    /// Collective allocation of `bytes` of shared virtual memory under the
    /// given consistency model (the paper's `svm_alloc`). Only address
    /// space is reserved; frames appear on first touch.
    pub fn alloc(&mut self, k: &mut Kernel<'_>, bytes: u32, model: Consistency) -> SvmRegion {
        let model = self.model_override.unwrap_or(model);
        // The write-invalidate copyset is a growable multi-word bitmask
        // sized for the machine at install time, so every consistency model
        // scales with the mesh; the only participant limit left is the
        // topology's own CORE_LIMIT, enforced with a typed error when the
        // topology is built.
        let idx = self.alloc_cursor;
        self.alloc_cursor += 1;
        let region = self
            .sh
            .table
            .lock()
            .get_or_create(idx, bytes, model, self.sh.max_bytes);
        let model_tag = match region.model {
            Consistency::Strong => 0,
            Consistency::LazyRelease => 1,
            Consistency::WriteInvalidate => 2,
        };
        k.hw.trace3(
            EventKind::RegionAlloc,
            region.first_page(),
            region.pages(),
            model_tag,
        );
        let c = k.hw.machine().cfg.timing.vma_reserve_per_page * u64::from(region.pages());
        k.hw.advance(c);
        scc_kernel::ram_barrier(k, "svm.alloc");
        region
    }

    /// TEST-ONLY: a deliberately broken replica of the first-touch
    /// allocation that skips the scratch-pad TAS lock, leaving a
    /// check-then-act window (with exactly one scheduling point in it)
    /// between reading the placement entry and publishing a frame. Under
    /// the baton schedule the windows of different cores never overlap;
    /// a perturbed election order can interleave them, making two cores
    /// allocate two frames for the same page — the `double-first-touch`
    /// signature the protocol monitor detects. Used by the
    /// schedule-sensitive TOCTOU fixture; never called by the real fault
    /// path.
    pub fn first_touch_unlocked_for_test(&mut self, k: &mut Kernel<'_>, p: u32) -> u32 {
        let sh = Arc::clone(&self.sh);
        if let Some(pfn) = sh.scratch.read(k, p) {
            return pfn;
        }
        // The racy window: check done, act not yet — and a yield point in
        // between (the correct path holds `scratch.lock_of(p)` across it).
        k.hw.yield_now();
        k.hw.host_order_point();
        let pfn = k
            .shared
            .frames
            .alloc_near(k.id())
            .expect("out of shared frames");
        let c = k.hw.machine().cfg.timing.frame_alloc;
        k.hw.advance(c);
        sh.scratch.write(k, p, pfn);
        sh.owner_write(k, p, k.id());
        SvmStats::bump(&sh.stats.first_touch_allocs);
        k.hw.trace(EventKind::FirstTouch, p, pfn);
        pfn
    }
}

// ----------------------------------------------------------------------
// Fault path
// ----------------------------------------------------------------------

struct SvmFaultHandler {
    sh: Arc<SvmShared>,
    mbx: Mailbox,
    ack: Arc<AckCell>,
    wi: Arc<crate::write_invalidate::WiCells>,
}

impl FaultHandler for SvmFaultHandler {
    fn name(&self) -> &'static str {
        "svm"
    }

    fn on_fault(&self, k: &mut Kernel<'_>, va: u32, access: Access) -> bool {
        let sh = &self.sh;
        SvmStats::bump(&sh.stats.faults);
        let (region, readonly, nt_epoch) = {
            let t = sh.table.lock();
            let Some(region) = t.find(va) else {
                return false; // hole in the SVM window: unmapped
            };
            let st = &t.regions[region.index];
            (region, st.readonly, st.nt_epoch)
        };
        let p = SvmShared::page_of(va);
        let page_va = va & !0xfff;

        if readonly {
            if access == Access::Write {
                // §6.4: "an undesired write access to these regions
                // triggers a page fault" — a hard error by design.
                return false;
            }
            let pfn = self.ensure_frame(k, p, nt_epoch, region.model);
            k.map_page(page_va, pfn, PageFlags::readonly_l2());
            return true;
        }

        match region.model {
            Consistency::LazyRelease => {
                let pfn = self.ensure_frame(k, p, nt_epoch, region.model);
                k.map_page(page_va, pfn, PageFlags::shared_rw());
            }
            Consistency::WriteInvalidate => {
                let stale = k.page_table().lookup(va);
                let pfn = if stale != scc_kernel::Pte::EMPTY
                    && nt_epoch <= sh.page_nt[p as usize].load(Ordering::Acquire)
                {
                    stale.pfn()
                } else {
                    self.ensure_frame(k, p, nt_epoch, region.model)
                };
                crate::write_invalidate::wi_fault(
                    &self.sh,
                    &self.mbx,
                    &self.wi,
                    k,
                    p,
                    pfn,
                    page_va,
                    access == Access::Write,
                );
            }
            Consistency::Strong => {
                // A permission-withdrawn PTE still carries the frame number
                // (see the grant path), sparing the scratch-pad lookup.
                let stale = k.page_table().lookup(va);
                let pfn = if stale != scc_kernel::Pte::EMPTY
                    && nt_epoch <= sh.page_nt[p as usize].load(Ordering::Acquire)
                {
                    stale.pfn()
                } else {
                    self.ensure_frame(k, p, nt_epoch, region.model)
                };
                self.acquire_ownership(k, p, pfn, page_va);
            }
        }
        true
    }
}

impl SvmFaultHandler {
    /// First-touch allocation (and next-touch migration) of page `p`.
    fn ensure_frame(&self, k: &mut Kernel<'_>, p: u32, nt_epoch: u32, _model: Consistency) -> u32 {
        let sh = &self.sh;

        // Fast path: the page is backed and no next-touch epoch is pending.
        if let Some(pfn) = sh.scratch.read(k, p) {
            if nt_epoch <= sh.page_nt[p as usize].load(Ordering::Acquire) {
                return pfn;
            }
        }

        let my_mc = k.hw.topo().nearest_mc(k.id());
        let needs_migration = |pfn: u32| {
            nt_epoch > sh.page_nt[p as usize].load(Ordering::Acquire) && {
                // Only migrate frames that are not already local.
                let scc_hw::ram::Backing::Ram { mc } = sh.mach.map.resolve(pfn << 12) else {
                    unreachable!()
                };
                mc != my_mc
            }
        };

        let reg = sh.scratch.lock_of(p);
        k.hw.tas_lock(reg);
        let existing = sh.scratch.read(k, p);
        let pfn = match existing {
            None => {
                // First touch: allocate per placement policy, zero through
                // the uncached path (the dominant cost of Table 1's
                // "physical allocation of a page frame"), publish.
                // The frame free-lists are host-side: pop order must follow
                // election order (holding the page-group TAS lock is not
                // enough — a quantum yield can close the window first).
                k.hw.host_order_point();
                let pfn = match sh.placement {
                    Placement::NearToucher => k.shared.frames.alloc_near(k.id()),
                    Placement::RoundRobin => {
                        k.shared.frames.alloc_at(p as usize % k.shared.frames.num_mcs())
                    }
                }
                .expect("out of shared frames");
                let c = k.hw.machine().cfg.timing.frame_alloc;
                k.hw.advance(c);
                k.zero_frame_uncached(pfn);
                // Publication order matters: the owner entry must land
                // before the scratch entry. `ensure_frame`'s fast path
                // reads the scratch pad *without* the TAS lock, and the
                // strong model's `acquire_ownership` requires an owner for
                // any page whose frame is visible — a quantum expiring
                // between these two writes would otherwise let another
                // core observe the frame with no owner yet.
                sh.owner_write(k, p, k.id());
                sh.scratch.write(k, p, pfn);
                if _model == Consistency::WriteInvalidate {
                    sh.copyset_write_single(k, p, k.id());
                    k.hw.write(sh.version_pa + 4 * p, 4, 0, MemAttr::UNCACHED);
                }
                sh.page_nt[p as usize].store(nt_epoch, Ordering::Release);
                SvmStats::bump(&sh.stats.first_touch_allocs);
                k.hw.trace(EventKind::FirstTouch, p, pfn);
                pfn
            }
            Some(old) => {
                if needs_migration(old) {
                    // Affinity-on-next-touch: move the frame next to us.
                    k.hw.host_order_point();
                    let new = k
                        .shared
                        .frames
                        .alloc_near(k.id())
                        .expect("out of shared frames");
                    let c = k.hw.machine().cfg.timing.frame_alloc;
                    k.hw.advance(c);
                    for off in (0..4096).step_by(4) {
                        let v = k.hw.read((old << 12) + off, 4, MemAttr::UNCACHED);
                        k.hw.write((new << 12) + off, 4, v, MemAttr::UNCACHED);
                    }
                    k.hw.frame_release_exclusive(old);
                    k.hw.host_order_point();
                    k.shared.frames.free(&sh.mach, old);
                    sh.scratch.write(k, p, new);
                    SvmStats::bump(&sh.stats.migrations);
                    k.hw.trace(EventKind::Migrate, p, new);
                    sh.page_nt[p as usize].store(nt_epoch, Ordering::Release);
                    new
                } else {
                    sh.page_nt[p as usize]
                        .fetch_max(nt_epoch, Ordering::AcqRel);
                    old
                }
            }
        };
        k.hw.tas_unlock(reg);
        pfn
    }

    /// The strong model's ownership acquisition: the five steps of the
    /// paper's Figure 5, from the requester's side.
    fn acquire_ownership(&self, k: &mut Kernel<'_>, p: u32, pfn: u32, page_va: u32) {
        let sh = &self.sh;
        let me = k.id();
        loop {
            // Step 2: look up the owner.
            let owner = sh
                .owner_read(k, p)
                .expect("strong page must have an owner after first touch");
            if owner == me {
                k.map_page(page_va, pfn, PageFlags::shared_rw());
                // Strong-model exclusivity: register the frame so the
                // parallel engine treats our accesses as core-private.
                k.hw.frame_claim_exclusive(pfn);
                // Our cached lines may predate the previous owner's writes.
                k.hw.cl1invmb();
                return;
            }
            // ... and send a request mail (possibly forwarded along stale
            // owners by the receivers).
            let mut payload = [0u8; 8];
            payload[0..4].copy_from_slice(&p.to_le_bytes());
            payload[4..8].copy_from_slice(&(me.idx() as u32).to_le_bytes());
            k.hw.trace(EventKind::OwnRequest, p, owner.idx() as u32);
            self.mbx.send(k, owner, MailKind::SVM_REQUEST, &payload);

            // Step 5: wait for the acknowledgement — event-driven, no
            // polling on the owner vector (the paper's key improvement
            // over its earlier prototype).
            let ack = Arc::clone(&self.ack);
            let want = p;
            k.wait_event("SVM ownership ack", move || {
                (ack.page.load(Ordering::Acquire) == want)
                    .then(|| ((), ack.stamp.load(Ordering::Acquire)))
            });
            self.ack.page.store(NO_ACK, Ordering::Release);

            // The grant already recorded us in the owner vector — unless a
            // concurrent request stole the page while we waited (our own
            // interrupt handler may have granted it away again).
            if sh.owner_read(k, p) == Some(me) {
                let c = k.hw.machine().cfg.timing.dsm_handler;
                k.hw.advance(c);
                k.map_page(page_va, pfn, PageFlags::shared_rw());
                k.hw.frame_claim_exclusive(pfn);
                k.hw.cl1invmb();
                SvmStats::bump(&sh.stats.ownership_transfers);
                k.hw.trace(EventKind::OwnAcquired, p, pfn);
                return;
            }
        }
    }
}

// ----------------------------------------------------------------------
// Owner-side protocol handlers
// ----------------------------------------------------------------------

struct RequestHandler {
    sh: Arc<SvmShared>,
    mbx: Mailbox,
}

impl MailHandler for RequestHandler {
    fn on_mail(&self, k: &mut Kernel<'_>, mail: Mail) {
        let sh = &self.sh;
        let p = mail.u32_at(0);
        let requester = CoreId::from_raw(mail.u32_at(4) as usize);
        let me = k.id();
        let cur = sh.owner_read(k, p).expect("request for unowned page");
        if cur == requester {
            // The requester became the owner while this (stale or
            // duplicate) request travelled; nothing to do.
            return;
        }
        if cur != me {
            // We no longer own the page: forward to the current owner
            // instead of making the requester re-poll the vector.
            SvmStats::bump(&sh.stats.forwards);
            k.hw.trace3(
                EventKind::OwnForward,
                p,
                cur.idx() as u32,
                mail.u32_at(4),
            );
            self.mbx.send(k, cur, MailKind::SVM_REQUEST, mail.data());
            return;
        }
        let c = k.hw.machine().cfg.timing.dsm_handler;
        k.hw.advance(c);
        // Step 3: flush (write-through ⇒ only the write-combine buffer)
        // and withdraw our own access. The frame number stays in the PTE
        // (only the permission is cleared), so re-acquiring later needs no
        // scratch-pad lookup — this is what makes Table 1's "retrieve the
        // access permission" cheaper than a full "mapping of a page frame".
        k.hw.flush_wcb();
        let va = SvmShared::va_of_page(p);
        // Hand the frame's exclusivity to the requester *before* dropping
        // our own access: the transfer runs on the old owner's thread, so
        // no window exists in which both sides could consider the frame
        // core-private. The withdrawn PTE still carries the frame number.
        let pte = k.page_table().lookup(va);
        if pte != scc_kernel::Pte::EMPTY {
            k.hw.frame_transfer_exclusive(pte.pfn(), requester);
        }
        if !k.protect_page(va, scc_kernel::PageFlags(scc_kernel::PageFlags::PWT | scc_kernel::PageFlags::MPBT)) {
            k.unmap_page(va);
        }
        // Step 4: record the new owner in the vector...
        sh.owner_write(k, p, requester);
        k.hw.trace(EventKind::OwnGrant, p, requester.idx() as u32);
        // Step 5: ...and signal the requester.
        self.mbx
            .send(k, requester, MailKind::SVM_ACK, &p.to_le_bytes());
    }
}

struct AckHandler {
    ack: Arc<AckCell>,
}

impl MailHandler for AckHandler {
    fn on_mail(&self, k: &mut Kernel<'_>, mail: Mail) {
        let p = mail.u32_at(0);
        k.hw.trace(EventKind::OwnAck, p, mail.from.idx() as u32);
        self.ack.stamp.store(k.hw.now(), Ordering::Release);
        self.ack.page.store(p, Ordering::Release);
    }
}
