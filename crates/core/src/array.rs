//! Typed access to SVM regions.
//!
//! User-space Rust cannot trap raw loads and stores, so applications read
//! and write shared memory through [`SvmArray`] — the moral equivalent of
//! a hardware MMU access: each element access translates through the
//! per-core page table and may enter the SVM fault handler, with identical
//! simulated costs.

use crate::region::SvmRegion;
use scc_kernel::Kernel;
use std::marker::PhantomData;

/// Report the SVM pages touched by an access of `bytes` bytes at `va` to
/// the consistency checker's access stream (deduplicated per sync segment
/// in the hardware layer; a no-op without the `trace` feature).
#[inline]
fn trace_access(k: &mut Kernel<'_>, va: u32, bytes: u32, write: bool) {
    let base = scc_kernel::SVM_VA_BASE;
    let first = (va.saturating_sub(base)) / 4096;
    let last = (va + bytes - 1).saturating_sub(base) / 4096;
    for page in first..=last {
        k.hw.trace_svm_access(page, write);
    }
}

/// Scalar types storable in an [`SvmArray`].
pub trait SvmScalar: Copy {
    /// Encoded width in bytes (1, 2, 4 or 8).
    const BYTES: u32;
    fn to_bits(self) -> u64;
    fn from_bits(bits: u64) -> Self;
}

macro_rules! impl_scalar {
    ($t:ty, $bytes:expr) => {
        impl SvmScalar for $t {
            const BYTES: u32 = $bytes;
            #[inline]
            fn to_bits(self) -> u64 {
                self as u64
            }
            #[inline]
            fn from_bits(bits: u64) -> Self {
                bits as $t
            }
        }
    };
}

impl_scalar!(u8, 1);
impl_scalar!(u16, 2);
impl_scalar!(u32, 4);
impl_scalar!(u64, 8);
impl_scalar!(i32, 4);
impl_scalar!(i64, 8);

impl SvmScalar for f64 {
    const BYTES: u32 = 8;
    #[inline]
    fn to_bits(self) -> u64 {
        f64::to_bits(self)
    }
    #[inline]
    fn from_bits(bits: u64) -> Self {
        f64::from_bits(bits)
    }
}

impl SvmScalar for f32 {
    const BYTES: u32 = 4;
    #[inline]
    fn to_bits(self) -> u64 {
        u64::from(f32::to_bits(self))
    }
    #[inline]
    fn from_bits(bits: u64) -> Self {
        f32::from_bits(bits as u32)
    }
}

/// A typed view over (part of) an SVM region.
#[derive(Copy, Clone, Debug)]
pub struct SvmArray<T: SvmScalar> {
    va: u32,
    len: usize,
    _marker: PhantomData<T>,
}

impl<T: SvmScalar> SvmArray<T> {
    /// View the whole region as `len` elements of `T`.
    pub fn new(region: SvmRegion, len: usize) -> Self {
        assert!(
            len as u64 * u64::from(T::BYTES) <= u64::from(region.pages()) * 4096,
            "array of {len} x {}B does not fit the region",
            T::BYTES
        );
        SvmArray {
            va: region.va,
            len,
            _marker: PhantomData,
        }
    }

    /// A sub-view starting at element `offset`.
    pub fn slice(&self, offset: usize, len: usize) -> SvmArray<T> {
        assert!(offset + len <= self.len);
        SvmArray {
            va: self.va + (offset as u32) * T::BYTES,
            len,
            _marker: PhantomData,
        }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the array empty?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Virtual address of element `i`.
    #[inline]
    pub fn va_of(&self, i: usize) -> u32 {
        debug_assert!(i < self.len, "index {i} out of {}", self.len);
        self.va + (i as u32) * T::BYTES
    }

    /// Read element `i` (may fault / migrate ownership).
    #[inline]
    pub fn get(&self, k: &mut Kernel<'_>, i: usize) -> T {
        trace_access(k, self.va_of(i), T::BYTES, false);
        T::from_bits(k.vread(self.va_of(i), T::BYTES as usize))
    }

    /// Write element `i` (may fault / migrate ownership).
    #[inline]
    pub fn set(&self, k: &mut Kernel<'_>, i: usize, v: T) {
        trace_access(k, self.va_of(i), T::BYTES, true);
        k.vwrite(self.va_of(i), T::BYTES as usize, v.to_bits());
    }

    /// Read `out.len()` consecutive elements starting at `offset` into
    /// `out`. Simulated cost is identical to element-wise `get` calls; the
    /// kernel's bulk path translates once per page instead of per element.
    pub fn read_row(&self, k: &mut Kernel<'_>, offset: usize, out: &mut [T]) {
        assert!(offset + out.len() <= self.len, "row read out of bounds");
        if out.is_empty() {
            return;
        }
        trace_access(k, self.va_of(offset), out.len() as u32 * T::BYTES, false);
        k.vread_block(self.va_of(offset), T::BYTES as usize, out.len(), |i, v| {
            out[i] = T::from_bits(v);
        });
    }

    /// Write `vals` to consecutive elements starting at `offset`. Bulk
    /// counterpart of element-wise `set`.
    pub fn write_row(&self, k: &mut Kernel<'_>, offset: usize, vals: &[T]) {
        assert!(offset + vals.len() <= self.len, "row write out of bounds");
        if vals.is_empty() {
            return;
        }
        trace_access(k, self.va_of(offset), vals.len() as u32 * T::BYTES, true);
        k.vwrite_block(self.va_of(offset), T::BYTES as usize, vals.len(), |i| {
            vals[i].to_bits()
        });
    }

    /// Store `v` into `len` consecutive elements starting at `offset`.
    pub fn fill(&self, k: &mut Kernel<'_>, offset: usize, len: usize, v: T) {
        assert!(offset + len <= self.len, "fill out of bounds");
        if len == 0 {
            return;
        }
        let bits = v.to_bits();
        trace_access(k, self.va_of(offset), len as u32 * T::BYTES, true);
        k.vwrite_block(self.va_of(offset), T::BYTES as usize, len, |_| bits);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::{Consistency, SvmRegion};

    fn region() -> SvmRegion {
        SvmRegion {
            va: scc_kernel::SVM_VA_BASE,
            bytes: 8192,
            model: Consistency::LazyRelease,
            index: 0,
        }
    }

    #[test]
    fn addressing() {
        let a = SvmArray::<f64>::new(region(), 1024);
        assert_eq!(a.va_of(0), scc_kernel::SVM_VA_BASE);
        assert_eq!(a.va_of(10), scc_kernel::SVM_VA_BASE + 80);
        let s = a.slice(512, 512);
        assert_eq!(s.va_of(0), a.va_of(512));
        assert_eq!(s.len(), 512);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_array_rejected() {
        SvmArray::<f64>::new(region(), 1025);
    }

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(<f64 as SvmScalar>::from_bits(SvmScalar::to_bits(1.5f64)), 1.5);
        assert_eq!(<f32 as SvmScalar>::from_bits(SvmScalar::to_bits(2.5f32)), 2.5);
        assert_eq!(<i32 as SvmScalar>::from_bits(SvmScalar::to_bits(-7i32)), -7);
        assert_eq!(<u16 as SvmScalar>::from_bits(SvmScalar::to_bits(0xBEEFu16)), 0xBEEF);
    }
}
