//! # metalsvm — shared virtual memory for non-coherent memory-coupled cores
//!
//! This crate is the primary contribution of the reproduced paper
//! (Lankes, Reble, Sinnen, Clauss: *Revisiting Shared Virtual Memory
//! Systems for Non-Coherent Memory-Coupled Cores*, PMAM 2012): an SVM
//! system that gives the 48 non-coherent cores of the SCC a coherent
//! shared address space, managed entirely in software inside the per-core
//! kernels.
//!
//! ## Consistency models (§6)
//!
//! * [`Consistency::Strong`] — at every point in time a page has exactly
//!   one owner, which alone may read or write it. Ownership is registered
//!   in a dedicated **owner vector** in off-die memory. A page fault sends
//!   a request mail to the current owner, which flushes its write-combine
//!   buffer, withdraws its own access, records the new owner and sends an
//!   acknowledgement back — the five steps of the paper's Figure 5. The
//!   requesting core never polls the owner vector (the improvement over
//!   the authors' earlier prototype that "ran against the memory wall").
//! * [`Consistency::LazyRelease`] — every access to shared data is assumed
//!   to be protected by a lock. Entering a critical section invalidates
//!   tagged cache lines (`CL1INVMB`); leaving it flushes the write-combine
//!   buffer. Pages are mapped read-write everywhere after first touch.
//!
//! ## Placement (§6.3)
//!
//! Physical frames are allocated on **first touch**, near the touching
//! core's memory controller. The bookkeeping table (16 bits per shared
//! page) lives in the top kilobyte of the MPBs — on-die memory used as a
//! scratch pad — protected by the SCC's test-and-set registers. It can be
//! relocated to off-die memory ([`ScratchLocation::OffDie`]), which the
//! paper notes costs performance; the `ablation_scratchpad` bench
//! quantifies exactly that.
//!
//! ## Read-only regions (§6.4) and affinity-on-next-touch (§8)
//!
//! [`SvmCtx::mprotect_readonly`] collectively seals a region: writes
//! become hard faults (a debugging aid the paper highlights) and the MPBT
//! tag is cleared so the otherwise sacrificed L2 cache serves these pages
//! again. [`SvmCtx::arm_next_touch`] implements the paper's future-work
//! *affinity-on-next-touch*: the next toucher of each page migrates it to
//! its own memory controller.

pub mod array;
pub mod next_touch;
pub mod readonly;
pub mod region;
pub mod scratchpad;
pub mod stats;
pub mod svm;
pub mod sync;
pub mod write_invalidate;

pub use array::SvmArray;
pub use region::{Consistency, SvmRegion};
pub use scratchpad::ScratchLocation;
pub use stats::{SvmStats, SvmStatsSnapshot};
pub use svm::{
    install, PageInfo, Placement, SvmConfig, SvmConfigBuilder, SvmConfigError, SvmCtx,
};
pub use sync::{SvmLock, SyncError};
