//! Offline stand-in for `serde_derive`.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as markers —
//! nothing actually serialises through serde (the JSON emitters are
//! hand-rolled). The derives therefore expand to nothing, keeping the
//! attribute syntax valid without pulling the real implementation.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
