//! The deterministic open-loop traffic generator.
//!
//! Each client core owns an independent SplitMix64 stream seeded from
//! `(run seed, client rank)`, and draws, per request, in a fixed order:
//! inter-arrival gap, operation, key. Every draw is a pure function of
//! the stream state, so the same seed reproduces the same request trace
//! on any executor — the determinism tests hold serial and parallel runs
//! bit-identical.
//!
//! **Open loop:** arrivals are a Poisson process in *virtual time* —
//! exponential inter-arrival gaps accumulated into absolute schedule
//! times. A client that falls behind (the previous request's reply came
//! back after the next arrival was due) does not slow the schedule down;
//! the next request is simply issued late and its latency — measured
//! from the *scheduled* arrival, not the send — includes the queueing
//! delay. That is what makes tail latency honest under overload, and it
//! is the standard open-loop correction (closed-loop generators hide
//! exactly the tail the paper's Fig. 9 comparison is about).
//!
//! **Skew:** keys are ranked by a Zipf(θ) sampler (the Gray et al.
//! closed-form used by YCSB — O(1) per draw after an O(n) ζ(n) scalar
//! precompute, no tables), then scattered over the keyspace by a fixed
//! odd-multiplier bijection so that "hot" ranks do not cluster into the
//! same partition or page.

/// SplitMix64 — the workspace's standard deterministic stream generator.
#[derive(Clone, Debug)]
pub struct Stream(u64);

impl Stream {
    pub fn new(seed: u64) -> Stream {
        Stream(seed)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1) with 53 bits of entropy.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Exponential inter-arrival gap with the given mean, in whole cycles
/// (at least 1), via inverse-CDF over the stream.
pub fn exp_gap(s: &mut Stream, mean_cycles: u64) -> u64 {
    // 1 - u in (0, 1] so ln never sees zero.
    let u = 1.0 - s.next_f64();
    let gap = -(u.ln()) * mean_cycles as f64;
    (gap as u64).max(1)
}

/// Zipf(θ) rank sampler over `n` items, rank 0 hottest. θ = 0 is uniform;
/// θ in (0, 1) is the classic YCSB range (0.99 ≈ "high skew").
#[derive(Clone, Debug)]
pub struct Zipf {
    n: u64,
    theta: f64,
    zetan: f64,
    alpha: f64,
    eta: f64,
}

impl Zipf {
    pub fn new(n: u64, theta: f64) -> Zipf {
        assert!(n > 0, "empty keyspace");
        assert!(
            (0.0..1.0).contains(&theta),
            "theta must be in [0, 1): {theta}"
        );
        if theta == 0.0 {
            return Zipf {
                n,
                theta,
                zetan: 0.0,
                alpha: 0.0,
                eta: 0.0,
            };
        }
        let zetan: f64 = (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum();
        let zeta2 = 1.0 + 1.0 / 2f64.powf(theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipf {
            n,
            theta,
            zetan,
            alpha,
            eta,
        }
    }

    /// Draw a rank in `0..n` (0 = hottest).
    pub fn rank(&self, s: &mut Stream) -> u64 {
        if self.theta == 0.0 {
            return s.next_u64() % self.n;
        }
        let u = s.next_f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let r = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        r.min(self.n - 1)
    }
}

/// Scatter a Zipf rank over a power-of-two keyspace: multiplication by an
/// odd constant is a bijection mod 2^k, so hot ranks land on unrelated
/// keys (different partitions, different pages) instead of clustering at
/// the bottom of partition 0.
pub fn rank_to_key(rank: u64, keyspace_log2: u32) -> u32 {
    (rank.wrapping_mul(0x9E37_79B1) & ((1u64 << keyspace_log2) - 1)) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_distinct() {
        let mut a = Stream::new(7);
        let mut b = Stream::new(7);
        let mut c = Stream::new(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn exp_gap_mean_is_close() {
        let mut s = Stream::new(42);
        let n = 100_000;
        let total: u64 = (0..n).map(|_| exp_gap(&mut s, 1000)).sum();
        let mean = total as f64 / n as f64;
        assert!((900.0..1100.0).contains(&mean), "mean {mean} far from 1000");
    }

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let z = Zipf::new(1024, 0.99);
        let mut s = Stream::new(1);
        let mut counts = vec![0u64; 1024];
        for _ in 0..100_000 {
            let r = z.rank(&mut s) as usize;
            counts[r] += 1;
        }
        // Rank 0 must dominate and the top ten ranks must carry a large
        // share under theta=0.99.
        let top10: u64 = counts[..10].iter().sum();
        assert!(counts[0] > counts[100] * 5, "rank 0 not hot: {}", counts[0]);
        assert!(top10 > 100_000 / 4, "top-10 share too small: {top10}");
    }

    #[test]
    fn zipf_uniform_when_theta_zero() {
        let z = Zipf::new(64, 0.0);
        let mut s = Stream::new(3);
        let mut counts = vec![0u64; 64];
        for _ in 0..64_000 {
            counts[z.rank(&mut s) as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((500..1500).contains(&c), "rank {i} count {c} not uniform");
        }
    }

    #[test]
    fn rank_to_key_is_a_bijection() {
        let log2 = 12;
        let mut seen = vec![false; 1 << log2];
        for r in 0..(1u64 << log2) {
            let k = rank_to_key(r, log2 as u32) as usize;
            assert!(!seen[k], "key {k} hit twice");
            seen[k] = true;
        }
    }
}
