//! RPC framing: kv requests and replies as single mailbox mails.
//!
//! The mailbox's 32-byte line leaves [`scc_mailbox::MAX_PAYLOAD`] = 20
//! payload bytes, which fits one request or one reply exactly — kv never
//! needs fragmentation. Two application mail kinds are claimed above the
//! SVM protocols' 0–7 range:
//!
//! * [`KV_REQ`] (kind 8), client → server:
//!   `[op:1][corr:4][key:4][val:8]` = 17 bytes. For SCAN, `key` is the
//!   start key and `val` carries the scan length.
//! * [`KV_RESP`] (kind 9), server → client:
//!   `[status:1][corr:4][val:8]` = 13 bytes. For SCAN, `val` is the
//!   checksum (wrapping sum) of the scanned values.
//!
//! Neither kind registers a mail handler: requests queue in the server's
//! inbox and are consumed by its main `recv` loop in normal kernel
//! context, where SVM faults and partition locks are safe — the SVM
//! protocol mails (kinds 1–7) keep their handlers and are dispatched
//! inside the responsive waits either side. Correlation ids pair replies
//! with requests: the client matches `recv_from(server)` mails against
//! the id it sent, so a late or reordered reply can never be attributed
//! to the wrong request.

use scc_mailbox::{Mail, MailKind};

/// Client → server request mail kind.
pub const KV_REQ: MailKind = MailKind(8);
/// Server → client reply mail kind.
pub const KV_RESP: MailKind = MailKind(9);

/// Operations, as wire tags and trace-event `op` arguments.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Op {
    Get = 0,
    Put = 1,
    Scan = 2,
    /// Client is done; no reply. A server exits after one Stop from
    /// every client.
    Stop = 3,
}

impl Op {
    fn from_wire(b: u8) -> Op {
        match b {
            0 => Op::Get,
            1 => Op::Put,
            2 => Op::Scan,
            3 => Op::Stop,
            _ => panic!("corrupt kv request: unknown op {b}"),
        }
    }
}

/// Reply status codes.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Status {
    Ok = 0,
    /// The server refused the operation (PUT against a sealed partition
    /// that slipped past the client-side filter).
    Rejected = 1,
}

/// A decoded request.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Request {
    pub op: Op,
    pub corr: u32,
    pub key: u32,
    pub val: u64,
}

impl Request {
    pub fn encode(&self) -> [u8; 17] {
        let mut out = [0u8; 17];
        out[0] = self.op as u8;
        out[1..5].copy_from_slice(&self.corr.to_le_bytes());
        out[5..9].copy_from_slice(&self.key.to_le_bytes());
        out[9..17].copy_from_slice(&self.val.to_le_bytes());
        out
    }

    pub fn decode(mail: &Mail) -> Request {
        let d = mail.data();
        assert_eq!(d.len(), 17, "corrupt kv request length");
        Request {
            op: Op::from_wire(d[0]),
            corr: u32::from_le_bytes(d[1..5].try_into().unwrap()),
            key: u32::from_le_bytes(d[5..9].try_into().unwrap()),
            val: u64::from_le_bytes(d[9..17].try_into().unwrap()),
        }
    }
}

/// A decoded reply.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Reply {
    pub status: Status,
    pub corr: u32,
    pub val: u64,
}

impl Reply {
    pub fn encode(&self) -> [u8; 13] {
        let mut out = [0u8; 13];
        out[0] = self.status as u8;
        out[1..5].copy_from_slice(&self.corr.to_le_bytes());
        out[5..13].copy_from_slice(&self.val.to_le_bytes());
        out
    }

    pub fn decode(mail: &Mail) -> Reply {
        let d = mail.data();
        assert_eq!(d.len(), 13, "corrupt kv reply length");
        Reply {
            status: match d[0] {
                0 => Status::Ok,
                1 => Status::Rejected,
                s => panic!("corrupt kv reply: unknown status {s}"),
            },
            corr: u32::from_le_bytes(d[1..5].try_into().unwrap()),
            val: u64::from_le_bytes(d[5..13].try_into().unwrap()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scc_hw::CoreId;

    #[test]
    fn request_round_trips() {
        let r = Request {
            op: Op::Scan,
            corr: 0xDEAD_BEEF,
            key: 12345,
            val: 0x0102_0304_0506_0708,
        };
        let mail = Mail::new(CoreId::new(3), KV_REQ, 7, &r.encode());
        assert_eq!(Request::decode(&mail), r);
    }

    #[test]
    fn reply_round_trips() {
        let r = Reply {
            status: Status::Rejected,
            corr: 42,
            val: u64::MAX,
        };
        let mail = Mail::new(CoreId::new(0), KV_RESP, 9, &r.encode());
        assert_eq!(Reply::decode(&mail), r);
    }

    #[test]
    fn frames_fit_one_mail() {
        let req = Request {
            op: Op::Get,
            corr: 0,
            key: 0,
            val: 0,
        };
        let rep = Reply {
            status: Status::Ok,
            corr: 0,
            val: 0,
        };
        assert!(req.encode().len() <= scc_mailbox::MAX_PAYLOAD);
        assert!(rep.encode().len() <= scc_mailbox::MAX_PAYLOAD);
    }
}
