//! svm-kv: a partitioned key-value service over shared virtual memory.
//!
//! The SVM papers' microbenchmarks stress one page-fault protocol at a
//! time; a key-value service stresses all of them at once, continuously,
//! under skewed load — which is where consistency-model choice stops
//! being a benchmark knob and becomes a data-placement decision. This
//! crate layers a long-lived GET/PUT/SCAN service over the workspace's
//! SVM stack:
//!
//! * [`rpc`] — request/reply framing in single mailbox mails with
//!   correlation ids (kinds 8/9, above the SVM protocols' range);
//! * [`store`] — the hash-partitioned store itself, each partition
//!   independently choosing [`Strategy::Strong`] ownership migration,
//!   [`Strategy::Lrc`] lock-guarded lazy release, or a read-only
//!   [`Strategy::Sealed`] snapshot;
//! * [`gen`] — the deterministic open-loop generator: seeded per-client
//!   SplitMix64 streams, Zipf(θ) key skew, Poisson arrivals in virtual
//!   time;
//! * [`hist`] — an HDR-style log-linear latency histogram with bounded
//!   quantile error and associative merge.
//!
//! Everything is deterministic by construction: the same seed reproduces
//! the same request trace, the same reply values and the same latency
//! histogram on the serial executor and on `ParEngine` (the tests in
//! `tests/tests/kv.rs` diff the outcomes bit-for-bit).

pub mod gen;
pub mod hist;
pub mod rpc;
pub mod store;

pub use gen::{exp_gap, rank_to_key, Stream, Zipf};
pub use hist::{LatencyHistogram, SUB_BUCKETS};
pub use rpc::{Op, Reply, Request, Status, KV_REQ, KV_RESP};
pub use store::{initial_value, run_kv, KvConfig, KvOutcome, ReqRecord, Strategy};

use scc_hw::metrics::MetricsSnapshot;

/// Aggregate per-core outcomes into a `kv.*` metrics snapshot: request
/// counters (additive) plus merged-histogram latency quantiles (set, in
/// virtual cycles). Feed the result into the run's metric merge next to
/// the `svm.*` / `mbx.*` / `exec.*` families.
pub fn kv_metrics(outcomes: &[KvOutcome]) -> MetricsSnapshot {
    let mut m = MetricsSnapshot::new();
    let mut hist = LatencyHistogram::new();
    for o in outcomes {
        m.add("kv.served", o.served);
        m.add("kv.gets", o.gets);
        m.add("kv.puts", o.puts);
        m.add("kv.scans", o.scans);
        m.add("kv.rejected", o.rejected);
        hist.merge(&o.hist);
    }
    m.add(
        "kv.requests",
        outcomes.iter().map(|o| o.gets + o.puts + o.scans).sum(),
    );
    m.set("kv.lat.p50", hist.p50());
    m.set("kv.lat.p99", hist.p99());
    m.set("kv.lat.p999", hist.p999());
    m.set("kv.lat.max", hist.max());
    m.set("kv.lat.mean", hist.mean() as u64);
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kv_metrics_aggregates_and_sets_quantiles() {
        let mut a = KvOutcome {
            is_server: false,
            served: 0,
            gets: 10,
            puts: 5,
            scans: 1,
            rejected: 2,
            hist: LatencyHistogram::new(),
            records: Vec::new(),
            start_clock: 0,
            end_clock: 0,
        };
        for v in [100u64, 200, 300, 400] {
            a.hist.record(v);
        }
        let mut b = a.clone();
        b.is_server = true;
        b.served = 16;
        let m = kv_metrics(&[a, b]);
        assert_eq!(m.get("kv.requests"), 32);
        assert_eq!(m.get("kv.served"), 16);
        assert_eq!(m.get("kv.rejected"), 4);
        assert!(m.get("kv.lat.p99") >= m.get("kv.lat.p50"));
        assert!(m.get("kv.lat.max") >= m.get("kv.lat.p999"));
    }
}
