//! The partitioned store and its server/client roles.
//!
//! One `run_kv` call is an SPMD program over all participating cores:
//! every core walks the same collective setup (per-partition region
//! allocation, lock creation, rank-0 fill, barrier, seal), then splits —
//! ranks `0..servers` enter the server loop, the rest become load
//! generators. See DESIGN.md §13 for the full protocol walk-through.
//!
//! ## Per-partition consistency strategies
//!
//! * [`Strategy::Strong`] — the partition's region uses the strong
//!   single-owner model, and GET/PUT requests are routed to the
//!   partition's *home server*. The home server's pages stay put while
//!   the partition is write-hot — until a SCAN (served round-robin by
//!   *any* server, on purpose) drags ownership across the mesh and the
//!   next PUT migrates it back. This is the paper's Fig. 9 migration
//!   tension, re-created as a service.
//! * [`Strategy::Lrc`] — the region uses lazy release consistency and
//!   requests for the partition are spread over *all* servers by key
//!   hash; every access runs under the partition's [`metalsvm::SvmLock`],
//!   whose acquire-invalidate / release-flush actions are exactly the
//!   sync discipline svm-check's vector clocks require. Read-mostly
//!   partitions stay replicated on every server between invalidations.
//! * [`Strategy::Sealed`] — the region is filled once, then collectively
//!   sealed read-only ([`metalsvm::SvmCtx::mprotect_readonly`]); GETs and
//!   SCANs are served lock-free by any server from local read-only
//!   mappings, and PUTs are refused at the *client* (counted, never
//!   sent). Immutable snapshot serving at memory speed.

use crate::gen::{exp_gap, rank_to_key, Stream, Zipf};
use crate::hist::LatencyHistogram;
use crate::rpc::{Op, Reply, Request, Status, KV_REQ, KV_RESP};
use metalsvm::{Consistency, SvmArray, SvmCtx, SvmLock};
use scc_hw::instr::EventKind;
use scc_kernel::Kernel;
use scc_mailbox::Mailbox;

/// Consistency strategy of one partition.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Strategy {
    Strong,
    Lrc,
    Sealed,
}

impl Strategy {
    pub fn name(self) -> &'static str {
        match self {
            Strategy::Strong => "strong",
            Strategy::Lrc => "lrc",
            Strategy::Sealed => "sealed",
        }
    }
}

/// Configuration of one `run_kv` service run.
#[derive(Clone, Debug)]
pub struct KvConfig {
    /// Ranks `0..servers` serve; the rest generate load. At least one of
    /// each.
    pub servers: usize,
    /// One strategy per partition; keys are spread over partitions by
    /// `key % partitions.len()`.
    pub partitions: Vec<Strategy>,
    /// Total keyspace = `2^keyspace_log2` keys (power of two so the
    /// rank-to-key scatter is a bijection).
    pub keyspace_log2: u32,
    /// Open-loop requests issued by each client.
    pub requests_per_client: usize,
    /// Mean Poisson inter-arrival gap per client, in virtual cycles.
    pub mean_interarrival: u64,
    /// Zipf skew θ in [0, 1): 0 uniform, 0.99 the classic "high skew".
    pub zipf_theta: f64,
    /// Operation mix in percent; the remainder after GETs and SCANs is
    /// PUTs.
    pub get_pct: u8,
    pub scan_pct: u8,
    /// Keys touched by one SCAN.
    pub scan_len: u32,
    /// Master seed; every client stream derives from it.
    pub seed: u64,
    /// Keep a full per-request record vector (corr, op, key, scheduled
    /// and completed stamps) — the determinism tests diff these
    /// bit-for-bit. Off for the million-request bench runs.
    pub record_requests: bool,
}

impl KvConfig {
    /// A small smoke-test shape: strong + LRC + sealed partitions.
    pub fn smoke(servers: usize, requests_per_client: usize) -> KvConfig {
        KvConfig {
            servers,
            partitions: vec![Strategy::Strong, Strategy::Lrc, Strategy::Sealed],
            keyspace_log2: 10,
            requests_per_client,
            mean_interarrival: 20_000,
            zipf_theta: 0.9,
            get_pct: 70,
            scan_pct: 10,
            scan_len: 16,
            seed: 0x5CC4B,
            record_requests: false,
        }
    }

    fn validate(&self, nranks: usize) {
        assert!(self.servers >= 1, "need at least one server");
        assert!(
            self.servers < nranks,
            "need at least one client ({} servers, {} cores)",
            self.servers,
            nranks
        );
        assert!(!self.partitions.is_empty(), "need at least one partition");
        assert!(
            (1..=26).contains(&self.keyspace_log2),
            "keyspace_log2 out of range"
        );
        assert!(
            self.get_pct as u32 + self.scan_pct as u32 <= 100,
            "op mix exceeds 100%"
        );
        assert!(self.scan_len >= 1, "scan_len must be at least 1");
        assert!(self.mean_interarrival >= 1, "mean_interarrival must be >= 1");
    }
}

/// One per-request record (determinism evidence; `record_requests`).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ReqRecord {
    pub corr: u32,
    pub op: u8,
    pub key: u32,
    /// Scheduled (open-loop) arrival, virtual cycles.
    pub sched: u64,
    /// Completion stamp; 0 for client-side rejections.
    pub done: u64,
    /// Returned value / checksum; 0 for PUTs and rejections.
    pub val: u64,
}

/// What one core contributes back from `run_kv`.
#[derive(Clone, Debug, PartialEq)]
pub struct KvOutcome {
    /// True for ranks `0..servers`.
    pub is_server: bool,
    /// Requests served (server) — GETs + PUTs + SCANs, not STOPs.
    pub served: u64,
    /// Client-side issue counts.
    pub gets: u64,
    pub puts: u64,
    pub scans: u64,
    /// PUTs refused client-side against sealed partitions.
    pub rejected: u64,
    /// Client-side end-to-end latency (from *scheduled* arrival).
    pub hist: LatencyHistogram,
    /// Per-request records (empty unless `record_requests`).
    pub records: Vec<ReqRecord>,
    /// Virtual clock when this core started issuing / serving.
    pub start_clock: u64,
    /// Virtual clock when this core finished.
    pub end_clock: u64,
}

/// Deterministic initial value of `key` (checked by GET validation).
pub fn initial_value(key: u32) -> u64 {
    let mut s = Stream::new(0xF111_0000_0000_0000 ^ u64::from(key));
    s.next_u64()
}

struct Partition {
    region: metalsvm::SvmRegion,
    array: SvmArray<u64>,
    lock: SvmLock,
    strategy: Strategy,
}

/// The whole service: collective setup, then role split. Returns this
/// core's contribution. Requires an installed mailbox and SVM system.
pub fn run_kv(k: &mut Kernel<'_>, mbx: &Mailbox, svm: &mut SvmCtx, cfg: &KvConfig) -> KvOutcome {
    cfg.validate(k.nranks());
    let nparts = cfg.partitions.len();
    let keyspace = 1u64 << cfg.keyspace_log2;
    let keys_per_part = keyspace.div_ceil(nparts as u64) as usize;

    // --- Collective setup: regions, locks, fill, seal -------------------
    let parts: Vec<Partition> = cfg
        .partitions
        .iter()
        .map(|&strategy| {
            let model = match strategy {
                Strategy::Strong => Consistency::Strong,
                // Sealed partitions live under LRC until the seal; the
                // fill-then-barrier gives the seal a clean base.
                Strategy::Lrc | Strategy::Sealed => Consistency::LazyRelease,
            };
            let bytes = (keys_per_part * 8) as u32;
            let region = svm.alloc(k, bytes, model);
            Partition {
                region,
                array: SvmArray::<u64>::new(region, keys_per_part),
                lock: svm.lock_new(k),
                strategy,
            }
        })
        .collect();

    if k.rank() == 0 {
        // Rank 0 loads every key's initial value; the barrier below is
        // the release/acquire edge that publishes the fill to everyone.
        for key in 0..keyspace as u32 {
            let p = key as usize % nparts;
            let idx = key as usize / nparts;
            parts[p].array.set(k, idx, initial_value(key));
        }
        k.hw.flush_wcb();
    }
    svm.barrier(k);
    for part in &parts {
        if part.strategy == Strategy::Sealed {
            svm.mprotect_readonly(k, part.region);
        }
    }
    svm.barrier(k);

    // --- Role split -----------------------------------------------------
    let nclients = k.nranks() - cfg.servers;
    let start_clock = k.hw.now();
    let mut out = if k.rank() < cfg.servers {
        serve(k, mbx, &parts, nclients, keys_per_part)
    } else {
        generate(k, mbx, cfg, &parts)
    };
    out.start_clock = start_clock;

    // Everyone regroups before results are read off: the barrier also
    // publishes the final store contents for any post-run validation.
    svm.barrier(k);
    scc_kernel::ram_barrier(k, "kv.done");
    out.end_clock = k.hw.now();
    out
}

/// Execute one operation against the partitioned store (server side,
/// normal kernel context — faults and locks are safe here).
fn apply(k: &mut Kernel<'_>, parts: &[Partition], req: &Request, keys_per_part: usize) -> Reply {
    let nparts = parts.len();
    let p = req.key as usize % nparts;
    let part = &parts[p];
    let idx = req.key as usize / nparts;
    match (req.op, part.strategy) {
        (Op::Get, Strategy::Lrc) => {
            let val = part.lock.with(k, |k| part.array.get(k, idx));
            Reply { status: Status::Ok, corr: req.corr, val }
        }
        (Op::Get, _) => {
            let val = part.array.get(k, idx);
            Reply { status: Status::Ok, corr: req.corr, val }
        }
        (Op::Put, Strategy::Sealed) => Reply {
            status: Status::Rejected,
            corr: req.corr,
            val: 0,
        },
        (Op::Put, Strategy::Lrc) => {
            part.lock.with(k, |k| part.array.set(k, idx, req.val));
            Reply { status: Status::Ok, corr: req.corr, val: 0 }
        }
        (Op::Put, Strategy::Strong) => {
            part.array.set(k, idx, req.val);
            Reply { status: Status::Ok, corr: req.corr, val: 0 }
        }
        (Op::Scan, strategy) => {
            let len = (req.val as usize).max(1);
            let end = (idx + len).min(keys_per_part);
            let sum = |k: &mut Kernel<'_>| {
                let mut acc = 0u64;
                for i in idx..end {
                    acc = acc.wrapping_add(part.array.get(k, i));
                }
                acc
            };
            let val = if strategy == Strategy::Lrc {
                part.lock.with(k, sum)
            } else {
                sum(k)
            };
            Reply { status: Status::Ok, corr: req.corr, val }
        }
        (Op::Stop, _) => unreachable!("Stop is consumed by the server loop"),
    }
}

/// The server main loop: drain requests until every client said Stop.
fn serve(
    k: &mut Kernel<'_>,
    mbx: &Mailbox,
    parts: &[Partition],
    nclients: usize,
    keys_per_part: usize,
) -> KvOutcome {
    let mut stops = 0usize;
    let mut served = 0u64;
    while stops < nclients {
        let mail = mbx.recv(k);
        debug_assert_eq!(mail.kind, KV_REQ, "unexpected mail kind in kv server");
        let req = Request::decode(&mail);
        if req.op == Op::Stop {
            stops += 1;
            continue;
        }
        let reply = apply(k, parts, &req, keys_per_part);
        served += 1;
        mbx.send(k, mail.from, KV_RESP, &reply.encode());
    }
    KvOutcome {
        is_server: true,
        served,
        gets: 0,
        puts: 0,
        scans: 0,
        rejected: 0,
        hist: LatencyHistogram::new(),
        records: Vec::new(),
        start_clock: 0,
        end_clock: 0,
    }
}

/// The open-loop client: draw, pace, issue, match the reply, record.
fn generate(k: &mut Kernel<'_>, mbx: &Mailbox, cfg: &KvConfig, parts: &[Partition]) -> KvOutcome {
    let nparts = parts.len();
    let keyspace = 1u64 << cfg.keyspace_log2;
    // Stream seed mixes the run seed with this client's rank through one
    // SplitMix64 step so neighbouring ranks get unrelated streams.
    let mut stream = Stream::new(
        Stream::new(cfg.seed ^ (k.rank() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)).next_u64(),
    );
    let zipf = Zipf::new(keyspace, cfg.zipf_theta);
    let participants = k.participants().to_vec();
    let servers = &participants[..cfg.servers];

    let mut hist = LatencyHistogram::new();
    let mut records = Vec::new();
    let (mut gets, mut puts, mut scans, mut rejected) = (0u64, 0u64, 0u64, 0u64);
    let mut t_next = k.hw.now();

    for seq in 0..cfg.requests_per_client {
        // Fixed draw order: gap, op, key — the determinism contract.
        t_next += exp_gap(&mut stream, cfg.mean_interarrival);
        let op_draw = (stream.next_u64() % 100) as u8;
        let key = rank_to_key(zipf.rank(&mut stream), cfg.keyspace_log2);
        let p = key as usize % nparts;
        let strategy = parts[p].strategy;
        let op = if op_draw < cfg.get_pct {
            Op::Get
        } else if op_draw < cfg.get_pct + cfg.scan_pct {
            Op::Scan
        } else {
            Op::Put
        };
        let corr = seq as u32;

        // Open-loop pacing: idle until the scheduled arrival if we are
        // early; if we are late, the lateness is queueing delay and stays
        // in the measured latency.
        let now = k.hw.now();
        if now < t_next {
            k.hw.advance(t_next - now);
        }

        k.hw.trace3(EventKind::KvReq, op as u8 as u32, key, corr);
        if op == Op::Put && strategy == Strategy::Sealed {
            // Refused at the client: a sealed partition never sees PUTs.
            rejected += 1;
            if cfg.record_requests {
                records.push(ReqRecord {
                    corr,
                    op: op as u8,
                    key,
                    sched: t_next,
                    done: 0,
                    val: 0,
                });
            }
            continue;
        }

        let req = Request {
            op,
            corr,
            key,
            val: match op {
                Op::Put => initial_value(key) ^ u64::from(corr),
                Op::Scan => u64::from(cfg.scan_len),
                _ => 0,
            },
        };
        let server = match (op, strategy) {
            // SCANs deliberately rotate over every server so snapshot
            // reads and migration storms reach non-home cores.
            (Op::Scan, _) => servers[corr as usize % servers.len()],
            (_, Strategy::Strong) => servers[p % servers.len()],
            // Key-hashed spread; same key, same server — replicas warm up.
            _ => servers[(Stream::new(u64::from(key)).next_u64() as usize) % servers.len()],
        };
        mbx.send(k, server, KV_REQ, &req.encode());
        let reply = Reply::decode(&mbx.recv_from(k, server));
        assert_eq!(reply.corr, corr, "correlation mismatch");
        debug_assert_eq!(reply.status, Status::Ok);
        match op {
            Op::Get => gets += 1,
            Op::Put => puts += 1,
            Op::Scan => scans += 1,
            Op::Stop => unreachable!(),
        }

        let done = k.hw.now();
        let latency = done - t_next;
        hist.record(latency);
        k.hw.trace3(
            EventKind::KvResp,
            op as u8 as u32,
            u32::try_from(latency).unwrap_or(u32::MAX),
            corr,
        );
        if cfg.record_requests {
            records.push(ReqRecord {
                corr,
                op: op as u8,
                key,
                sched: t_next,
                done,
                val: reply.val,
            });
        }
    }

    let stop = Request {
        op: Op::Stop,
        corr: u32::MAX,
        key: 0,
        val: 0,
    };
    for &srv in servers {
        mbx.send(k, srv, KV_REQ, &stop.encode());
    }
    KvOutcome {
        is_server: false,
        served: 0,
        gets,
        puts,
        scans,
        rejected,
        hist,
        records,
        start_clock: 0,
        end_clock: 0,
    }
}
