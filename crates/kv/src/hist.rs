//! A fixed-footprint log-linear latency histogram (HDR-lite).
//!
//! Virtual-time request latencies span six orders of magnitude (a warm
//! GET is a few hundred cycles; a SCAN that drags a strong-model page
//! migration storm behind it is tens of millions), so a linear histogram
//! is hopeless and a sorted vector of millions of samples is memory a
//! 512-core run cannot afford. The classic answer is HdrHistogram's
//! log-linear bucketing: one major bucket per power of two, each split
//! into [`SUB_BUCKETS`] linear sub-buckets. Relative quantile error is
//! bounded by `1 / SUB_BUCKETS` (6.25%), counts are exact, and the whole
//! structure is a flat `u64` array — merging is element-wise addition,
//! which makes per-core recording and post-run aggregation trivially
//! associative (the property tests hold both bounds).
//!
//! Values are virtual cycles; zero is stored in its own first bucket.

/// Linear sub-buckets per power-of-two major bucket. The quantile
/// relative-error bound is `1 / SUB_BUCKETS`.
pub const SUB_BUCKETS: usize = 16;

/// Major buckets: values up to `2^63 - 1` (virtual cycles fit easily).
const MAJORS: usize = 60;

/// Log-linear latency histogram; see the module docs.
#[derive(Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: Box<[u64]>,
    total: u64,
    /// Exact sum of recorded values (mean stays error-free).
    sum: u128,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0u64; MAJORS * SUB_BUCKETS].into_boxed_slice(),
            total: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Bucket index of `v`: major = position of the highest set bit above
    /// the sub-bucket resolution, sub = the next `log2(SUB_BUCKETS)` bits.
    fn index_of(v: u64) -> usize {
        if v < SUB_BUCKETS as u64 {
            // The first major bucket is fully linear: one count per value.
            return v as usize;
        }
        let tz = SUB_BUCKETS.trailing_zeros() as usize; // log2(SUB_BUCKETS)
        let msb = 63 - v.leading_zeros() as usize; // >= tz
        let major = msb - tz + 1;
        let sub = ((v >> (msb - tz)) as usize) & (SUB_BUCKETS - 1);
        // Majors beyond the table saturate into the last row.
        let major = major.min(MAJORS - 1);
        major * SUB_BUCKETS + sub
    }

    /// Lower edge of bucket `i` — the smallest value mapping to it. The
    /// reported quantile value; within `1/SUB_BUCKETS` of any member.
    fn value_of(i: usize) -> u64 {
        let major = i / SUB_BUCKETS;
        let sub = (i % SUB_BUCKETS) as u64;
        if major == 0 {
            return sub;
        }
        let shift = major - 1 + SUB_BUCKETS.trailing_zeros() as usize;
        (1u64 << shift) | (sub << (shift - SUB_BUCKETS.trailing_zeros() as usize))
    }

    pub fn record(&mut self, v: u64) {
        self.counts[Self::index_of(v)] += 1;
        self.total += 1;
        self.sum += u128::from(v);
        self.max = self.max.max(v);
    }

    /// Element-wise merge; associative and commutative by construction.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += *b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    pub fn count(&self) -> u64 {
        self.total
    }

    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact mean of the recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.sum as f64 / self.total as f64
    }

    /// Value at quantile `q` in [0, 1]: the bucket edge below which at
    /// least `ceil(q * count)` samples fall. 0 when empty. Matches the
    /// naive "sorted vector, element at index ceil(q*n)-1" definition up
    /// to the bucket resolution (the property tests pin the bound).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let target = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::value_of(i);
            }
        }
        self.max
    }

    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.total)
            .field("mean", &self.mean())
            .field("p50", &self.p50())
            .field("p99", &self.p99())
            .field("p999", &self.p999())
            .field("max", &self.max)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..SUB_BUCKETS as u64 {
            h.record(v);
        }
        assert_eq!(h.quantile(1.0 / SUB_BUCKETS as f64), 0);
        assert_eq!(h.quantile(1.0), SUB_BUCKETS as u64 - 1);
        assert_eq!(h.count(), SUB_BUCKETS as u64);
    }

    #[test]
    fn bucket_edges_round_trip() {
        // Every bucket's lower edge must map back to that bucket.
        for i in 0..(40 * SUB_BUCKETS) {
            let v = LatencyHistogram::value_of(i);
            assert_eq!(
                LatencyHistogram::index_of(v),
                i,
                "edge {v} of bucket {i} must map home"
            );
        }
    }

    #[test]
    fn quantile_error_is_bounded() {
        let mut h = LatencyHistogram::new();
        let mut vals = Vec::new();
        let mut x = 0x1234_5678_u64;
        for _ in 0..10_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let v = (x >> 33) % 5_000_000;
            h.record(v);
            vals.push(v);
        }
        vals.sort_unstable();
        for q in [0.5, 0.9, 0.99, 0.999] {
            let exact = vals[((q * vals.len() as f64).ceil() as usize - 1).min(vals.len() - 1)];
            let approx = h.quantile(q);
            let bound = exact as f64 / SUB_BUCKETS as f64 + 1.0;
            assert!(
                (approx as f64 - exact as f64).abs() <= bound,
                "q={q}: approx {approx} vs exact {exact} (bound {bound})"
            );
        }
    }
}
