//! End-to-end tests of the kv service on the full simulated stack.

use metalsvm::{install, SvmConfig};
use scc_hw::SccConfig;
use scc_kv::{initial_value, run_kv, KvConfig, KvOutcome, Op, Strategy};
use scc_mailbox::{install as mbx_install, Notify};

/// Boot `n` cores, run the service, return per-core outcomes.
fn run_service(n: usize, cfg: &KvConfig) -> Vec<KvOutcome> {
    let cl = scc_kernel::Cluster::new(SccConfig::small()).unwrap();
    cl.run(n, |k| {
        let mbx = mbx_install(k, Notify::Ipi);
        let mut svm = install(k, &mbx, SvmConfig::default());
        run_kv(k, &mbx, &mut svm, cfg)
    })
    .unwrap()
    .into_iter()
    .map(|r| r.result)
    .collect()
}

#[test]
fn get_only_run_returns_initial_values_everywhere() {
    let cfg = KvConfig {
        get_pct: 100,
        scan_pct: 0,
        requests_per_client: 120,
        record_requests: true,
        ..KvConfig::smoke(2, 120)
    };
    let outs = run_service(6, &cfg);
    let clients: Vec<_> = outs.iter().filter(|o| !o.is_server).collect();
    assert_eq!(clients.len(), 4);
    for o in &clients {
        assert_eq!(o.gets, 120);
        assert_eq!(o.puts + o.scans + o.rejected, 0);
        assert_eq!(o.hist.count(), 120);
        assert_eq!(o.records.len(), 120);
        for r in &o.records {
            assert_eq!(
                r.val,
                initial_value(r.key),
                "GET of key {} returned a wrong value",
                r.key
            );
            assert!(r.done >= r.sched, "completion precedes scheduled arrival");
        }
    }
    let served: u64 = outs.iter().map(|o| o.served).sum();
    assert_eq!(served, 4 * 120);
}

#[test]
fn mixed_ops_balance_and_sealed_puts_are_rejected() {
    let cfg = KvConfig::smoke(2, 400);
    let outs = run_service(6, &cfg);
    let sent: u64 = outs.iter().map(|o| o.gets + o.puts + o.scans).sum();
    let served: u64 = outs.iter().map(|o| o.served).sum();
    let rejected: u64 = outs.iter().map(|o| o.rejected).sum();
    assert_eq!(sent, served, "every sent request must be served");
    assert_eq!(sent + rejected, 4 * 400, "all draws accounted for");
    assert!(
        rejected > 0,
        "a 20% PUT share over a 1/3-sealed keyspace must reject some"
    );
    let hist_count: u64 = outs.iter().map(|o| o.hist.count()).sum();
    assert_eq!(hist_count, sent, "one latency sample per served request");
}

#[test]
fn scans_checksum_the_sealed_partition() {
    // Scan-only traffic against a single sealed partition: every reply is
    // the wrapping sum of `scan_len` (or fewer, at the tail) initial
    // values, independently recomputable here.
    let cfg = KvConfig {
        partitions: vec![Strategy::Sealed],
        get_pct: 0,
        scan_pct: 100,
        scan_len: 8,
        keyspace_log2: 8,
        requests_per_client: 60,
        record_requests: true,
        ..KvConfig::smoke(1, 60)
    };
    let outs = run_service(3, &cfg);
    for o in outs.iter().filter(|o| !o.is_server) {
        assert_eq!(o.scans, 60);
        for r in &o.records {
            assert_eq!(r.op, Op::Scan as u8);
            let mut want = 0u64;
            for key in r.key..(r.key + 8).min(1 << 8) {
                want = want.wrapping_add(initial_value(key));
            }
            assert_eq!(r.val, want, "scan at {} returned a wrong checksum", r.key);
        }
    }
}

#[test]
fn same_seed_same_outcome_across_runs() {
    let cfg = KvConfig {
        record_requests: true,
        ..KvConfig::smoke(2, 150)
    };
    let a = run_service(6, &cfg);
    let b = run_service(6, &cfg);
    assert_eq!(a, b, "same seed must reproduce the run bit-for-bit");
    let c = run_service(
        6,
        &KvConfig {
            seed: cfg.seed + 1,
            ..cfg
        },
    );
    assert_ne!(a, c, "a different seed must change the trace");
}
