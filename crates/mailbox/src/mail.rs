//! Wire format of one mail: exactly one 32-byte cache line.
//!
//! ```text
//! byte  0      : send flag (0 = empty, 1 = full)
//! byte  1      : mail kind
//! bytes 2..4   : payload length (LE u16, <= 20)
//! bytes 4..12  : sender cycle stamp (LE u64); receivers reuse the field
//!                as a "freed at" stamp when clearing the flag
//! bytes 12..32 : payload
//! ```

use scc_hw::machine::MachineInner;
use scc_hw::mpb::MpbArray;
use scc_hw::ram::Backing;
use scc_hw::topology::CoreId;
use scc_hw::MemAttr;
use std::sync::Arc;

/// Maximum payload bytes per mail.
pub const MAX_PAYLOAD: usize = 20;

/// Well-known mail kinds. Applications may use any value not listed here.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct MailKind(pub u8);

impl MailKind {
    /// Plain application data (queued to the local inbox).
    pub const USER: MailKind = MailKind(0);
    /// SVM: page-ownership request.
    pub const SVM_REQUEST: MailKind = MailKind(1);
    /// SVM: page-ownership acknowledgement.
    pub const SVM_ACK: MailKind = MailKind(2);
}

/// One received mail.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Mail {
    pub from: CoreId,
    pub kind: MailKind,
    pub stamp: u64,
    len: u8,
    payload: [u8; MAX_PAYLOAD],
}

impl Mail {
    pub fn new(from: CoreId, kind: MailKind, stamp: u64, data: &[u8]) -> Self {
        assert!(data.len() <= MAX_PAYLOAD, "payload too large");
        let mut payload = [0u8; MAX_PAYLOAD];
        payload[..data.len()].copy_from_slice(data);
        Mail {
            from,
            kind,
            stamp,
            len: data.len() as u8,
            payload,
        }
    }

    /// The payload bytes.
    pub fn data(&self) -> &[u8] {
        &self.payload[..self.len as usize]
    }

    /// Decode a little-endian u32 at payload offset `off`.
    pub fn u32_at(&self, off: usize) -> u32 {
        u32::from_le_bytes(self.payload[off..off + 4].try_into().unwrap())
    }
}

/// Physical address of the mailbox line for mails from `sender` to
/// `receiver` under the **in-MPB** layout (inside the receiver's MPB).
/// Production code addresses slots through [`SlotMap`], which falls back
/// to off-die rows when the core count outgrows the MPB.
#[inline]
pub fn slot_pa(receiver: CoreId, sender: CoreId) -> u32 {
    MpbArray::pa(receiver, sender.idx() * 32)
}

/// Where the per-(receiver, sender) mail slots of one machine live, and
/// how to address them.
///
/// * **MPB layout** (the paper's design): one 32-byte line per sender at
///   the bottom of each receiver's MPB. Used whenever the machine's core
///   count fits ([`crate::MPB_SENDER_LIMIT`]); byte-identical to the
///   original fixed layout on the `scc48` preset.
/// * **Off-die layout**: past the limit, each receiver gets a row of
///   `ncores` lines in shared off-die memory, its frames allocated behind
///   the receiver's nearest memory controller. Slower (DDR instead of
///   on-die SRAM — the access costs follow automatically from the address
///   map) but capacity scales with the machine.
#[derive(Clone, Debug)]
pub struct SlotMap {
    ncores: usize,
    /// Off-die layout only: frame numbers, `row_pages` per receiver row,
    /// receiver-major. `None` selects the MPB layout.
    rows: Option<Arc<Vec<u32>>>,
    row_pages: usize,
}

impl SlotMap {
    /// Pages per off-die receiver row for `ncores` senders (32-byte slots
    /// never straddle pages).
    pub fn row_pages(ncores: usize) -> usize {
        (ncores * 32).div_ceil(4096)
    }

    /// The in-MPB layout (core count within [`crate::MPB_SENDER_LIMIT`]).
    pub fn mpb(ncores: usize) -> Self {
        assert!(
            ncores <= crate::MPB_SENDER_LIMIT,
            "{ncores} senders do not fit the in-MPB slot layout"
        );
        SlotMap {
            ncores,
            rows: None,
            row_pages: 0,
        }
    }

    /// The off-die layout over previously allocated row frames
    /// (`row_pages(ncores)` frames per receiver, receiver-major).
    pub fn offdie(ncores: usize, frames: Arc<Vec<u32>>) -> Self {
        let row_pages = Self::row_pages(ncores);
        assert_eq!(frames.len(), ncores * row_pages, "row frame table size");
        SlotMap {
            ncores,
            rows: Some(frames),
            row_pages,
        }
    }

    /// Does this map use the in-MPB layout?
    pub fn uses_mpb(&self) -> bool {
        self.rows.is_none()
    }

    /// Physical address of the slot for mails `sender` → `receiver`.
    #[inline]
    pub fn slot_pa(&self, receiver: CoreId, sender: CoreId) -> u32 {
        match &self.rows {
            None => slot_pa(receiver, sender),
            Some(rows) => {
                let byte = sender.idx() * 32;
                let pfn = rows[receiver.idx() * self.row_pages + byte / 4096];
                (pfn << 12) + (byte % 4096) as u32
            }
        }
    }

    /// The memory attribute timed slot accesses must use: `MPB` for the
    /// on-die layout, `UNCACHED` for the off-die one (mail slots must
    /// never be served stale from a write-back cache).
    #[inline]
    pub fn attr(&self) -> MemAttr {
        match self.rows {
            None => MemAttr::MPB,
            Some(_) => MemAttr::UNCACHED,
        }
    }

    /// Raw (un-timed) read of slot memory, for wait-condition peeks.
    #[inline]
    pub fn raw_read(&self, mach: &MachineInner, pa: u32, len: usize) -> u64 {
        match self.rows {
            None => mach.mpb.read(pa, len),
            Some(_) => mach.ram.read(pa, len),
        }
    }

    /// Raw (un-timed) write of slot memory, for install-time clearing.
    #[inline]
    pub fn raw_write(&self, mach: &MachineInner, pa: u32, len: usize, val: u64) {
        match self.rows {
            None => mach.mpb.write(pa, len, val),
            Some(_) => mach.ram.write(pa, len, val),
        }
    }

    /// Wire delay for `me` to observe `peer`'s update of a slot in
    /// `receiver`'s row: the remote-MPB access cost under the on-die
    /// layout, the DDR word cost of the row's home controller off-die.
    pub fn probe_cost(&self, mach: &MachineInner, me: CoreId, peer: CoreId, receiver: CoreId) -> u64 {
        let t = &mach.cfg.timing;
        let topo = &mach.cfg.topo;
        match self.rows {
            None => t.mpb_cost(topo.hops(me, peer)),
            Some(_) => {
                let pa = self.slot_pa(receiver, CoreId::from_raw(0));
                let Backing::Ram { mc } = mach.map.resolve(pa) else {
                    unreachable!("off-die slot rows live in RAM");
                };
                t.ddr_word_cost(topo.hops_to_mc(me, mc))
            }
        }
    }

    /// Number of senders (== cores) this map addresses.
    pub fn ncores(&self) -> usize {
        self.ncores
    }
}

/// Field offsets within a slot.
pub mod field {
    pub const FLAG: u32 = 0;
    pub const KIND: u32 = 1;
    pub const LEN: u32 = 2;
    pub const STAMP: u32 = 4;
    pub const PAYLOAD: u32 = 12;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mail_roundtrip_payload() {
        let m = Mail::new(CoreId::new(3), MailKind::USER, 42, &[1, 2, 3]);
        assert_eq!(m.data(), &[1, 2, 3]);
        assert_eq!(m.from, CoreId::new(3));
        assert_eq!(m.stamp, 42);
    }

    #[test]
    fn mail_u32_decode() {
        let m = Mail::new(CoreId::new(0), MailKind::SVM_REQUEST, 0, &0xDEAD_BEEFu32.to_le_bytes());
        assert_eq!(m.u32_at(0), 0xDEAD_BEEF);
    }

    #[test]
    #[should_panic(expected = "payload too large")]
    fn oversized_payload_rejected() {
        Mail::new(CoreId::new(0), MailKind::USER, 0, &[0u8; 21]);
    }

    #[test]
    fn slot_addresses_distinct_lines() {
        let r = CoreId::new(5);
        let a = slot_pa(r, CoreId::new(0));
        let b = slot_pa(r, CoreId::new(1));
        assert_eq!(b - a, 32);
        // Slots of different receivers live in different MPBs.
        assert_ne!(slot_pa(CoreId::new(6), CoreId::new(0)), a);
    }
}
