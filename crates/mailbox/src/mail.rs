//! Wire format of one mail: exactly one 32-byte cache line.
//!
//! ```text
//! byte  0      : send flag (0 = empty, 1 = full)
//! byte  1      : mail kind
//! bytes 2..4   : payload length (LE u16, <= 20)
//! bytes 4..12  : sender cycle stamp (LE u64); receivers reuse the field
//!                as a "freed at" stamp when clearing the flag
//! bytes 12..32 : payload
//! ```

use scc_hw::mpb::MpbArray;
use scc_hw::topology::CoreId;

/// Maximum payload bytes per mail.
pub const MAX_PAYLOAD: usize = 20;

/// Well-known mail kinds. Applications may use any value not listed here.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct MailKind(pub u8);

impl MailKind {
    /// Plain application data (queued to the local inbox).
    pub const USER: MailKind = MailKind(0);
    /// SVM: page-ownership request.
    pub const SVM_REQUEST: MailKind = MailKind(1);
    /// SVM: page-ownership acknowledgement.
    pub const SVM_ACK: MailKind = MailKind(2);
}

/// One received mail.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Mail {
    pub from: CoreId,
    pub kind: MailKind,
    pub stamp: u64,
    len: u8,
    payload: [u8; MAX_PAYLOAD],
}

impl Mail {
    pub fn new(from: CoreId, kind: MailKind, stamp: u64, data: &[u8]) -> Self {
        assert!(data.len() <= MAX_PAYLOAD, "payload too large");
        let mut payload = [0u8; MAX_PAYLOAD];
        payload[..data.len()].copy_from_slice(data);
        Mail {
            from,
            kind,
            stamp,
            len: data.len() as u8,
            payload,
        }
    }

    /// The payload bytes.
    pub fn data(&self) -> &[u8] {
        &self.payload[..self.len as usize]
    }

    /// Decode a little-endian u32 at payload offset `off`.
    pub fn u32_at(&self, off: usize) -> u32 {
        u32::from_le_bytes(self.payload[off..off + 4].try_into().unwrap())
    }
}

/// Physical address of the mailbox line for mails from `sender` to
/// `receiver` (inside the receiver's MPB).
#[inline]
pub fn slot_pa(receiver: CoreId, sender: CoreId) -> u32 {
    MpbArray::pa(receiver, sender.idx() * 32)
}

/// Field offsets within a slot.
pub mod field {
    pub const FLAG: u32 = 0;
    pub const KIND: u32 = 1;
    pub const LEN: u32 = 2;
    pub const STAMP: u32 = 4;
    pub const PAYLOAD: u32 = 12;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mail_roundtrip_payload() {
        let m = Mail::new(CoreId::new(3), MailKind::USER, 42, &[1, 2, 3]);
        assert_eq!(m.data(), &[1, 2, 3]);
        assert_eq!(m.from, CoreId::new(3));
        assert_eq!(m.stamp, 42);
    }

    #[test]
    fn mail_u32_decode() {
        let m = Mail::new(CoreId::new(0), MailKind::SVM_REQUEST, 0, &0xDEAD_BEEFu32.to_le_bytes());
        assert_eq!(m.u32_at(0), 0xDEAD_BEEF);
    }

    #[test]
    #[should_panic(expected = "payload too large")]
    fn oversized_payload_rejected() {
        Mail::new(CoreId::new(0), MailKind::USER, 0, &[0u8; 21]);
    }

    #[test]
    fn slot_addresses_distinct_lines() {
        let r = CoreId::new(5);
        let a = slot_pa(r, CoreId::new(0));
        let b = slot_pa(r, CoreId::new(1));
        assert_eq!(b - a, 32);
        // Slots of different receivers live in different MPBs.
        assert_ne!(slot_pa(CoreId::new(6), CoreId::new(0)), a);
    }
}
