//! The mailbox system: install, send, receive, notification strategies.

use crate::mail::{field, Mail, MailKind, SlotMap, MAX_PAYLOAD};
use parking_lot::Mutex;
use scc_hw::instr::EventKind;
use scc_hw::machine::MachineInner;
use scc_hw::metrics::{MetricsSnapshot, MetricsSource};
use scc_hw::CoreId;
use scc_kernel::{Kernel, KernelHook};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// How a receiver learns about new mail.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Notify {
    /// Scan all receive buffers at every tick / idle-loop turn
    /// (the paper's original, pre-sccKit-1.4 approach).
    Poll,
    /// Sender raises a directed IPI through the GIC; the receiver checks
    /// only the indicated buffer (the paper's event-driven design).
    Ipi,
}

/// A kernel-level consumer for a mail kind (the SVM system registers
/// handlers for its request/ack kinds). Mails without a registered handler
/// are queued to the local inbox for [`Mailbox::recv`].
pub trait MailHandler: Send + Sync {
    fn on_mail(&self, k: &mut Kernel<'_>, mail: Mail);
}

/// Event counters of one core's mailbox system.
#[derive(Default)]
pub struct MailStats {
    pub sent: AtomicU64,
    pub received: AtomicU64,
    pub checks: AtomicU64,
    pub send_stalls: AtomicU64,
    /// Sends issued from handler context against a full slot, parked in
    /// the software outbox instead of blocking (see [`Mailbox::send`]).
    pub deferred_sends: AtomicU64,
    /// Resilient mode only: successful re-probes — a mail recovered by
    /// the poll fallback after its doorbell was lost, or a send slot
    /// re-checked during backoff.
    pub retries: AtomicU64,
    /// Resilient mode only: backoff windows entered because a send slot
    /// stayed full past its first probe.
    pub timeouts: AtomicU64,
}

impl MailStats {
    pub fn snapshot(&self) -> (u64, u64, u64, u64) {
        (
            self.sent.load(Ordering::Relaxed),
            self.received.load(Ordering::Relaxed),
            self.checks.load(Ordering::Relaxed),
            self.send_stalls.load(Ordering::Relaxed),
        )
    }
}

impl MetricsSource for MailStats {
    fn metrics_into(&self, m: &mut MetricsSnapshot) {
        let (sent, received, checks, send_stalls) = self.snapshot();
        m.add("mbx.sent", sent);
        m.add("mbx.received", received);
        m.add("mbx.checks", checks);
        m.add("mbx.send_stalls", send_stalls);
        m.add(
            "mbx.deferred_sends",
            self.deferred_sends.load(Ordering::Relaxed),
        );
        m.add("mbx.retries", self.retries.load(Ordering::Relaxed));
        m.add("mbx.timeouts", self.timeouts.load(Ordering::Relaxed));
    }
}

/// A mail whose destination slot was full while the sender could not
/// block (handler context): parked until the slot drains.
struct Pending {
    dst: CoreId,
    kind: MailKind,
    len: usize,
    payload: [u8; MAX_PAYLOAD],
}

struct Shared {
    me: CoreId,
    notify: Notify,
    /// Scan order: all participants except `me`.
    senders: Vec<CoreId>,
    inbox_len: AtomicUsize,
    /// Total mails ever queued; lets receivers wait for "a new push"
    /// rather than "non-empty" (which would livelock a filtered receive).
    inbox_pushes: AtomicUsize,
    inbox: Mutex<VecDeque<Mail>>,
    /// Deferred outgoing mail, FIFO (per-destination order is part of the
    /// protocol contract). Only this core's own thread ever touches it.
    outbox: Mutex<VecDeque<Pending>>,
    handlers: Mutex<HashMap<u8, Arc<dyn MailHandler>>>,
    stats: MailStats,
    mach: Arc<MachineInner>,
    /// Where this machine's mail slots live (in-MPB or off-die rows) and
    /// how to address them.
    slots: SlotMap,
    /// Degraded-channel hardening, on exactly when the machine carries a
    /// fault plan: the tick/probe paths scan receive slots even in IPI
    /// mode (so a dropped doorbell degrades to a slow poll) and blocking
    /// sends use a bounded backoff spin instead of an event wait whose
    /// wake-up may itself be the faulted signal. Off — and bit-identical
    /// to the pre-fault-plane mailbox — on clean machines.
    resilient: bool,
}

/// Per-core handle to the mailbox system, returned by [`install`].
#[derive(Clone)]
pub struct Mailbox {
    sh: Arc<Shared>,
}

struct MailboxHook {
    sh: Arc<Shared>,
}

/// Build the machine's slot map: the in-MPB layout while the topology's
/// core count fits, otherwise per-receiver off-die rows whose frames are
/// allocated (once per cluster, memoized as a named service) behind each
/// receiver's nearest memory controller. The row table is a pure function
/// of the topology and the allocation happens before any other shared-frame
/// traffic of the run, so every executor sees identical frame numbers.
fn build_slot_map(k: &Kernel<'_>) -> SlotMap {
    let topo = k.hw.machine().cfg.topo;
    let ncores = topo.num_cores();
    if crate::mpb_region_bytes(ncores) > 0 {
        return SlotMap::mpb(ncores);
    }
    let shared = Arc::clone(&k.shared);
    let frames = shared.service_get_or_init("mbx.slot_rows", || {
        let row_pages = SlotMap::row_pages(ncores);
        let mut rows = Vec::with_capacity(ncores * row_pages);
        for r in 0..ncores {
            let near = topo.nearest_mc(CoreId::from_raw(r));
            for _ in 0..row_pages {
                let pfn = shared
                    .frames
                    .alloc_at(near)
                    .expect("shared memory exhausted allocating mailbox slot rows");
                rows.push(pfn);
            }
        }
        Arc::new(rows)
    });
    SlotMap::offdie(ncores, frames)
}

/// Install the mailbox system on this kernel. Clears this core's receive
/// slots, registers the interrupt/idle hook and (in polling mode) a wake
/// probe, and returns the send/receive handle.
pub fn install(k: &mut Kernel<'_>, notify: Notify) -> Mailbox {
    let me = k.id();
    let senders: Vec<CoreId> = k
        .participants()
        .iter()
        .copied()
        .filter(|c| *c != me)
        .collect();
    let mach = Arc::clone(k.hw.machine());
    let slots = build_slot_map(k);
    // Reset this core's receive slots (machine memory persists across runs).
    for s in mach.cfg.topo.cores() {
        let pa = slots.slot_pa(me, s);
        for w in 0..8 {
            slots.raw_write(&mach, pa + w * 4, 4, 0);
        }
    }
    let resilient = !mach.faults.is_empty();
    let sh = Arc::new(Shared {
        me,
        notify,
        senders,
        inbox_len: AtomicUsize::new(0),
        inbox_pushes: AtomicUsize::new(0),
        inbox: Mutex::new(VecDeque::new()),
        outbox: Mutex::new(VecDeque::new()),
        handlers: Mutex::new(HashMap::new()),
        stats: MailStats::default(),
        mach,
        slots,
        resilient,
    });
    // The doorbell hook must be live *before* the install barrier: barrier
    // exits are skewed (the tree barrier releases cores level by level), so
    // a fast core may send its first mail while a slow one is still parked
    // inside the barrier — whose responsive wait claims pending IPIs. With
    // no hook registered that claim would swallow the doorbell and strand
    // the mail in its slot forever.
    k.register_hook(Arc::new(MailboxHook { sh: Arc::clone(&sh) }));
    // Collective: nobody may send before every participant cleared its
    // slots, or an early mail would be wiped.
    scc_kernel::ram_barrier(k, "mailbox.install");
    Mailbox { sh }
}

impl KernelHook for MailboxHook {
    fn on_tick(&self, k: &mut Kernel<'_>) {
        // Retry deferred sends first: freeing our outbox may be exactly
        // what a remote core is waiting on.
        Mailbox {
            sh: Arc::clone(&self.sh),
        }
        .try_flush_outbox(k);
        if self.sh.notify == Notify::Poll || self.sh.resilient {
            let senders = self.sh.senders.clone();
            let fallback = self.sh.notify == Notify::Ipi;
            for s in senders {
                if self.check_slot(k, s) && fallback {
                    // Mail recovered by the poll fallback rather than its
                    // doorbell IPI: a successful retry on a degraded
                    // channel.
                    self.sh.stats.retries.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    fn on_ipi(&self, k: &mut Kernel<'_>, src: CoreId) {
        if self.sh.notify == Notify::Ipi {
            self.check_slot(k, src);
        }
    }

    fn make_wake_probe(&self, _k: &Kernel<'_>) -> Option<Box<dyn Fn() -> bool + Send + Sync>> {
        let sh = Arc::clone(&self.sh);
        // Incoming mail is probe-driven in polling mode, and also in
        // resilient mode — where the covering IPI may have been dropped.
        let scan_incoming = sh.notify == Notify::Poll || sh.resilient;
        Some(Box::new(move || {
            // A deferred send whose destination slot has drained is kernel
            // work in every notify mode (nobody raises an IPI for a slot
            // becoming free).
            let flushable = sh.outbox.lock().front().is_some_and(|m| {
                let pa = sh.slots.slot_pa(m.dst, sh.me) + field::FLAG;
                sh.slots.raw_read(&sh.mach, pa, 1) == 0
            });
            if flushable {
                return true;
            }
            scan_incoming
                && sh.senders.iter().any(|s| {
                    let pa = sh.slots.slot_pa(sh.me, *s);
                    sh.slots.raw_read(&sh.mach, pa, 1) != 0
                })
        }))
    }
}

impl MailboxHook {
    /// Check one receive buffer; process the mail if the flag is set.
    fn check_slot(&self, k: &mut Kernel<'_>, sender: CoreId) -> bool {
        let sh = &self.sh;
        let pa = sh.slots.slot_pa(sh.me, sender);
        let attr = sh.slots.attr();
        let t = &k.hw.machine().cfg.timing;
        let (check_cost, wire_cost, n_scan) = (
            t.mbox_check,
            sh.slots.probe_cost(&sh.mach, sh.me, sender, sh.me),
            sh.senders.len().max(1) as u64,
        );
        sh.stats.checks.fetch_add(1, Ordering::Relaxed);
        k.hw.advance(check_cost);
        // The raw flag peek below decides whether timed MPB accesses
        // follow; under the parallel engine it must observe the MPB at
        // this core's deterministic position in the election order. The
        // slot's only other writer is `sender` (it sets the flag, we clear
        // it), so the peek demotes through the per-object sequence check.
        k.hw.host_order_point_peer(sender);
        if sh.slots.raw_read(&sh.mach, pa + field::FLAG, 1) == 0 {
            return false;
        }
        let stamp = sh.slots.raw_read(&sh.mach, pa + field::STAMP, 8);
        let arrival = stamp + wire_cost;
        if k.hw.now() < arrival {
            // The core was idle when the mail arrived. In polling mode its
            // idle loop is somewhere inside a scan round of n buffers; model
            // the detection delay as a deterministic pseudo-uniform phase.
            let phase = match sh.notify {
                Notify::Poll => ((arrival / check_cost) % n_scan) * check_cost,
                Notify::Ipi => 0,
            };
            k.hw.sync_to(arrival + phase);
        }
        // Read the mail through the cache path (fresh after CL1INVMB).
        k.hw.cl1invmb();
        let kind = k.hw.read(pa + field::KIND, 1, attr) as u8;
        let len = (k.hw.read(pa + field::LEN, 2, attr) as usize).min(MAX_PAYLOAD);
        let mut payload = [0u8; MAX_PAYLOAD];
        let p0 = k.hw.read(pa + field::PAYLOAD, 8, attr);
        let p1 = k.hw.read(pa + field::PAYLOAD + 8, 8, attr);
        let p2 = k.hw.read(pa + field::PAYLOAD + 16, 4, attr);
        payload[0..8].copy_from_slice(&p0.to_le_bytes());
        payload[8..16].copy_from_slice(&p1.to_le_bytes());
        payload[16..20].copy_from_slice(&(p2 as u32).to_le_bytes());
        // Free the slot: record the freed-at stamp, clear the flag, push out.
        let now = k.hw.now();
        k.hw.write(pa + field::STAMP, 8, now, attr);
        k.hw.write(pa + field::FLAG, 1, 0, attr);
        k.hw.flush_wcb();
        sh.stats.received.fetch_add(1, Ordering::Relaxed);
        // The send-time stamp travels on the wire and doubles as a
        // send/recv correlation id for the protocol checker.
        k.hw.trace3(
            EventKind::MailRecv,
            sender.idx() as u32,
            kind as u32,
            stamp as u32,
        );

        let mail = Mail::new(sender, MailKind(kind), stamp, &payload[..len]);
        let handler = sh.handlers.lock().get(&kind).cloned();
        match handler {
            Some(h) => h.on_mail(k, mail),
            None => {
                sh.inbox.lock().push_back(mail);
                sh.inbox_len.fetch_add(1, Ordering::Release);
                sh.inbox_pushes.fetch_add(1, Ordering::Release);
            }
        }
        true
    }
}

impl Mailbox {
    /// This core's id.
    pub fn me(&self) -> CoreId {
        self.sh.me
    }

    /// The active notification strategy.
    pub fn notify(&self) -> Notify {
        self.sh.notify
    }

    /// Event counters.
    pub fn stats(&self) -> &MailStats {
        &self.sh.stats
    }

    /// Register a kernel-level handler for a mail kind. Mails of this kind
    /// are consumed inside the interrupt/idle path instead of being queued.
    pub fn register_handler(&self, kind: MailKind, h: Arc<dyn MailHandler>) {
        let old = self.sh.handlers.lock().insert(kind.0, h);
        assert!(old.is_none(), "handler for mail kind {} installed twice", kind.0);
    }

    /// Post a mail to `dst`.
    ///
    /// From ordinary (non-handler) context this blocks responsively while
    /// the destination slot is full: incoming mail keeps being serviced.
    /// From handler context (`k.in_irq()`) blocking would wedge the whole
    /// protocol — [`Kernel::wait_event`] refuses nested kernel work, so a
    /// cycle of owners granting/forwarding into each other's full slots
    /// could never drain (a hard deadlock, first observed on ≥32-core SVM
    /// runs). A handler send against a full slot is therefore parked in a
    /// per-core software outbox and retried from the idle loop (a wake
    /// probe fires when the head's destination slot drains, in every
    /// notify mode).
    pub fn send(&self, k: &mut Kernel<'_>, dst: CoreId, kind: MailKind, data: &[u8]) {
        let sh = &self.sh;
        assert_ne!(dst, sh.me, "no self-mail");
        assert!(data.len() <= MAX_PAYLOAD);

        if k.in_irq() {
            // Raw full-slot peek: order it (and the post that may follow)
            // into the deterministic election order under the parallel
            // engine. The slot's only other writer is `dst` (we set the
            // flag, it clears it), so the peek demotes per-object.
            k.hw.host_order_point_peer(dst);
            let backlog = !sh.outbox.lock().is_empty();
            let flag_pa = sh.slots.slot_pa(dst, sh.me) + field::FLAG;
            if backlog || sh.slots.raw_read(&sh.mach, flag_pa, 1) != 0 {
                // Slot full — or an earlier deferred mail must not be
                // overtaken (FIFO). Park it; the idle loop retries.
                sh.stats.deferred_sends.fetch_add(1, Ordering::Relaxed);
                let mut payload = [0u8; MAX_PAYLOAD];
                payload[..data.len()].copy_from_slice(data);
                sh.outbox.lock().push_back(Pending {
                    dst,
                    kind,
                    len: data.len(),
                    payload,
                });
                return;
            }
            self.post(k, dst, kind, data);
            return;
        }

        // Ordinary context: earlier deferred mail goes out first (FIFO),
        // then this one, blocking responsively on full slots.
        self.drain_outbox_blocking(k);
        self.wait_slot_free(k, dst);
        self.post(k, dst, kind, data);
    }

    /// Block (responsively) until `dst`'s receive slot for us is free.
    /// Must not be called from handler context.
    fn wait_slot_free(&self, k: &mut Kernel<'_>, dst: CoreId) {
        let sh = &self.sh;
        let pa = sh.slots.slot_pa(dst, sh.me);
        let wire_cost = sh.slots.probe_cost(&sh.mach, sh.me, dst, dst);
        // Raw full-slot peek: order it (and the send that follows) into
        // the deterministic election order under the parallel engine.
        // Only `dst` ever clears this flag, so the peek demotes per-object.
        k.hw.host_order_point_peer(dst);
        if sh.slots.raw_read(&sh.mach, pa + field::FLAG, 1) != 0 {
            sh.stats.send_stalls.fetch_add(1, Ordering::Relaxed);
            if sh.resilient {
                self.wait_slot_free_backoff(k, dst, pa, wire_cost);
                return;
            }
            let mach = Arc::clone(&sh.mach);
            let slots = sh.slots.clone();
            k.wait_event("mailbox slot to drain", move || {
                if slots.raw_read(&mach, pa + field::FLAG, 1) == 0 {
                    Some(((), slots.raw_read(&mach, pa + field::STAMP, 8)))
                } else {
                    None
                }
            });
            // Observing the freed flag costs one remote slot read.
            k.hw.advance(wire_cost);
        }
    }

    /// Degraded-channel variant of [`Mailbox::wait_slot_free`] (resilient
    /// mode): the receiver's progress may depend on a doorbell the fault
    /// plan dropped, so instead of blocking on a wake condition the
    /// sender spins in *virtual* time with bounded exponential backoff,
    /// servicing its own interrupts and idle work (outbox flush, fallback
    /// slot scans) between probes. The first expired probe counts as a
    /// timeout and each re-probe as a retry; a hard probe budget turns a
    /// genuinely dead channel into a distinctive panic — which the
    /// exploration harness classifies as a hang — instead of an
    /// unbounded host spin the deadlock detector could never see.
    fn wait_slot_free_backoff(&self, k: &mut Kernel<'_>, dst: CoreId, pa: u32, wire_cost: u64) {
        const BACKOFF_START: u64 = 1 << 10;
        const BACKOFF_CAP: u64 = 1 << 20;
        const RETRY_BUDGET: u32 = 10_000;
        let sh = &self.sh;
        sh.stats.timeouts.fetch_add(1, Ordering::Relaxed);
        let mut backoff = BACKOFF_START;
        for _ in 0..RETRY_BUDGET {
            k.hw.advance(backoff);
            backoff = (backoff * 2).min(BACKOFF_CAP);
            // Service doorbells and idle work before re-probing: the
            // receiver may be waiting on *our* outbox or handler work.
            k.poll_irqs();
            k.run_idle_hooks();
            sh.stats.retries.fetch_add(1, Ordering::Relaxed);
            k.hw.host_order_point_peer(dst);
            if sh.slots.raw_read(&sh.mach, pa + field::FLAG, 1) == 0 {
                // Observing the freed flag costs one remote slot read.
                k.hw.advance(wire_cost);
                return;
            }
        }
        panic!(
            "mailbox send timeout: core {} -> {} slot never drained after {} backoff probes",
            sh.me.idx(),
            dst.idx(),
            RETRY_BUDGET
        );
    }

    /// Retry deferred sends without blocking: post while the head's
    /// destination slot is free, stop at the first full one (global FIFO,
    /// which also preserves the per-destination order the protocol needs).
    fn try_flush_outbox(&self, k: &mut Kernel<'_>) {
        loop {
            let (dst, kind, len, payload) = {
                let ob = self.sh.outbox.lock();
                match ob.front() {
                    Some(m) => (m.dst, m.kind, m.len, m.payload),
                    None => return,
                }
            };
            let pa = self.sh.slots.slot_pa(dst, self.sh.me);
            k.hw.host_order_point_peer(dst);
            if self.sh.slots.raw_read(&self.sh.mach, pa + field::FLAG, 1) != 0 {
                return;
            }
            self.post(k, dst, kind, &payload[..len]);
            self.sh.outbox.lock().pop_front();
        }
    }

    /// Drain the outbox completely, blocking responsively on full slots
    /// (ordinary context only).
    fn drain_outbox_blocking(&self, k: &mut Kernel<'_>) {
        loop {
            self.try_flush_outbox(k);
            let dst = match self.sh.outbox.lock().front() {
                Some(m) => m.dst,
                None => return,
            };
            self.wait_slot_free(k, dst);
        }
    }

    /// The timed slot-write sequence: body, stamp, flag, push, notify.
    /// The caller has established that the slot is free.
    fn post(&self, k: &mut Kernel<'_>, dst: CoreId, kind: MailKind, data: &[u8]) {
        let sh = &self.sh;
        let pa = sh.slots.slot_pa(dst, sh.me);
        let attr = sh.slots.attr();
        // Body first (combined in the WCB), then stamp + flag, then push.
        k.hw.write(pa + field::KIND, 1, kind.0 as u64, attr);
        k.hw.write(pa + field::LEN, 2, data.len() as u64, attr);
        let mut payload = [0u8; MAX_PAYLOAD];
        payload[..data.len()].copy_from_slice(data);
        k.hw.write(
            pa + field::PAYLOAD,
            8,
            u64::from_le_bytes(payload[0..8].try_into().unwrap()),
            attr,
        );
        k.hw.write(
            pa + field::PAYLOAD + 8,
            8,
            u64::from_le_bytes(payload[8..16].try_into().unwrap()),
            attr,
        );
        k.hw.write(
            pa + field::PAYLOAD + 16,
            4,
            u32::from_le_bytes(payload[16..20].try_into().unwrap()) as u64,
            attr,
        );
        k.hw.flush_wcb();
        let mut stamp = k.hw.now();
        if sh.resilient {
            // Injected slot-visibility delay: push the stamp — which the
            // receiver synchronises to on pickup — into the future. Both
            // sides trace the delayed stamp, keeping the send/recv
            // correlation intact.
            stamp += sh.mach.faults.mail_delay(sh.me.idx(), dst.idx());
        }
        k.hw.write(pa + field::STAMP, 8, stamp, attr);
        k.hw.write(pa + field::FLAG, 1, 1, attr);
        k.hw.flush_wcb();
        sh.stats.sent.fetch_add(1, Ordering::Relaxed);
        k.hw.trace3(
            EventKind::MailSend,
            dst.idx() as u32,
            kind.0 as u32,
            stamp as u32,
        );
        if sh.notify == Notify::Ipi {
            // Configuration error, caught on the first send: IPI-mode
            // notification cannot be replayed by the parallel executor.
            k.hw.send_ipi(dst).expect(
                "IPI notification is unsupported under host_fast.parallel; \
                 configure Notify::Poll",
            );
        }
    }

    /// Pop a queued mail without blocking.
    pub fn try_recv(&self, _k: &mut Kernel<'_>) -> Option<Mail> {
        let m = self.sh.inbox.lock().pop_front();
        if m.is_some() {
            self.sh.inbox_len.fetch_sub(1, Ordering::Release);
        }
        m
    }

    /// Blockingly receive the next queued mail (any sender, any kind not
    /// claimed by a handler).
    pub fn recv(&self, k: &mut Kernel<'_>) -> Mail {
        loop {
            if let Some(m) = self.try_recv(k) {
                return m;
            }
            let len = Arc::clone(&self.sh);
            k.wait_event("incoming mail", move || {
                (len.inbox_len.load(Ordering::Acquire) > 0).then_some(((), 0))
            });
        }
    }

    /// Blockingly receive the next queued mail from a specific sender.
    pub fn recv_from(&self, k: &mut Kernel<'_>, from: CoreId) -> Mail {
        loop {
            let seen = {
                let mut q = self.sh.inbox.lock();
                if let Some(i) = q.iter().position(|m| m.from == from) {
                    self.sh.inbox_len.fetch_sub(1, Ordering::Release);
                    return q.remove(i).expect("index valid");
                }
                self.sh.inbox_pushes.load(Ordering::Acquire)
            };
            let sh = Arc::clone(&self.sh);
            k.wait_event("mail from specific core", move || {
                (sh.inbox_pushes.load(Ordering::Acquire) > seen).then_some(((), 0))
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mail::slot_pa;
    use scc_hw::SccConfig;
    use scc_kernel::Cluster;

    fn pingpong_latency(notify: Notify, cores: &[CoreId], rounds: u64) -> f64 {
        let cl = Cluster::new(SccConfig::small()).unwrap();
        let a = cores[0];
        let b = cores[1];
        let res = cl
            .run_on(cores, move |k| {
                let mbx = install(k, notify);
                let me = k.id();
                if me == a {
                    let t0 = k.hw.now();
                    for _ in 0..rounds {
                        mbx.send(k, b, MailKind::USER, &[1]);
                        let _ = mbx.recv_from(k, b);
                    }
                    // Half round trips: 2 * rounds legs.
                    (k.hw.now() - t0) as f64 / (2 * rounds) as f64
                } else if me == b {
                    for _ in 0..rounds {
                        let _ = mbx.recv_from(k, a);
                        mbx.send(k, a, MailKind::USER, &[2]);
                    }
                    0.0
                } else {
                    // Extra activated cores sit in the idle loop until the
                    // ping-pong pair finishes.
                    let mach = Arc::clone(k.hw.machine());
                    let done = slot_pa(a, b); // b's last reply lands here
                    let _ = mach; let _ = done;
                    0.0
                }
            })
            .unwrap();
        res[0].result
    }

    #[test]
    fn send_recv_roundtrip_poll() {
        let cl = Cluster::new(SccConfig::small()).unwrap();
        let res = cl
            .run(2, |k| {
                let mbx = install(k, Notify::Poll);
                if k.id().idx() == 0 {
                    mbx.send(k, CoreId::new(1), MailKind::USER, b"hello");
                    0
                } else {
                    let m = mbx.recv(k);
                    assert_eq!(m.data(), b"hello");
                    assert_eq!(m.from, CoreId::new(0));
                    1
                }
            })
            .unwrap();
        assert_eq!(res.len(), 2);
    }

    #[test]
    fn send_recv_roundtrip_ipi() {
        let cl = Cluster::new(SccConfig::small()).unwrap();
        cl.run(2, |k| {
            let mbx = install(k, Notify::Ipi);
            if k.id().idx() == 0 {
                mbx.send(k, CoreId::new(1), MailKind::USER, &[9, 8, 7]);
            } else {
                let m = mbx.recv(k);
                assert_eq!(m.data(), &[9, 8, 7]);
            }
        })
        .unwrap();
    }

    #[test]
    fn payload_sizes_roundtrip() {
        let cl = Cluster::new(SccConfig::small()).unwrap();
        cl.run(2, |k| {
            let mbx = install(k, Notify::Ipi);
            if k.id().idx() == 0 {
                for len in 0..=MAX_PAYLOAD {
                    let data: Vec<u8> = (0..len as u8).collect();
                    mbx.send(k, CoreId::new(1), MailKind::USER, &data);
                }
            } else {
                for len in 0..=MAX_PAYLOAD {
                    let m = mbx.recv(k);
                    let want: Vec<u8> = (0..len as u8).collect();
                    assert_eq!(m.data(), &want[..], "length {len}");
                }
            }
        })
        .unwrap();
    }

    #[test]
    fn sender_stalls_on_full_slot() {
        let cl = Cluster::new(SccConfig::small()).unwrap();
        let res = cl
            .run(2, |k| {
                let mbx = install(k, Notify::Ipi);
                if k.id().idx() == 0 {
                    for i in 0..5u8 {
                        mbx.send(k, CoreId::new(1), MailKind::USER, &[i]);
                    }
                    mbx.stats().snapshot().3 // send_stalls
                } else {
                    // Consume slowly: burn simulated time between receives.
                    for i in 0..5u8 {
                        k.hw.advance(2_000_000);
                        let m = mbx.recv(k);
                        assert_eq!(m.data(), &[i], "mails must stay ordered");
                    }
                    0
                }
            })
            .unwrap();
        assert!(res[0].result >= 1, "sender must have stalled at least once");
    }

    struct Bumper(AtomicU64);
    impl MailHandler for Bumper {
        fn on_mail(&self, _k: &mut Kernel<'_>, mail: Mail) {
            self.0.fetch_add(mail.data()[0] as u64, Ordering::Relaxed);
        }
    }

    #[test]
    fn handler_consumes_instead_of_inbox() {
        let cl = Cluster::new(SccConfig::small()).unwrap();
        let total = Arc::new(Bumper(AtomicU64::new(0)));
        let t2 = Arc::clone(&total);
        cl.run(2, move |k| {
            let mbx = install(k, Notify::Ipi);
            if k.id().idx() == 0 {
                mbx.register_handler(MailKind(7), t2.clone());
                // Wait until the handler has run.
                let t3 = t2.clone();
                k.wait_event("handled", move || {
                    (t3.0.load(Ordering::Relaxed) == 5).then_some(((), 0))
                });
                assert!(mbx.try_recv(k).is_none(), "handled mail must not queue");
            } else {
                mbx.send(k, CoreId::new(0), MailKind(7), &[5]);
            }
        })
        .unwrap();
        assert_eq!(total.0.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn recv_from_filters_interleaved_senders() {
        let cl = Cluster::new(SccConfig::small()).unwrap();
        cl.run(3, |k| {
            let mbx = install(k, Notify::Ipi);
            match k.id().idx() {
                0 => {
                    // Expect specifically core 2 first, though core 1's mail
                    // may arrive earlier.
                    let m2 = mbx.recv_from(k, CoreId::new(2));
                    assert_eq!(m2.data(), &[22]);
                    let m1 = mbx.recv_from(k, CoreId::new(1));
                    assert_eq!(m1.data(), &[11]);
                }
                1 => mbx.send(k, CoreId::new(0), MailKind::USER, &[11]),
                2 => {
                    k.hw.advance(500_000); // let core 1's mail arrive first
                    mbx.send(k, CoreId::new(0), MailKind::USER, &[22]);
                }
                _ => unreachable!(),
            }
        })
        .unwrap();
    }

    #[test]
    fn ipi_latency_exceeds_poll_latency_with_two_cores() {
        // Paper, Figure 6: with only two active cores the polling variant
        // is *faster* because the event-driven variant pays interrupt entry.
        let cores = [CoreId::new(0), CoreId::new(2)];
        let poll = pingpong_latency(Notify::Poll, &cores, 50);
        let ipi = pingpong_latency(Notify::Ipi, &cores, 50);
        assert!(
            ipi > poll,
            "IPI latency ({ipi:.0} cy) must exceed polling latency ({poll:.0} cy)"
        );
    }

    #[test]
    fn latency_grows_with_distance() {
        // Paper, Figure 6: latency increases linearly with hop distance,
        // with a low gradient.
        let near = pingpong_latency(Notify::Poll, &[CoreId::new(0), CoreId::new(1)], 50);
        let far = pingpong_latency(Notify::Poll, &[CoreId::new(0), CoreId::new(47)], 50);
        assert!(far > near, "8 hops ({far:.0}) must cost more than 0 hops ({near:.0})");
        assert!(
            far < near * 3.0,
            "gradient must stay low: 0 hops {near:.0} cy vs 8 hops {far:.0} cy"
        );
    }

    #[test]
    fn latency_deterministic() {
        let cores = [CoreId::new(0), CoreId::new(30)];
        let a = pingpong_latency(Notify::Ipi, &cores, 20);
        let b = pingpong_latency(Notify::Ipi, &cores, 20);
        assert_eq!(a, b);
    }
}
