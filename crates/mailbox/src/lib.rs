//! # scc-mailbox — the asynchronous mailbox system of MetalSVM (§5)
//!
//! For each communication path between two cores, one cache-line-sized
//! (32-byte) mailbox is reserved in the **receiver's** MPB. With 48 cores
//! this costs 48 × 32 B = 1.5 KiB of each MPB; the remaining 6.5 KiB stay
//! available to the RCCE allocator. On meshes whose core count outgrows
//! the MPB ([`MPB_SENDER_LIMIT`]), the slots move to per-receiver rows in
//! shared off-die memory near each receiver's memory controller
//! ([`mail::SlotMap`]) — same protocol, DDR access costs.
//!
//! The access protocol makes every mailbox a *single-reader/single-writer*
//! channel: only the sender writes mail data and sets the send flag; only
//! the receiver reads and clears it. A full mailbox makes the sender (busy-)
//! wait until the receiver consumed the mail.
//!
//! Two notification strategies are implemented, matching the two curves of
//! the paper's Figures 6 and 7:
//!
//! * [`Notify::Poll`] — the receiver scans **all** receive buffers at every
//!   timer tick and in the idle loop. One check costs 100 processor cycles
//!   (paper, footnote 2), so detection latency grows linearly with the
//!   number of active cores.
//! * [`Notify::Ipi`] — after posting a mail the sender rings the target's
//!   doorbell in the Global Interrupt Controller. The GIC tells the
//!   receiver *which* core raised the interrupt, so the handler checks only
//!   that one buffer: latency stays flat in the core count.

pub mod mail;
pub mod system;

pub use mail::{Mail, MailKind, SlotMap, MAX_PAYLOAD};
pub use system::{install, MailHandler, MailStats, Mailbox, Notify};

/// Largest core count whose mail slots still live in the MPB (one 32-byte
/// line per sender, 4 KiB at the limit — leaving the RCCE flag/barrier/user
/// areas and a useful chunk buffer in the 8 KiB MPB). Bigger machines place
/// the slots off-die.
pub const MPB_SENDER_LIMIT: usize = 128;

/// Bytes of each MPB reserved for the mailbox system on a machine with
/// `ncores` cores: one line per sender when the in-MPB layout fits, zero
/// when the slots move off-die. The RCCE allocator starts its MPB layout
/// at this offset.
pub fn mpb_region_bytes(ncores: usize) -> usize {
    if ncores <= MPB_SENDER_LIMIT {
        ncores * 32
    } else {
        0
    }
}
