//! # scc-bench — harness library for regenerating the paper's tables and
//! figures
//!
//! Each binary in `src/bin/` reproduces one table or figure (see
//! `DESIGN.md` §4 for the index); the shared measurement machinery lives
//! here so it can be unit-tested and reused by the Criterion benches.
//!
//! All numbers reported by the harnesses are **simulated** microseconds at
//! the paper's platform configuration (533 MHz cores, 800 MHz mesh and
//! memory) — wall-clock time of the host is irrelevant.

pub mod laplace_run;
pub mod pingpong;
pub mod report;
pub mod svm_micro;

pub use laplace_run::{
    laplace_config, laplace_run, laplace_run_host, laplace_run_host_notify, laplace_run_host_on,
    laplace_run_traced, LaplaceCoreObs, LaplaceRun, LaplaceVariant,
};
pub use pingpong::{pingpong_latency_us, PingPongSetup};
pub use report::{fmt_us, Table};
pub use svm_micro::{svm_overhead, svm_overhead_host, SvmOverhead};

/// Parse `--quick` / `--iters N` / `--reps N` style flags shared by the
/// harnesses.
pub struct HarnessArgs {
    pub quick: bool,
    pub iters: Option<usize>,
    pub reps: Option<usize>,
    /// Overwrite result files even when the guard would refuse (e.g.
    /// clobbering a multi-host-core `BENCH_parallel.json` with a
    /// single-core rerun).
    pub force: bool,
}

impl HarnessArgs {
    pub fn parse() -> Self {
        let mut quick = false;
        let mut iters = None;
        let mut reps = None;
        let mut force = false;
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--quick" => quick = true,
                "--force" => force = true,
                "--iters" => {
                    iters = Some(
                        args.next()
                            .expect("--iters needs a value")
                            .parse()
                            .expect("--iters needs a number"),
                    )
                }
                "--reps" => {
                    reps = Some(
                        args.next()
                            .expect("--reps needs a value")
                            .parse()
                            .expect("--reps needs a number"),
                    )
                }
                other => {
                    panic!(
                        "unknown argument {other} (try --quick, --iters N, --reps N or --force)"
                    )
                }
            }
        }
        HarnessArgs {
            quick,
            iters,
            reps,
            force,
        }
    }
}
