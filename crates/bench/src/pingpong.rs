//! The mailbox ping-pong measurement used by Figures 6 and 7 and the
//! notification ablation.

use scc_hw::{CoreId, SccConfig};
use scc_kernel::Cluster;
use scc_mailbox::{install, MailKind, Notify};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// What the other activated cores do while the pair ping-pongs.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Background {
    /// Sit in the kernel idle loop.
    Idle,
    /// Permanently exchange mails pairwise ("background noise", the third
    /// curve of Figure 7).
    Noise,
}

/// A ping-pong experiment definition.
#[derive(Clone, Debug)]
pub struct PingPongSetup {
    /// The measuring core (sends first).
    pub a: CoreId,
    /// The echoing core.
    pub b: CoreId,
    /// All activated cores (must contain `a` and `b`).
    pub active: Vec<CoreId>,
    pub notify: Notify,
    pub background: Background,
    pub rounds: u64,
}

impl PingPongSetup {
    /// Two cores only.
    pub fn pair(a: CoreId, b: CoreId, notify: Notify, rounds: u64) -> Self {
        PingPongSetup {
            a,
            b,
            active: vec![a, b],
            notify,
            background: Background::Idle,
            rounds,
        }
    }
}

/// Run the experiment on a fresh machine; returns the **half round-trip**
/// latency in simulated microseconds, averaged over all rounds — exactly
/// the quantity of the paper's Figures 6 and 7.
pub fn pingpong_latency_us(setup: &PingPongSetup) -> f64 {
    let cfg = SccConfig::small();
    let core_mhz = cfg.timing.core_mhz;
    let cl = Cluster::new(cfg).expect("machine");
    let done = Arc::new(AtomicBool::new(false));
    let setup = setup.clone();
    let s = &setup;
    let res = cl
        .run_on(&setup.active, move |k| {
            let mbx = install(k, s.notify);
            let me = k.id();
            if me == s.a {
                // Warm-up round to populate caches and flags.
                mbx.send(k, s.b, MailKind::USER, &[0]);
                let _ = mbx.recv_from(k, s.b);
                let t0 = k.hw.now();
                for _ in 0..s.rounds {
                    mbx.send(k, s.b, MailKind::USER, &[1]);
                    let _ = mbx.recv_from(k, s.b);
                }
                let dt = k.hw.now() - t0;
                done.store(true, Ordering::Release);
                dt as f64 / (2 * s.rounds) as f64
            } else if me == s.b {
                for _ in 0..=s.rounds {
                    let _ = mbx.recv_from(k, s.a);
                    mbx.send(k, s.a, MailKind::USER, &[2]);
                }
                0.0
            } else {
                match s.background {
                    Background::Idle => {
                        // Park responsively: the cluster teardown keeps the
                        // kernel (and thus mailbox scans) alive, which is
                        // what makes these cores "activated".
                        let done = Arc::clone(&done);
                        k.wait_event("benchmark end", move || {
                            done.load(Ordering::Acquire).then_some(((), 0))
                        });
                    }
                    Background::Noise => {
                        // Fire mails at a partner without expecting replies
                        // (the partner's mailbox hook drains them into its
                        // inbox). Deterministic partner pairing over the
                        // non-measuring cores.
                        let others: Vec<CoreId> = s
                            .active
                            .iter()
                            .copied()
                            .filter(|c| *c != s.a && *c != s.b)
                            .collect();
                        let idx = others.iter().position(|c| *c == me).unwrap();
                        let pidx = idx ^ 1;
                        if pidx >= others.len() {
                            // Odd one out: just stay activated.
                            let done = Arc::clone(&done);
                            k.wait_event("benchmark end", move || {
                                done.load(Ordering::Acquire).then_some(((), 0))
                            });
                        } else {
                            let partner = others[pidx];
                            while !done.load(Ordering::Acquire) {
                                mbx.send(k, partner, MailKind::USER, &[9]);
                                k.hw.advance(5_000);
                            }
                        }
                    }
                }
                0.0
            }
        })
        .expect("ping-pong must not deadlock");
    let cycles = res
        .iter()
        .find(|r| r.core == setup.a)
        .expect("core a ran")
        .result;
    cycles / core_mhz as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_latency_positive_and_stable() {
        let s = PingPongSetup::pair(CoreId::new(0), CoreId::new(30), Notify::Ipi, 20);
        let us = pingpong_latency_us(&s);
        assert!(us > 0.5 && us < 50.0, "latency {us} out of plausible range");
        assert_eq!(us, pingpong_latency_us(&s), "must be deterministic");
    }

    #[test]
    fn noise_background_terminates() {
        let active: Vec<CoreId> = vec![0, 30, 1, 2, 3, 4].into_iter().map(CoreId::new).collect();
        let s = PingPongSetup {
            a: CoreId::new(0),
            b: CoreId::new(30),
            active,
            notify: Notify::Ipi,
            background: Background::Noise,
            rounds: 10,
        };
        let us = pingpong_latency_us(&s);
        assert!(us > 0.0);
    }
}
