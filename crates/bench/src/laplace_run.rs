//! Runner for the Figure 9 Laplace experiment: one function per variant,
//! returning checksum and simulated runtime.

use metalsvm::{install as svm_install, Consistency, SvmConfig};
use rcce::RcceComm;
use scc_apps::laplace::{laplace_ircce, laplace_svm, LaplaceParams};
use scc_hw::SccConfig;
use scc_kernel::Cluster;
use scc_mailbox::{install as mbx_install, Notify};

/// Which implementation solves the grid.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum LaplaceVariant {
    /// Message passing over iRCCE (the paper's baseline under SCC Linux).
    Ircce,
    /// Shared memory on the SVM system, strong model.
    SvmStrong,
    /// Shared memory on the SVM system, lazy release consistency.
    SvmLazy,
}

impl LaplaceVariant {
    pub fn label(self) -> &'static str {
        match self {
            LaplaceVariant::Ircce => "iRCCE",
            LaplaceVariant::SvmStrong => "SVM strong",
            LaplaceVariant::SvmLazy => "SVM lazy",
        }
    }
}

/// Outcome of one (variant, cores) cell of Figure 9.
#[derive(Copy, Clone, Debug)]
pub struct LaplaceRun {
    pub checksum: f64,
    /// Simulated wall time of the iteration loop: the maximum over the
    /// participating cores, in milliseconds.
    pub sim_ms: f64,
    /// Estimated energy over all active cores (whole run, J) under the
    /// default `scc_hw::power` model.
    pub energy_j: f64,
    /// Hardware-model performance counters merged over the participating
    /// cores (includes the host fast-path statistics: TLB hits/misses/
    /// shootdowns and executor fast yields).
    pub perf: scc_hw::PerfCounters,
}

/// Machine configuration sized for the experiment: the MP variant keeps
/// two full row blocks (plus halos) in private memory.
pub fn laplace_config(n: usize, p: LaplaceParams) -> SccConfig {
    let block_bytes = ((p.height / n + 2) * (p.width + scc_apps::laplace::ROW_PAD) * 8 * 2) as usize;
    SccConfig {
        private_bytes_per_core: (block_bytes + 2 * 1024 * 1024).next_multiple_of(4096),
        shared_bytes: 64 * 1024 * 1024,
        ..SccConfig::default()
    }
}

/// Run one cell of Figure 9 on a fresh machine.
pub fn laplace_run(variant: LaplaceVariant, n: usize, p: LaplaceParams) -> LaplaceRun {
    laplace_run_cfg(variant, n, p, Notify::Ipi, SvmConfig::default())
}

/// Like [`laplace_run`], with the host fast paths (simulated TLB, bulk
/// accessors, executor fast yield) configured explicitly. Simulated results
/// are identical for every setting; only host wall-clock changes (the
/// `bench_fastpath` harness and the shadow tests rely on this).
pub fn laplace_run_host(
    variant: LaplaceVariant,
    n: usize,
    p: LaplaceParams,
    host_fast: scc_hw::HostFastPaths,
) -> LaplaceRun {
    let cfg = SccConfig {
        host_fast,
        ..laplace_config(n, p)
    };
    laplace_run_on(cfg, variant, n, p, Notify::Ipi, SvmConfig::default())
}

/// Like [`laplace_run`], with explicit mailbox notification strategy and
/// SVM configuration (used by the ablation harnesses).
pub fn laplace_run_cfg(
    variant: LaplaceVariant,
    n: usize,
    p: LaplaceParams,
    notify: Notify,
    svm_cfg: SvmConfig,
) -> LaplaceRun {
    laplace_run_on(laplace_config(n, p), variant, n, p, notify, svm_cfg)
}

fn laplace_run_on(
    cfg: SccConfig,
    variant: LaplaceVariant,
    n: usize,
    p: LaplaceParams,
    notify: Notify,
    svm_cfg: SvmConfig,
) -> LaplaceRun {
    let mhz = cfg.timing.core_mhz as f64;
    let cl = Cluster::new(cfg).expect("machine");
    let res = cl
        .run(n, move |k| match variant {
            LaplaceVariant::Ircce => {
                let mut comm = RcceComm::init(k);
                laplace_ircce(k, &mut comm, p)
            }
            LaplaceVariant::SvmStrong | LaplaceVariant::SvmLazy => {
                let mbx = mbx_install(k, notify);
                let mut svm = svm_install(k, &mbx, svm_cfg);
                let model = if variant == LaplaceVariant::SvmStrong {
                    Consistency::Strong
                } else {
                    Consistency::LazyRelease
                };
                laplace_svm(k, &mut svm, model, p)
            }
        })
        .expect("laplace must not deadlock");
    let checksum = res[0].result.checksum;
    let max_cycles = res.iter().map(|r| r.result.cycles).max().unwrap();
    let timing = scc_hw::TimingParams::default();
    let pw = scc_hw::power::PowerParams::default();
    let energy_j = res
        .iter()
        .map(|r| scc_hw::power::estimate(&r.perf, r.clock.as_u64(), &timing, &pw).total_j())
        .sum();
    let mut perf = scc_hw::PerfCounters::default();
    for r in &res {
        perf.merge(&r.perf);
    }
    LaplaceRun {
        checksum,
        sim_ms: max_cycles as f64 / mhz / 1000.0,
        energy_j,
        perf,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_agree_on_checksum_small() {
        let p = LaplaceParams {
            width: 64,
            height: 32,
            iters: 5,
        };
        let a = laplace_run(LaplaceVariant::Ircce, 2, p);
        let b = laplace_run(LaplaceVariant::SvmStrong, 2, p);
        let c = laplace_run(LaplaceVariant::SvmLazy, 2, p);
        assert_eq!(a.checksum, b.checksum);
        assert_eq!(b.checksum, c.checksum);
        assert!(a.sim_ms > 0.0 && b.sim_ms > 0.0 && c.sim_ms > 0.0);
    }

    #[test]
    fn more_cores_run_faster_lazy() {
        let p = LaplaceParams {
            width: 128,
            height: 64,
            iters: 4,
        };
        let one = laplace_run(LaplaceVariant::SvmLazy, 1, p);
        let four = laplace_run(LaplaceVariant::SvmLazy, 4, p);
        assert!(
            four.sim_ms < one.sim_ms,
            "4 cores ({} ms) must beat 1 core ({} ms)",
            four.sim_ms,
            one.sim_ms
        );
    }
}
