//! Runner for the Figure 9 Laplace experiment: one function per variant,
//! returning checksum and simulated runtime.

use metalsvm::{install as svm_install, Consistency, SvmConfig};
use rcce::RcceComm;
use scc_apps::laplace::{laplace_ircce, laplace_svm, LaplaceParams};
use scc_hw::instr::TraceConfig;
use scc_hw::{CoreId, MetricsSnapshot, MetricsSource, SccConfig, TraceRing};
use scc_kernel::Cluster;
use scc_mailbox::{install as mbx_install, Notify};

/// Which implementation solves the grid.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum LaplaceVariant {
    /// Message passing over iRCCE (the paper's baseline under SCC Linux).
    Ircce,
    /// Shared memory on the SVM system, strong model.
    SvmStrong,
    /// Shared memory on the SVM system, lazy release consistency.
    SvmLazy,
}

impl LaplaceVariant {
    pub fn label(self) -> &'static str {
        match self {
            LaplaceVariant::Ircce => "iRCCE",
            LaplaceVariant::SvmStrong => "SVM strong",
            LaplaceVariant::SvmLazy => "SVM lazy",
        }
    }
}

/// Outcome of one (variant, cores) cell of Figure 9.
#[derive(Clone, Debug)]
pub struct LaplaceRun {
    pub checksum: f64,
    /// Simulated wall time of the iteration loop: the maximum over the
    /// participating cores, in milliseconds.
    pub sim_ms: f64,
    /// Estimated energy over all active cores (whole run, J) under the
    /// default `scc_hw::power` model.
    pub energy_j: f64,
    /// The unified metrics registry for the whole run: hardware counters
    /// (`hw.*`, `exec.*`, `kernel.*`) merged over the participating cores,
    /// plus the mailbox (`mbx.*`) and SVM protocol (`svm.*`) counters for
    /// the SVM variants.
    pub metrics: MetricsSnapshot,
}

/// Machine configuration sized for the experiment: the MP variant keeps
/// two full row blocks (plus halos) in private memory.
pub fn laplace_config(n: usize, p: LaplaceParams) -> SccConfig {
    let block_bytes = (p.height / n + 2) * (p.width + scc_apps::laplace::ROW_PAD) * 8 * 2;
    SccConfig {
        private_bytes_per_core: (block_bytes + 2 * 1024 * 1024).next_multiple_of(4096),
        shared_bytes: 64 * 1024 * 1024,
        ..SccConfig::default()
    }
}

/// Run one cell of Figure 9 on a fresh machine.
pub fn laplace_run(variant: LaplaceVariant, n: usize, p: LaplaceParams) -> LaplaceRun {
    laplace_run_cfg(variant, n, p, Notify::Ipi, SvmConfig::default())
}

/// Like [`laplace_run`], with the host fast paths (simulated TLB, bulk
/// accessors, executor fast yield) configured explicitly. Simulated results
/// are identical for every setting; only host wall-clock changes (the
/// `bench_fastpath` harness and the shadow tests rely on this).
pub fn laplace_run_host(
    variant: LaplaceVariant,
    n: usize,
    p: LaplaceParams,
    host_fast: scc_hw::HostFastPaths,
) -> LaplaceRun {
    let cfg = SccConfig {
        host_fast,
        ..laplace_config(n, p)
    };
    laplace_run_on(cfg, variant, n, p, Notify::Ipi, SvmConfig::default()).0
}

/// Per-core observables of one run, for bit-identity comparisons across
/// executor modes: final virtual clock and structured-event ring.
pub struct LaplaceCoreObs {
    pub core: CoreId,
    pub clock: u64,
    pub trace: TraceRing,
}

/// Like [`laplace_run_host`], with an explicit mailbox notification
/// strategy and trace configuration, also returning each core's final
/// clock and trace ring. The parallel shadow tests use this with
/// [`Notify::Poll`] (the parallel executor does not support IPIs) to
/// compare serial and parallel executions bit for bit.
pub fn laplace_run_host_notify(
    variant: LaplaceVariant,
    n: usize,
    p: LaplaceParams,
    host_fast: scc_hw::HostFastPaths,
    notify: Notify,
    trace: TraceConfig,
) -> (LaplaceRun, Vec<LaplaceCoreObs>) {
    let cfg = SccConfig {
        host_fast,
        trace,
        ..laplace_config(n, p)
    };
    laplace_run_on(cfg, variant, n, p, notify, SvmConfig::default())
}

/// Like [`laplace_run_host_notify`], on an explicit machine configuration
/// — topology, memory sizes, fast paths, tracing — instead of the
/// default-shaped one. The scale acceptance tests use this to run the
/// Figure 9 cells on the 512-core `mesh16x32` preset.
pub fn laplace_run_host_on(
    cfg: SccConfig,
    variant: LaplaceVariant,
    n: usize,
    p: LaplaceParams,
    notify: Notify,
) -> (LaplaceRun, Vec<LaplaceCoreObs>) {
    laplace_run_on(cfg, variant, n, p, notify, SvmConfig::default())
}

/// Like [`laplace_run`], with explicit mailbox notification strategy and
/// SVM configuration (used by the ablation harnesses).
pub fn laplace_run_cfg(
    variant: LaplaceVariant,
    n: usize,
    p: LaplaceParams,
    notify: Notify,
    svm_cfg: SvmConfig,
) -> LaplaceRun {
    laplace_run_on(laplace_config(n, p), variant, n, p, notify, svm_cfg).0
}

/// Like [`laplace_run`], with structured-event tracing configured, also
/// returning each participating core's trace ring. Rings are empty unless
/// the `trace` cargo feature is compiled in (`TraceRing::compiled_in()`)
/// and `trace.per_core_capacity > 0`. Export with
/// [`scc_hw::instr::chrome_trace_json`] or [`scc_hw::instr::protocol_log`].
pub fn laplace_run_traced(
    variant: LaplaceVariant,
    n: usize,
    p: LaplaceParams,
    trace: TraceConfig,
) -> (LaplaceRun, Vec<(CoreId, TraceRing)>) {
    let cfg = SccConfig {
        trace,
        ..laplace_config(n, p)
    };
    let (run, obs) = laplace_run_on(cfg, variant, n, p, Notify::Ipi, SvmConfig::default());
    (run, obs.into_iter().map(|o| (o.core, o.trace)).collect())
}

fn laplace_run_on(
    cfg: SccConfig,
    variant: LaplaceVariant,
    n: usize,
    p: LaplaceParams,
    notify: Notify,
    svm_cfg: SvmConfig,
) -> (LaplaceRun, Vec<LaplaceCoreObs>) {
    let mhz = cfg.timing.core_mhz as f64;
    let chip_cores = cfg.topo.num_cores();
    let cl = Cluster::new(cfg).expect("machine");
    let res = cl
        .run(n, move |k| match variant {
            LaplaceVariant::Ircce => {
                let mut comm = RcceComm::init(k);
                (laplace_ircce(k, &mut comm, p), MetricsSnapshot::new())
            }
            LaplaceVariant::SvmStrong | LaplaceVariant::SvmLazy => {
                let mbx = mbx_install(k, notify);
                let mut svm = svm_install(k, &mbx, svm_cfg);
                let model = if variant == LaplaceVariant::SvmStrong {
                    Consistency::Strong
                } else {
                    Consistency::LazyRelease
                };
                let out = laplace_svm(k, &mut svm, model, p);
                // Mailbox counters are per core; the SVM protocol counters
                // are machine-global, so only rank 0 contributes them (the
                // merge below would otherwise count them n times).
                let mut m = mbx.stats().metrics();
                if k.rank() == 0 {
                    svm.shared().stats.metrics_into(&mut m);
                }
                (out, m)
            }
        })
        .expect("laplace must not deadlock");
    let checksum = res[0].result.0.checksum;
    let max_cycles = res.iter().map(|r| r.result.0.cycles).max().unwrap();
    let timing = scc_hw::TimingParams::default();
    let pw = scc_hw::power::PowerParams::default();
    let energy_j = res
        .iter()
        .map(|r| {
            scc_hw::power::estimate(&r.perf, r.clock.as_u64(), chip_cores, &timing, &pw).total_j()
        })
        .sum();
    let mut metrics = MetricsSnapshot::new();
    for r in &res {
        r.perf.metrics_into(&mut metrics);
        metrics.merge(&r.result.1);
    }
    let run = LaplaceRun {
        checksum,
        sim_ms: max_cycles as f64 / mhz / 1000.0,
        energy_j,
        metrics,
    };
    let obs = res
        .into_iter()
        .map(|r| LaplaceCoreObs {
            core: r.core,
            clock: r.clock.as_u64(),
            trace: r.trace,
        })
        .collect();
    (run, obs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_agree_on_checksum_small() {
        let p = LaplaceParams {
            width: 64,
            height: 32,
            iters: 5,
        };
        let a = laplace_run(LaplaceVariant::Ircce, 2, p);
        let b = laplace_run(LaplaceVariant::SvmStrong, 2, p);
        let c = laplace_run(LaplaceVariant::SvmLazy, 2, p);
        assert_eq!(a.checksum, b.checksum);
        assert_eq!(b.checksum, c.checksum);
        assert!(a.sim_ms > 0.0 && b.sim_ms > 0.0 && c.sim_ms > 0.0);
    }

    #[test]
    fn more_cores_run_faster_lazy() {
        let p = LaplaceParams {
            width: 128,
            height: 64,
            iters: 4,
        };
        let one = laplace_run(LaplaceVariant::SvmLazy, 1, p);
        let four = laplace_run(LaplaceVariant::SvmLazy, 4, p);
        assert!(
            four.sim_ms < one.sim_ms,
            "4 cores ({} ms) must beat 1 core ({} ms)",
            four.sim_ms,
            one.sim_ms
        );
    }
}
