//! Plain-text table output in the style of the paper's tables/figures.

/// Format simulated microseconds with three decimals.
pub fn fmt_us(us: f64) -> String {
    format!("{us:10.3}")
}

/// A simple aligned text table.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells.to_vec());
    }

    /// Render with per-column alignment.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for c in 0..ncols {
                widths[c] = widths[c].max(r[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>w$}", cell, w = widths[c]));
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["a", "bee"]);
        t.row(&["1".into(), "2".into()]);
        t.row(&["100".into(), "20000".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[2].ends_with("    2"));
        assert!(lines[3].ends_with("20000"));
    }

    #[test]
    #[should_panic]
    fn wrong_arity_rejected() {
        let mut t = Table::new(&["a"]);
        t.row(&["1".into(), "2".into()]);
    }
}
