//! Ablation A1: first-touch scratch pad in the MPBs vs relocated to
//! off-die memory.
//!
//! §6.3: "To increase the memory size, we can relocate the scratch pad
//! into the off-die memory. However, this increases the number of memory
//! accesses, which in turn decreases the performance of our system."
//! This harness quantifies that trade-off on the Table 1 fault path and on
//! a lazy-release Laplace run.
//!
//! Usage: `cargo run -p scc-bench --release --bin ablation_scratchpad [--quick]`

use metalsvm::{Consistency, ScratchLocation, SvmConfig};
use scc_apps::laplace::LaplaceParams;
use scc_bench::laplace_run::laplace_run_cfg;
use scc_bench::{fmt_us, svm_overhead, HarnessArgs, LaplaceVariant, Table};
use scc_mailbox::Notify;

fn main() {
    let args = HarnessArgs::parse();

    println!("Ablation A1 — scratch pad location (MPB vs off-die)\n");
    let mut t = Table::new(&["fault path (lazy)", "MPB (us)", "off-die (us)"]);
    let mpb = svm_overhead(Consistency::LazyRelease, ScratchLocation::Mpb);
    let off = svm_overhead(Consistency::LazyRelease, ScratchLocation::OffDie);
    t.row(&[
        "physical allocation of a page frame".into(),
        fmt_us(mpb.physical_alloc_us),
        fmt_us(off.physical_alloc_us),
    ]);
    t.row(&[
        "mapping of a page frame".into(),
        fmt_us(mpb.map_us),
        fmt_us(off.map_us),
    ]);
    println!("{}", t.render());

    let p = LaplaceParams {
        width: 256,
        height: 128,
        iters: if args.quick { 4 } else { 16 },
    };
    let n = 8;
    let mut t = Table::new(&["laplace (lazy, 8 cores)", "MPB", "off-die"]);
    let run = |loc| {
        laplace_run_cfg(
            LaplaceVariant::SvmLazy,
            n,
            p,
            Notify::Ipi,
            SvmConfig::builder().scratch(loc).build().expect("svm config"),
        )
    };
    let a = run(ScratchLocation::Mpb);
    let b = run(ScratchLocation::OffDie);
    t.row(&[
        "runtime (ms)".into(),
        format!("{:.3}", a.sim_ms),
        format!("{:.3}", b.sim_ms),
    ]);
    println!("{}", t.render());
    println!("expected: the off-die variant is slower on every fault path.");
}
