//! Ablation A3: read-only regions (§6.4) — L2-enabled sealed pages vs the
//! ordinary MPBT write-through path for read-mostly data.
//!
//! Usage: `cargo run -p scc-bench --release --bin ablation_readonly [--quick]`

use metalsvm::{install as svm_install, SvmConfig};
use scc_apps::dotprod::dotprod_opt;
use scc_bench::{HarnessArgs, Table};
use scc_hw::SccConfig;
use scc_kernel::Cluster;
use scc_mailbox::{install as mbx_install, Notify};

fn run(n: usize, len: usize, passes: usize, seal: bool) -> (f64, f64) {
    let cfg = SccConfig::small();
    let mhz = cfg.timing.core_mhz as f64;
    let cl = Cluster::new(cfg).unwrap();
    let res = cl
        .run(n, move |k| {
            let mbx = mbx_install(k, Notify::Ipi);
            let mut svm = svm_install(k, &mbx, SvmConfig::default());
            let t0 = k.hw.now();
            let dot = dotprod_opt(k, &mut svm, len, passes, seal);
            (dot, k.hw.now() - t0)
        })
        .unwrap();
    let max_cycles = res.iter().map(|r| r.result.1).max().unwrap();
    (res[0].result.0, max_cycles as f64 / mhz / 1000.0)
}

fn main() {
    let args = HarnessArgs::parse();
    let len = 32 * 1024;
    let passes = if args.quick { 3 } else { 8 };

    println!("Ablation A3 — read-only regions: sealed (L2) vs unsealed (MPBT)\n");
    println!("(dot product, {len} elements, {passes} passes)\n");
    let mut t = Table::new(&["cores", "unsealed (ms)", "sealed RO (ms)", "speedup"]);
    for &n in &[1usize, 4, 8] {
        let (d1, unsealed) = run(n, len, passes, false);
        let (d2, sealed) = run(n, len, passes, true);
        assert_eq!(d1, d2, "sealing must not change the result");
        t.row(&[
            format!("{n}"),
            format!("{unsealed:.3}"),
            format!("{sealed:.3}"),
            format!("{:.2}x", unsealed / sealed),
        ]);
    }
    println!("{}", t.render());
    println!(
        "expected: sealing wins whenever the working set exceeds the L1\n\
         but fits the L2 (8 KiB < set < 256 KiB per core)."
    );
}
