//! Scaling benchmark over mesh sizes: how the two costs the topology
//! redesign touches most — strong-model ownership migration and the
//! all-core barrier — grow from the paper's 48-core die to a 512-core
//! mesh. Emits `BENCH_scale.json`.
//!
//! Per shape:
//!
//! * **ownership migration**: a one-page strong-model region ping-ponged
//!   between core 0 and the far corner of the mesh (maximum hop
//!   distance). After the first touch every write faults, runs the
//!   five-step ownership-transfer protocol across the full mesh diagonal
//!   and remaps the page; the reported figure is the average simulated
//!   cost of one such migrating write.
//! * **barrier**: every core of the mesh joins `ram_barrier` (the
//!   rendezvous inside `svm.barrier`); the reported figure is the average
//!   simulated cost per barrier, maximised over the cores.
//!
//! All figures are simulated microseconds — deterministic per shape, so
//! reps exist only for the host wall-clock, not the results.
//!
//! Usage: `cargo run -p scc-bench --release --bin bench_scale [--quick]`

use std::fmt::Write as _;

use metalsvm::{install as svm_install, Consistency, SvmConfig};
use scc_bench::{HarnessArgs, Table};
use scc_hw::{CoreId, SccConfig, Topology};
use scc_kernel::Cluster;
use scc_mailbox::{install as mbx_install, Notify};

/// Machine for one mesh shape: enough shared memory for the mailbox slot
/// rows of 512 receivers plus the SVM window, modest private memory.
fn config_for(topo: Topology) -> SccConfig {
    SccConfig {
        private_bytes_per_core: 256 * 1024,
        shared_bytes: 32 * 1024 * 1024,
        ..SccConfig::default_with(topo)
    }
}

/// Average simulated cost (us) of one ownership-migrating write between
/// core 0 and the mesh's far corner, plus the hop distance covered.
fn migration_us(topo: Topology, rounds: u32) -> (f64, u32) {
    let cfg = config_for(topo);
    let mhz = cfg.timing.core_mhz as f64;
    let hops = topo.max_hops();
    let origin = CoreId::from_raw(0);
    let far = topo
        .core_at_distance(origin, hops)
        .expect("the far corner exists");
    let cl = Cluster::new(cfg).expect("machine");
    let res = cl
        .run_on(&[origin, far], move |k| {
            let mbx = mbx_install(k, Notify::Poll);
            let mut svm = svm_install(k, &mbx, SvmConfig::default());
            let region = svm.alloc(k, 4096, Consistency::Strong);
            if k.rank() == 0 {
                k.vwrite(region.va, 4, 1); // first touch, not counted
                k.hw.flush_wcb();
            }
            svm.barrier(k);
            // Alternate writers: every write below faults on a page the
            // peer owns and migrates it across the whole mesh diagonal.
            let mut mine = 0u64;
            let mut cycles = 0u64;
            for r in 0..rounds {
                if r % 2 == k.rank() as u32 % 2 {
                    let t0 = k.hw.now();
                    k.vwrite(region.va, 4, u64::from(r) + 2);
                    k.hw.flush_wcb();
                    cycles += k.hw.now() - t0;
                    mine += 1;
                }
                svm.barrier(k);
            }
            (cycles, mine)
        })
        .expect("migration ping-pong must not deadlock");
    let total: u64 = res.iter().map(|r| r.result.0).sum();
    let writes: u64 = res.iter().map(|r| r.result.1).sum();
    (total as f64 / writes as f64 / mhz, hops)
}

/// Average simulated cost (us) of one all-core barrier, maximised over
/// the participating cores.
fn barrier_us(topo: Topology, barriers: u32) -> f64 {
    let cfg = config_for(topo);
    let mhz = cfg.timing.core_mhz as f64;
    let n = topo.num_cores();
    let cl = Cluster::new(cfg).expect("machine");
    let res = cl
        .run(n, move |k| {
            // Warm-up: the first rendezvous pays service initialisation.
            scc_kernel::ram_barrier(k, "bench.scale.warmup");
            let t0 = k.hw.now();
            for _ in 0..barriers {
                scc_kernel::ram_barrier(k, "bench.scale");
            }
            k.hw.now() - t0
        })
        .expect("barrier loop must not deadlock");
    let max_cycles = res.iter().map(|r| r.result).max().unwrap();
    max_cycles as f64 / f64::from(barriers) / mhz
}

fn main() {
    let args = HarnessArgs::parse();
    let rounds = if args.quick { 8 } else { 16 };
    let barriers = if args.quick { 4 } else { 8 };

    let shapes: [(&str, Topology); 4] = [
        ("scc48", Topology::scc48()),
        ("mesh8x8", Topology::mesh8x8()),
        ("mesh16x16", Topology::from_spec("16x16x1:8").expect("valid spec")),
        ("mesh16x32", Topology::mesh16x32()),
    ];

    println!(
        "Scaling benchmark — ownership migration ({rounds} rounds) and \
         all-core barrier ({barriers} barriers) per mesh\n"
    );
    let mut t = Table::new(&[
        "preset",
        "cores",
        "mesh",
        "hops",
        "migration (us)",
        "barrier (us)",
    ]);
    let mut rows_json = String::new();
    for (name, topo) in shapes {
        let (mig_us, hops) = migration_us(topo, rounds);
        let bar_us = barrier_us(topo, barriers);
        let mesh = format!(
            "{}x{}x{}:{}",
            topo.mesh_x(),
            topo.mesh_y(),
            topo.cores_per_tile(),
            topo.num_mcs()
        );
        t.row(&[
            name.to_string(),
            format!("{}", topo.num_cores()),
            mesh.clone(),
            format!("{hops}"),
            format!("{mig_us:10.3}"),
            format!("{bar_us:10.3}"),
        ]);
        println!("{}", t.render().lines().last().unwrap());
        let _ = write!(
            rows_json,
            "{}    {{\"preset\": \"{name}\", \"cores\": {}, \"mesh\": \"{mesh}\", \
             \"migration_hops\": {hops}, \"migration_us\": {mig_us:.4}, \
             \"barrier_us\": {bar_us:.4}}}",
            if rows_json.is_empty() { "" } else { ",\n" },
            topo.num_cores(),
        );
    }

    println!("\n{}", t.render());
    println!(
        "shape: migration cost grows with the mesh diagonal (protocol mail \
         and the remap travel more hops); barrier cost grows with the core \
         count (the rendezvous serialises on one off-die counter)."
    );

    let json = format!(
        "{{\n  \"bench\": \"scale\",\n  \"migration_rounds\": {rounds},\n  \
         \"barriers\": {barriers},\n  \"results\": [\n{rows_json}\n  ]\n}}\n"
    );
    std::fs::write("BENCH_scale.json", &json).expect("write BENCH_scale.json");
    println!("wrote BENCH_scale.json");
}
