//! Scaling benchmark over mesh sizes: how the costs the topology redesign
//! touches most — strong-model ownership migration and the collective
//! layer — grow from the paper's 48-core die to a 512-core mesh. Emits
//! `BENCH_scale.json`.
//!
//! Per shape:
//!
//! * **ownership migration**: a one-page strong-model region ping-ponged
//!   between core 0 and the far corner of the mesh (maximum hop
//!   distance). After the first touch every write faults, runs the
//!   five-step ownership-transfer protocol across the full mesh diagonal
//!   and remaps the page; the reported figure is the average simulated
//!   cost of one such migrating write.
//! * **barrier, flat vs tree**: every core of the mesh joins
//!   `ram_barrier` under both collective modes (`SCC_COLL=flat|tree`);
//!   the reported figures are the average simulated cost per barrier,
//!   maximised over the cores, plus the tree speedup. The flat rendezvous
//!   serialises on one off-die counter; the MPB-tree barrier combines
//!   in-tile, per quadrant, then at the root (DESIGN.md §12).
//! * **allreduce, flat vs tree**: an 8-double RCCE `allreduce_f64` over
//!   all cores under both modes — the linear root loop vs the log-depth
//!   collective tree.
//!
//! A final **checker** phase runs the traced Laplace cell on a subset of
//! the shapes under the tree collectives and feeds the rings through all
//! `svmcheck` detectors: the findings-vs-core-count curve of a clean run
//! must be identically zero. (Rings are empty without the `trace`
//! feature; the phase then only proves the no-op path.)
//!
//! All simulated figures are deterministic per shape — reps exist only
//! for the host wall-clock, not the results.
//!
//! Usage: `cargo run -p scc-bench --release --features trace
//!         --bin bench_scale [--quick]`

use std::fmt::Write as _;

use metalsvm::{install as svm_install, Consistency, SvmConfig};
use scc_apps::laplace::LaplaceParams;
use scc_bench::{laplace_run_host_on, HarnessArgs, LaplaceVariant, Table};
use scc_hw::instr::TraceConfig;
use scc_hw::{CollMode, CoreId, SccConfig, Topology, TraceRing};
use scc_kernel::Cluster;
use scc_mailbox::{install as mbx_install, Notify};
use rcce::{allreduce_f64, RcceComm, ReduceOp};

/// Machine for one mesh shape: enough shared memory for the mailbox slot
/// rows of 512 receivers plus the SVM window, modest private memory.
/// The collective mode is pinned explicitly — this harness compares the
/// modes, so the `SCC_COLL` escape hatch must not leak in.
fn config_for(topo: Topology, coll: CollMode) -> SccConfig {
    SccConfig {
        private_bytes_per_core: 256 * 1024,
        shared_bytes: 32 * 1024 * 1024,
        coll,
        ..SccConfig::default_with(topo)
    }
}

/// Average simulated cost (us) of one ownership-migrating write between
/// core 0 and the mesh's far corner, plus the hop distance covered.
fn migration_us(topo: Topology, rounds: u32) -> (f64, u32) {
    let cfg = config_for(topo, CollMode::Tree);
    let mhz = cfg.timing.core_mhz as f64;
    let hops = topo.max_hops();
    let origin = CoreId::from_raw(0);
    let far = topo
        .core_at_distance(origin, hops)
        .expect("the far corner exists");
    let cl = Cluster::new(cfg).expect("machine");
    let res = cl
        .run_on(&[origin, far], move |k| {
            let mbx = mbx_install(k, Notify::Poll);
            let mut svm = svm_install(k, &mbx, SvmConfig::default());
            let region = svm.alloc(k, 4096, Consistency::Strong);
            if k.rank() == 0 {
                k.vwrite(region.va, 4, 1); // first touch, not counted
                k.hw.flush_wcb();
            }
            svm.barrier(k);
            // Alternate writers: every write below faults on a page the
            // peer owns and migrates it across the whole mesh diagonal.
            let mut mine = 0u64;
            let mut cycles = 0u64;
            for r in 0..rounds {
                if r % 2 == k.rank() as u32 % 2 {
                    let t0 = k.hw.now();
                    k.vwrite(region.va, 4, u64::from(r) + 2);
                    k.hw.flush_wcb();
                    cycles += k.hw.now() - t0;
                    mine += 1;
                }
                svm.barrier(k);
            }
            (cycles, mine)
        })
        .expect("migration ping-pong must not deadlock");
    let total: u64 = res.iter().map(|r| r.result.0).sum();
    let writes: u64 = res.iter().map(|r| r.result.1).sum();
    (total as f64 / writes as f64 / mhz, hops)
}

/// Average simulated cost (us) of one all-core barrier under `coll`,
/// maximised over the participating cores.
fn barrier_us(topo: Topology, barriers: u32, coll: CollMode) -> f64 {
    let cfg = config_for(topo, coll);
    let mhz = cfg.timing.core_mhz as f64;
    let n = topo.num_cores();
    let cl = Cluster::new(cfg).expect("machine");
    let res = cl
        .run(n, move |k| {
            // Warm-up: the first rendezvous pays service initialisation.
            scc_kernel::ram_barrier(k, "bench.scale.warmup");
            let t0 = k.hw.now();
            for _ in 0..barriers {
                scc_kernel::ram_barrier(k, "bench.scale");
            }
            k.hw.now() - t0
        })
        .expect("barrier loop must not deadlock");
    let max_cycles = res.iter().map(|r| r.result).max().unwrap();
    max_cycles as f64 / f64::from(barriers) / mhz
}

/// Average simulated cost (us) of one all-core 8-double RCCE allreduce
/// under `coll`, maximised over the participating cores.
fn allreduce_us(topo: Topology, reps: u32, coll: CollMode) -> f64 {
    let cfg = config_for(topo, coll);
    let mhz = cfg.timing.core_mhz as f64;
    let n = topo.num_cores();
    let cl = Cluster::new(cfg).expect("machine");
    let res = cl
        .run(n, move |k| {
            let mut comm = RcceComm::init(k);
            let va = k.kalloc_pages(1);
            for i in 0..8u32 {
                k.vwrite_f64(va + i * 8, k.rank() as f64 + i as f64);
            }
            // Warm-up rep pays the pipeline/flag initialisation.
            allreduce_f64(k, &mut comm, va, 8, ReduceOp::Sum);
            let t0 = k.hw.now();
            for _ in 0..reps {
                allreduce_f64(k, &mut comm, va, 8, ReduceOp::Max);
            }
            k.hw.now() - t0
        })
        .expect("allreduce must not deadlock");
    let max_cycles = res.iter().map(|r| r.result).max().unwrap();
    max_cycles as f64 / f64::from(reps) / mhz
}

/// Traced strong-model Laplace on `topo` under the tree collectives, fed
/// through every `svmcheck` detector. Returns (events, findings).
fn checker_pass(topo: Topology, p: LaplaceParams) -> (usize, usize) {
    let cfg = SccConfig {
        trace: if TraceRing::compiled_in() {
            TraceConfig::full(1 << 17)
        } else {
            TraceConfig::disabled()
        },
        ..config_for(topo, CollMode::Tree)
    };
    let n = topo.num_cores();
    let (_, obs) = laplace_run_host_on(cfg, LaplaceVariant::SvmStrong, n, p, Notify::Ipi);
    let rings: Vec<(CoreId, TraceRing)> = obs.into_iter().map(|o| (o.core, o.trace)).collect();
    let events: usize = rings.iter().map(|(_, r)| r.len()).sum();
    let report = scc_checker::check_rings(rings.iter().map(|(c, r)| (*c, r)));
    assert!(
        report.findings.is_empty(),
        "clean Laplace on {}x{} cores must be finding-free, got: {}",
        topo.mesh_x(),
        topo.mesh_y(),
        report.render_text()
    );
    (events, report.findings.len())
}

fn main() {
    let args = HarnessArgs::parse();
    let rounds = if args.quick { 8 } else { 16 };
    let barriers = if args.quick { 4 } else { 8 };
    let reduces = if args.quick { 2 } else { 4 };

    let shapes: [(&str, Topology); 4] = [
        ("scc48", Topology::scc48()),
        ("mesh8x8", Topology::mesh8x8()),
        ("mesh16x16", Topology::mesh16x16()),
        ("mesh16x32", Topology::mesh16x32()),
    ];

    println!(
        "Scaling benchmark — ownership migration ({rounds} rounds), flat-vs-tree \
         barrier ({barriers} barriers) and allreduce ({reduces} reps) per mesh\n"
    );
    let mut t = Table::new(&[
        "preset",
        "cores",
        "mesh",
        "hops",
        "migration (us)",
        "barrier flat (us)",
        "barrier tree (us)",
        "speedup",
        "allreduce flat (us)",
        "allreduce tree (us)",
    ]);
    let mut rows_json = String::new();
    for (name, topo) in shapes {
        // Progress heartbeat on stderr: the 512-core phases are minutes
        // of host time each on a small machine.
        eprintln!("[bench_scale] {name}: migration...");
        let (mig_us, hops) = migration_us(topo, rounds);
        eprintln!("[bench_scale] {name}: barrier flat...");
        let bar_flat = barrier_us(topo, barriers, CollMode::Flat);
        eprintln!("[bench_scale] {name}: barrier tree...");
        let bar_tree = barrier_us(topo, barriers, CollMode::Tree);
        eprintln!("[bench_scale] {name}: allreduce flat...");
        let red_flat = allreduce_us(topo, reduces, CollMode::Flat);
        eprintln!("[bench_scale] {name}: allreduce tree...");
        let red_tree = allreduce_us(topo, reduces, CollMode::Tree);
        let speedup = bar_flat / bar_tree;
        let mesh = format!(
            "{}x{}x{}:{}",
            topo.mesh_x(),
            topo.mesh_y(),
            topo.cores_per_tile(),
            topo.num_mcs()
        );
        t.row(&[
            name.to_string(),
            format!("{}", topo.num_cores()),
            mesh.clone(),
            format!("{hops}"),
            format!("{mig_us:10.3}"),
            format!("{bar_flat:10.3}"),
            format!("{bar_tree:10.3}"),
            format!("{speedup:6.2}x"),
            format!("{red_flat:10.3}"),
            format!("{red_tree:10.3}"),
        ]);
        println!("{}", t.render().lines().last().unwrap());
        let _ = write!(
            rows_json,
            "{}    {{\"preset\": \"{name}\", \"cores\": {}, \"mesh\": \"{mesh}\", \
             \"migration_hops\": {hops}, \"migration_us\": {mig_us:.4}, \
             \"barrier_flat_us\": {bar_flat:.4}, \"barrier_tree_us\": {bar_tree:.4}, \
             \"barrier_tree_speedup\": {speedup:.3}, \
             \"allreduce_flat_us\": {red_flat:.4}, \"allreduce_tree_us\": {red_tree:.4}}}",
            if rows_json.is_empty() { "" } else { ",\n" },
            topo.num_cores(),
        );
    }

    println!("\n{}", t.render());
    println!(
        "shape: migration cost grows with the mesh diagonal (protocol mail \
         and the remap travel more hops); the flat barrier grows linearly \
         with the core count (one off-die counter), the MPB-tree barrier \
         logarithmically (in-tile, per-quadrant, root)."
    );

    // Checker curve: findings of a clean traced run vs core count.
    let checker_shapes: [(&str, Topology, LaplaceParams); 3] = [
        (
            "scc48",
            Topology::scc48(),
            LaplaceParams { width: 240, height: 240, iters: 2 },
        ),
        (
            "mesh8x8",
            Topology::mesh8x8(),
            LaplaceParams { width: 256, height: 256, iters: 2 },
        ),
        (
            "mesh16x32",
            Topology::mesh16x32(),
            LaplaceParams { width: 512, height: 512, iters: 2 },
        ),
    ];
    if !TraceRing::compiled_in() {
        eprintln!(
            "warning: built without the `trace` feature — checker rings stay \
             empty and the findings curve only proves the no-op path."
        );
    }
    println!("\nchecker curve (traced Laplace strong, tree collectives):");
    let mut checker_json = String::new();
    for (name, topo, p) in checker_shapes {
        eprintln!("[bench_scale] checker: {name}...");
        let (events, findings) = checker_pass(topo, p);
        println!(
            "  {name:>9} ({:3} cores): {events:8} events, {findings} findings",
            topo.num_cores()
        );
        let _ = write!(
            checker_json,
            "{}    {{\"preset\": \"{name}\", \"cores\": {}, \"events\": {events}, \
             \"findings\": {findings}}}",
            if checker_json.is_empty() { "" } else { ",\n" },
            topo.num_cores(),
        );
    }

    let json = format!(
        "{{\n  \"bench\": \"scale\",\n  \"migration_rounds\": {rounds},\n  \
         \"barriers\": {barriers},\n  \"allreduces\": {reduces},\n  \
         \"trace_compiled_in\": {},\n  \"results\": [\n{rows_json}\n  ],\n  \
         \"checker\": [\n{checker_json}\n  ]\n}}\n",
        TraceRing::compiled_in(),
    );
    std::fs::write("BENCH_scale.json", &json).expect("write BENCH_scale.json");
    println!("wrote BENCH_scale.json");
}
