//! Figure 6: average mailbox latency according to mesh distance.
//!
//! Ping-pong between core 0 and a partner at hop distance 0..=8, with only
//! the two cores activated. Two curves: without IPI support (idle-loop
//! polling) and with IPI support (GIC doorbell). Reported values are half
//! round-trip times in simulated microseconds, as in the paper.
//!
//! Usage: `cargo run -p scc-bench --release --bin fig6 [--quick]`

use scc_bench::{fmt_us, HarnessArgs, PingPongSetup, Table};
use scc_hw::{CoreId, Topology};
use scc_mailbox::Notify;

fn main() {
    let args = HarnessArgs::parse();
    let rounds = if args.quick { 50 } else { 400 };
    let topo = Topology::from_env_or_scc48();
    let origin = CoreId::from_raw(0);

    println!("Figure 6 — average latency according to the distance");
    println!("(half round-trip, simulated us; {rounds} rounds per point)\n");
    let mut t = Table::new(&["hops", "no-IPI (us)", "IPI (us)"]);
    for hops in 0..=topo.max_hops() {
        let partner = topo
            .core_at_distance(origin, hops)
            .expect("partner exists up to the mesh diameter");
        let poll = scc_bench::pingpong_latency_us(&PingPongSetup::pair(
            origin,
            partner,
            Notify::Poll,
            rounds,
        ));
        let ipi = scc_bench::pingpong_latency_us(&PingPongSetup::pair(
            origin,
            partner,
            Notify::Ipi,
            rounds,
        ));
        t.row(&[format!("{hops}"), fmt_us(poll), fmt_us(ipi)]);
    }
    println!("{}", t.render());
    println!(
        "paper shape: both curves linear in the distance with a low gradient;\n\
         the IPI curve sits above the no-IPI curve (interrupt disruption)\n\
         because with two active cores only one buffer needs checking anyway."
    );
}
