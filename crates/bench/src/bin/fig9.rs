//! Figure 9: runtimes of the Laplace benchmark over the core count.
//!
//! The 1024 × 512 heat-distribution grid (JOR), solved by the iRCCE
//! message-passing baseline and by the SVM system under both consistency
//! models. The paper iterates 5000 times; because this reproduction
//! simulates every memory access functionally, the default is 50
//! iterations (runtime curves are shape-invariant in the iteration count
//! after the first iteration's cold faults — see EXPERIMENTS.md).
//!
//! Usage: `cargo run -p scc-bench --release --bin fig9 [--quick] [--iters N]`

use scc_apps::laplace::LaplaceParams;
use scc_bench::{laplace_run, HarnessArgs, LaplaceVariant, Table};

fn main() {
    let args = HarnessArgs::parse();
    let iters = args.iters.unwrap_or(if args.quick { 8 } else { 50 });
    let p = LaplaceParams::paper(iters);
    let counts: &[usize] = if args.quick {
        &[1, 2, 8, 32, 48]
    } else {
        &[1, 2, 4, 8, 16, 32, 48]
    };

    println!("Figure 9 — runtimes of the Laplace benchmark");
    println!(
        "(grid {}x{}, {} iterations, simulated ms)\n",
        p.width, p.height, p.iters
    );
    let mut t = Table::new(&[
        "cores",
        "iRCCE (ms)",
        "SVM strong (ms)",
        "SVM lazy (ms)",
        "iRCCE (J)",
        "SVM lazy (J)",
        "checksums equal",
    ]);
    let mut sweep = scc_hw::MetricsSnapshot::new();
    for &n in counts {
        let mp = laplace_run(LaplaceVariant::Ircce, n, p);
        let strong = laplace_run(LaplaceVariant::SvmStrong, n, p);
        let lazy = laplace_run(LaplaceVariant::SvmLazy, n, p);
        for r in [&mp, &strong, &lazy] {
            sweep.merge(&r.metrics);
        }
        let agree = mp.checksum == strong.checksum && strong.checksum == lazy.checksum;
        t.row(&[
            format!("{n}"),
            format!("{:10.2}", mp.sim_ms),
            format!("{:10.2}", strong.sim_ms),
            format!("{:10.2}", lazy.sim_ms),
            format!("{:8.3}", mp.energy_j),
            format!("{:8.3}", lazy.energy_j),
            format!("{agree}"),
        ]);
        // Print incrementally: full sweeps take a while.
        println!("{}", t.render().lines().last().unwrap());
    }
    println!("\n{}", t.render());
    println!("metrics registry (whole sweep, all variants merged):");
    println!("{}", sweep.render());
    println!(
        "host fast paths: {:.1}% TLB hit rate, {} shootdowns, {} fast yields\n",
        100.0
            * sweep
                .hit_rate("kernel.tlb_hits", "kernel.tlb_misses")
                .unwrap_or(0.0),
        sweep.get("kernel.tlb_shootdowns"),
        sweep.get("exec.fast_yields"),
    );
    println!(
        "paper shape: the two SVM curves are nearly identical; iRCCE is\n\
         slower up to 32 cores (its matrix write misses go to DDR3 word by\n\
         word, while the SVM variants combine them in the WCB); beyond 32\n\
         cores the per-core rows fit the L2, which only the message-passing\n\
         variant may use, giving it a superlinear drop."
    );
}
