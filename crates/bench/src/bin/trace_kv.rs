//! Capture a structured-event trace of a small svm-kv service run
//! (strong + LRC partitions, mixed GET/PUT/SCAN open-loop traffic) and
//! prove the instrumentation is free: the traced run must be
//! bit-identical — every request record, histogram bucket and clock — to
//! a run with recording disabled.
//!
//! The captured rings then pass through every `svmcheck` detector (the
//! service's lock discipline and ownership protocol must be finding-free)
//! and are exported as `results/TRACE_kv.json` (Chrome `trace_event`
//! format) and `results/TRACE_kv.log` (flat protocol log, including the
//! `kv.kv_req`/`kv.kv_resp` request events). Both re-parse with the
//! `svmcheck` binary — ci/check.sh gates on the log staying clean.
//!
//! Usage: `cargo run -p scc-bench --release --features trace
//!         --bin trace_kv [--quick] [--iters REQUESTS_PER_CLIENT]`

use metalsvm::{install as svm_install, SvmConfig};
use scc_bench::HarnessArgs;
use scc_hw::instr::{chrome_trace_json, protocol_log, EventKind, TraceConfig};
use scc_hw::{CoreId, SccConfig, TraceRing};
use scc_kernel::Cluster;
use scc_kv::{run_kv, KvConfig, KvOutcome, Strategy};
use scc_mailbox::{install as mbx_install, Notify};

/// One service run; returns per-core outcomes and trace rings.
fn traced_run(kv: &KvConfig, n: usize, trace: TraceConfig) -> (Vec<KvOutcome>, Vec<(CoreId, TraceRing)>) {
    let cfg = SccConfig {
        trace,
        ..SccConfig::default()
    };
    let cl = Cluster::new(cfg).expect("machine");
    let res = cl
        .run(n, |k| {
            let mbx = mbx_install(k, Notify::Ipi);
            let mut svm = svm_install(k, &mbx, SvmConfig::default());
            run_kv(k, &mbx, &mut svm, kv)
        })
        .expect("kv service must not deadlock");
    let mut outs = Vec::new();
    let mut rings = Vec::new();
    for r in res {
        outs.push(r.result);
        rings.push((r.core, r.trace));
    }
    (outs, rings)
}

fn main() {
    let args = HarnessArgs::parse();
    let requests = args.iters.unwrap_or(if args.quick { 150 } else { 600 });
    let n = 8;
    let kv = KvConfig {
        servers: 2,
        partitions: vec![Strategy::Strong, Strategy::Lrc],
        keyspace_log2: 10,
        requests_per_client: requests,
        mean_interarrival: 30_000,
        zipf_theta: 0.9,
        get_pct: 60,
        scan_pct: 10,
        scan_len: 16,
        seed: 0x5CC4B,
        record_requests: true,
    };

    if !TraceRing::compiled_in() {
        eprintln!(
            "warning: built without the `trace` feature — rings stay empty.\n\
             Rebuild with `--features trace` to capture events."
        );
    }
    println!(
        "Tracing svm-kv (strong + LRC partitions, {n} cores, {} servers, \
         {requests} requests/client)...",
        kv.servers
    );
    let trace_cfg = TraceConfig {
        per_core_capacity: 1 << 17,
        mask: EventKind::default_mask(),
    };
    let (traced, rings) = traced_run(&kv, n, trace_cfg);
    let (shadow, _) = traced_run(&kv, n, TraceConfig::disabled());
    assert_eq!(traced, shadow, "tracing changed the kv run");
    println!("traced run identical to untraced (outcomes, records, clocks)");

    let events: usize = rings.iter().map(|(_, r)| r.len()).sum();
    let dropped: u64 = rings.iter().map(|(_, r)| r.overwritten()).sum();
    assert_eq!(dropped, 0, "ring too small: {dropped} events dropped");
    let kv_events: usize = rings
        .iter()
        .flat_map(|(_, r)| r.events())
        .filter(|e| matches!(e.kind, EventKind::KvReq | EventKind::KvResp))
        .count();
    assert!(
        !TraceRing::compiled_in() || kv_events > 0,
        "a traced kv run must mark its requests"
    );
    println!("captured {events} events ({kv_events} kv request/response marks)");

    // Every detector over the captured rings: the service's lock and
    // ownership discipline must be clean.
    let report = scc_checker::check_rings(rings.iter().map(|(c, r)| (*c, r)));
    assert!(
        report.findings.is_empty(),
        "svm-kv run must be finding-free, got: {}",
        report.render_text()
    );
    println!("svmcheck: 0 findings over the captured rings");

    let mhz = SccConfig::default().timing.core_mhz;
    std::fs::create_dir_all("results").expect("create results/");
    let json = chrome_trace_json(rings.iter().map(|(c, r)| (*c, r)), mhz);
    std::fs::write("results/TRACE_kv.json", &json).expect("write results/TRACE_kv.json");
    let log = protocol_log(rings.iter().map(|(c, r)| (*c, r)));
    std::fs::write("results/TRACE_kv.log", &log).expect("write results/TRACE_kv.log");
    println!(
        "wrote results/TRACE_kv.json ({} KiB) and results/TRACE_kv.log ({} lines)",
        json.len() / 1024,
        log.lines().count()
    );
}
