//! Trace the deliberately buggy checker fixtures and write their protocol
//! logs for offline `svmcheck` runs.
//!
//! Each fixture from `scc_apps::fixtures` plants exactly one bug; this
//! harness runs the named ones (all of them by default) with tracing on
//! and writes `results/TRACE_<name>.log`. `ci/check.sh` then asserts
//! `svmcheck --expect <slug> results/TRACE_<name>.log` for each.
//!
//! Usage: `cargo run -p scc-bench --release --features trace
//!         --bin trace_fixture [name ...]`

use scc_apps::fixtures::{fixture, run_fixture_traced, FIXTURES};
use scc_hw::instr::{protocol_log, EventKind, TraceConfig};
use scc_hw::TraceRing;

fn main() {
    let names: Vec<String> = std::env::args().skip(1).collect();
    let picked: Vec<_> = if names.is_empty() {
        FIXTURES.iter().collect()
    } else {
        names
            .iter()
            .map(|n| {
                fixture(n).unwrap_or_else(|| {
                    eprintln!("unknown fixture `{n}`; available:");
                    for f in FIXTURES {
                        eprintln!("  {}", f.name);
                    }
                    std::process::exit(2);
                })
            })
            .collect()
    };

    if !TraceRing::compiled_in() {
        eprintln!(
            "warning: built without the `trace` feature — rings stay empty.\n\
             Rebuild with `--features trace` to capture events."
        );
    }

    let trace_cfg = TraceConfig {
        per_core_capacity: 1 << 16,
        mask: EventKind::default_mask(),
    };
    std::fs::create_dir_all("results").expect("create results/");
    for f in picked {
        let rings = run_fixture_traced(f, trace_cfg);
        let events: usize = rings.iter().map(|(_, r)| r.len()).sum();
        let log = protocol_log(rings.iter().map(|(c, r)| (*c, r)));
        let path = format!("results/TRACE_{}.log", f.name);
        std::fs::write(&path, &log).unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!(
            "{path}: {events} events over {} core(s), expect {}/{}",
            f.cores, f.detector, f.expect
        );
    }
}
