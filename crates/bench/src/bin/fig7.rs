//! Figure 7: average latency between cores 0 and 30 (5 hops) as the number
//! of activated cores grows.
//!
//! Three curves:
//! * **no-IPI** — the receiver scans every activated core's buffer, so the
//!   latency grows with the core count;
//! * **IPI** — the GIC names the sender, latency stays flat;
//! * **IPI + noise** — as before, while all other activated cores
//!   permanently exchange mails among themselves.
//!
//! Usage: `cargo run -p scc-bench --release --bin fig7 [--quick]`

use scc_bench::pingpong::{Background, PingPongSetup};
use scc_bench::{fmt_us, HarnessArgs, Table};
use scc_hw::CoreId;
use scc_mailbox::Notify;

/// The first `n` activated cores, always containing 0 and 30.
fn active_set(n: usize) -> Vec<CoreId> {
    let mut v = vec![CoreId::new(0), CoreId::new(30)];
    let mut next = 1;
    while v.len() < n {
        if next != 30 {
            v.push(CoreId::new(next));
        }
        next += 1;
    }
    v
}

fn main() {
    let args = HarnessArgs::parse();
    let rounds = if args.quick { 30 } else { 200 };
    let counts: &[usize] = if args.quick {
        &[2, 8, 16, 32, 48]
    } else {
        &[2, 4, 8, 12, 16, 20, 24, 28, 32, 36, 40, 44, 48]
    };

    println!("Figure 7 — average latency between core 0 and 30 (5 hops)");
    println!("(half round-trip, simulated us; {rounds} rounds per point)\n");
    let mut t = Table::new(&["cores", "no-IPI (us)", "IPI (us)", "IPI+noise (us)"]);
    for &n in counts {
        let active = active_set(n);
        let mk = |notify, background| PingPongSetup {
            a: CoreId::new(0),
            b: CoreId::new(30),
            active: active.clone(),
            notify,
            background,
            rounds,
        };
        let poll = scc_bench::pingpong_latency_us(&mk(Notify::Poll, Background::Idle));
        let ipi = scc_bench::pingpong_latency_us(&mk(Notify::Ipi, Background::Idle));
        let noise = scc_bench::pingpong_latency_us(&mk(Notify::Ipi, Background::Noise));
        t.row(&[format!("{n}"), fmt_us(poll), fmt_us(ipi), fmt_us(noise)]);
    }
    println!("{}", t.render());
    println!(
        "paper shape: the no-IPI latency rises with the number of activated\n\
         cores (more buffers to check); both IPI curves stay nearly constant\n\
         and close to each other up to 48 cores."
    );
}
