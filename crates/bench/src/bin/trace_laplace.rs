//! Capture a structured-event trace of the 48-core Laplace run (strong
//! model — the full five-step ownership-migration protocol) and prove the
//! instrumentation is free: the traced run must be bit-identical in
//! simulated time, checksum and every counter to a run with recording
//! disabled.
//!
//! Emits `results/TRACE_laplace.json` (Chrome `trace_event` format — open
//! in `chrome://tracing` or <https://ui.perfetto.dev>) and
//! `results/TRACE_laplace.log` (a flat, time-sorted protocol log). Both
//! re-parse with `svmcheck` for offline consistency checking.
//!
//! Usage: `cargo run -p scc-bench --release --features trace
//!         --bin trace_laplace [--quick] [--iters N]`

use scc_apps::laplace::LaplaceParams;
use scc_bench::{laplace_run_traced, HarnessArgs, LaplaceVariant};
use scc_hw::instr::{chrome_trace_json, protocol_log, EventKind, TraceConfig};
use scc_hw::TraceRing;

fn main() {
    let args = HarnessArgs::parse();
    let iters = args.iters.unwrap_or(if args.quick { 2 } else { 8 });
    let n = 48;
    let p = LaplaceParams::paper(iters);

    if !TraceRing::compiled_in() {
        eprintln!(
            "warning: built without the `trace` feature — rings stay empty.\n\
             Rebuild with `--features trace` to capture events."
        );
    }

    println!(
        "Tracing Laplace (SVM strong, {}x{}, {} iterations, {} cores)...",
        p.width, p.height, p.iters, n
    );
    let trace_cfg = TraceConfig {
        per_core_capacity: 1 << 16,
        mask: EventKind::default_mask(),
    };
    let (traced, rings) = laplace_run_traced(LaplaceVariant::SvmStrong, n, p, trace_cfg);
    let (shadow, _) =
        laplace_run_traced(LaplaceVariant::SvmStrong, n, p, TraceConfig::disabled());

    // Tracing must never perturb the simulation.
    assert_eq!(traced.checksum, shadow.checksum, "tracing changed the result");
    assert_eq!(traced.sim_ms, shadow.sim_ms, "tracing changed simulated time");
    assert_eq!(traced.metrics, shadow.metrics, "tracing changed the counters");
    println!(
        "traced run identical to untraced: {:.3} simulated ms, checksum {}",
        traced.sim_ms, traced.checksum
    );

    let events: usize = rings.iter().map(|(_, r)| r.len()).sum();
    let dropped: u64 = rings.iter().map(|(_, r)| r.overwritten()).sum();
    println!(
        "captured {events} events over {} cores ({dropped} dropped to ring wrap)",
        rings.len()
    );

    let mhz = scc_hw::SccConfig::default().timing.core_mhz;
    std::fs::create_dir_all("results").expect("create results/");
    let json = chrome_trace_json(rings.iter().map(|(c, r)| (*c, r)), mhz);
    std::fs::write("results/TRACE_laplace.json", &json).expect("write results/TRACE_laplace.json");
    let log = protocol_log(rings.iter().map(|(c, r)| (*c, r)));
    std::fs::write("results/TRACE_laplace.log", &log).expect("write results/TRACE_laplace.log");
    println!(
        "wrote results/TRACE_laplace.json ({} KiB) and results/TRACE_laplace.log ({} lines)",
        json.len() / 1024,
        log.lines().count()
    );
    println!("open the JSON in chrome://tracing or https://ui.perfetto.dev");
}
