//! Ablation A2: mailbox notification strategy under SVM load.
//!
//! §5 argues for the event-driven (GIC IPI) design because tick-driven
//! polling both delays mail detection and wastes cycles scanning buffers.
//! This harness runs the strong-model Laplace solver — whose ownership
//! protocol rides on the mailbox system — under both strategies.
//!
//! Usage: `cargo run -p scc-bench --release --bin ablation_notify [--quick]`

use metalsvm::SvmConfig;
use scc_apps::laplace::LaplaceParams;
use scc_bench::laplace_run::laplace_run_cfg;
use scc_bench::{HarnessArgs, LaplaceVariant, Table};
use scc_mailbox::Notify;

fn main() {
    let args = HarnessArgs::parse();
    let p = LaplaceParams {
        width: 256,
        height: 128,
        iters: if args.quick { 4 } else { 16 },
    };

    println!("Ablation A2 — mailbox notification under the strong SVM model\n");
    let mut t = Table::new(&["cores", "polling (ms)", "IPI (ms)"]);
    for &n in &[2usize, 4, 8, 16] {
        let poll = laplace_run_cfg(
            LaplaceVariant::SvmStrong,
            n,
            p,
            Notify::Poll,
            SvmConfig::default(),
        );
        let ipi = laplace_run_cfg(
            LaplaceVariant::SvmStrong,
            n,
            p,
            Notify::Ipi,
            SvmConfig::default(),
        );
        assert_eq!(poll.checksum, ipi.checksum);
        t.row(&[
            format!("{n}"),
            format!("{:.3}", poll.sim_ms),
            format!("{:.3}", ipi.sim_ms),
        ]);
    }
    println!("{}", t.render());
    println!(
        "expected: IPI-driven notification wins, and the polling penalty\n\
         grows with the core count (more buffers per scan round)."
    );
}
