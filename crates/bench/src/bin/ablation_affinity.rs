//! Ablation A4: affinity-on-first-touch vs round-robin frame placement.
//!
//! §6.3 places each page behind the memory controller of the first
//! toucher's quadrant, so the later (identical) access pattern stays
//! local. The baseline stripes pages over the controllers regardless of
//! the toucher.
//!
//! Usage: `cargo run -p scc-bench --release --bin ablation_affinity [--quick]`

use metalsvm::{Placement, SvmConfig};
use scc_apps::laplace::LaplaceParams;
use scc_bench::laplace_run::laplace_run_cfg;
use scc_bench::{HarnessArgs, LaplaceVariant, Table};
use scc_mailbox::Notify;

fn main() {
    let args = HarnessArgs::parse();
    let p = LaplaceParams {
        width: 512,
        height: 256,
        iters: if args.quick { 4 } else { 16 },
    };

    println!("Ablation A4 — first-touch affinity vs round-robin placement\n");
    println!("(lazy-release Laplace, {}x{}, {} iterations)\n", p.width, p.height, p.iters);
    let mut t = Table::new(&["cores", "first-touch (ms)", "round-robin (ms)"]);
    for &n in &[4usize, 8, 16, 48] {
        let near = laplace_run_cfg(
            LaplaceVariant::SvmLazy,
            n,
            p,
            Notify::Ipi,
            SvmConfig::builder()
                .placement(Placement::NearToucher)
                .build()
                .expect("svm config"),
        );
        let rr = laplace_run_cfg(
            LaplaceVariant::SvmLazy,
            n,
            p,
            Notify::Ipi,
            SvmConfig::builder()
                .placement(Placement::RoundRobin)
                .build()
                .expect("svm config"),
        );
        assert_eq!(near.checksum, rr.checksum);
        t.row(&[
            format!("{n}"),
            format!("{:.3}", near.sim_ms),
            format!("{:.3}", rr.sim_ms),
        ]);
    }
    println!("{}", t.render());
    println!(
        "expected: first-touch placement keeps cache-miss traffic on the\n\
         local controller, shaving hop latency off every DDR3 access."
    );
}
