//! svm-kv service benchmark: throughput and tail latency of the
//! partitioned key-value store under deterministic open-loop traffic,
//! across the three per-partition consistency strategies (strong
//! ownership migration, lock-guarded lazy release, sealed read-only
//! snapshots), two mesh sizes (the paper's 48-core die and the 128-core
//! 8x8 mesh) and two key skews (uniform and Zipf 0.99). Emits
//! `BENCH_kv.json`.
//!
//! All figures are **simulated**: throughput is sent requests over the
//! virtual make-span, latencies are virtual-time microseconds measured
//! from each request's *scheduled* open-loop arrival (so queueing delay
//! under overload stays in the tail — see `scc_kv::gen`). The same seed
//! reproduces every number bit for bit; reps are pointless and there are
//! none.
//!
//! The refuse-to-clobber guard mirrors `BENCH_parallel.json`'s: a
//! `--quick` rerun will not silently overwrite a recorded full-size
//! result (pass `--force` to do it anyway).
//!
//! Usage: `cargo run -p scc-bench --release --bin bench_kv
//!         [--quick] [--iters REQUESTS_PER_CLIENT] [--force]`

use std::fmt::Write as _;

use metalsvm::{install as svm_install, SvmConfig};
use scc_bench::{HarnessArgs, Table};
use scc_hw::{SccConfig, Topology};
use scc_kernel::Cluster;
use scc_kv::{run_kv, KvConfig, KvOutcome, LatencyHistogram, Strategy};
use scc_mailbox::{install as mbx_install, Notify};

/// Machine for one mesh shape: room for the mailbox rows of 128
/// receivers plus the SVM window.
fn kv_machine(topo: Topology) -> SccConfig {
    SccConfig {
        private_bytes_per_core: 256 * 1024,
        shared_bytes: 32 * 1024 * 1024,
        ..SccConfig::default_with(topo)
    }
}

struct Row {
    topo: &'static str,
    cores: usize,
    servers: usize,
    strategy: Strategy,
    theta: f64,
    sent: u64,
    served: u64,
    rejected: u64,
    sim_ms: f64,
    kreq_per_s: f64,
    p50_us: f64,
    p99_us: f64,
    p999_us: f64,
    mean_us: f64,
    max_us: f64,
}

/// One full service run; everything reported is simulated and
/// deterministic in (topology, strategy, theta, requests).
fn run_one(
    topo_name: &'static str,
    topo: Topology,
    strategy: Strategy,
    theta: f64,
    requests_per_client: usize,
) -> Row {
    let cfg = kv_machine(topo);
    let mhz = cfg.timing.core_mhz as f64;
    let n = topo.num_cores();
    let servers = (n / 8).max(2);
    let kv = KvConfig {
        servers,
        partitions: vec![strategy; 6],
        keyspace_log2: 12,
        requests_per_client,
        mean_interarrival: 40_000,
        zipf_theta: theta,
        get_pct: 70,
        scan_pct: 10,
        scan_len: 16,
        seed: 0x5CC4B,
        record_requests: false,
    };
    let cl = Cluster::new(cfg).expect("machine");
    let outs: Vec<KvOutcome> = cl
        .run(n, |k| {
            let mbx = mbx_install(k, Notify::Ipi);
            let mut svm = svm_install(k, &mbx, SvmConfig::default());
            run_kv(k, &mbx, &mut svm, &kv)
        })
        .expect("kv service must not deadlock")
        .into_iter()
        .map(|r| r.result)
        .collect();

    let sent: u64 = outs.iter().map(|o| o.gets + o.puts + o.scans).sum();
    let served: u64 = outs.iter().map(|o| o.served).sum();
    let rejected: u64 = outs.iter().map(|o| o.rejected).sum();
    assert_eq!(sent, served, "every sent request must be served");
    let mut hist = LatencyHistogram::new();
    for o in &outs {
        hist.merge(&o.hist);
    }
    // Make-span over the serving/generating phase only (setup excluded).
    let start = outs.iter().map(|o| o.start_clock).min().unwrap();
    let end = outs.iter().map(|o| o.end_clock).max().unwrap();
    let span_cycles = (end - start).max(1);
    let span_s = span_cycles as f64 / (mhz * 1e6);
    Row {
        topo: topo_name,
        cores: n,
        servers,
        strategy,
        theta,
        sent,
        served,
        rejected,
        sim_ms: span_s * 1e3,
        kreq_per_s: sent as f64 / span_s / 1e3,
        p50_us: hist.p50() as f64 / mhz,
        p99_us: hist.p99() as f64 / mhz,
        p999_us: hist.p999() as f64 / mhz,
        mean_us: hist.mean() / mhz,
        max_us: hist.max() as f64 / mhz,
    }
}

/// `"quick"` recorded in an existing `BENCH_kv.json`, if any.
fn recorded_quick(path: &str) -> Option<bool> {
    let text = std::fs::read_to_string(path).ok()?;
    let tail = text.split("\"quick\":").nth(1)?;
    match tail.trim_start() {
        t if t.starts_with("true") => Some(true),
        t if t.starts_with("false") => Some(false),
        _ => None,
    }
}

fn main() {
    let args = HarnessArgs::parse();
    let out = "BENCH_kv.json";
    // Guard the recorded result: a full-size sweep is the meaningful one;
    // a --quick rerun must not silently clobber it.
    if !args.force && args.quick && recorded_quick(out) == Some(false) {
        println!(
            "{out} holds a full-size result; this is a --quick run. \
             Refusing to overwrite it — pass --force to do so anyway."
        );
        return;
    }
    let requests = args.iters.unwrap_or(if args.quick { 150 } else { 1000 });

    let topos = [
        ("scc48", Topology::scc48()),
        ("mesh8x8", Topology::mesh8x8()),
    ];
    let thetas = [0.0, 0.99];
    let strategies = [Strategy::Strong, Strategy::Lrc, Strategy::Sealed];

    println!(
        "svm-kv benchmark — {} requests/client, strategies {:?}, meshes {:?}, \
         Zipf thetas {thetas:?}",
        requests,
        strategies.map(Strategy::name),
        topos.map(|(name, _)| name),
    );
    let mut t = Table::new(&[
        "mesh",
        "cores",
        "strategy",
        "zipf",
        "sent",
        "rejected",
        "kreq/s",
        "p50 (us)",
        "p99 (us)",
        "p999 (us)",
    ]);
    let mut rows_json = String::new();
    for (topo_name, topo) in topos {
        for theta in thetas {
            for strategy in strategies {
                let r = run_one(topo_name, topo, strategy, theta, requests);
                t.row(&[
                    r.topo.to_string(),
                    format!("{}", r.cores),
                    r.strategy.name().to_string(),
                    format!("{:.2}", r.theta),
                    format!("{}", r.sent),
                    format!("{}", r.rejected),
                    format!("{:9.1}", r.kreq_per_s),
                    format!("{:8.2}", r.p50_us),
                    format!("{:8.2}", r.p99_us),
                    format!("{:8.2}", r.p999_us),
                ]);
                if !rows_json.is_empty() {
                    rows_json.push_str(",\n");
                }
                write!(
                    rows_json,
                    "    {{\"mesh\": \"{}\", \"cores\": {}, \"servers\": {}, \
                     \"strategy\": \"{}\", \"zipf_theta\": {:.2}, \"sent\": {}, \
                     \"served\": {}, \"rejected\": {}, \"sim_ms\": {:.3}, \
                     \"kreq_per_s\": {:.2}, \"p50_us\": {:.3}, \"p99_us\": {:.3}, \
                     \"p999_us\": {:.3}, \"mean_us\": {:.3}, \"max_us\": {:.3}}}",
                    r.topo,
                    r.cores,
                    r.servers,
                    r.strategy.name(),
                    r.theta,
                    r.sent,
                    r.served,
                    r.rejected,
                    r.sim_ms,
                    r.kreq_per_s,
                    r.p50_us,
                    r.p99_us,
                    r.p999_us,
                    r.mean_us,
                    r.max_us,
                )
                .unwrap();
            }
        }
    }
    println!("\n{}", t.render());

    let json = format!(
        "{{\n  \"bench\": \"kv\",\n  \"quick\": {},\n  \
         \"requests_per_client\": {},\n  \"results\": [\n{}\n  ]\n}}\n",
        args.quick, requests, rows_json
    );
    std::fs::write(out, &json).expect("write BENCH_kv.json");
    println!("wrote {out}");
}
