//! Checker-overhead benchmark: what does it cost to watch a run?
//!
//! Two phases over the Figure 9 Laplace cell (paper grid, 48 cores,
//! strong model — the protocol-heaviest variant):
//!
//! 1. **Capture overhead** — wall-clock of the traced run vs the same run
//!    with recording disabled, min of `--reps`, asserting bit-identical
//!    simulated results (tracing must never perturb the simulation, only
//!    host time may differ).
//! 2. **Analysis throughput** — feeding the captured rings through all
//!    three `svmcheck` detectors (`scc_checker::check_rings`), reported
//!    as events/second; the run is clean, so the report must be
//!    finding-free.
//!
//! Emits `BENCH_checker.json`. Without the `trace` feature the rings stay
//! empty and the numbers only prove the no-op path is free.
//!
//! Usage: `cargo run -p scc-bench --release --features trace
//!         --bin bench_checker [--quick] [--iters N] [--reps N]`

use std::time::Instant;

use scc_apps::laplace::LaplaceParams;
use scc_bench::{laplace_run_traced, HarnessArgs, LaplaceVariant, Table};
use scc_hw::instr::{EventKind, TraceConfig};
use scc_hw::TraceRing;

fn main() {
    let args = HarnessArgs::parse();
    let iters = args.iters.unwrap_or(if args.quick { 2 } else { 8 });
    let reps = args.reps.unwrap_or(if args.quick { 2 } else { 3 });
    let n = 48;
    let p = LaplaceParams::paper(iters);

    if !TraceRing::compiled_in() {
        eprintln!(
            "warning: built without the `trace` feature — rings stay empty \
             and the overhead measured is the no-op path."
        );
    }
    println!(
        "Checker-overhead benchmark — Laplace strong, {}x{}, {} iterations, \
         {} cores, best of {} reps",
        p.width, p.height, p.iters, n, reps
    );

    let trace_cfg = TraceConfig {
        per_core_capacity: 1 << 16,
        mask: EventKind::default_mask(),
    };

    // Phase 1: capture overhead (traced vs recording disabled).
    let mut off_s = f64::INFINITY;
    let mut on_s = f64::INFINITY;
    let mut off = None;
    let mut traced = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        off = Some(laplace_run_traced(LaplaceVariant::SvmStrong, n, p, TraceConfig::disabled()).0);
        off_s = off_s.min(t0.elapsed().as_secs_f64());

        let t0 = Instant::now();
        traced = Some(laplace_run_traced(LaplaceVariant::SvmStrong, n, p, trace_cfg));
        on_s = on_s.min(t0.elapsed().as_secs_f64());
    }
    let off = off.expect("reps >= 1");
    let (on, rings) = traced.expect("reps >= 1");
    assert_eq!(off.checksum, on.checksum, "tracing changed the result");
    assert_eq!(off.sim_ms, on.sim_ms, "tracing changed simulated time");
    assert_eq!(off.metrics, on.metrics, "tracing changed the counters");

    let events: usize = rings.iter().map(|(_, r)| r.len()).sum();
    let dropped: u64 = rings.iter().map(|(_, r)| r.overwritten()).sum();
    let capture_delta = on_s - off_s;
    let capture_pct = 100.0 * capture_delta / off_s;

    // Phase 2: analysis throughput over the captured rings.
    let mut check_s = f64::INFINITY;
    let mut report = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        report = Some(scc_checker::check_rings(
            rings.iter().map(|(c, r)| (*c, r)),
        ));
        check_s = check_s.min(t0.elapsed().as_secs_f64());
    }
    let report = report.expect("reps >= 1");
    assert!(
        report.findings.is_empty(),
        "clean Laplace must be finding-free, got: {}",
        report.render_text()
    );
    let events_per_s = if check_s > 0.0 { events as f64 / check_s } else { 0.0 };

    let mut t = Table::new(&[
        "untraced (s)",
        "traced (s)",
        "capture overhead",
        "events",
        "check (s)",
        "events/s",
        "findings",
    ]);
    t.row(&[
        format!("{off_s:8.3}"),
        format!("{on_s:8.3}"),
        format!("{capture_delta:+.3}s ({capture_pct:+.1}%)"),
        format!("{events}"),
        format!("{check_s:8.4}"),
        format!("{events_per_s:10.0}"),
        format!("{}", report.findings.len()),
    ]);
    println!("\n{}", t.render());
    println!(
        "capture: {capture_delta:+.3}s over {off_s:.3}s untraced; analysis: \
         {events} events in {check_s:.4}s = {events_per_s:.0} events/s \
         ({dropped} dropped to ring wrap)"
    );

    let json = format!(
        "{{\n  \"bench\": \"checker\",\n  \"grid\": {{\"width\": {}, \
         \"height\": {}, \"iters\": {}}},\n  \"cores\": {},\n  \"reps\": {},\n  \
         \"trace_compiled_in\": {},\n  \"untraced_s\": {:.4},\n  \
         \"traced_s\": {:.4},\n  \"capture_delta_s\": {:.4},\n  \
         \"capture_overhead_pct\": {:.2},\n  \"events\": {},\n  \
         \"events_dropped\": {},\n  \"check_s\": {:.5},\n  \
         \"events_per_s\": {:.0},\n  \"findings\": {},\n  \
         \"sim_identical\": true\n}}\n",
        p.width,
        p.height,
        p.iters,
        n,
        reps,
        TraceRing::compiled_in(),
        off_s,
        on_s,
        capture_delta,
        capture_pct,
        events,
        dropped,
        check_s,
        events_per_s,
        report.findings.len(),
    );
    std::fs::write("BENCH_checker.json", &json).expect("write BENCH_checker.json");
    println!("wrote BENCH_checker.json");
}
