//! Host wall-clock benchmark of the simulator's fast paths.
//!
//! Runs the Figure 9 Laplace cell (paper grid, 48 cores) per variant with
//! every host fast path disabled (full page-table walk per element, full
//! decision round per yield) and with the default fast paths (simulated
//! TLB, bulk accessors, executor fast yield). Simulated results are
//! asserted bit-identical; only host time differs. Each configuration is
//! timed `--reps` times and the minimum wall time is reported — the
//! standard low-noise estimator, which matters because the host may be a
//! single loaded CPU scheduling all 48 simulated-core threads. Emits
//! `BENCH_fastpath.json` next to the working directory.
//!
//! A second phase benchmarks the parallel conservative executor
//! (`host_fast.parallel`, DESIGN.md §8) against the serial baton executor,
//! both in polling notify mode (the parallel engine does not support
//! IPIs), asserting bit-identical simulated results and emitting
//! `BENCH_parallel.json`. The wall-clock speedup scales with the host's
//! core count (recorded as `host_cores`): on a single-CPU host the
//! parallel engine can only add synchronisation overhead, so the speedup
//! criterion is meaningful only where `host_cores > 1` — and to protect a
//! multi-core measurement, phase 2 refuses to overwrite an existing
//! `BENCH_parallel.json` recorded with `host_cores > 1` from a single-core
//! host unless `--force` is given. Each per-variant row also reports the
//! epoch engine's counters (demoted ops, conflicts, epochs, the
//! epoch-length histogram) and host-thread utilisation derived from the
//! parked-time metric (EXPERIMENTS.md has the reading guide).
//!
//! Usage: `cargo run -p scc-bench --release --bin bench_fastpath
//!         [--quick] [--iters N] [--reps N] [--force]`

use std::fmt::Write as _;
use std::time::Instant;

use scc_apps::laplace::LaplaceParams;
use scc_bench::{laplace_run_host, laplace_run_host_notify, HarnessArgs, LaplaceVariant, Table};
use scc_hw::instr::TraceConfig;
use scc_hw::HostFastPaths;
use scc_mailbox::Notify;

fn main() {
    let args = HarnessArgs::parse();
    let iters = args.iters.unwrap_or(if args.quick { 2 } else { 8 });
    let reps = args.reps.unwrap_or(if args.quick { 2 } else { 3 });
    let n = 48;
    let p = LaplaceParams::paper(iters);

    println!(
        "Fast-path wall-clock benchmark — Laplace {}x{}, {} iterations, {} cores, best of {} reps",
        p.width, p.height, p.iters, n, reps
    );
    let mut t = Table::new(&[
        "variant",
        "walk (s)",
        "fast (s)",
        "speedup",
        "sim identical",
        "TLB hit rate",
    ]);

    let mut rows_json = String::new();
    let mut total_walk = 0.0f64;
    let mut total_fast = 0.0f64;
    for variant in [
        LaplaceVariant::Ircce,
        LaplaceVariant::SvmStrong,
        LaplaceVariant::SvmLazy,
    ] {
        let mut walk_s = f64::INFINITY;
        let mut fast_s = f64::INFINITY;
        let mut walk = None;
        let mut fast = None;
        for _ in 0..reps {
            let t0 = Instant::now();
            walk = Some(laplace_run_host(variant, n, p, HostFastPaths::walk_path()));
            walk_s = walk_s.min(t0.elapsed().as_secs_f64());

            let t0 = Instant::now();
            fast = Some(laplace_run_host(variant, n, p, HostFastPaths::default()));
            fast_s = fast_s.min(t0.elapsed().as_secs_f64());
        }
        let (walk, fast) = (walk.expect("reps >= 1"), fast.expect("reps >= 1"));

        let identical = walk.checksum == fast.checksum && walk.sim_ms == fast.sim_ms;
        assert!(
            identical,
            "{}: fast paths changed simulated results (walk {} ms / {}, \
             fast {} ms / {})",
            variant.label(),
            walk.sim_ms,
            walk.checksum,
            fast.sim_ms,
            fast.checksum
        );
        let hits = fast.metrics.get("kernel.tlb_hits");
        let misses = fast.metrics.get("kernel.tlb_misses");
        let hit_rate = fast
            .metrics
            .hit_rate("kernel.tlb_hits", "kernel.tlb_misses")
            .unwrap_or(0.0);
        total_walk += walk_s;
        total_fast += fast_s;
        t.row(&[
            variant.label().to_string(),
            format!("{walk_s:8.2}"),
            format!("{fast_s:8.2}"),
            format!("{:6.2}x", walk_s / fast_s),
            format!("{identical}"),
            format!("{:6.2}%", 100.0 * hit_rate),
        ]);
        println!("{}", t.render().lines().last().unwrap());

        let _ = write!(
            rows_json,
            "{}    {{\"variant\": \"{}\", \"walk_s\": {:.3}, \"fast_s\": {:.3}, \
             \"speedup\": {:.2}, \"sim_ms\": {:.4}, \"sim_identical\": {}, \
             \"tlb_hits\": {}, \"tlb_misses\": {}, \"tlb_shootdowns\": {}, \
             \"fast_yields\": {}}}",
            if rows_json.is_empty() { "" } else { ",\n" },
            variant.label(),
            walk_s,
            fast_s,
            walk_s / fast_s,
            fast.sim_ms,
            identical,
            hits,
            misses,
            fast.metrics.get("kernel.tlb_shootdowns"),
            fast.metrics.get("exec.fast_yields"),
        );
    }

    let overall = total_walk / total_fast;
    println!("\n{}", t.render());
    println!("overall wall-clock speedup: {overall:.2}x (walk {total_walk:.2}s -> fast {total_fast:.2}s)");

    let json = format!(
        "{{\n  \"bench\": \"fastpath\",\n  \"grid\": {{\"width\": {}, \
         \"height\": {}, \"iters\": {}}},\n  \"cores\": {},\n  \"reps\": {},\n  \
         \"results\": [\n{}\n  ],\n  \"total_walk_s\": {:.3},\n  \
         \"total_fast_s\": {:.3},\n  \"overall_speedup\": {:.2}\n}}\n",
        p.width, p.height, p.iters, n, reps, rows_json, total_walk, total_fast, overall
    );
    std::fs::write("BENCH_fastpath.json", &json).expect("write BENCH_fastpath.json");
    println!("wrote BENCH_fastpath.json");

    bench_parallel(n, p, reps, args.force);
}

/// The six epoch-length histogram buckets, as `(metric key, JSON key)`.
const EPOCH_BUCKETS: [(&str, &str); 6] = [
    ("exec.par.epoch_len.1", "1"),
    ("exec.par.epoch_len.2_3", "2_3"),
    ("exec.par.epoch_len.4_7", "4_7"),
    ("exec.par.epoch_len.8_15", "8_15"),
    ("exec.par.epoch_len.16_63", "16_63"),
    ("exec.par.epoch_len.64_plus", "64_plus"),
];

/// `host_cores` recorded in an existing `BENCH_parallel.json`, if any.
fn recorded_host_cores(path: &str) -> Option<u64> {
    let text = std::fs::read_to_string(path).ok()?;
    let tail = text.split("\"host_cores\":").nth(1)?;
    tail.trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .ok()
}

/// Phase 2: serial baton executor vs parallel conservative executor, both
/// with the default fast paths and polling-mode mailboxes.
fn bench_parallel(n: usize, p: LaplaceParams, reps: usize, force: bool) {
    let host_cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    // Guard the recorded result: a multi-host-core measurement is the
    // meaningful one for this benchmark, and a rerun on a single-CPU box
    // (CI, laptops on battery) must not silently clobber it.
    let out = "BENCH_parallel.json";
    if !force && host_cores == 1 {
        if let Some(prev) = recorded_host_cores(out) {
            if prev > 1 {
                println!(
                    "\n{out} holds a {prev}-host-core result; this host has 1 core. \
                     Refusing to overwrite it — pass --force to do so anyway."
                );
                return;
            }
        }
    }
    // The engine caps concurrently running simulated cores at
    // SCC_PAR_HOST_THREADS (unset/0: one host thread per simulated core).
    let host_threads = std::env::var("SCC_PAR_HOST_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&v| v > 0)
        .map_or(n, |v| v.min(n));
    println!(
        "\nParallel-executor wall-clock benchmark — same grid, {n} simulated cores \
         on {host_cores} host core(s), {host_threads} host thread(s)"
    );
    let mut t = Table::new(&[
        "variant",
        "serial (s)",
        "parallel (s)",
        "speedup",
        "sim identical",
        "conflicts",
        "demoted",
        "util",
    ]);

    let mut rows_json = String::new();
    let mut total_ser = 0.0f64;
    let mut total_par = 0.0f64;
    for variant in [
        LaplaceVariant::Ircce,
        LaplaceVariant::SvmStrong,
        LaplaceVariant::SvmLazy,
    ] {
        let mut ser_s = f64::INFINITY;
        let mut par_s = f64::INFINITY;
        let mut par_last_s = 0.0f64;
        let mut ser = None;
        let mut par = None;
        for _ in 0..reps {
            let t0 = Instant::now();
            ser = Some(
                laplace_run_host_notify(
                    variant,
                    n,
                    p,
                    HostFastPaths::default(),
                    Notify::Poll,
                    TraceConfig::disabled(),
                )
                .0,
            );
            ser_s = ser_s.min(t0.elapsed().as_secs_f64());

            let t0 = Instant::now();
            par = Some(
                laplace_run_host_notify(
                    variant,
                    n,
                    p,
                    HostFastPaths::parallel(),
                    Notify::Poll,
                    TraceConfig::disabled(),
                )
                .0,
            );
            par_last_s = t0.elapsed().as_secs_f64();
            par_s = par_s.min(par_last_s);
        }
        let (ser, par) = (ser.expect("reps >= 1"), par.expect("reps >= 1"));
        let identical = ser.checksum == par.checksum && ser.sim_ms == par.sim_ms;
        assert!(
            identical,
            "{}: parallel executor changed simulated results (serial {} ms / {}, \
             parallel {} ms / {})",
            variant.label(),
            ser.sim_ms,
            ser.checksum,
            par.sim_ms,
            par.checksum
        );
        let windows = par.metrics.get("exec.par.windows");
        let visible = par.metrics.get("exec.par.visible_ops");
        let stalls = par.metrics.get("exec.par.horizon_stalls");
        let demoted = par.metrics.get("exec.par.demoted_ops");
        let conflicts = par.metrics.get("exec.par.conflicts");
        let epochs = par.metrics.get("exec.par.epochs");
        // Host-thread utilisation: every simulated-core thread logs its
        // parked host time (condvar waits in the locked election path plus
        // gate waits); anything not parked was running simulated work. The
        // park counters come from the run whose wall time `par_last_s`
        // measured, so the two are consistent.
        let park_ns = par.metrics.get("exec.par.park_ns") as f64;
        let wall_ns = par_last_s * 1e9;
        let utilization = (1.0 - park_ns / (n as f64 * wall_ns)).clamp(0.0, 1.0);
        let histogram: String = EPOCH_BUCKETS
            .iter()
            .map(|(metric, key)| format!("\"{key}\": {}", par.metrics.get(metric)))
            .collect::<Vec<_>>()
            .join(", ");
        total_ser += ser_s;
        total_par += par_s;
        t.row(&[
            variant.label().to_string(),
            format!("{ser_s:8.2}"),
            format!("{par_s:8.2}"),
            format!("{:6.2}x", ser_s / par_s),
            format!("{identical}"),
            format!("{conflicts}"),
            format!("{demoted}"),
            format!("{:5.1}%", 100.0 * utilization),
        ]);
        println!("{}", t.render().lines().last().unwrap());

        let _ = write!(
            rows_json,
            "{}    {{\"variant\": \"{}\", \"serial_s\": {:.3}, \"parallel_s\": {:.3}, \
             \"speedup\": {:.2}, \"sim_ms\": {:.4}, \"sim_identical\": {}, \
             \"par_windows\": {}, \"par_visible_ops\": {}, \"par_horizon_stalls\": {}, \
             \"par_demoted_ops\": {}, \"par_conflicts\": {}, \"par_epochs\": {}, \
             \"par_park_ns\": {}, \"host_utilization\": {:.4}, \
             \"epoch_len_histogram\": {{{}}}}}",
            if rows_json.is_empty() { "" } else { ",\n" },
            variant.label(),
            ser_s,
            par_s,
            ser_s / par_s,
            par.sim_ms,
            identical,
            windows,
            visible,
            stalls,
            demoted,
            conflicts,
            epochs,
            park_ns as u64,
            utilization,
            histogram,
        );
    }

    let overall = total_ser / total_par;
    println!("\n{}", t.render());
    println!(
        "overall wall-clock speedup: {overall:.2}x (serial {total_ser:.2}s -> parallel \
         {total_par:.2}s) on {host_cores} host core(s)"
    );

    let json = format!(
        "{{\n  \"bench\": \"parallel\",\n  \"grid\": {{\"width\": {}, \
         \"height\": {}, \"iters\": {}}},\n  \"cores\": {},\n  \"reps\": {},\n  \
         \"host_cores\": {},\n  \"host_threads\": {},\n  \"results\": [\n{}\n  ],\n  \
         \"total_serial_s\": {:.3},\n  \
         \"total_parallel_s\": {:.3},\n  \"overall_speedup\": {:.2}\n}}\n",
        p.width,
        p.height,
        p.iters,
        n,
        reps,
        host_cores,
        host_threads,
        rows_json,
        total_ser,
        total_par,
        overall
    );
    std::fs::write(out, &json).expect("write BENCH_parallel.json");
    println!("wrote {out}");
}
