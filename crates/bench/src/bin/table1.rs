//! Table 1: average overhead by using the SVM system (§7.2.1).
//!
//! Cores 0 and 30; a 4 MiB collective allocation; first touch by core 0;
//! first access by core 30; re-access by core 0. Strong vs lazy release.
//!
//! Usage: `cargo run -p scc-bench --release --bin table1`

use metalsvm::{Consistency, ScratchLocation};
use scc_bench::{fmt_us, svm_overhead, Table};

fn main() {
    let strong = svm_overhead(Consistency::Strong, ScratchLocation::Mpb);
    let lazy = svm_overhead(Consistency::LazyRelease, ScratchLocation::Mpb);

    println!("Table 1 — average overhead by using the SVM system");
    println!("(simulated us; cores 0 and 30)\n");
    let mut t = Table::new(&["", "Strong", "Lazy Release"]);
    t.row(&[
        "allocation of 4 MByte (us)".into(),
        fmt_us(strong.alloc_4mib_us),
        fmt_us(lazy.alloc_4mib_us),
    ]);
    t.row(&[
        "physical allocation of a page frame (us)".into(),
        fmt_us(strong.physical_alloc_us),
        fmt_us(lazy.physical_alloc_us),
    ]);
    t.row(&[
        "mapping of a page frame (us)".into(),
        fmt_us(strong.map_us),
        fmt_us(lazy.map_us),
    ]);
    t.row(&[
        "retrieve the access permission (us)".into(),
        strong.retrieve_us.map(fmt_us).unwrap_or_default(),
        lazy.retrieve_us.map(fmt_us).unwrap_or_default(),
    ]);
    println!("{}", t.render());
    println!(
        "paper values: 741.0 / 741.0, 112.301 / 112.296, 10.198 / 2.418,\n\
         8.990 / (none). Shape to reproduce: equal allocation costs, the\n\
         physical allocation dominating, lazy mapping several times cheaper\n\
         than strong mapping, retrieval slightly below strong mapping."
    );
}
