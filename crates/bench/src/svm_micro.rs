//! The Table 1 microbenchmark: average SVM overheads, measured between
//! cores 0 and 30 exactly as described in §7.2.1.

use metalsvm::{install as svm_install, Consistency, SvmConfig};
use scc_hw::{CoreId, SccConfig};
use scc_kernel::Cluster;
use scc_mailbox::{install as mbx_install, Notify};

/// Average overheads in simulated microseconds.
#[derive(Copy, Clone, Debug, Default)]
pub struct SvmOverhead {
    /// Collective allocation of the whole 4 MiB region.
    pub alloc_4mib_us: f64,
    /// Physical allocation of a page frame (first touch by core 0).
    pub physical_alloc_us: f64,
    /// Mapping of an already allocated page frame (first access by
    /// core 30).
    pub map_us: f64,
    /// Retrieving the access permission of an already mapped frame
    /// (re-access by core 0; strong model only — the lazy model has no
    /// such step).
    pub retrieve_us: Option<f64>,
}

/// Run the §7.2.1 benchmark for one consistency model.
pub fn svm_overhead(model: Consistency, scratch: metalsvm::ScratchLocation) -> SvmOverhead {
    svm_overhead_host(model, scratch, scc_hw::HostFastPaths::default())
}

/// Like [`svm_overhead`], with the host fast paths configured explicitly.
/// All reported simulated overheads must be identical for every setting
/// (checked by the fast-path shadow tests).
pub fn svm_overhead_host(
    model: Consistency,
    scratch: metalsvm::ScratchLocation,
    host_fast: scc_hw::HostFastPaths,
) -> SvmOverhead {
    // Enough shared memory for the 4 MiB region plus the system header.
    let cfg = SccConfig {
        private_bytes_per_core: 256 * 1024,
        shared_bytes: 16 * 1024 * 1024,
        host_fast,
        ..SccConfig::default()
    };
    let mhz = cfg.timing.core_mhz as f64;
    let cl = Cluster::new(cfg).expect("machine");
    let cores = [CoreId::new(0), CoreId::new(30)];
    let bytes: u32 = 4 * 1024 * 1024;
    let pages = bytes / 4096;

    let res = cl
        .run_on(&cores, move |k| {
            let mbx = mbx_install(k, Notify::Ipi);
            let svm_cfg = SvmConfig::builder().scratch(scratch).build().expect("svm config");
            let mut svm = svm_install(k, &mbx, svm_cfg);
            let mut out = SvmOverhead::default();

            // Step 1: collective reservation of 4 MiB.
            let t0 = k.hw.now();
            let region = svm.alloc(k, bytes, model);
            out.alloc_4mib_us = (k.hw.now() - t0) as f64 / mhz;

            // Step 2: core 0 initialises the first four bytes of every
            // page, thereby physically allocating the frames.
            if k.rank() == 0 {
                let t0 = k.hw.now();
                for p in 0..pages {
                    k.vwrite(region.va + p * 4096, 4, u64::from(p) + 1);
                }
                k.hw.flush_wcb();
                out.physical_alloc_us = (k.hw.now() - t0) as f64 / mhz / f64::from(pages);
            }
            svm.barrier(k);

            // Step 3: core 30 writes the first four bytes of every page —
            // pages are allocated, so this measures mapping (plus, under
            // the strong model, the ownership retrieval).
            if k.rank() == 1 {
                let t0 = k.hw.now();
                for p in 0..pages {
                    k.vwrite(region.va + p * 4096, 4, u64::from(p) + 100);
                }
                k.hw.flush_wcb();
                out.map_us = (k.hw.now() - t0) as f64 / mhz / f64::from(pages);
            }
            svm.barrier(k);

            // Step 4: core 0 resets the first four bytes of every page.
            // Allocated and previously mapped everywhere: under the strong
            // model this isolates the access-permission retrieval.
            if k.rank() == 0 && model == Consistency::Strong {
                let t0 = k.hw.now();
                for p in 0..pages {
                    k.vwrite(region.va + p * 4096, 4, 0);
                }
                k.hw.flush_wcb();
                out.retrieve_us = Some((k.hw.now() - t0) as f64 / mhz / f64::from(pages));
            }
            svm.barrier(k);
            out
        })
        .expect("table 1 benchmark must not deadlock");

    // Merge the per-core observations.
    let mut out = SvmOverhead {
        alloc_4mib_us: res[0].result.alloc_4mib_us,
        physical_alloc_us: res[0].result.physical_alloc_us,
        map_us: res[1].result.map_us,
        retrieve_us: res[0].result.retrieve_us,
    };
    // The allocation is collective; report core 0's view.
    if out.alloc_4mib_us == 0.0 {
        out.alloc_4mib_us = res[1].result.alloc_4mib_us;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use metalsvm::ScratchLocation;

    #[test]
    fn strong_overheads_have_paper_shape() {
        let o = svm_overhead(Consistency::Strong, ScratchLocation::Mpb);
        let l = svm_overhead(Consistency::LazyRelease, ScratchLocation::Mpb);
        // Qualitative relations from Table 1:
        // - allocation cost is equal under both models,
        assert!((o.alloc_4mib_us - l.alloc_4mib_us).abs() < 1.0);
        // - physical allocation dominates everything else,
        assert!(o.physical_alloc_us > o.map_us);
        // - mapping is clearly cheaper under lazy release,
        assert!(l.map_us < o.map_us / 2.0);
        // - retrieval exists only under the strong model and is cheaper
        //   than a full mapping there.
        assert!(l.retrieve_us.is_none());
        let r = o.retrieve_us.unwrap();
        assert!(r > 0.0 && r < o.map_us);
    }

    #[test]
    fn offdie_scratch_slows_mapping() {
        let mpb = svm_overhead(Consistency::LazyRelease, ScratchLocation::Mpb);
        let off = svm_overhead(Consistency::LazyRelease, ScratchLocation::OffDie);
        assert!(
            off.map_us > mpb.map_us,
            "off-die scratch pad must cost extra memory accesses: \
             {} vs {}",
            off.map_us,
            mpb.map_us
        );
    }
}
