//! Criterion bench: host cost of element-wise SVM accessors (`get`/`set`)
//! versus the bulk accessors (`read_row`/`write_row`/`fill`) that
//! translate once per page instead of once per element.
//!
//! Simulated time is identical between the two shapes (asserted by the
//! `fastpath_shadow` integration tests); what is measured here is pure
//! host wall-clock per sweep over the same array.

use criterion::{criterion_group, criterion_main, Criterion};
use metalsvm::{install, Consistency, SvmArray, SvmConfig};
use scc_hw::{HostFastPaths, SccConfig};
use scc_kernel::Cluster;
use scc_mailbox::{install as mbx_install, Notify};

/// Elements per sweep: 16 pages of f64 keeps one iteration in the
/// tens-of-milliseconds range on a loaded host.
const N: usize = 16 * 512;

/// One single-core cluster run sweeping the array `rounds` times with
/// `body`; the closure decides element-wise vs bulk.
fn sweep(
    host_fast: HostFastPaths,
    rounds: usize,
    body: impl Fn(&mut scc_kernel::Kernel<'_>, &SvmArray<f64>) + Send + Sync,
) {
    let cfg = SccConfig {
        host_fast,
        ..SccConfig::small()
    };
    let cl = Cluster::new(cfg).unwrap();
    cl.run(1, |k| {
        let mbx = mbx_install(k, Notify::Ipi);
        let mut svm = install(k, &mbx, SvmConfig::default());
        let r = svm.alloc(k, (N * 8) as u32, Consistency::Strong);
        let a = SvmArray::<f64>::new(r, N);
        a.fill(k, 0, N, 1.0); // first-touch every page up front
        for _ in 0..rounds {
            body(k, &a);
        }
    })
    .unwrap();
}

fn bench_svm_bulk(c: &mut Criterion) {
    let mut g = c.benchmark_group("svm_bulk");
    g.sample_size(10);
    let rounds = 8;

    g.bench_function("elementwise_get_set", |b| {
        b.iter(|| {
            sweep(HostFastPaths::default(), rounds, |k, a| {
                let mut acc = 0.0;
                for i in 0..N {
                    acc += a.get(k, i);
                }
                a.set(k, 0, acc);
            });
        });
    });
    g.bench_function("bulk_read_row_write_row", |b| {
        b.iter(|| {
            sweep(HostFastPaths::default(), rounds, |k, a| {
                let mut row = vec![0.0f64; N];
                a.read_row(k, 0, &mut row);
                let acc: f64 = row.iter().sum();
                a.write_row(k, 0, &row[..1]);
                a.set(k, 0, acc);
            });
        });
    });
    g.bench_function("elementwise_walk_path", |b| {
        b.iter(|| {
            sweep(HostFastPaths::walk_path(), rounds, |k, a| {
                let mut acc = 0.0;
                for i in 0..N {
                    acc += a.get(k, i);
                }
                a.set(k, 0, acc);
            });
        });
    });
    g.bench_function("bulk_fill", |b| {
        b.iter(|| {
            sweep(HostFastPaths::default(), rounds, |k, a| {
                a.fill(k, 0, N, 2.0);
            });
        });
    });
    g.finish();
}

criterion_group!(benches, bench_svm_bulk);
criterion_main!(benches);
