//! Criterion bench: one small Laplace cell per variant (simulator
//! throughput; the paper's Figure 9 comes from the `fig9` binary).

use criterion::{criterion_group, criterion_main, Criterion};
use scc_apps::laplace::LaplaceParams;
use scc_bench::{laplace_run, LaplaceVariant};

fn bench_laplace(c: &mut Criterion) {
    let p = LaplaceParams {
        width: 128,
        height: 64,
        iters: 4,
    };
    let mut g = c.benchmark_group("laplace_128x64x4_4cores");
    g.sample_size(10);
    for v in [
        LaplaceVariant::Ircce,
        LaplaceVariant::SvmStrong,
        LaplaceVariant::SvmLazy,
    ] {
        g.bench_function(v.label(), |b| b.iter(|| laplace_run(v, 4, p)));
    }
    g.finish();
}

criterion_group!(benches, bench_laplace);
criterion_main!(benches);
