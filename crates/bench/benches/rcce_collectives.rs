//! Criterion bench: RCCE collective operations on the simulator.

use criterion::{criterion_group, criterion_main, Criterion};
use rcce::{allreduce_f64, RcceComm, ReduceOp};
use scc_hw::SccConfig;
use scc_kernel::Cluster;

fn bench_collectives(c: &mut Criterion) {
    let mut g = c.benchmark_group("rcce");
    g.sample_size(10);
    g.bench_function("barrier_8cores_x16", |b| {
        b.iter(|| {
            let cl = Cluster::new(SccConfig::small()).unwrap();
            cl.run(8, |k| {
                let mut comm = RcceComm::init(k);
                for _ in 0..16 {
                    comm.barrier(k);
                }
            })
            .unwrap();
        });
    });
    g.bench_function("allreduce_8cores_64doubles", |b| {
        b.iter(|| {
            let cl = Cluster::new(SccConfig::small()).unwrap();
            cl.run(8, |k| {
                let mut comm = RcceComm::init(k);
                let va = k.kalloc_pages(1);
                for i in 0..64u32 {
                    k.vwrite_f64(va + i * 8, (k.rank() + 1) as f64);
                }
                allreduce_f64(k, &mut comm, va, 64, ReduceOp::Sum);
            })
            .unwrap();
        });
    });
    g.finish();
}

criterion_group!(benches, bench_collectives);
criterion_main!(benches);
