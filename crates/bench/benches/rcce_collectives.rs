//! Criterion bench: RCCE collective operations on the simulator.
//!
//! The `*_flat` / `*_tree` pairs compare the linear root loops against
//! the topology-aware collective tree (DESIGN.md §12) at the paper's 48
//! cores and on the 128-core `mesh8x8` preset — host wall-clock here;
//! `bench_scale` reports the simulated-cycle curves.

use criterion::{criterion_group, criterion_main, Criterion};
use rcce::{allreduce_f64, bcast, reduce_f64, RcceComm, ReduceOp};
use scc_hw::{CollMode, SccConfig, Topology};
use scc_kernel::Cluster;

fn cfg(topo: Topology, coll: CollMode) -> SccConfig {
    SccConfig {
        coll,
        shared_bytes: 32 * 1024 * 1024,
        ..SccConfig::small_with(topo)
    }
}

fn bench_collectives(c: &mut Criterion) {
    let mut g = c.benchmark_group("rcce");
    g.sample_size(10);
    g.bench_function("barrier_8cores_x16", |b| {
        b.iter(|| {
            let cl = Cluster::new(SccConfig::small()).unwrap();
            cl.run(8, |k| {
                let mut comm = RcceComm::init(k);
                for _ in 0..16 {
                    comm.barrier(k);
                }
            })
            .unwrap();
        });
    });
    g.bench_function("allreduce_8cores_64doubles", |b| {
        b.iter(|| {
            let cl = Cluster::new(SccConfig::small()).unwrap();
            cl.run(8, |k| {
                let mut comm = RcceComm::init(k);
                let va = k.kalloc_pages(1);
                for i in 0..64u32 {
                    k.vwrite_f64(va + i * 8, (k.rank() + 1) as f64);
                }
                allreduce_f64(k, &mut comm, va, 64, ReduceOp::Sum);
            })
            .unwrap();
        });
    });

    // Flat vs tree shapes: 48 cores (full scc48 die) and 128 cores
    // (full mesh8x8 preset), 64-double bcast and reduce.
    for (label, topo, n) in [
        ("48cores", Topology::scc48(), 48usize),
        ("128cores", Topology::mesh8x8(), 128usize),
    ] {
        for (mode_label, mode) in [("flat", CollMode::Flat), ("tree", CollMode::Tree)] {
            g.bench_function(&format!("bcast_{label}_64doubles_{mode_label}"), |b| {
                b.iter(|| {
                    let cl = Cluster::new(cfg(topo, mode)).unwrap();
                    cl.run(n, |k| {
                        let mut comm = RcceComm::init(k);
                        let va = k.kalloc_pages(1);
                        if comm.ue() == 0 {
                            for i in 0..64u32 {
                                k.vwrite_f64(va + i * 8, i as f64);
                            }
                        }
                        bcast(k, &mut comm, 0, va, 64 * 8);
                    })
                    .unwrap();
                });
            });
            g.bench_function(&format!("reduce_{label}_64doubles_{mode_label}"), |b| {
                b.iter(|| {
                    let cl = Cluster::new(cfg(topo, mode)).unwrap();
                    cl.run(n, |k| {
                        let mut comm = RcceComm::init(k);
                        let va = k.kalloc_pages(1);
                        for i in 0..64u32 {
                            k.vwrite_f64(va + i * 8, (k.rank() + 1) as f64 + i as f64);
                        }
                        reduce_f64(k, &mut comm, 0, va, 64, ReduceOp::Sum);
                    })
                    .unwrap();
                });
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_collectives);
criterion_main!(benches);
