//! Criterion bench: host-side throughput of the simulated mailbox
//! ping-pong (guards the simulator itself against regressions; the paper
//! numbers come from the `fig6`/`fig7` binaries).

use criterion::{criterion_group, criterion_main, Criterion};
use scc_bench::{pingpong_latency_us, PingPongSetup};
use scc_hw::CoreId;
use scc_mailbox::Notify;

fn bench_mailbox(c: &mut Criterion) {
    let mut g = c.benchmark_group("mailbox");
    g.sample_size(10);
    g.bench_function("pingpong_ipi_5hops_20rounds", |b| {
        let s = PingPongSetup::pair(CoreId::new(0), CoreId::new(30), Notify::Ipi, 20);
        b.iter(|| pingpong_latency_us(&s));
    });
    g.bench_function("pingpong_poll_5hops_20rounds", |b| {
        let s = PingPongSetup::pair(CoreId::new(0), CoreId::new(30), Notify::Poll, 20);
        b.iter(|| pingpong_latency_us(&s));
    });
    g.finish();
}

criterion_group!(benches, bench_mailbox);
criterion_main!(benches);
