//! Criterion bench: the SVM fault paths (first touch, mapping, ownership
//! retrieval) exercised through the Table 1 microbenchmark.

use criterion::{criterion_group, criterion_main, Criterion};
use metalsvm::{Consistency, ScratchLocation};
use scc_bench::svm_overhead;

fn bench_svm_fault(c: &mut Criterion) {
    let mut g = c.benchmark_group("svm_fault");
    g.sample_size(10);
    g.bench_function("table1_strong", |b| {
        b.iter(|| svm_overhead(Consistency::Strong, ScratchLocation::Mpb));
    });
    g.bench_function("table1_lazy", |b| {
        b.iter(|| svm_overhead(Consistency::LazyRelease, ScratchLocation::Mpb));
    });
    g.finish();
}

criterion_group!(benches, bench_svm_fault);
criterion_main!(benches);
