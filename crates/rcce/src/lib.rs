//! # rcce — a reimplementation of Intel's RCCE / iRCCE libraries
//!
//! RCCE is the communication library Intel shipped with the SCC: one-sided
//! `RCCE_put`/`RCCE_get` on the message-passing buffers, blocking two-sided
//! `RCCE_send`/`RCCE_recv` pipelined through per-core MPB chunks, and a set
//! of collectives. iRCCE (by the paper's authors) adds non-blocking
//! `isend`/`irecv` with explicit progress — the paper's Laplace baseline
//! uses exactly that for its halo exchange.
//!
//! ## MPB layout per unit of execution (UE)
//!
//! The mailbox system owns the bottom of each MPB (one 32-byte slot per
//! core of the topology — 1.5 KiB on the 48-core SCC, nothing when the
//! mail slots moved off-die on big meshes); RCCE manages the rest. The
//! concrete offsets are a runtime [`MpbLayout`] derived from the machine's
//! topology; on the `scc48` preset it reproduces the historical layout:
//!
//! ```text
//! 0    .. 1536 : mailbox system (crate scc-mailbox)
//! 1536 .. 1600 : send flags: (seq, dst, stamp) of the chunk in the buffer
//! 1600 .. 1664 : ready flags: (seq, stamp) acknowledgement by the receiver
//! 1664 .. 1920 : 8 dissemination-barrier flag lines (one per round)
//! 1920 .. 2432 : user region served by `RcceComm::mpb_alloc` (RCCE_malloc)
//! 2432 .. 6656 : the pipeline chunk buffer (4224 B) for send/recv
//! 6656 .. 7168 : collective-tree flag lines (crate `scc-hw`, DESIGN.md §12)
//! 7168 .. 8192 : SVM first-touch scratch pad (crate `metalsvm`)
//! ```
//!
//! All flag lines carry a cycle stamp next to the value so that virtual
//! time stays causal across cores (see `scc-hw`'s executor docs).

pub mod coll;
pub mod comm;
pub mod ircce;
pub mod putget;
pub mod sendrecv;

pub use coll::{allreduce_f64, barrier, bcast, reduce_f64, ReduceOp};
pub use comm::RcceComm;
pub use ircce::{irecv, isend, wait_all, IrecvReq, IsendReq};
pub use putget::{get, put};
pub use sendrecv::{recv, send};

/// The RCCE region of each core's MPB, laid out at communicator init from
/// the machine's topology. All offsets are relative to an MPB base.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct MpbLayout {
    /// First byte after the mailbox area.
    pub rcce_off: u32,
    /// Per-UE send flag line: (seq, dst, stamp) of the chunk in the buffer.
    pub sent_flag_off: u32,
    /// Per-UE ready flag line: (seq, stamp) acknowledgement by the receiver.
    pub ready_flag_off: u32,
    /// First dissemination-barrier flag line (one 32-byte line per round).
    pub barrier_off: u32,
    /// Barrier flag lines reserved: enough for ⌈log₂ cores⌉ rounds, at
    /// least the 8 the SCC layout always carried.
    pub barrier_rounds: u32,
    /// User region served by `RcceComm::mpb_alloc` (RCCE_malloc).
    pub user_off: u32,
    /// Bytes of the user region.
    pub user_bytes: u32,
    /// Pipeline chunk buffer for send/recv.
    pub chunk_off: u32,
    /// First byte past the chunk buffer: above it sit the collective-tree
    /// flag lines (`scc_hw::config::MPB_COLL_OFF`, used by the kernel's
    /// MPB-tree barrier) and then the top 1 KiB reserved for the SVM
    /// first-touch scratch pad (crate `metalsvm`), which coexists with
    /// RCCE exactly as in MetalSVM.
    pub chunk_end: u32,
}

impl MpbLayout {
    /// Compute the layout for a machine whose **topology** has `cores`
    /// cores (the full machine size, not the participant count — the
    /// mailbox area below is sized the same way).
    pub fn for_cores(cores: usize) -> MpbLayout {
        let rcce_off = scc_mailbox::mpb_region_bytes(cores) as u32;
        let rounds_needed = if cores <= 1 {
            1
        } else {
            usize::BITS - (cores - 1).leading_zeros()
        };
        let barrier_rounds = rounds_needed.max(8);
        let sent_flag_off = rcce_off;
        let ready_flag_off = rcce_off + 64;
        let barrier_off = rcce_off + 128;
        let user_off = barrier_off + barrier_rounds * 32;
        let user_bytes = 512;
        let chunk_off = user_off + user_bytes;
        let chunk_end = scc_hw::config::MPB_COLL_OFF as u32;
        assert!(
            chunk_off + 1024 <= chunk_end,
            "MPB layout for {cores} cores leaves no useful chunk buffer \
             ({chunk_off}..{chunk_end})"
        );
        MpbLayout {
            rcce_off,
            sent_flag_off,
            ready_flag_off,
            barrier_off,
            barrier_rounds,
            user_off,
            user_bytes,
            chunk_off,
            chunk_end,
        }
    }

    /// Bytes per pipeline chunk.
    #[inline]
    pub fn chunk_bytes(&self) -> u32 {
        self.chunk_end - self.chunk_off
    }
}

#[cfg(test)]
mod tests {
    use super::MpbLayout;

    #[test]
    fn scc48_layout_is_the_historical_one() {
        let l = MpbLayout::for_cores(48);
        assert_eq!(l.rcce_off, 1536);
        assert_eq!(l.sent_flag_off, 1536);
        assert_eq!(l.ready_flag_off, 1600);
        assert_eq!(l.barrier_off, 1664);
        assert_eq!(l.barrier_rounds, 8);
        assert_eq!(l.user_off, 1920);
        assert_eq!(l.chunk_off, 2432);
        assert_eq!(l.chunk_end, 6656);
        assert_eq!(l.chunk_bytes(), 4224);
    }

    #[test]
    fn big_meshes_fit() {
        // 128 cores: mail still in the MPB (4 KiB), smaller chunk buffer.
        let l = MpbLayout::for_cores(128);
        assert_eq!(l.rcce_off, 4096);
        assert!(l.chunk_bytes() >= 1024);
        // 512 cores: mail went off-die, RCCE owns the MPB from byte 0 and
        // the barrier needs 9 rounds.
        let l = MpbLayout::for_cores(512);
        assert_eq!(l.rcce_off, 0);
        assert_eq!(l.barrier_rounds, 9);
        assert!(l.chunk_bytes() > 4224);
    }
}
