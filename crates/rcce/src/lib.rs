//! # rcce — a reimplementation of Intel's RCCE / iRCCE libraries
//!
//! RCCE is the communication library Intel shipped with the SCC: one-sided
//! `RCCE_put`/`RCCE_get` on the message-passing buffers, blocking two-sided
//! `RCCE_send`/`RCCE_recv` pipelined through per-core MPB chunks, and a set
//! of collectives. iRCCE (by the paper's authors) adds non-blocking
//! `isend`/`irecv` with explicit progress — the paper's Laplace baseline
//! uses exactly that for its halo exchange.
//!
//! ## MPB layout per unit of execution (UE)
//!
//! The mailbox system owns the first 1.5 KiB of each MPB (48 slots × 32 B);
//! RCCE manages the rest:
//!
//! ```text
//! 0    .. 1536 : mailbox system (crate scc-mailbox)
//! 1536 .. 1600 : send flags: (seq, dst, stamp) of the chunk in the buffer
//! 1600 .. 1664 : ready flags: (seq, stamp) acknowledgement by the receiver
//! 1664 .. 1920 : 8 dissemination-barrier flag lines (one per round)
//! 1920 .. 2432 : user region served by `RcceComm::mpb_alloc` (RCCE_malloc)
//! 2432 .. 8192 : the pipeline chunk buffer (5760 B) for send/recv
//! ```
//!
//! All flag lines carry a cycle stamp next to the value so that virtual
//! time stays causal across cores (see `scc-hw`'s executor docs).

pub mod coll;
pub mod comm;
pub mod ircce;
pub mod putget;
pub mod sendrecv;

pub use coll::{allreduce_f64, barrier, bcast, reduce_f64, ReduceOp};
pub use comm::RcceComm;
pub use ircce::{irecv, isend, wait_all, IrecvReq, IsendReq};
pub use putget::{get, put};
pub use sendrecv::{recv, send};

/// Offset of the RCCE region inside each MPB (after the mailbox area).
pub const RCCE_OFF: u32 = scc_mailbox::MAILBOX_REGION_BYTES as u32;
/// Offset of the per-UE send flag line.
pub const SENT_FLAG_OFF: u32 = RCCE_OFF;
/// Offset of the per-UE ready flag line.
pub const READY_FLAG_OFF: u32 = RCCE_OFF + 64;
/// Offset of the barrier flag lines (8 rounds).
pub const BARRIER_OFF: u32 = RCCE_OFF + 128;
/// Offset of the user (RCCE_malloc) region.
pub const USER_OFF: u32 = BARRIER_OFF + 8 * 32;
/// Bytes of the user region.
pub const USER_BYTES: u32 = 512;
/// Offset of the pipeline chunk buffer.
pub const CHUNK_OFF: u32 = USER_OFF + USER_BYTES;
/// First byte past the chunk buffer: the top 1 KiB of each MPB is reserved
/// for the SVM first-touch scratch pad (crate `metalsvm`), which coexists
/// with RCCE exactly as in MetalSVM.
pub const CHUNK_END: u32 = scc_hw::config::MPB_BYTES as u32 - 1024;
/// Bytes per pipeline chunk.
pub const CHUNK_BYTES: u32 = CHUNK_END - CHUNK_OFF;
