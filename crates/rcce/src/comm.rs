//! The RCCE communicator: UE numbering, MPB flags, the `RCCE_malloc`
//! region, and the flag-based dissemination barrier.

use crate::MpbLayout;
use scc_hw::mpb::MpbArray;
use scc_hw::{CoreId, MemAttr};
use scc_kernel::Kernel;
use std::sync::Arc;

/// Flag line layout: `value: u32, aux: u32, stamp: u64` (one 32-byte line).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct FlagView {
    pub value: u32,
    pub aux: u32,
    pub stamp: u64,
}

/// An RCCE communicator over the cores of the current cluster run.
///
/// RCCE calls the participants *units of execution* (UEs); UE `i` is the
/// i-th core of the participant list. The communicator carries the local
/// pipeline/barrier state, so it is `!Clone` and per-core.
pub struct RcceComm {
    ues: Vec<CoreId>,
    me: usize,
    /// The MPB layout of this machine (a function of its topology).
    layout: MpbLayout,
    /// Monotonic sequence number of this UE's chunk pipeline.
    pub(crate) send_seq: u32,
    /// Last chunk sequence acknowledged per source UE.
    pub(crate) recv_acked: Vec<u32>,
    barrier_epoch: u32,
    user_next: u32,
    /// Cached collective trees, one per root UE. A [`scc_hw::CollTree`] is
    /// a pure function of the topology and the participant list, so every
    /// UE's lazily built cache agrees without communication.
    coll_trees: std::collections::HashMap<usize, Arc<scc_hw::CollTree>>,
}

impl RcceComm {
    /// Collectively create the communicator: clears this UE's flag lines,
    /// then synchronises through a RAM barrier so nobody races old flags.
    pub fn init(k: &mut Kernel<'_>) -> RcceComm {
        let ues = k.participants().to_vec();
        let me_core = k.id();
        let me = k.rank();
        let mach = Arc::clone(k.hw.machine());
        let layout = MpbLayout::for_cores(mach.cfg.topo.num_cores());
        // Raw-clear this UE's own flag lines (boot-time, untimed).
        for off in [layout.sent_flag_off, layout.ready_flag_off] {
            let pa = MpbArray::pa(me_core, off as usize);
            for w in 0..8 {
                mach.mpb.write(pa + w * 4, 4, 0);
            }
        }
        for r in 0..layout.barrier_rounds {
            let pa = MpbArray::pa(me_core, (layout.barrier_off + r * 32) as usize);
            for w in 0..8 {
                mach.mpb.write(pa + w * 4, 4, 0);
            }
        }
        scc_kernel::ram_barrier(k, "rcce.init");
        RcceComm {
            recv_acked: vec![0; ues.len()],
            ues,
            me,
            layout,
            send_seq: 0,
            barrier_epoch: 0,
            user_next: layout.user_off,
            coll_trees: std::collections::HashMap::new(),
        }
    }

    /// The topology-aware collective tree rooted at UE `root` (DESIGN.md
    /// §12), built on first use and cached. Tree ranks are UE numbers.
    pub(crate) fn coll_tree(&mut self, k: &Kernel<'_>, root: usize) -> Arc<scc_hw::CollTree> {
        if let Some(t) = self.coll_trees.get(&root) {
            return Arc::clone(t);
        }
        let topo = k.hw.machine().cfg.topo;
        let t = Arc::new(scc_hw::CollTree::build(&topo, &self.ues, root));
        self.coll_trees.insert(root, Arc::clone(&t));
        t
    }

    /// The machine's MPB layout.
    #[inline]
    pub fn layout(&self) -> &MpbLayout {
        &self.layout
    }

    /// Number of UEs.
    #[inline]
    pub fn num_ues(&self) -> usize {
        self.ues.len()
    }

    /// My UE id (rank).
    #[inline]
    pub fn ue(&self) -> usize {
        self.me
    }

    /// The core hosting UE `rank`.
    #[inline]
    pub fn core_of(&self, rank: usize) -> CoreId {
        self.ues[rank]
    }

    /// Symmetric MPB allocation (RCCE_malloc): returns an offset valid in
    /// *every* UE's MPB. All UEs must allocate in the same order.
    pub fn mpb_alloc(&mut self, bytes: u32) -> u32 {
        let aligned = (bytes + 31) & !31;
        let off = self.user_next;
        assert!(
            off + aligned <= self.layout.user_off + self.layout.user_bytes,
            "RCCE user MPB region exhausted"
        );
        self.user_next += aligned;
        off
    }

    // ------------------------------------------------------------------
    // Flag plumbing
    // ------------------------------------------------------------------

    /// Timed write of a whole flag line in `owner`'s MPB.
    ///
    /// The line is pushed out in one WCB flush; the stamp rides in the same
    /// line. (Under the deterministic executor a half-written line is never
    /// observed; a free-running executor would need a two-phase publish.)
    pub(crate) fn write_flag(
        k: &mut Kernel<'_>,
        owner: CoreId,
        off: u32,
        value: u32,
        aux: u32,
    ) {
        let pa = MpbArray::pa(owner, off as usize);
        let now = k.hw.now();
        k.hw.write(pa + 8, 8, now, MemAttr::MPB);
        k.hw.write(pa + 4, 4, aux as u64, MemAttr::MPB);
        k.hw.write(pa, 4, value as u64, MemAttr::MPB);
        k.hw.flush_wcb();
    }

    /// Raw (untimed) peek of a flag line.
    pub(crate) fn peek_flag(mach: &scc_hw::machine::MachineInner, owner: CoreId, off: u32) -> FlagView {
        let pa = MpbArray::pa(owner, off as usize);
        FlagView {
            value: mach.mpb.read(pa, 4) as u32,
            aux: mach.mpb.read(pa + 4, 4) as u32,
            stamp: mach.mpb.read(pa + 8, 8),
        }
    }

    /// Block until `pred(flag)` holds on `owner`'s flag line at `off`, then
    /// perform the timed (cache-coherent) read and return the view.
    pub(crate) fn wait_flag(
        k: &mut Kernel<'_>,
        owner: CoreId,
        off: u32,
        reason: &'static str,
        pred: impl Fn(&FlagView) -> bool + Send,
    ) -> FlagView {
        let mach = Arc::clone(k.hw.machine());
        let hops = k.hw.topo().hops(k.id(), owner);
        let cost = k.hw.machine().cfg.timing.mpb_cost(hops);
        k.wait_event(reason, move || {
            let f = Self::peek_flag(&mach, owner, off);
            pred(&f).then_some((f, f.stamp + cost))
        });
        // Re-read through the cache path, fresh after CL1INVMB.
        k.hw.cl1invmb();
        let pa = MpbArray::pa(owner, off as usize);
        let value = k.hw.read(pa, 4, MemAttr::MPB) as u32;
        let aux = k.hw.read(pa + 4, 4, MemAttr::MPB) as u32;
        let stamp = k.hw.read(pa + 8, 8, MemAttr::MPB);
        FlagView { value, aux, stamp }
    }

    // ------------------------------------------------------------------
    // Barrier
    // ------------------------------------------------------------------

    /// The RCCE dissemination barrier: ⌈log₂ n⌉ rounds of MPB flag
    /// exchanges; round `r` signals the UE `2^r` ranks ahead and waits for
    /// the one `2^r` ranks behind. Epoch counters make the flag lines
    /// reusable without resets.
    pub fn barrier(&mut self, k: &mut Kernel<'_>) {
        let n = self.ues.len();
        if n == 1 {
            return;
        }
        self.barrier_epoch += 1;
        let epoch = self.barrier_epoch;
        let barrier_off = self.layout.barrier_off;
        let mut dist = 1usize;
        let mut round = 0u32;
        while dist < n {
            debug_assert!(round < self.layout.barrier_rounds);
            let to = self.ues[(self.me + dist) % n];
            let from = self.ues[(self.me + n - dist) % n];
            Self::write_flag(k, to, barrier_off + round * 32, epoch, self.me as u32);
            let mine = k.id();
            Self::wait_flag(k, mine, barrier_off + round * 32, "barrier round", |f| {
                f.value >= epoch
            });
            let _ = from;
            dist *= 2;
            round += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scc_hw::SccConfig;
    use scc_kernel::Cluster;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn init_is_collective_and_ranks_match() {
        let cl = Cluster::new(SccConfig::small()).unwrap();
        cl.run(3, |k| {
            let comm = RcceComm::init(k);
            assert_eq!(comm.num_ues(), 3);
            assert_eq!(comm.ue(), k.rank());
            assert_eq!(comm.core_of(comm.ue()), k.id());
        })
        .unwrap();
    }

    #[test]
    fn mpb_alloc_symmetric_and_bounded() {
        let cl = Cluster::new(SccConfig::small()).unwrap();
        let res = cl
            .run(2, |k| {
                let mut comm = RcceComm::init(k);
                let a = comm.mpb_alloc(8);
                let b = comm.mpb_alloc(40);
                (a, b)
            })
            .unwrap();
        assert_eq!(res[0].result, res[1].result, "offsets must be symmetric");
        let (a, b) = res[0].result;
        assert_eq!(a % 32, 0);
        assert_eq!(b, a + 32);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn mpb_alloc_exhaustion() {
        let cl = Cluster::new(SccConfig::small()).unwrap();
        let _ = cl.run(1, |k| {
            let mut comm = RcceComm::init(k);
            for _ in 0..100 {
                comm.mpb_alloc(32);
            }
        });
    }

    #[test]
    fn dissemination_barrier_synchronises() {
        let cl = Cluster::new(SccConfig::small()).unwrap();
        let arrived = AtomicU64::new(0);
        cl.run(5, |k| {
            let mut comm = RcceComm::init(k);
            k.hw.advance(k.rank() as u64 * 77_777);
            arrived.fetch_add(1, Ordering::Relaxed);
            comm.barrier(k);
            assert_eq!(arrived.load(Ordering::Relaxed), 5);
        })
        .unwrap();
    }

    #[test]
    fn barrier_many_epochs() {
        let cl = Cluster::new(SccConfig::small()).unwrap();
        let res = cl
            .run(4, |k| {
                let mut comm = RcceComm::init(k);
                for _ in 0..25 {
                    comm.barrier(k);
                }
                k.hw.now()
            })
            .unwrap();
        // All clocks must stay reasonably aligned after 25 barriers.
        let clocks: Vec<u64> = res.iter().map(|r| r.result).collect();
        let spread = clocks.iter().max().unwrap() - clocks.iter().min().unwrap();
        assert!(spread < 50_000, "clock spread {spread} too large: {clocks:?}");
    }
}
