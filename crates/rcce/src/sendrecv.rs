//! Blocking two-sided communication (`RCCE_send` / `RCCE_recv`).
//!
//! These are thin wrappers over the iRCCE request machinery: RCCE's
//! semantics are blocking and synchronous — `send` returns once the
//! receiver has drained every chunk, `recv` once all bytes arrived.

use crate::comm::RcceComm;
use crate::ircce::{irecv, isend, wait_all};
use scc_kernel::Kernel;

/// Blockingly send `len` bytes at private VA `va` to UE `dst`.
pub fn send(k: &mut Kernel<'_>, comm: &mut RcceComm, dst: usize, va: u32, len: u32) {
    let mut reqs = [isend(comm, dst, va, len)];
    wait_all(k, comm, &mut reqs, &mut []);
}

/// Blockingly receive `len` bytes into private VA `va` from UE `src`.
pub fn recv(k: &mut Kernel<'_>, comm: &mut RcceComm, src: usize, va: u32, len: u32) {
    let mut reqs = [irecv(comm, src, va, len)];
    wait_all(k, comm, &mut [], &mut reqs);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ircce::{irecv, isend, wait_all};
    use scc_hw::SccConfig;
    use scc_kernel::Cluster;

    /// Fill private memory with a recognisable pattern.
    fn fill_pattern(k: &mut Kernel<'_>, va: u32, len: u32, salt: u64) {
        for i in (0..len).step_by(8) {
            k.vwrite(va + i, 8, (i as u64) * 0x9E37_79B9 + salt);
        }
    }

    fn check_pattern(k: &mut Kernel<'_>, va: u32, len: u32, salt: u64) {
        for i in (0..len).step_by(8) {
            assert_eq!(
                k.vread(va + i, 8),
                (i as u64) * 0x9E37_79B9 + salt,
                "mismatch at offset {i}"
            );
        }
    }

    #[test]
    fn small_message_roundtrip() {
        let cl = Cluster::new(SccConfig::small()).unwrap();
        cl.run(2, |k| {
            let mut comm = RcceComm::init(k);
            let va = k.kalloc_pages(1);
            if comm.ue() == 0 {
                fill_pattern(k, va, 256, 7);
                send(k, &mut comm, 1, va, 256);
            } else {
                recv(k, &mut comm, 0, va, 256);
                check_pattern(k, va, 256, 7);
            }
        })
        .unwrap();
    }

    #[test]
    fn multi_chunk_message() {
        // Larger than one chunk buffer -> exercises the pipeline.
        let cl = Cluster::new(SccConfig::small()).unwrap();
        cl.run(2, move |k| {
            let mut comm = RcceComm::init(k);
            let len = comm.layout().chunk_bytes() * 3 + 40;
            let pages = len.div_ceil(4096);
            let va = k.kalloc_pages(pages);
            if comm.ue() == 0 {
                fill_pattern(k, va, len, 99);
                send(k, &mut comm, 1, va, len);
            } else {
                recv(k, &mut comm, 0, va, len);
                check_pattern(k, va, len, 99);
            }
        })
        .unwrap();
    }

    #[test]
    fn unaligned_length() {
        let cl = Cluster::new(SccConfig::small()).unwrap();
        cl.run(2, |k| {
            let mut comm = RcceComm::init(k);
            let va = k.kalloc_pages(1);
            if comm.ue() == 0 {
                for i in 0..13u32 {
                    k.vwrite(va + i, 1, (i + 1) as u64);
                }
                send(k, &mut comm, 1, va, 13);
            } else {
                recv(k, &mut comm, 0, va, 13);
                for i in 0..13u32 {
                    assert_eq!(k.vread(va + i, 1), (i + 1) as u64);
                }
            }
        })
        .unwrap();
    }

    #[test]
    fn three_core_ring() {
        let cl = Cluster::new(SccConfig::small()).unwrap();
        cl.run(3, |k| {
            let mut comm = RcceComm::init(k);
            let n = comm.num_ues();
            let me = comm.ue();
            let va_out = k.kalloc_pages(1);
            let va_in = k.kalloc_pages(1);
            fill_pattern(k, va_out, 512, me as u64);
            // Everyone sends to the right, receives from the left —
            // non-blocking both ways to avoid the classic ring deadlock.
            let mut s = [isend(&comm, (me + 1) % n, va_out, 512)];
            let mut r = [irecv(&comm, (me + n - 1) % n, va_in, 512)];
            wait_all(k, &mut comm, &mut s, &mut r);
            check_pattern(k, va_in, 512, ((me + n - 1) % n) as u64);
        })
        .unwrap();
    }

    #[test]
    fn bidirectional_exchange() {
        // The Laplace halo pattern: both sides isend+irecv simultaneously.
        let cl = Cluster::new(SccConfig::small()).unwrap();
        cl.run(2, |k| {
            let mut comm = RcceComm::init(k);
            let me = comm.ue();
            let other = 1 - me;
            let va_out = k.kalloc_pages(2);
            let va_in = k.kalloc_pages(2);
            let len = 8000u32;
            fill_pattern(k, va_out, len, me as u64 + 100);
            let mut s = [isend(&comm, other, va_out, len)];
            let mut r = [irecv(&comm, other, va_in, len)];
            wait_all(k, &mut comm, &mut s, &mut r);
            check_pattern(k, va_in, len, other as u64 + 100);
        })
        .unwrap();
    }

    #[test]
    fn back_to_back_messages_reuse_pipeline() {
        let cl = Cluster::new(SccConfig::small()).unwrap();
        cl.run(2, |k| {
            let mut comm = RcceComm::init(k);
            let va = k.kalloc_pages(1);
            for round in 0..8u64 {
                if comm.ue() == 0 {
                    fill_pattern(k, va, 128, round);
                    send(k, &mut comm, 1, va, 128);
                } else {
                    recv(k, &mut comm, 0, va, 128);
                    check_pattern(k, va, 128, round);
                }
            }
        })
        .unwrap();
    }

    #[test]
    fn zero_length_completes_immediately() {
        let cl = Cluster::new(SccConfig::small()).unwrap();
        cl.run(2, |k| {
            let mut comm = RcceComm::init(k);
            let va = k.kalloc_pages(1);
            if comm.ue() == 0 {
                send(k, &mut comm, 1, va, 0);
            } else {
                recv(k, &mut comm, 0, va, 0);
            }
        })
        .unwrap();
    }
}
