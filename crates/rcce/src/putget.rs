//! One-sided MPB access (`RCCE_put` / `RCCE_get`).
//!
//! `put` copies private memory into an MPB window of a (possibly remote)
//! UE; `get` copies an MPB window into private memory. The offsets come
//! from [`crate::comm::RcceComm::mpb_alloc`] and are symmetric across UEs.
//! RCCE leaves all synchronisation to the caller (flags).

use crate::comm::RcceComm;
use scc_hw::mpb::MpbArray;
use scc_hw::MemAttr;
use scc_kernel::Kernel;

/// Copy `len` bytes from private VA `va` into UE `target`'s MPB at `off`.
pub fn put(k: &mut Kernel<'_>, comm: &RcceComm, target: usize, off: u32, va: u32, len: u32) {
    let base = MpbArray::pa(comm.core_of(target), off as usize);
    let mut i = 0;
    while i + 8 <= len {
        let v = k.vread(va + i, 8);
        k.hw.write(base + i, 8, v, MemAttr::MPB);
        i += 8;
    }
    while i < len {
        let v = k.vread(va + i, 1);
        k.hw.write(base + i, 1, v, MemAttr::MPB);
        i += 1;
    }
    k.hw.flush_wcb();
}

/// Copy `len` bytes from UE `source`'s MPB at `off` into private VA `va`.
///
/// Invalidates tagged L1 lines first so the copy sees fresh MPB contents.
pub fn get(k: &mut Kernel<'_>, comm: &RcceComm, source: usize, off: u32, va: u32, len: u32) {
    let base = MpbArray::pa(comm.core_of(source), off as usize);
    k.hw.cl1invmb();
    let mut i = 0;
    while i + 8 <= len {
        let v = k.hw.read(base + i, 8, MemAttr::MPB);
        k.vwrite(va + i, 8, v);
        i += 8;
    }
    while i < len {
        let v = k.hw.read(base + i, 1, MemAttr::MPB);
        k.vwrite(va + i, 1, v);
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scc_hw::SccConfig;
    use scc_kernel::Cluster;

    #[test]
    fn put_get_roundtrip_local() {
        let cl = Cluster::new(SccConfig::small()).unwrap();
        cl.run(1, |k| {
            let mut comm = RcceComm::init(k);
            let off = comm.mpb_alloc(64);
            let va = k.kalloc_pages(1);
            for i in 0..8u32 {
                k.vwrite(va + i * 8, 8, 0xA0 + i as u64);
            }
            put(k, &comm, 0, off, va, 64);
            let va2 = k.kalloc_pages(1);
            get(k, &comm, 0, off, va2, 64);
            for i in 0..8u32 {
                assert_eq!(k.vread(va2 + i * 8, 8), 0xA0 + i as u64);
            }
        })
        .unwrap();
    }

    #[test]
    fn put_remote_get_with_flag_sync() {
        let cl = Cluster::new(SccConfig::small()).unwrap();
        cl.run(2, |k| {
            let mut comm = RcceComm::init(k);
            let off = comm.mpb_alloc(32);
            let va = k.kalloc_pages(1);
            if comm.ue() == 0 {
                k.vwrite(va, 8, 0xFEED);
                // One-sided: write into UE 1's MPB, then sync via barrier.
                put(k, &comm, 1, off, va, 8);
                comm.barrier(k);
            } else {
                comm.barrier(k);
                get(k, &comm, 1, off, va, 8);
                assert_eq!(k.vread(va, 8), 0xFEED);
            }
        })
        .unwrap();
    }
}
