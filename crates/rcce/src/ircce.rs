//! iRCCE: non-blocking send/receive with explicit progress.
//!
//! The sender copies its data chunk-wise into **its own** MPB chunk buffer
//! and publishes a `(seq, dst)` pair in its *sent* flag; the matching
//! receiver copies the chunk out and acknowledges by writing `seq` into the
//! sender's *ready* flag. One sender has at most one chunk in flight, so
//! concurrent sends from one UE are serialised in posting order — exactly
//! iRCCE's internal send queue.
//!
//! Buffers are virtual addresses in the simulated private memory of the
//! calling core, so all copies are charged through the cache model.

use crate::comm::RcceComm;
use scc_hw::mpb::MpbArray;
use scc_hw::{CoreId, MemAttr};
use scc_kernel::Kernel;
use std::sync::Arc;

/// A pending non-blocking send.
pub struct IsendReq {
    dst: usize,
    va: u32,
    len: u32,
    /// Bytes already copied into the MPB.
    pos: u32,
    /// Sequence number of the last chunk this request published (0 = none).
    last_seq: u32,
    done: bool,
}

/// A pending non-blocking receive.
pub struct IrecvReq {
    src: usize,
    va: u32,
    len: u32,
    pos: u32,
    done: bool,
}

/// Post a non-blocking send of `len` bytes at private VA `va` to UE `dst`.
pub fn isend(comm: &RcceComm, dst: usize, va: u32, len: u32) -> IsendReq {
    assert_ne!(dst, comm.ue(), "iRCCE does not support self-sends");
    assert!(dst < comm.num_ues());
    IsendReq {
        dst,
        va,
        len,
        pos: 0,
        last_seq: 0,
        done: len == 0,
    }
}

/// Post a non-blocking receive of `len` bytes into private VA `va` from UE
/// `src`.
pub fn irecv(comm: &RcceComm, src: usize, va: u32, len: u32) -> IrecvReq {
    assert_ne!(src, comm.ue(), "iRCCE does not support self-receives");
    assert!(src < comm.num_ues());
    IrecvReq {
        src,
        va,
        len,
        pos: 0,
        done: len == 0,
    }
}

/// Copy `len` bytes from private memory into this UE's MPB chunk buffer.
fn fill_chunk(k: &mut Kernel<'_>, me: CoreId, chunk_off: u32, va: u32, len: u32) {
    let base = MpbArray::pa(me, chunk_off as usize);
    let mut off = 0;
    while off + 8 <= len {
        let v = k.vread(va + off, 8);
        k.hw.write(base + off, 8, v, MemAttr::MPB);
        off += 8;
    }
    while off < len {
        let v = k.vread(va + off, 1);
        k.hw.write(base + off, 1, v, MemAttr::MPB);
        off += 1;
    }
    k.hw.flush_wcb();
}

/// Copy `len` bytes out of `src_core`'s MPB chunk buffer into private
/// memory.
fn drain_chunk(k: &mut Kernel<'_>, src_core: CoreId, chunk_off: u32, va: u32, len: u32) {
    let base = MpbArray::pa(src_core, chunk_off as usize);
    k.hw.cl1invmb();
    let mut off = 0;
    while off + 8 <= len {
        let v = k.hw.read(base + off, 8, MemAttr::MPB);
        k.vwrite(va + off, 8, v);
        off += 8;
    }
    while off < len {
        let v = k.hw.read(base + off, 1, MemAttr::MPB);
        k.vwrite(va + off, 1, v);
        off += 1;
    }
}

impl IsendReq {
    /// Has the transfer completed (all chunks acknowledged)?
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Try to make progress; returns `true` if state changed.
    fn progress(&mut self, k: &mut Kernel<'_>, comm: &mut RcceComm) -> bool {
        if self.done {
            return false;
        }
        let me = comm.core_of(comm.ue());
        // The raw flag peek steers timed MPB traffic: order it into the
        // parallel engine's election sequence (no-op in serial mode). The
        // READY flag's only possible writer is the receiver of the last
        // pushed chunk — recorded in our own SENT flag, which nobody else
        // writes — so the peek demotes through the per-object sequence
        // check against exactly that core. Before the first push nobody
        // can ack at all.
        let layout = *comm.layout();
        let acker = if comm.send_seq == 0 {
            me
        } else {
            let sent = RcceComm::peek_flag(k.hw.machine(), me, layout.sent_flag_off);
            comm.core_of(unpack_dst_len(sent.aux).0)
        };
        k.hw.host_order_point_peer(acker);
        let ready = RcceComm::peek_flag(k.hw.machine(), me, layout.ready_flag_off);
        // The pipeline is free when every chunk published so far was acked.
        if ready.value != comm.send_seq {
            return false;
        }
        if self.last_seq != 0 && self.last_seq == comm.send_seq && self.pos >= self.len {
            // Final chunk acknowledged.
            k.hw.sync_to(ready.stamp);
            self.done = true;
            return true;
        }
        if self.pos >= self.len {
            // Our final ack is someone else's concern (shouldn't happen:
            // covered above), nothing to push.
            return false;
        }
        // Sync with the ack that freed the buffer, then push the next chunk.
        if comm.send_seq != 0 {
            k.hw.sync_to(ready.stamp);
        }
        let chunk = (self.len - self.pos).min(layout.chunk_bytes());
        fill_chunk(k, me, layout.chunk_off, self.va + self.pos, chunk);
        self.pos += chunk;
        comm.send_seq += 1;
        self.last_seq = comm.send_seq;
        RcceComm::write_flag(
            k,
            me,
            layout.sent_flag_off,
            comm.send_seq,
            pack_dst_len(self.dst, chunk),
        );
        true
    }
}

impl IrecvReq {
    /// Has the transfer completed (all bytes landed)?
    pub fn is_done(&self) -> bool {
        self.done
    }

    fn progress(&mut self, k: &mut Kernel<'_>, comm: &mut RcceComm) -> bool {
        if self.done {
            return false;
        }
        let src_core = comm.core_of(self.src);
        let layout = *comm.layout();
        // The sender's SENT flag is written only by the sender itself:
        // demote the peek through the per-object sequence check.
        k.hw.host_order_point_peer(src_core);
        let sent = RcceComm::peek_flag(k.hw.machine(), src_core, layout.sent_flag_off);
        let acked = comm.recv_acked[self.src];
        if sent.value <= acked {
            return false;
        }
        let (dst, chunk_len) = unpack_dst_len(sent.aux);
        if dst != comm.ue() {
            return false;
        }
        // The chunk is for us: sync to its publication, copy it out, ack.
        let hops = k.hw.topo().hops(k.id(), src_core);
        let wire = k.hw.machine().cfg.timing.mpb_cost(hops);
        k.hw.sync_to(sent.stamp + wire);
        assert!(
            self.pos + chunk_len <= self.len,
            "sender pushed more data than this receive expects"
        );
        drain_chunk(k, src_core, layout.chunk_off, self.va + self.pos, chunk_len);
        self.pos += chunk_len;
        comm.recv_acked[self.src] = sent.value;
        RcceComm::write_flag(k, src_core, layout.ready_flag_off, sent.value, comm.ue() as u32);
        if self.pos >= self.len {
            self.done = true;
        }
        true
    }
}

/// Pack the chunk's destination UE and byte length into the SENT flag's
/// 32-bit aux word. 16 bits each: the chunk length is bounded by the MPB
/// chunk buffer (< 8 KiB), and 16 bits of UE covers far beyond the
/// 512-core meshes. (An 8-bit dst field would alias UEs ≥ 256.)
fn pack_dst_len(dst: usize, len: u32) -> u32 {
    debug_assert!(dst <= 0xffff, "destination UE {dst} does not fit the aux word");
    debug_assert!(len <= 0xffff, "chunk length {len} does not fit the aux word");
    ((dst as u32) << 16) | len
}

fn unpack_dst_len(aux: u32) -> (usize, u32) {
    ((aux >> 16) as usize, aux & 0xffff)
}

/// Drive all requests to completion, blocking responsively in between.
pub fn wait_all(
    k: &mut Kernel<'_>,
    comm: &mut RcceComm,
    sends: &mut [IsendReq],
    recvs: &mut [IrecvReq],
) {
    loop {
        let mut progressed = false;
        // Serialise sends: only the first unfinished one may own the
        // pipeline (iRCCE's send queue).
        if let Some(s) = sends.iter_mut().find(|s| !s.done) {
            progressed |= s.progress(k, comm);
        }
        for r in recvs.iter_mut() {
            progressed |= r.progress(k, comm);
        }
        if sends.iter().all(|s| s.done) && recvs.iter().all(|r| r.done) {
            return;
        }
        if progressed {
            continue;
        }
        // Nothing moved: block until any awaited flag *changes* from its
        // current snapshot. (Waking on a predicate like "value > acked"
        // would livelock when the sender's current chunk targets a
        // different receiver: the predicate stays true without any
        // progress being possible here.)
        let mach = Arc::clone(k.hw.machine());
        // Snapshot the watched flags at this core's deterministic position
        // in the election order, so "changed since the snapshot" means the
        // same thing under both executors. This one stays on the generic
        // order point (window/floor fast paths only): the snapshot spans
        // flags with several distinct writers, and a stale snapshot would
        // turn the change-detection wait into a virtual-time livelock.
        k.hw.host_order_point();
        let layout = *comm.layout();
        let mut watch: Vec<(CoreId, u32, u32, u32)> = Vec::new();
        if sends.iter().any(|s| !s.done) {
            let me_core = comm.core_of(comm.ue());
            let f = RcceComm::peek_flag(k.hw.machine(), me_core, layout.ready_flag_off);
            watch.push((me_core, layout.ready_flag_off, f.value, f.aux));
        }
        for r in recvs.iter().filter(|r| !r.done) {
            let core = comm.core_of(r.src);
            let f = RcceComm::peek_flag(k.hw.machine(), core, layout.sent_flag_off);
            watch.push((core, layout.sent_flag_off, f.value, f.aux));
        }
        k.wait_event("iRCCE progress", move || {
            for (core, off, value, aux) in &watch {
                let f = RcceComm::peek_flag(&mach, *core, *off);
                if f.value != *value || f.aux != *aux {
                    return Some(((), f.stamp));
                }
            }
            None
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Regression: the aux word once held only 8 bits of destination UE,
    /// which aliased UEs ≥ 256 on the 512-core mesh and deadlocked any
    /// flat collective whose root addressed the upper half of the die.
    #[test]
    fn aux_word_roundtrips_high_ues() {
        for dst in [0usize, 1, 255, 256, 511, 0xffff] {
            for len in [0u32, 1, 31, 4224, 0xffff] {
                assert_eq!(unpack_dst_len(pack_dst_len(dst, len)), (dst, len));
            }
        }
    }
}
