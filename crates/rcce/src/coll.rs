//! RCCE collective operations: barrier (re-exported from the communicator),
//! broadcast, reduce and allreduce.
//!
//! RCCE's collectives are simple compositions of the two-sided primitives;
//! the broadcast/reduce trees here are the same linear loops the original
//! library used for its small core counts.

use crate::comm::RcceComm;
use crate::sendrecv::{recv, send};
use scc_kernel::Kernel;

/// The reduction operator for `reduce_f64`/`allreduce_f64`.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ReduceOp {
    Sum,
    Max,
    Min,
}

impl ReduceOp {
    fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Max => a.max(b),
            ReduceOp::Min => a.min(b),
        }
    }
}

/// Synchronise all UEs (dissemination barrier over MPB flags).
pub fn barrier(k: &mut Kernel<'_>, comm: &mut RcceComm) {
    comm.barrier(k);
}

/// Broadcast `len` bytes at private VA `va` from UE `root` to everyone.
pub fn bcast(k: &mut Kernel<'_>, comm: &mut RcceComm, root: usize, va: u32, len: u32) {
    let me = comm.ue();
    let n = comm.num_ues();
    if n == 1 {
        return;
    }
    if me == root {
        for ue in 0..n {
            if ue != root {
                send(k, comm, ue, va, len);
            }
        }
    } else {
        recv(k, comm, root, va, len);
    }
}

/// Reduce `count` doubles at private VA `va` onto UE `root` (in place at
/// the root). Non-roots keep their input unchanged.
pub fn reduce_f64(
    k: &mut Kernel<'_>,
    comm: &mut RcceComm,
    root: usize,
    va: u32,
    count: u32,
    op: ReduceOp,
) {
    let me = comm.ue();
    let n = comm.num_ues();
    if n == 1 {
        return;
    }
    let bytes = count * 8;
    if me == root {
        // Receive into a scratch buffer and fold (deterministic UE order).
        let scratch = k.kalloc_pages(bytes.div_ceil(4096).max(1));
        for ue in 0..n {
            if ue == root {
                continue;
            }
            recv(k, comm, ue, scratch, bytes);
            for i in 0..count {
                let mine = k.vread_f64(va + i * 8);
                let theirs = k.vread_f64(scratch + i * 8);
                k.vwrite_f64(va + i * 8, op.apply(mine, theirs));
            }
        }
    } else {
        send(k, comm, root, va, bytes);
    }
}

/// Allreduce: reduce onto UE 0, then broadcast the result.
pub fn allreduce_f64(
    k: &mut Kernel<'_>,
    comm: &mut RcceComm,
    va: u32,
    count: u32,
    op: ReduceOp,
) {
    reduce_f64(k, comm, 0, va, count, op);
    bcast(k, comm, 0, va, count * 8);
}

#[cfg(test)]
mod tests {
    use super::*;
    use scc_hw::SccConfig;
    use scc_kernel::Cluster;

    #[test]
    fn bcast_distributes_root_data() {
        let cl = Cluster::new(SccConfig::small()).unwrap();
        cl.run(4, |k| {
            let mut comm = RcceComm::init(k);
            let va = k.kalloc_pages(1);
            if comm.ue() == 2 {
                for i in 0..16u32 {
                    k.vwrite(va + i * 8, 8, 0xB0 + i as u64);
                }
            }
            bcast(k, &mut comm, 2, va, 128);
            for i in 0..16u32 {
                assert_eq!(k.vread(va + i * 8, 8), 0xB0 + i as u64);
            }
        })
        .unwrap();
    }

    #[test]
    fn reduce_sums_across_ues() {
        let cl = Cluster::new(SccConfig::small()).unwrap();
        cl.run(3, |k| {
            let mut comm = RcceComm::init(k);
            let va = k.kalloc_pages(1);
            let me = comm.ue() as f64;
            for i in 0..8u32 {
                k.vwrite_f64(va + i * 8, me + i as f64);
            }
            reduce_f64(k, &mut comm, 0, va, 8, ReduceOp::Sum);
            if comm.ue() == 0 {
                for i in 0..8u32 {
                    // sum over ue of (ue + i) = (0+1+2) + 3i
                    assert_eq!(k.vread_f64(va + i * 8), 3.0 + 3.0 * i as f64);
                }
            }
        })
        .unwrap();
    }

    #[test]
    fn allreduce_max_everywhere() {
        let cl = Cluster::new(SccConfig::small()).unwrap();
        cl.run(5, |k| {
            let mut comm = RcceComm::init(k);
            let va = k.kalloc_pages(1);
            k.vwrite_f64(va, comm.ue() as f64 * 1.5);
            allreduce_f64(k, &mut comm, va, 1, ReduceOp::Max);
            assert_eq!(k.vread_f64(va), 6.0, "max of 0,1.5,3,4.5,6");
        })
        .unwrap();
    }

    #[test]
    fn allreduce_single_ue_noop() {
        let cl = Cluster::new(SccConfig::small()).unwrap();
        cl.run(1, |k| {
            let mut comm = RcceComm::init(k);
            let va = k.kalloc_pages(1);
            k.vwrite_f64(va, 42.0);
            allreduce_f64(k, &mut comm, va, 1, ReduceOp::Min);
            assert_eq!(k.vread_f64(va), 42.0);
        })
        .unwrap();
    }
}
