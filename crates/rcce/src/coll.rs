//! RCCE collective operations: barrier (re-exported from the communicator),
//! broadcast, reduce and allreduce.
//!
//! RCCE's collectives compose the two-sided primitives. Two shapes are
//! selectable through [`scc_hw::CollMode`] (`SCC_COLL=flat|tree`):
//!
//! * **Flat** — the linear loops the original library used for its small
//!   core counts: the root sends to (or receives from) every other UE in
//!   rank order. O(n) serialised steps through the root's MPB.
//! * **Tree** (default) — the topology-aware collective tree of DESIGN.md
//!   §12: UEs of one tile combine first, tile leaders combine per
//!   memory-controller quadrant, quadrant leaders meet at the root.
//!   O(log n) depth, and every edge is between mesh-adjacent groups.
//!
//! Reduction folds are deterministic in both modes, but the fold *order*
//! differs (rank order vs tree order), so flat and tree sums may differ by
//! floating-point rounding. Broadcast payloads are bit-identical.

use crate::comm::RcceComm;
use crate::sendrecv::{recv, send};
use scc_hw::CollMode;
use scc_kernel::Kernel;

/// The reduction operator for `reduce_f64`/`allreduce_f64`.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ReduceOp {
    Sum,
    Max,
    Min,
}

impl ReduceOp {
    fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Max => a.max(b),
            ReduceOp::Min => a.min(b),
        }
    }
}

/// Synchronise all UEs (dissemination barrier over MPB flags).
pub fn barrier(k: &mut Kernel<'_>, comm: &mut RcceComm) {
    comm.barrier(k);
}

/// Broadcast `len` bytes at private VA `va` from UE `root` to everyone.
pub fn bcast(k: &mut Kernel<'_>, comm: &mut RcceComm, root: usize, va: u32, len: u32) {
    if comm.num_ues() == 1 {
        return;
    }
    match k.hw.machine().cfg.coll {
        CollMode::Flat => bcast_flat(k, comm, root, va, len),
        CollMode::Tree => bcast_tree(k, comm, root, va, len),
    }
}

fn bcast_flat(k: &mut Kernel<'_>, comm: &mut RcceComm, root: usize, va: u32, len: u32) {
    let me = comm.ue();
    let n = comm.num_ues();
    if me == root {
        for ue in 0..n {
            if ue != root {
                send(k, comm, ue, va, len);
            }
        }
    } else {
        recv(k, comm, root, va, len);
    }
}

fn bcast_tree(k: &mut Kernel<'_>, comm: &mut RcceComm, root: usize, va: u32, len: u32) {
    let tree = comm.coll_tree(k, root);
    let me = comm.ue();
    if let Some(p) = tree.parent(me) {
        recv(k, comm, p, va, len);
    }
    for c in tree.children(me) {
        send(k, comm, *c, va, len);
    }
}

/// Reduce `count` doubles at private VA `va` onto UE `root` (in place at
/// the root). Non-roots keep their input unchanged.
pub fn reduce_f64(
    k: &mut Kernel<'_>,
    comm: &mut RcceComm,
    root: usize,
    va: u32,
    count: u32,
    op: ReduceOp,
) {
    if comm.num_ues() == 1 {
        return;
    }
    match k.hw.machine().cfg.coll {
        CollMode::Flat => reduce_flat(k, comm, root, va, count, op),
        CollMode::Tree => reduce_tree(k, comm, root, va, count, op),
    }
}

fn reduce_flat(
    k: &mut Kernel<'_>,
    comm: &mut RcceComm,
    root: usize,
    va: u32,
    count: u32,
    op: ReduceOp,
) {
    let me = comm.ue();
    let n = comm.num_ues();
    let bytes = count * 8;
    if me == root {
        // Receive into a scratch buffer and fold (deterministic UE order).
        let scratch = k.kalloc_pages(bytes.div_ceil(4096).max(1));
        for ue in 0..n {
            if ue == root {
                continue;
            }
            recv(k, comm, ue, scratch, bytes);
            for i in 0..count {
                let mine = k.vread_f64(va + i * 8);
                let theirs = k.vread_f64(scratch + i * 8);
                k.vwrite_f64(va + i * 8, op.apply(mine, theirs));
            }
        }
    } else {
        send(k, comm, root, va, bytes);
    }
}

fn reduce_tree(
    k: &mut Kernel<'_>,
    comm: &mut RcceComm,
    root: usize,
    va: u32,
    count: u32,
    op: ReduceOp,
) {
    let tree = comm.coll_tree(k, root);
    let me = comm.ue();
    let bytes = count * 8;
    let children: Vec<usize> = tree.children(me).to_vec();
    // The root folds in place and a leaf sends its input untouched;
    // interior UEs fold into a private copy so their input stays
    // unchanged (same contract as the flat loop).
    let acc = if tree.parent(me).is_none() || children.is_empty() {
        va
    } else {
        let copy = k.kalloc_pages(bytes.div_ceil(4096).max(1));
        for i in 0..count {
            let v = k.vread_f64(va + i * 8);
            k.vwrite_f64(copy + i * 8, v);
        }
        copy
    };
    if !children.is_empty() {
        let scratch = k.kalloc_pages(bytes.div_ceil(4096).max(1));
        for c in children {
            recv(k, comm, c, scratch, bytes);
            for i in 0..count {
                let mine = k.vread_f64(acc + i * 8);
                let theirs = k.vread_f64(scratch + i * 8);
                k.vwrite_f64(acc + i * 8, op.apply(mine, theirs));
            }
        }
    }
    if let Some(p) = tree.parent(me) {
        send(k, comm, p, acc, bytes);
    }
}

/// Allreduce: reduce onto UE 0, then broadcast the result.
pub fn allreduce_f64(
    k: &mut Kernel<'_>,
    comm: &mut RcceComm,
    va: u32,
    count: u32,
    op: ReduceOp,
) {
    reduce_f64(k, comm, 0, va, count, op);
    bcast(k, comm, 0, va, count * 8);
}

#[cfg(test)]
mod tests {
    use super::*;
    use scc_hw::SccConfig;
    use scc_kernel::Cluster;

    fn cluster(mode: CollMode) -> Cluster {
        let mut cfg = SccConfig::small();
        cfg.coll = mode;
        Cluster::new(cfg).unwrap()
    }

    fn bcast_case(mode: CollMode, n: usize, root: usize) {
        let cl = cluster(mode);
        cl.run(n, |k| {
            let mut comm = RcceComm::init(k);
            let va = k.kalloc_pages(1);
            if comm.ue() == root {
                for i in 0..16u32 {
                    k.vwrite(va + i * 8, 8, 0xB0 + i as u64);
                }
            }
            bcast(k, &mut comm, root, va, 128);
            for i in 0..16u32 {
                assert_eq!(k.vread(va + i * 8, 8), 0xB0 + i as u64);
            }
        })
        .unwrap();
    }

    #[test]
    fn bcast_distributes_root_data() {
        bcast_case(CollMode::Flat, 4, 2);
        bcast_case(CollMode::Tree, 4, 2);
    }

    #[test]
    fn bcast_tree_many_ues_nonzero_root() {
        // 12 UEs span 6 tiles of the scc48 preset: a real multi-level tree.
        bcast_case(CollMode::Tree, 12, 7);
    }

    fn reduce_case(mode: CollMode, n: usize) {
        let cl = cluster(mode);
        cl.run(n, |k| {
            let mut comm = RcceComm::init(k);
            let va = k.kalloc_pages(1);
            let me = comm.ue() as f64;
            for i in 0..8u32 {
                k.vwrite_f64(va + i * 8, me + i as f64);
            }
            reduce_f64(k, &mut comm, 0, va, 8, ReduceOp::Sum);
            let rank_sum = (n * (n - 1) / 2) as f64;
            if comm.ue() == 0 {
                for i in 0..8u32 {
                    // sum over ue of (ue + i) = rank_sum + n*i — exact in
                    // f64 for these small integers, any fold order.
                    assert_eq!(k.vread_f64(va + i * 8), rank_sum + (n as f64) * i as f64);
                }
            } else {
                // Non-roots keep their input unchanged.
                for i in 0..8u32 {
                    assert_eq!(k.vread_f64(va + i * 8), me + i as f64);
                }
            }
        })
        .unwrap();
    }

    #[test]
    fn reduce_sums_across_ues() {
        reduce_case(CollMode::Flat, 3);
        reduce_case(CollMode::Tree, 3);
    }

    #[test]
    fn reduce_tree_many_ues() {
        reduce_case(CollMode::Tree, 16);
    }

    fn allreduce_case(mode: CollMode) {
        let cl = cluster(mode);
        cl.run(5, |k| {
            let mut comm = RcceComm::init(k);
            let va = k.kalloc_pages(1);
            k.vwrite_f64(va, comm.ue() as f64 * 1.5);
            allreduce_f64(k, &mut comm, va, 1, ReduceOp::Max);
            assert_eq!(k.vread_f64(va), 6.0, "max of 0,1.5,3,4.5,6");
        })
        .unwrap();
    }

    #[test]
    fn allreduce_max_everywhere() {
        allreduce_case(CollMode::Flat);
        allreduce_case(CollMode::Tree);
    }

    #[test]
    fn allreduce_single_ue_noop() {
        let cl = cluster(CollMode::Tree);
        cl.run(1, |k| {
            let mut comm = RcceComm::init(k);
            let va = k.kalloc_pages(1);
            k.vwrite_f64(va, 42.0);
            allreduce_f64(k, &mut comm, va, 1, ReduceOp::Min);
            assert_eq!(k.vread_f64(va), 42.0);
        })
        .unwrap();
    }

    #[test]
    fn flat_and_tree_reductions_agree() {
        // Same inputs through both shapes; sums of small integers are
        // exact in f64, so the agreement is bit-exact here even though
        // the fold orders differ.
        let run = |mode: CollMode| -> Vec<u64> {
            let cl = cluster(mode);
            cl.run(9, |k| {
                let mut comm = RcceComm::init(k);
                let va = k.kalloc_pages(1);
                for i in 0..4u32 {
                    k.vwrite_f64(va + i * 8, (comm.ue() as f64) * 3.0 + i as f64);
                }
                allreduce_f64(k, &mut comm, va, 4, ReduceOp::Sum);
                (0..4u32).map(|i| k.vread_f64(va + i * 8).to_bits()).collect::<Vec<u64>>()
            })
            .unwrap()
            .into_iter()
            .flat_map(|r| r.result)
            .collect()
        };
        assert_eq!(run(CollMode::Flat), run(CollMode::Tree));
    }
}
