//! Offline stand-in for `serde`.
//!
//! Re-exports the no-op `Serialize`/`Deserialize` derives from the local
//! `serde_derive` shim. The workspace uses the derives purely as markers;
//! no code path serialises through serde traits.

pub use serde_derive::{Deserialize, Serialize};
