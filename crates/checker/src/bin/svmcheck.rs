//! `svmcheck` — offline consistency checking of exported traces.
//!
//! ```text
//! svmcheck [--mhz N] [--json] [--expect SLUG] FILE...
//! ```
//!
//! Each FILE is either a protocol log (`protocol_log` text) or a Chrome
//! trace JSON (`chrome_trace_json`); the format is sniffed per file.
//! `--mhz` sets the core clock used to turn Chrome microsecond timestamps
//! back into cycles (default: the simulator's default core clock).
//!
//! Exit status: 0 — every file is clean (or, with `--expect`, every file
//! reports at least one finding of the given kind and no finding of any
//! other kind); 1 — findings (or an `--expect` mismatch, including
//! *additional unexpected* findings next to the expected one); 2 — usage
//! or I/O error.

use scc_checker::{parse, Checker};
use scc_hw::SccConfig;
use std::process::ExitCode;

struct Args {
    mhz: u32,
    json: bool,
    expect: Option<String>,
    files: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        mhz: SccConfig::default().timing.core_mhz,
        json: false,
        expect: None,
        files: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--mhz" => {
                let v = it.next().ok_or("--mhz needs a value")?;
                args.mhz = v.parse().map_err(|_| format!("bad --mhz value: {v}"))?;
            }
            "--json" => args.json = true,
            "--expect" => {
                args.expect = Some(it.next().ok_or("--expect needs a finding kind")?);
            }
            "--help" | "-h" => {
                return Err(String::new());
            }
            f if !f.starts_with('-') => args.files.push(f.to_string()),
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    if args.files.is_empty() {
        return Err("no input files".to_string());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("svmcheck: {msg}");
            }
            eprintln!("usage: svmcheck [--mhz N] [--json] [--expect KIND] FILE...");
            return ExitCode::from(2);
        }
    };

    let mut bad = false;
    for file in &args.files {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("svmcheck: {file}: {e}");
                return ExitCode::from(2);
            }
        };
        let recs = match parse::parse_auto(&text, args.mhz) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("svmcheck: {file}: {e}");
                return ExitCode::from(2);
            }
        };
        let mut checker = Checker::new();
        for r in recs {
            checker.push(r.core, r.e);
        }
        let report = checker.finish();
        if args.files.len() > 1 || args.expect.is_some() {
            println!("== {file} ==");
        }
        if args.json {
            print!("{}", report.to_json());
        } else {
            print!("{}", report.render_text());
        }
        match &args.expect {
            Some(slug) => {
                if report.expect_ok(slug) {
                    println!(
                        "expect: ok — {} '{slug}' finding(s), nothing else",
                        report.findings.len()
                    );
                } else {
                    let got: Vec<&str> = report.findings.iter().map(|f| f.slug).collect();
                    println!(
                        "expect: FAILED — wanted only '{slug}' findings, got [{}]",
                        got.join(", ")
                    );
                    bad = true;
                }
            }
            None => {
                if !report.findings.is_empty() {
                    bad = true;
                }
            }
        }
    }
    if bad {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
