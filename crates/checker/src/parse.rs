//! Offline parsers: read an exported trace back into the event stream.
//!
//! Two formats round-trip:
//!
//! - the plain-text protocol log (`scc_hw::instr::protocol_log`),
//!   one event per line:
//!   `[      123456] core 03 svm.own_request page=5 owner=2`
//! - the Chrome `trace_event` JSON (`scc_hw::instr::chrome_trace_json`).
//!   Instant events (`"ph":"i"`) carry name, tid and the named payload
//!   args; timestamps are microseconds at a known core clock, so
//!   `round(ts * mhz)` recovers the exact cycle count (at 533 MHz the
//!   `%.3f` quantization error is under half a cycle). Metadata (`"M"`)
//!   lines are skipped, and `blocked` slices (`"X"`) are skipped too —
//!   the exporter folds `BlockEnter`/`BlockExit` into them, and no
//!   analysis consumes block events, so findings are unaffected.
//!
//! Neither format encodes ring truncation, so an offline stream is
//! treated as complete; export only untruncated rings (the tracing
//! harnesses assert `overwritten() == 0`).
//!
//! Both parsers are zero-dependency and line-oriented: the exporters
//! write one event per line, which is the contract relied on here.

use crate::Rec;
use scc_hw::instr::{EventKind, TraceEvent};

fn build_event(kind: EventKind, t: u64, args: &[(String, u32)]) -> TraceEvent {
    let (an, bn, cn) = kind.arg_names();
    let get = |name: &str| {
        args.iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    };
    TraceEvent {
        t,
        kind,
        a: if an.is_empty() { 0 } else { get(an) },
        b: if bn.is_empty() { 0 } else { get(bn) },
        c: if cn.is_empty() { 0 } else { get(cn) },
    }
}

/// Parse a plain-text protocol log (the `protocol_log` format).
pub fn parse_protocol_log(text: &str) -> Result<Vec<Rec>, String> {
    let mut recs = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        let err = |what: &str| format!("protocol log line {}: {what}: {raw:?}", lineno + 1);
        let rest = line.strip_prefix('[').ok_or_else(|| err("missing '['"))?;
        let (t_str, rest) = rest.split_once(']').ok_or_else(|| err("missing ']'"))?;
        let t: u64 = t_str
            .trim()
            .parse()
            .map_err(|_| err("bad timestamp"))?;
        let mut tokens = rest.split_whitespace();
        if tokens.next() != Some("core") {
            return Err(err("expected 'core'"));
        }
        let core: usize = tokens
            .next()
            .ok_or_else(|| err("missing core id"))?
            .parse()
            .map_err(|_| err("bad core id"))?;
        let cat_name = tokens.next().ok_or_else(|| err("missing event name"))?;
        let name = cat_name
            .split_once('.')
            .map(|(_, n)| n)
            .unwrap_or(cat_name);
        let kind = EventKind::from_name(name)
            .ok_or_else(|| err("unknown event name"))?;
        let mut args: Vec<(String, u32)> = Vec::new();
        for tok in tokens {
            let (k, v) = tok.split_once('=').ok_or_else(|| err("bad k=v token"))?;
            let v: u32 = v.parse().map_err(|_| err("bad arg value"))?;
            args.push((k.to_string(), v));
        }
        recs.push(Rec {
            t,
            core,
            e: build_event(kind, t, &args),
        });
    }
    Ok(recs)
}

/// Pull the string value of `"key":"..."` out of a JSON object line.
fn json_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')?;
    Some(&line[start..start + end])
}

/// Pull the raw (unquoted) value of `"key":...` out of a JSON object line,
/// up to the next `,` or `}`.
fn json_raw<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..]
        .find([',', '}'])
        .unwrap_or(line.len() - start);
    Some(line[start..start + end].trim())
}

/// Parse Chrome `trace_event` JSON (the `chrome_trace_json` format) at the
/// given core clock.
pub fn parse_chrome_trace(text: &str, core_mhz: u32) -> Result<Vec<Rec>, String> {
    let mhz = core_mhz as f64;
    let mut recs = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim().trim_end_matches(',');
        if line.is_empty() || line == "[" || line == "]" {
            continue;
        }
        let err = |what: &str| format!("chrome trace line {}: {what}: {raw:?}", lineno + 1);
        let ph = json_str(line, "ph").ok_or_else(|| err("missing ph"))?;
        if ph != "i" {
            // "M" metadata and "X" blocked-slices carry no payload events.
            continue;
        }
        let name = json_str(line, "name").ok_or_else(|| err("missing name"))?;
        let kind = EventKind::from_name(name).ok_or_else(|| err("unknown event name"))?;
        let core: usize = json_raw(line, "tid")
            .ok_or_else(|| err("missing tid"))?
            .parse()
            .map_err(|_| err("bad tid"))?;
        let ts: f64 = json_raw(line, "ts")
            .ok_or_else(|| err("missing ts"))?
            .parse()
            .map_err(|_| err("bad ts"))?;
        let t = (ts * mhz).round() as u64;
        let mut args: Vec<(String, u32)> = Vec::new();
        if let Some(abody) = line.find("\"args\":{") {
            let body_start = abody + "\"args\":{".len();
            let body_end = line[body_start..]
                .find('}')
                .ok_or_else(|| err("unterminated args"))?;
            let body = &line[body_start..body_start + body_end];
            for pair in body.split(',').filter(|p| !p.trim().is_empty()) {
                let (k, v) = pair.split_once(':').ok_or_else(|| err("bad args pair"))?;
                let k = k.trim().trim_matches('"');
                let v: u32 = v.trim().parse().map_err(|_| err("bad args value"))?;
                args.push((k.to_string(), v));
            }
        }
        recs.push(Rec {
            t,
            core,
            e: build_event(kind, t, &args),
        });
    }
    Ok(recs)
}

/// Sniff the format (Chrome JSON carries `"ph"` keys) and parse.
pub fn parse_auto(text: &str, core_mhz: u32) -> Result<Vec<Rec>, String> {
    if text.contains("\"ph\"") {
        parse_chrome_trace(text, core_mhz)
    } else {
        parse_protocol_log(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_log_line_round_trips() {
        let text = "[      123456] core 03 svm.own_request page=5 owner=2\n";
        let recs = parse_protocol_log(text).unwrap();
        assert_eq!(recs.len(), 1);
        let r = &recs[0];
        assert_eq!(r.t, 123456);
        assert_eq!(r.core, 3);
        assert_eq!(r.e.kind, EventKind::OwnRequest);
        assert_eq!((r.e.a, r.e.b), (5, 2));
        assert_eq!(r.line(), text.trim_end());
    }

    #[test]
    fn chrome_instant_round_trips_at_533_mhz() {
        // 123456 cycles at 533 MHz = 231.625 us (3 decimals) — the parser
        // must recover the exact cycle count.
        let ts = 123456f64 / 533.0;
        let line = format!(
            "[\n{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":3,\
             \"args\":{{\"name\":\"core 03\"}}}},\n\
             {{\"name\":\"own_request\",\"cat\":\"svm\",\"ph\":\"i\",\"s\":\"t\",\
             \"ts\":{ts:.3},\"pid\":0,\"tid\":3,\"args\":{{\"page\":5,\"owner\":2}}}}\n]\n"
        );
        let recs = parse_chrome_trace(&line, 533).unwrap();
        assert_eq!(recs.len(), 1, "metadata line must be skipped");
        let r = &recs[0];
        assert_eq!(r.t, 123456);
        assert_eq!(r.core, 3);
        assert_eq!(r.e.kind, EventKind::OwnRequest);
        assert_eq!((r.e.a, r.e.b), (5, 2));
    }

    #[test]
    fn sniffer_picks_the_right_parser() {
        assert_eq!(
            parse_auto("[      10] core 00 sync.barrier\n", 533).unwrap()[0].e.kind,
            EventKind::Barrier
        );
        let chrome = "{\"name\":\"barrier\",\"cat\":\"sync\",\"ph\":\"i\",\"s\":\"t\",\
                      \"ts\":0.019,\"pid\":0,\"tid\":0,\"args\":{}}";
        assert_eq!(
            parse_auto(chrome, 533).unwrap()[0].e.kind,
            EventKind::Barrier
        );
    }
}
