//! Synchronization linter over the per-core lock event streams.
//!
//! Consumes `LockAcquire` / `LockRelease` (the TAS register halves of
//! `SvmLock`), `AcquireInv` / `ReleaseFlush` (the cache-action halves),
//! `WcbFlush`, `Barrier`, and the typed `SyncErr` misuse events recorded
//! by the sync layer itself. Checks:
//!
//! - `acquire-without-invalidate` — a `LockAcquire` not immediately
//!   followed by its `AcquireInv`: the critical section starts with
//!   possibly-stale tagged cache lines.
//! - `release-without-flush` — a `LockRelease` not preceded by its
//!   `ReleaseFlush` (intervening WCB drains are fine): combined writes
//!   may still sit in the WCB when the next owner takes the lock.
//! - `acquire-reentry` / `release-not-held` — the typed `SyncErr` events
//!   (codes 1 and 2) recorded when `SvmLock` refuses a misuse.
//! - `lock-held-at-barrier` — a core enters an SVM barrier while holding
//!   a lock (classic deadlock/ordering hazard), reported once per
//!   (core, register).
//! - `unreleased-lock` — a lock still held when the stream ends.

use crate::report::{Detector, Finding};
use crate::{Rec, StreamInfo};
use scc_hw::instr::EventKind;
use std::collections::{HashMap, HashSet};

#[derive(Default)]
struct CoreState {
    /// reg -> the LockAcquire line (for excerpts).
    held: HashMap<u32, (u64, String)>,
    /// A LockAcquire whose AcquireInv has not arrived yet.
    pending_inv: Option<(u32, u64, String)>,
    /// The register whose ReleaseFlush is still "fresh" (only WCB drains
    /// since), i.e. a LockRelease of it is properly flushed.
    flush_ok: Option<u32>,
    /// (reg) already reported held-at-barrier.
    barrier_flagged: HashSet<u32>,
}

fn sync_err_slug(code: u32) -> &'static str {
    match code {
        1 => "acquire-reentry",
        _ => "release-not-held",
    }
}

pub fn analyze(recs: &[Rec], info: &StreamInfo) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut cores: HashMap<usize, CoreState> = HashMap::new();
    let _ = info;

    for r in recs {
        let st = cores.entry(r.core).or_default();
        let k = r.e.kind;
        // A pending acquire must be completed by the very next event on
        // this core, and that event must be the matching invalidate.
        if let Some((reg, t, line)) = st.pending_inv.take() {
            if !(k == EventKind::AcquireInv && r.e.a == reg) {
                findings.push(Finding {
                    detector: Detector::Lint,
                    slug: "acquire-without-invalidate",
                    page: None,
                    cores: vec![r.core],
                    t,
                    message: format!(
                        "core {:02} took lock reg {} without the acquire-side CL1INVMB \
                         invalidate: the critical section may read stale tagged lines",
                        r.core, reg
                    ),
                    excerpt: vec![line],
                });
            }
        }
        // The flush-freshness window survives only WCB drains and
        // scheduler block/unblock events.
        if !matches!(
            k,
            EventKind::WcbFlush
                | EventKind::BlockEnter
                | EventKind::BlockExit
                | EventKind::ReleaseFlush
                | EventKind::LockRelease
        ) {
            st.flush_ok = None;
        }
        match k {
            EventKind::LockAcquire => {
                st.held.insert(r.e.a, (r.t, r.line()));
                st.pending_inv = Some((r.e.a, r.t, r.line()));
            }
            EventKind::ReleaseFlush => {
                st.flush_ok = Some(r.e.a);
            }
            EventKind::LockRelease => {
                if st.flush_ok != Some(r.e.a) {
                    findings.push(Finding {
                        detector: Detector::Lint,
                        slug: "release-without-flush",
                        page: None,
                        cores: vec![r.core],
                        t: r.t,
                        message: format!(
                            "core {:02} released lock reg {} without the release-side WCB \
                             flush: combined writes may not be visible to the next owner",
                            r.core, r.e.a
                        ),
                        excerpt: vec![r.line()],
                    });
                }
                st.flush_ok = None;
                st.held.remove(&r.e.a);
            }
            EventKind::SyncErr => {
                findings.push(Finding {
                    detector: Detector::Lint,
                    slug: sync_err_slug(r.e.b),
                    page: None,
                    cores: vec![r.core],
                    t: r.t,
                    message: format!(
                        "core {:02} hit a typed sync misuse on lock reg {}: {}",
                        r.core,
                        r.e.a,
                        if r.e.b == 1 {
                            "acquire re-entry on a lock it already holds"
                        } else {
                            "release of a lock it does not hold"
                        }
                    ),
                    excerpt: vec![r.line()],
                });
            }
            EventKind::Barrier => {
                let mut regs: Vec<u32> = st.held.keys().copied().collect();
                regs.sort_unstable();
                for reg in regs {
                    if st.barrier_flagged.insert(reg) {
                        let (at, aline) = st.held[&reg].clone();
                        let _ = at;
                        findings.push(Finding {
                            detector: Detector::Lint,
                            slug: "lock-held-at-barrier",
                            page: None,
                            cores: vec![r.core],
                            t: r.t,
                            message: format!(
                                "core {:02} entered an SVM barrier while holding lock reg \
                                 {} — any other core contending for it deadlocks the \
                                 barrier",
                                r.core, reg
                            ),
                            excerpt: vec![aline, r.line()],
                        });
                    }
                }
            }
            _ => {}
        }
    }

    // End of stream: dangling acquires.
    let mut core_ids: Vec<usize> = cores.keys().copied().collect();
    core_ids.sort_unstable();
    for c in core_ids {
        let st = &cores[&c];
        if let Some((reg, t, line)) = &st.pending_inv {
            findings.push(Finding {
                detector: Detector::Lint,
                slug: "acquire-without-invalidate",
                page: None,
                cores: vec![c],
                t: *t,
                message: format!(
                    "core {c:02} took lock reg {reg} without the acquire-side CL1INVMB \
                     invalidate: the critical section may read stale tagged lines"
                ),
                excerpt: vec![line.clone()],
            });
        }
        let mut regs: Vec<u32> = st.held.keys().copied().collect();
        regs.sort_unstable();
        for reg in regs {
            let (t, line) = st.held[&reg].clone();
            findings.push(Finding {
                detector: Detector::Lint,
                slug: "unreleased-lock",
                page: None,
                cores: vec![c],
                t,
                message: format!(
                    "core {c:02} still holds lock reg {reg} at the end of the run"
                ),
                excerpt: vec![line],
            });
        }
    }
    findings
}
