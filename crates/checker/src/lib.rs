//! `svm-check`: a dynamic consistency checker over the structured
//! protocol-event stream (`scc_hw::instr`).
//!
//! The SVM system's consistency models put the correctness burden on the
//! programmer: under lazy release consistency a reader that skips the
//! `CL1INVMB` invalidate at lock acquire silently reads stale data, and
//! under the strong model every page must follow the single-owner 5-step
//! migration protocol. This crate turns the deterministic, typed,
//! cycle-stamped event stream into a verification subsystem running three
//! analyses:
//!
//! 1. **Race detector** ([`race`]) — vector-clock happens-before analysis
//!    of shared-page accesses on lazy-release pages. Lock
//!    acquire/release-flush and barrier events establish the HB edges; a
//!    write → read pair with no ordering path between them is a
//!    guaranteed-stale read on the simulated non-coherent L1/L2.
//! 2. **Protocol monitor** ([`protocol`]) — checks the strong model's
//!    ownership-migration state machine per page: single owner at all
//!    times, no grant without a request, access withdrawn (PTE protect or
//!    unmap) before granting away, the `FrameOwners` advisory registry
//!    consistent with grants, and mailbox receive events correlated to
//!    sends.
//! 3. **Synchronization linter** ([`lint`]) — unreleased locks at
//!    barrier/exit, acquire-without-invalidate, release-without-flush,
//!    and the typed misuse errors recorded by `SvmLock`
//!    (double release, acquire re-entry).
//!
//! ## Online and offline
//!
//! Online, a [`Checker`] registers as an [`scc_hw::EventSink`] and is fed
//! the merged per-core rings of a finished run via [`scc_hw::replay`]
//! (use [`check_rings`]). Offline, [`parse`] reads the exported protocol
//! log or Chrome trace JSON back into the same event stream. Both paths
//! observe the identical global order, so they produce identical findings
//! — the shadow tests assert this.
//!
//! Without the `trace` cargo feature the rings stay empty, every stream
//! is empty, and the checker reports zero findings at zero cost: the
//! subsystem is a no-op exactly when the instrumentation is.

pub mod lint;
pub mod parse;
pub mod protocol;
pub mod race;
pub mod report;

pub use report::{Detector, Finding, Report};

use scc_hw::instr::{EventKind, TraceEvent};
use scc_hw::{CoreId, EventSink, TraceRing};
use std::collections::{BTreeSet, HashMap};

/// Consistency-model tags as carried by `RegionAlloc` events.
pub const MODEL_STRONG: u8 = 0;
pub const MODEL_LAZY: u8 = 1;
pub const MODEL_WRITE_INVALIDATE: u8 = 2;

/// One event with its originating core — the unit the analyses consume.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Rec {
    pub t: u64,
    pub core: usize,
    pub e: TraceEvent,
}

impl Rec {
    /// Render as a protocol-log line, byte-identical to what
    /// `scc_hw::instr::protocol_log` prints for this event (findings quote
    /// these lines in their excerpts).
    pub fn line(&self) -> String {
        let (an, bn, cn) = self.e.kind.arg_names();
        let mut s = format!(
            "[{:>12}] core {:02} {}.{}",
            self.t,
            self.core,
            self.e.kind.category(),
            self.e.kind.name()
        );
        for (name, val) in [(an, self.e.a), (bn, self.e.b), (cn, self.e.c)] {
            if !name.is_empty() {
                s.push_str(&format!(" {name}={val}"));
            }
        }
        s
    }
}

/// Facts every analysis needs, gathered in one pre-pass over the stream.
pub struct StreamInfo {
    /// Number of cores (max observed core index + 1).
    pub ncores: usize,
    /// Consistency model per SVM page, from `RegionAlloc` events.
    pub models: HashMap<u32, u8>,
    /// Cores that emit at least one `Barrier` event — the barrier
    /// participant set for the HB model.
    pub barrier_cores: Vec<usize>,
    /// No ring wrapped: the stream is the complete event history, so
    /// absence-based checks are sound.
    pub complete: bool,
    /// Base VA of the SVM window, to turn `PageProtect`/`PageUnmap` VAs
    /// into page numbers.
    pub svm_base: u32,
}

impl StreamInfo {
    pub fn scan(recs: &[Rec], complete: bool) -> StreamInfo {
        let mut ncores = 0;
        let mut models = HashMap::new();
        let mut barrier_cores = BTreeSet::new();
        for r in recs {
            ncores = ncores.max(r.core + 1);
            match r.e.kind {
                EventKind::RegionAlloc => {
                    for p in r.e.a..r.e.a.saturating_add(r.e.b) {
                        models.insert(p, r.e.c as u8);
                    }
                }
                EventKind::Barrier => {
                    barrier_cores.insert(r.core);
                }
                _ => {}
            }
        }
        StreamInfo {
            ncores,
            models,
            barrier_cores: barrier_cores.into_iter().collect(),
            complete,
            svm_base: scc_kernel::SVM_VA_BASE,
        }
    }

    /// The model of `page`, if a `RegionAlloc` covered it.
    pub fn model(&self, page: u32) -> Option<u8> {
        self.models.get(&page).copied()
    }

    /// Page number of `va` if it falls inside the SVM window.
    pub fn page_of_va(&self, va: u32) -> Option<u32> {
        (va >= self.svm_base).then(|| (va - self.svm_base) / 4096)
    }
}

/// The checker: buffer the stream (online as an [`EventSink`], offline
/// from [`parse`]), then run all three analyses in [`Checker::finish`].
#[derive(Default)]
pub struct Checker {
    recs: Vec<Rec>,
    lost: u64,
}

impl EventSink for Checker {
    fn event(&mut self, core: CoreId, event: &TraceEvent) {
        self.push(core.idx(), *event);
    }

    fn truncated(&mut self, _core: CoreId, lost: u64) {
        self.lost += lost;
    }
}

impl Checker {
    pub fn new() -> Checker {
        Checker::default()
    }

    /// Feed one event (offline path; the online path goes through the
    /// [`EventSink`] impl).
    pub fn push(&mut self, core: usize, e: TraceEvent) {
        self.recs.push(Rec { t: e.t, core, e });
    }

    /// Record that `lost` events are missing from the stream (ring wrap).
    pub fn mark_truncated(&mut self, lost: u64) {
        self.lost += lost;
    }

    /// Sort the buffered stream into global simulated-time order (stable:
    /// ties keep per-core ring order, matching `protocol_log`) and run the
    /// three analyses.
    pub fn finish(mut self) -> Report {
        self.recs.sort_by_key(|r| (r.t, r.core));
        let info = StreamInfo::scan(&self.recs, self.lost == 0);
        let mut findings = Vec::new();
        findings.extend(race::analyze(&self.recs, &info));
        findings.extend(protocol::analyze(&self.recs, &info));
        findings.extend(lint::analyze(&self.recs, &info));
        // Report in event order; ties keep detector order (stable sort).
        findings.sort_by_key(|f| f.t);
        Report {
            findings,
            truncated: self.lost > 0,
            lost: self.lost,
            events: self.recs.len(),
            cores: info.ncores,
        }
    }
}

/// Run the checker online over the per-core rings of a finished run.
pub fn check_rings<'a>(per_core: impl IntoIterator<Item = (CoreId, &'a TraceRing)>) -> Report {
    let mut checker = Checker::new();
    scc_hw::replay(per_core, &mut checker);
    checker.finish()
}
